//! Storage-sharing scenario (§1, §8: privacy-preserving shared storage in
//! untrusted P2P networks). Tokens are storage-operation rights; a ring
//! signature hides *which* user operated on the shared data, and
//! confidential amounts hide *how much* storage each operation paid for.
//!
//! Demonstrates the full stack: confidential ledger (Pedersen commitments,
//! balance proofs), DA-MS mixin selection, and a public audit via the
//! chain auditor showing the record stays unlinkable.
//!
//! ```text
//! cargo run --release --example storage_sharing
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use dams_blockchain::confidential::ConfidentialLedger;
use dams_crypto::{KeyPair, PedersenParams, SchnorrGroup};
use dams_core::{progressive, Instance, ModularInstance, SelectionPolicy};
use dams_diversity::{
    analyze, batch_anonymity, DiversityRequirement, HtId, RingIndex, TokenId, TokenUniverse,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let group = SchnorrGroup::default();
    let params = PedersenParams::new(group);

    // The storage co-op issues operation rights with hidden quotas: 24
    // rights across 8 onboarding batches.
    let mut ledger = ConfidentialLedger::new(params);
    let users: Vec<KeyPair> = (0..24).map(|_| KeyPair::generate(&group, &mut rng)).collect();
    let quotas = [100u64, 100, 250, 250, 250, 500, 500, 1000];
    for (i, u) in users.iter().enumerate() {
        ledger.mint(u.public, quotas[i % quotas.len()], &mut rng);
    }
    println!(
        "co-op ledger: {} operation rights minted with hidden quotas",
        ledger.token_count()
    );

    // The algorithmic privacy view: rights onboarded together share an HT.
    let universe = TokenUniverse::new((0..24u32).map(|i| HtId(i / 3)).collect());

    // Users operate on the shared store: each op picks mixins with TM_P
    // under recursive (1, 4)-diversity, then commits a confidential spend
    // paying the operation fee to the co-op treasury.
    let req = DiversityRequirement::new(1.0, 4);
    let policy = SelectionPolicy::new(req);
    let treasury = KeyPair::generate(&group, &mut rng);
    let mut committed = RingIndex::new();
    let mut claims = Vec::new();

    for &user in &[2u32, 9, 17] {
        let inst = Instance::new(universe.clone(), committed.clone(), claims.clone());
        let modular = ModularInstance::decompose(&inst).expect("laminar history");
        let sel = progressive(&modular, TokenId(user), policy).expect("feasible");

        // Confidential spend: the whole quota goes to the treasury (fee)
        // and a fresh right of the same hidden size comes back.
        let quota = ledger
            .opening(dams_blockchain::TokenId(user as u64))
            .expect("own opening")
            .amount;
        let ring_ids: Vec<dams_blockchain::TokenId> = sel
            .ring
            .tokens()
            .iter()
            .map(|t| dams_blockchain::TokenId(t.0 as u64))
            .collect();
        let spend = ledger.build_spend(
            &ring_ids,
            dams_blockchain::TokenId(user as u64),
            &users[user as usize],
            &[(treasury.public, 1), (users[user as usize].public, quota - 1)],
            &mut rng,
        );
        ledger.apply(&spend).expect("balances and verifies");
        println!(
            "user {user}: operation committed behind a {}-right ring (fee hidden)",
            sel.size()
        );
        committed.push(sel.ring);
        claims.push(req);
    }

    // Public audit: the P2P network sees rings and commitments only.
    let analysis = analyze(&committed, &[]);
    let anon = batch_anonymity(&analysis, &universe);
    println!(
        "\npublic audit: {} ops, {} linkable, mean anonymity set {:.1} rights, \
         mean HT entropy {:.2} bits",
        anon.rings, anon.resolved, anon.mean_candidates, anon.mean_ht_entropy_bits
    );
    assert_eq!(anon.resolved, 0, "no operation may be linkable");
    println!("ledger now holds {} rights; amounts never appeared on the wire", ledger.token_count());
}
