//! Adversary demonstration: chain-reaction analysis and the homogeneity
//! attack against naive vs diversity-aware mixin selection.
//!
//! Reproduces the paper's Example 1 narrative computationally: the three
//! flawed selections are broken by the attacks, the DA-MS selection
//! resists them.
//!
//! ```text
//! cargo run --release --example adversary
//! ```

use dams_diversity::{
    analyze, homogeneity::probe_ring, ring, HtId, RingIndex, RsId, TokenId, TokenRsPair,
    TokenUniverse,
};

fn main() {
    // Paper Example 1: tokens t1..t4 as ids 0..3.
    // t1, t3 minted by h1; t2 by h2; t4 by h3.
    let universe = TokenUniverse::new(vec![HtId(1), HtId(2), HtId(1), HtId(3)]);
    // Existing rings: r1 = r2 = {t1, t2}.
    let existing = [ring(&[0, 1]), ring(&[0, 1])];
    println!("existing rings: r1 = r2 = {{t1, t2}}; goal: spend t3\n");

    // --- Solution 1: r3 = {t1, t3} — homogeneity attack ---
    let r3a = ring(&[0, 2]);
    let probe = probe_ring(&r3a, &universe);
    println!(
        "solution 1, r3 = {{t1, t3}}: homogeneity attack succeeds = {} (HT revealed: {:?})",
        probe.attack_succeeds(),
        probe.revealed_ht
    );

    // --- Solution 2: r3 = {t2, t3} — chain-reaction analysis ---
    let idx = RingIndex::from_rings(existing.iter().cloned().chain([ring(&[1, 2])]));
    let analysis = analyze(&idx, &[]);
    println!(
        "solution 2, r3 = {{t2, t3}}: chain reaction resolves r3's spend = {:?}",
        analysis.resolved(RsId(2))
    );

    // --- Solution 3: r3 = {t1, t2, t3, t4} — safe but size 4 ---
    let idx = RingIndex::from_rings(existing.iter().cloned().chain([ring(&[0, 1, 2, 3])]));
    let analysis = analyze(&idx, &[]);
    println!(
        "solution 3, r3 = {{t1..t4}}: resolved = {:?} (safe) but size = 4",
        analysis.resolved(RsId(2))
    );

    // --- DA-MS solution: r3 = {t3, t4} — safe and minimal ---
    let idx = RingIndex::from_rings(existing.iter().cloned().chain([ring(&[2, 3])]));
    let analysis = analyze(&idx, &[]);
    let probe = probe_ring(&ring(&[2, 3]), &universe);
    println!(
        "DA-MS solution, r3 = {{t3, t4}}: resolved = {:?}, homogeneous = {}, size = 2",
        analysis.resolved(RsId(2)),
        probe.attack_succeeds()
    );

    // --- Side information escalation (Definition 3 / Theorem 6.2) ---
    println!("\nside-information escalation on Example 2's rings:");
    let idx = RingIndex::from_rings([
        ring(&[1, 2, 5]),
        ring(&[1, 3]),
        ring(&[1, 3]),
        ring(&[2, 4]),
        ring(&[4, 5, 6]),
    ]);
    let a0 = analyze(&idx, &[]);
    println!("  no side info: {} rings resolved", a0.resolved_count());
    let a1 = analyze(&idx, &[TokenRsPair::new(TokenId(5), RsId(4))]);
    println!(
        "  after revealing <t5 spent in r5>: {} rings resolved ({:?} pinned to {:?})",
        a1.resolved_count(),
        RsId(3),
        a1.resolved(RsId(3))
    );
}
