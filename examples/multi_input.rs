//! Multi-input spending with MLSAG: one signature covers several inputs,
//! coupling their anonymity sets — and why that makes diversity-aware
//! selection matter even more.
//!
//! ```text
//! cargo run --release --example multi_input
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use dams_crypto::{sign_mlsag, verify_mlsag, KeyChain, SchnorrGroup};
use dams_diversity::{analyze, RingIndex, RingSet, RsId, TokenId, TokenRsPair};

fn main() {
    let group = SchnorrGroup::default();
    let mut rng = StdRng::seed_from_u64(11);

    // An HD wallet derives one-time keys for its two inputs.
    let wallet = KeyChain::from_passphrase(group, "demo wallet", 0);
    let my_keys = wallet.derive_range(2);

    // Ring matrix: 4 slots × 2 layers; our keys occupy slot 2.
    let decoys = KeyChain::from_passphrase(group, "the rest of the chain", 0);
    let matrix: Vec<Vec<_>> = (0..4)
        .map(|slot| {
            (0..2)
                .map(|layer| {
                    if slot == 2 {
                        my_keys[layer].public
                    } else {
                        decoys.derive((slot * 2 + layer) as u64).public
                    }
                })
                .collect()
        })
        .collect();

    let sig = sign_mlsag(&group, b"pay 2 inputs at once", &matrix, &my_keys, &mut rng)
        .expect("wallet keys occupy slot 2");
    println!(
        "MLSAG over a 4×2 key matrix: verifies = {}, {} key images published",
        verify_mlsag(&group, b"pay 2 inputs at once", &matrix, &sig),
        sig.key_images.len()
    );

    // The coupling consequence at the token layer: the two layers' rings
    // are slot-aligned. Resolving one layer resolves the other.
    let layer0 = RingSet::new([TokenId(0), TokenId(1), TokenId(2), TokenId(3)]);
    let layer1 = RingSet::new([TokenId(10), TokenId(11), TokenId(12), TokenId(13)]);
    let idx = RingIndex::from_rings([layer0, layer1]);

    let before = analyze(&idx, &[]);
    println!(
        "\nbefore any leak: layer0 candidates = {}, layer1 candidates = {}",
        before.candidates[&RsId(0)].len(),
        before.candidates[&RsId(1)].len()
    );

    // Side information pins layer0 to slot 2's token; MLSAG coupling lets
    // the adversary carry the slot index into layer1.
    let coupled = analyze(
        &idx,
        &[
            TokenRsPair::new(TokenId(2), RsId(0)),
            TokenRsPair::new(TokenId(12), RsId(1)), // slot-aligned inference
        ],
    );
    println!(
        "after one leak + coupling: layer0 → {:?}, layer1 → {:?}",
        coupled.resolved(RsId(0)).map(|t| t.0),
        coupled.resolved(RsId(1)).map(|t| t.0)
    );
    println!(
        "\nlesson: a multi-input transaction is only as anonymous as its \
         weakest layer — every layer's ring needs full DA-MS treatment"
    );
}
