//! Quickstart: generate a diversity-aware ring signature end-to-end.
//!
//! Mints a small economy on the blockchain substrate, selects mixins with
//! the Progressive algorithm under a recursive (c, ℓ)-diversity
//! requirement, signs with the linkable ring signature, and commits the
//! transaction on-chain.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use dams_core::{progressive, SelectionPolicy};
use dams_diversity::DiversityRequirement;
use dams_workload::{chainload::ChainWorkload, SyntheticConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // 1. Build a batch: 12 super RSs of 4-8 tokens plus 6 fresh tokens,
    //    with historical transactions assigned per the paper's normal
    //    model (σ = 6).
    let cfg = SyntheticConfig {
        num_super: 12,
        super_size: (4, 8),
        num_fresh: 6,
        sigma: 6.0,
        ht_model: None,
    };
    let instance = cfg.generate(&mut rng);
    println!(
        "batch: {} tokens, {} super RSs, {} fresh, {} distinct HTs",
        instance.universe.len(),
        instance.super_count(),
        instance.fresh_count(),
        instance.universe.distinct_hts()
    );

    // 2. Pick the token to spend and the privacy requirement.
    let target = dams_diversity::TokenId(3);
    let req = DiversityRequirement::new(1.0, 5);
    println!(
        "spending token {} under recursive ({}, {})-diversity",
        target.0, req.c, req.l
    );

    // 3. Select mixins with the Progressive algorithm (TM_P).
    let selection = progressive(&instance, target, SelectionPolicy::new(req))
        .expect("requirement is feasible on this batch");
    println!(
        "selected ring: {} tokens across {} modules ({} diversity checks)",
        selection.size(),
        selection.modules.len(),
        selection.stats.diversity_checks
    );

    // 4. Materialise the batch on a real chain and spend for real: sign
    //    with the bLSAG-style linkable ring signature, verify, commit.
    let mut chain = ChainWorkload::materialize(instance.universe.clone(), &mut rng);
    chain
        .spend(&selection.ring, target, req.c, req.l, &mut rng)
        .expect("signature verifies and no double spend");
    println!(
        "committed on-chain: height {}, {} tokens total, audit ok = {}",
        chain.chain.height(),
        chain.chain.token_count(),
        chain.chain.audit()
    );

    // 5. Spending the same token again is rejected by its key image.
    let again = chain.spend(&selection.ring, target, req.c, req.l, &mut rng);
    println!("double spend rejected: {}", again.is_err());
}
