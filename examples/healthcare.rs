//! Healthcare scenario (§1, §8): tokens are patient record-access grants;
//! a ring signature hides *which* patient's record a clinician touched.
//!
//! Runs a clinic week end-to-end on the blockchain substrate: grants are
//! minted per admission batch, accesses are committed as ring-signed
//! transactions selected by TM_P (the paper's recommendation for
//! latency-sensitive healthcare systems), and the TokenMagic batch list
//! bounds each access's mixin universe.
//!
//! ```text
//! cargo run --release --example healthcare
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use dams_blockchain::BatchList;
use dams_core::{progressive, Instance, ModularInstance, SelectionPolicy};
use dams_diversity::{analyze, DiversityRequirement, HtId, RingIndex, TokenId, TokenUniverse};
use dams_workload::chainload::ChainWorkload;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);

    // Admissions: 48 record-grants minted in 12 admission batches of 4
    // (each batch is one historical transaction).
    let grants = 48usize;
    let universe = TokenUniverse::new((0..grants).map(|i| HtId((i / 4) as u32)).collect());
    let mut chain = ChainWorkload::materialize(universe.clone(), &mut rng);
    println!(
        "clinic ledger: {} grants across {} admission batches, height {}",
        chain.chain.token_count(),
        universe.distinct_hts(),
        chain.chain.height()
    );

    // TokenMagic batching over the ledger (λ = 16 grants per batch).
    let batches = BatchList::build(&chain.chain, 16);
    println!(
        "TokenMagic batch list (λ = 16): {} batches, sizes {:?}",
        batches.batches().len(),
        batches
            .batches()
            .iter()
            .map(|b| b.tokens.len())
            .collect::<Vec<_>>()
    );

    // A week of accesses: clinicians touch records 0, 5, 9, 14 with TM_P
    // under recursive (1, 4)-diversity. Each committed ring joins the
    // history the next selection must respect.
    let req = DiversityRequirement::new(1.0, 4);
    let policy = SelectionPolicy::new(req);
    let mut committed = RingIndex::new();
    let mut claims = Vec::new();

    for &record in &[0u32, 5, 9, 14] {
        let instance = Instance::new(universe.clone(), committed.clone(), claims.clone());
        let modular = ModularInstance::decompose(&instance).expect("history stays laminar");
        let sel = progressive(&modular, TokenId(record), policy)
            .expect("clinic requirement is feasible");
        chain
            .spend(&sel.ring, TokenId(record), req.c, req.l, &mut rng)
            .expect("ring signature verifies on-chain");
        println!(
            "access to grant {record}: ring of {} grants committed (chain height {})",
            sel.size(),
            chain.chain.height()
        );
        committed.push(sel.ring);
        claims.push(req);
    }

    // Compliance audit: the hospital's public ledger leaks no access-to-
    // patient link, even though every transaction is publicly verifiable.
    let audit = analyze(&committed, &[]);
    println!(
        "\ncompliance audit: {} of {} accesses linkable; ledger audit ok = {}",
        audit.resolved_count(),
        committed.len(),
        chain.chain.audit()
    );
    assert_eq!(audit.resolved_count(), 0);
}
