//! Cryptocurrency scenario: transaction fees are proportional to ring
//! size, so a wallet wants the smallest eligible ring (§1, §7 summary —
//! "users can save transaction fee from using TM_G").
//!
//! Compares the fee bill of the four approaches over a day of wallet
//! activity on the simulated Monero snapshot, and shows the latency the
//! TM_G savings cost.
//!
//! ```text
//! cargo run --release --example fee_saver
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dams_core::{PracticalAlgorithm, SelectionPolicy, TokenMagic};
use dams_diversity::{DiversityRequirement, TokenId};
use dams_workload::monero_snapshot;

/// Fee model: a base fee plus a per-ring-member fee (abstract units).
fn fee(ring_size: usize) -> f64 {
    0.5 + 0.05 * ring_size as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let instance = monero_snapshot(&mut rng);
    let policy = SelectionPolicy::new(DiversityRequirement::new(0.6, 40));
    let spends = 25usize;

    println!(
        "wallet day: {spends} spends on the simulated Monero snapshot ({} tokens)\n",
        instance.universe.len()
    );
    println!("approach   mean_ring   total_fee   mean_latency");

    let mut fees: Vec<(&str, f64)> = Vec::new();
    for alg in [
        PracticalAlgorithm::Smallest,
        PracticalAlgorithm::Random,
        PracticalAlgorithm::Progressive,
        PracticalAlgorithm::GameTheoretic,
    ] {
        let tm = TokenMagic::new(alg, policy);
        let mut total_fee = 0.0;
        let mut total_size = 0usize;
        let mut total_micros = 0.0;
        let mut ok = 0usize;
        let mut inner = StdRng::seed_from_u64(7);
        for _ in 0..spends {
            let t = TokenId(inner.gen_range(0..instance.universe.len() as u32));
            let start = Instant::now();
            if let Ok(sel) = tm.select_for(&instance, t, &mut inner) {
                total_micros += start.elapsed().as_nanos() as f64 / 1000.0;
                total_fee += fee(sel.size());
                total_size += sel.size();
                ok += 1;
            }
        }
        println!(
            "{:<10} {:>9.1} {:>11.2} {:>11.0} µs",
            alg.label(),
            total_size as f64 / ok.max(1) as f64,
            total_fee,
            total_micros / ok.max(1) as f64
        );
        fees.push((alg.label(), total_fee));
    }

    let tm_g = fees.iter().find(|(l, _)| *l == "TM_G").expect("ran TM_G").1;
    let tm_r = fees.iter().find(|(l, _)| *l == "TM_R").expect("ran TM_R").1;
    println!(
        "\nTM_G saves {:.1}% of the fee bill vs the random baseline",
        (1.0 - tm_g / tm_r) * 100.0
    );
}
