//! E-voting scenario (§1, §7's "Summary of Results"): tokens are ballots,
//! a ring signature hides which voter cast a given vote.
//!
//! The paper recommends the Progressive algorithm (TM_P) for e-voting —
//! voters queue at a polling station, so *generation latency* matters more
//! than ring size. This example runs a polling-station day: a precinct
//! issues one ballot token per registered voter, voters cast votes with
//! TM_P under a per-voter diversity requirement, and a tally-time audit
//! confirms that chain-reaction analysis cannot link any vote to a voter.
//!
//! ```text
//! cargo run --release --example evoting
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

use dams_core::{
    progressive, Instance, ModularInstance, SelectionPolicy,
};
use dams_diversity::{
    analyze, DiversityRequirement, HtId, RingIndex, TokenId, TokenUniverse,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Registration: 120 voters across 30 registration batches (each batch
    // is one "historical transaction" — ballots issued together).
    let voters = 120usize;
    let batches = 30usize;
    let universe = TokenUniverse::new(
        (0..voters)
            .map(|i| HtId((i % batches) as u32))
            .collect(),
    );
    println!("precinct: {voters} ballots issued in {batches} registration batches");

    // Election day: voters arrive in random order; each casts a ballot
    // with TM_P under recursive (1, 6)-diversity.
    let req = DiversityRequirement::new(1.0, 6);
    let policy = SelectionPolicy::new(req);
    let mut order: Vec<u32> = (0..voters as u32).collect();
    order.shuffle(&mut rng);

    let mut committed = RingIndex::new();
    let mut claims = Vec::new();
    let mut total_micros = 0f64;
    let mut max_micros = 0f64;
    let mut cast = 0usize;
    let turnout = 40usize;

    for &voter in order.iter().take(turnout) {
        // Rebuild the modular view over the current history. Ballots in no
        // committed ring are fresh tokens; committed rings are supers.
        let instance = Instance::new(universe.clone(), committed.clone(), claims.clone());
        let Ok(modular) = ModularInstance::decompose(&instance) else {
            println!("history violated the practical configuration — halting");
            break;
        };
        let start = Instant::now();
        match progressive(&modular, TokenId(voter), policy) {
            Ok(sel) => {
                let micros = start.elapsed().as_nanos() as f64 / 1000.0;
                total_micros += micros;
                max_micros = max_micros.max(micros);
                committed.push(sel.ring);
                claims.push(req);
                cast += 1;
            }
            Err(e) => {
                println!("voter {voter}: cannot cast yet ({e}) — would relax requirement");
            }
        }
    }
    println!(
        "votes cast: {cast}/{turnout}; mean TM_P latency {:.0} µs, worst {:.0} µs",
        total_micros / cast.max(1) as f64,
        max_micros
    );
    // The paper's polling-station arithmetic: +100 ms per vote delays a
    // 1000-voter queue by over a minute — TM_P stays far below that.
    assert!(
        max_micros < 100_000.0,
        "TM_P latency must stay polling-station friendly"
    );

    // Tally-time audit: the public bulletin board (all rings) yields no
    // vote-voter link under chain-reaction analysis.
    let audit = analyze(&committed, &[]);
    println!(
        "audit: {} of {} rings resolvable by chain-reaction analysis",
        audit.resolved_count(),
        committed.len()
    );
    assert_eq!(audit.resolved_count(), 0, "no vote may be linkable");

    // Even a coercer who watched some voters (side information) learns
    // nothing beyond those voters.
    let some_pairs: Vec<_> = audit
        .candidates
        .keys()
        .take(2)
        .map(|&rs| {
            let t = committed
                .ring(rs)
                .tokens()
                .first()
                .copied()
                .expect("rings are non-empty");
            dams_diversity::TokenRsPair::new(t, rs)
        })
        .collect();
    let coerced = analyze(&committed, &some_pairs);
    println!(
        "coercion probe: revealing {} ballots resolves {} rings total",
        some_pairs.len(),
        coerced.resolved_count()
    );

    let _ = rng.gen::<u8>(); // keep rng used even when turnout covers all arms
}
