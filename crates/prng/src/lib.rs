//! # dams-prng
//!
//! Deterministic, dependency-free pseudo-randomness for the whole
//! workspace: a splitmix64 seed expander feeding an xoshiro256++ stream,
//! wrapped in the subset of the `rand` crate's API this repository uses
//! (`Rng`, `SeedableRng`, `rngs::StdRng`, `seq::SliceRandom`).
//!
//! The workspace aliases this crate as `rand`, which keeps every caller
//! hermetic: no crates-io download, and every stream replays exactly from
//! a `u64` seed — the property the fault-injection harness
//! (`dams-node::faults`) builds its replayable failure schedules on.
//!
//! Neither generator is cryptographic. The crypto crate's demonstration
//! Schnorr group is itself toy-sized, so a statistical PRNG is the right
//! fidelity; a production deployment would swap in an OS CSPRNG behind
//! the same `RngCore` seam.

/// The raw entropy source: one 64-bit output per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a 64-bit seed (the only seeding mode the repo uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// splitmix64 — Sebastiano Vigna's seed expander. One multiply-xorshift
/// pipeline per output; passes BigCrush despite its size. Used both as a
/// standalone stream and to key xoshiro256++ (its own state would be a
/// poor direct key: nearby seeds are correlated without expansion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

/// xoshiro256++ — the workspace's general-purpose generator (Blackman &
/// Vigna). 256 bits of state, period 2^256 − 1, and the `++` output
/// scrambler that clears the low-linear-complexity artifacts of the
/// plain xoshiro output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // All-zero state is the one forbidden point; splitmix64 maps no
        // seed to four zero outputs, so this cannot produce it.
        Xoshiro256PlusPlus {
            s: [
                sm.next_u64(),
                sm.next_u64(),
                sm.next_u64(),
                sm.next_u64(),
            ],
        }
    }
}

pub mod rngs {
    //! Named generators, mirroring `rand::rngs`.

    /// The workspace's standard generator (xoshiro256++ behind the
    /// `rand`-compatible name every call site already uses).
    pub type StdRng = super::Xoshiro256PlusPlus;
}

/// A type a generator can produce uniformly over its whole domain
/// (the `rand::distributions::Standard` role).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range `gen_range` accepts (half-open and inclusive integer ranges,
/// half-open float ranges).
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Lemire's multiply-shift: the bias is < 2^-64 relative for the
    // bounds this repo draws (all far below 2^64), which is beyond
    // anything the statistical tests can resolve.
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range: every output is in range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The ergonomic extension trait every call site imports (`rand::Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice helpers, mirroring `rand::seq`.

    use super::{uniform_below, RngCore};

    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle, deterministic per generator state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 1234567 from Vigna's C sources.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn streams_replay_from_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_uniform_and_empty() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1u8, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let r = &mut rng;
        assert!(takes_generic(r) < 100);
        assert!(takes_generic(&mut rngs::StdRng::seed_from_u64(2)) < 100);
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
