//! Full-node and light-node batch views (§4).
//!
//! Full nodes hold the whole chain and build the batch list locally; light
//! nodes hold nothing and query batch data from a full node. Because the
//! batch list is a deterministic function of the block list and the public
//! parameter λ, both views agree — the consensus property the paper relies
//! on to make mixin universes well-defined network-wide.

use dams_blockchain::{Batch, BatchList, Chain, TokenId};

/// What a light node can ask a full node.
pub trait BatchProvider {
    /// The batch containing `token`, if the token exists.
    fn batch_of(&self, token: TokenId) -> Option<Batch>;
    /// The mixin universe of `token` (the tokens of its batch).
    fn mixin_universe(&self, token: TokenId) -> Option<Vec<TokenId>>;
    /// Number of batches currently known.
    fn batch_count(&self) -> usize;
}

/// A full node: owns the chain and serves batch queries.
pub struct FullNode {
    chain: Chain,
    lambda: usize,
}

impl FullNode {
    pub fn new(chain: Chain, lambda: usize) -> Self {
        FullNode { chain, lambda }
    }

    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    pub fn chain_mut(&mut self) -> &mut Chain {
        &mut self.chain
    }

    /// Rebuild the batch list from local state.
    pub fn batch_list(&self) -> BatchList {
        BatchList::build(&self.chain, self.lambda)
    }
}

impl BatchProvider for FullNode {
    fn batch_of(&self, token: TokenId) -> Option<Batch> {
        self.batch_list().batch_of(token).cloned()
    }

    fn mixin_universe(&self, token: TokenId) -> Option<Vec<TokenId>> {
        self.batch_list().mixin_universe(token).map(<[_]>::to_vec)
    }

    fn batch_count(&self) -> usize {
        self.batch_list().batches().len()
    }
}

/// A light node: delegates every batch query to a provider (a full node,
/// in a real network a remote peer).
pub struct LightNode<'a, P: BatchProvider> {
    provider: &'a P,
}

impl<'a, P: BatchProvider> LightNode<'a, P> {
    pub fn new(provider: &'a P) -> Self {
        LightNode { provider }
    }

    /// The mixin universe for a spend, as served by the provider.
    pub fn mixin_universe(&self, token: TokenId) -> Option<Vec<TokenId>> {
        self.provider.mixin_universe(token)
    }

    /// Cross-check a served batch against the public λ invariants (a light
    /// node cannot recompute the list but can sanity-check what it gets).
    pub fn plausible(&self, batch: &Batch, lambda: usize) -> bool {
        (!batch.closed || batch.tokens.len() >= lambda)
            && batch.first_block <= batch.last_block
            && batch.tokens.windows(2).all(|w| w[0] < w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_blockchain::{Amount, TokenOutput};
    use dams_crypto::{KeyPair, SchnorrGroup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn node(blocks: usize, per_block: usize, lambda: usize) -> FullNode {
        let mut rng = StdRng::seed_from_u64(9);
        let mut chain = Chain::new(SchnorrGroup::default());
        for _ in 0..blocks {
            let outs = (0..per_block)
                .map(|_| TokenOutput {
                    owner: KeyPair::generate(chain.group(), &mut rng).public,
                    amount: Amount(1),
                })
                .collect();
            chain.submit_coinbase(outs);
            chain.seal_block().unwrap();
        }
        FullNode::new(chain, lambda)
    }

    #[test]
    fn light_node_sees_full_node_batches() {
        let full = node(6, 3, 7);
        let light = LightNode::new(&full);
        for t in 0..18u64 {
            let from_light = light.mixin_universe(TokenId(t));
            let from_full = full.batch_list().mixin_universe(TokenId(t)).map(<[_]>::to_vec);
            assert_eq!(from_light, from_full);
        }
    }

    #[test]
    fn served_batches_are_plausible() {
        let full = node(5, 4, 6);
        let light = LightNode::new(&full);
        for t in 0..20u64 {
            if let Some(b) = full.batch_of(TokenId(t)) {
                assert!(light.plausible(&b, 6), "{b:?}");
            }
        }
    }

    #[test]
    fn consensus_two_full_nodes_agree() {
        // Two nodes that saw the same blocks derive identical batch lists.
        let a = node(4, 5, 8);
        let b = node(4, 5, 8);
        assert_eq!(a.batch_list().batches(), b.batch_list().batches());
        assert_eq!(a.batch_count(), b.batch_count());
    }

    #[test]
    fn unknown_token_served_as_none() {
        let full = node(2, 2, 4);
        let light = LightNode::new(&full);
        assert!(light.mixin_universe(TokenId(999)).is_none());
    }
}
