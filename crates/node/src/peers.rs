//! Byzantine peer defense: scoring, rate limits, quarantine → ban
//! escalation, and equivocation proofs.
//!
//! PR 6's cluster survives *transport* faults (drops, corruption,
//! partitions) but trusts every well-formed frame. This layer defends the
//! protocol itself against peers that are live and well-encoded but
//! hostile:
//!
//! * **Attribution** — every frame arrives with a transport-level source
//!   (the simulated analogue of the TCP connection it came in on), and
//!   every block announcement carries a signed [`Attestation`] by its
//!   sender: `sig(origin ‖ height ‖ block-hash)` under the sender's
//!   registered identity key. Rejections name the peer, the offense, and
//!   the height.
//! * **Token buckets** — per-peer, per-frame-kind rate limits. A peer
//!   that exceeds its bucket has the frame dropped *before* any decode
//!   work and earns a [`Misbehavior::FloodExceeded`] record.
//! * **Severity-weighted scores** — each [`Misbehavior`] adds its
//!   severity to the peer's score. Scores decay every tick by a base
//!   rate plus seeded jitter (so replays are exact but thresholds are
//!   not phase-locked to the attack). Crossing the quarantine threshold
//!   silences the peer for a jittered window; crossing the ban threshold
//!   — or re-offending after a quarantine, or leaning on a quarantined
//!   connection — removes it for good.
//! * **Equivocation proofs** — two valid [`Attestation`]s by one origin
//!   for different blocks at one height are a self-authenticating
//!   [`EquivocationProof`]. The detecting node bans the equivocator,
//!   voids its staged blocks, and gossips the proof so every honest peer
//!   converges on the same verdict without trusting the reporter.
//! * **Staged adoption** — remote block announcements wait
//!   [`ClusterConfig::stage_ticks`] in a staging area before delivery,
//!   the equivocation-detection window: conflicting attestations arriving
//!   within it void each other, so an equivocator's blocks never reach an
//!   honest chain.
//! * **Per-block (c, ℓ) re-verification** — [`recheck_block_diversity`]
//!   re-checks every carried RS's claimed diversity against the
//!   receiver's own ledger before the block is staged, closing the gap
//!   the ring-poisoner drives through: `verify_block` checks signatures
//!   and key images, not claims.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dams_blockchain::{signature_from_bytes, signature_to_bytes, Block, Chain, TxId};
use dams_crypto::sha256::{sha256, Digest};
use dams_crypto::{KeyPair, PublicKey, RingSignature, SchnorrGroup};
use dams_diversity::{DiversityRequirement, HtId, RingSet, TokenUniverse};

use crate::obs::NodeMetrics;

/// Gossip-layer knobs, one struct so scenarios can tighten or relax the
/// defense uniformly. `Default` is what every stock cluster runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Blocks a single range request may stream — a lagging node recovers
    /// a long gap over several tip→request→serve rounds instead of one
    /// unbounded burst. Requests above the cap are refused whole and
    /// attributed as [`Misbehavior::RangeAbuse`].
    pub max_range_blocks: usize,
    /// Ticks a remote block announcement is staged before delivery — the
    /// equivocation-detection window. Must exceed the fault channel's
    /// worst-case delivery delay for conflicting announcements to meet.
    pub stage_ticks: u64,
    /// Peer score at which frames are silenced for a jittered window.
    pub quarantine_score: f64,
    /// Peer score at which the peer is removed for good.
    pub ban_score: f64,
    /// Base score decay per tick.
    pub decay_per_tick: f64,
    /// Seeded jitter added to each tick's decay, drawn from `[0, jitter)`.
    pub decay_jitter: f64,
    /// Base quarantine duration in ticks (a jitter of up to half this is
    /// added per sentence).
    pub quarantine_ticks: u64,
    /// Frames a quarantined peer may push at us before the quarantine
    /// escalates to a ban (a peer respecting backoff stays far below).
    pub quarantine_pressure: u64,
    /// Ticks an issued range request may go unanswered (while the
    /// claimed height fails to materialize) before it counts as a strike.
    pub range_timeout: u64,
    /// Consecutive unanswered-range strikes before a
    /// [`Misbehavior::StaleTipSpam`] record is filed.
    pub stale_tip_strikes: u32,
    /// Token bucket `(capacity, refill-per-tick)` for block frames.
    pub block_bucket: (f64, f64),
    /// Token bucket for tip announcements.
    pub tip_bucket: (f64, f64),
    /// Token bucket for range requests.
    pub range_bucket: (f64, f64),
    /// Token bucket for evidence and refusal frames.
    pub evidence_bucket: (f64, f64),
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            max_range_blocks: 16,
            stage_ticks: 8,
            quarantine_score: 60.0,
            ban_score: 120.0,
            decay_per_tick: 1.0,
            decay_jitter: 0.5,
            quarantine_ticks: 16,
            quarantine_pressure: 96,
            range_timeout: 10,
            stale_tip_strikes: 2,
            // Capacities leave honest bursts (a 16-block range serve plus
            // duplicated copies) comfortable headroom; sustained floods
            // drain them within a tick or two.
            block_bucket: (48.0, 6.0),
            tip_bucket: (8.0, 1.0),
            range_bucket: (8.0, 1.0),
            evidence_bucket: (8.0, 1.0),
        }
    }
}

/// Frame-kind index into the per-peer token buckets.
pub const FK_BLOCK: usize = 0;
pub const FK_TIP: usize = 1;
pub const FK_RANGE: usize = 2;
pub const FK_EVIDENCE: usize = 3;
const FK_COUNT: usize = 4;

/// A typed, attributable offense. Severity is what it adds to the peer's
/// score; equivocation and diversity violations are protocol betrayals
/// and ban instantly, the rest accumulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Misbehavior {
    /// Two valid signed attestations for different blocks at one height.
    Equivocation { height: u64 },
    /// An announced block carried an RS whose claimed (c, ℓ)-diversity
    /// fails re-verification against the receiver's ledger.
    DiversityViolation { height: u64 },
    /// A frame-kind token bucket ran dry (at most one record per tick).
    FloodExceeded { kind: usize },
    /// A range request asked for more blocks than the advertised cap.
    RangeAbuse { requested: u64, cap: u64 },
    /// Advertised tips that repeatedly failed to materialize when pulled.
    StaleTipSpam { height: u64 },
}

impl Misbehavior {
    /// Score this offense adds.
    pub fn severity(&self) -> f64 {
        match self {
            Misbehavior::Equivocation { .. } | Misbehavior::DiversityViolation { .. } => 1000.0,
            Misbehavior::RangeAbuse { .. } | Misbehavior::StaleTipSpam { .. } => 50.0,
            Misbehavior::FloodExceeded { .. } => 20.0,
        }
    }

    /// Short stable label for reports and labeled metrics.
    pub fn label(&self) -> &'static str {
        match self {
            Misbehavior::Equivocation { .. } => "equivocation",
            Misbehavior::DiversityViolation { .. } => "diversity_violation",
            Misbehavior::FloodExceeded { .. } => "flood_exceeded",
            Misbehavior::RangeAbuse { .. } => "range_abuse",
            Misbehavior::StaleTipSpam { .. } => "stale_tip_spam",
        }
    }
}

impl std::fmt::Display for Misbehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Misbehavior::Equivocation { height } => {
                write!(f, "equivocation at height {height}")
            }
            Misbehavior::DiversityViolation { height } => {
                write!(f, "(c, l)-diversity violation in block at height {height}")
            }
            Misbehavior::FloodExceeded { kind } => write!(f, "flood on frame kind {kind}"),
            Misbehavior::RangeAbuse { requested, cap } => {
                write!(f, "range request for {requested} blocks over cap {cap}")
            }
            Misbehavior::StaleTipSpam { height } => {
                write!(f, "advertised tip at height {height} never materialized")
            }
        }
    }
}

/// One filed offense: which peer, what, when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MisbehaviorRecord {
    pub peer: usize,
    pub offense: Misbehavior,
    pub tick: u64,
}

/// A peer's current standing with one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Standing {
    Good,
    Quarantined { until: u64 },
    Banned,
}

/// A signed claim "peer `origin` vouches for block `hash` at `height`".
/// The signature is a ring signature with a one-key ring — a plain
/// Schnorr-style signature under the origin's registered identity key —
/// over the domain-separated message `dams-attest-v1 ‖ origin ‖ height ‖
/// hash`. Two of these by one origin at one height with different hashes
/// are an unforgeable equivocation proof.
#[derive(Debug, Clone, PartialEq)]
pub struct Attestation {
    pub origin: u64,
    pub height: u64,
    pub hash: Digest,
    pub sig: RingSignature,
}

fn attest_msg(origin: u64, height: u64, hash: &Digest) -> Vec<u8> {
    let mut m = Vec::with_capacity(14 + 16 + 32);
    m.extend_from_slice(b"dams-attest-v1");
    m.extend_from_slice(&origin.to_le_bytes());
    m.extend_from_slice(&height.to_le_bytes());
    m.extend_from_slice(hash);
    m
}

impl Attestation {
    /// Sign an attestation under `identity` (a one-key ring signature).
    pub fn sign<R: Rng + ?Sized>(
        group: &SchnorrGroup,
        origin: u64,
        height: u64,
        hash: Digest,
        identity: &KeyPair,
        rng: &mut R,
    ) -> Option<Self> {
        let msg = attest_msg(origin, height, &hash);
        let sig = dams_crypto::sign(group, &msg, &[identity.public], identity, rng).ok()?;
        Some(Attestation {
            origin,
            height,
            hash,
            sig,
        })
    }

    /// Verify against the registered identity key of `self.origin`.
    pub fn verify(&self, group: &SchnorrGroup, directory: &[PublicKey]) -> bool {
        let Some(pk) = directory.get(self.origin as usize) else {
            return false;
        };
        let msg = attest_msg(self.origin, self.height, &self.hash);
        dams_crypto::verify(group, &msg, &[*pk], &self.sig)
    }

    /// Wire layout: `origin u64 ‖ height u64 ‖ hash[32] ‖ sig_len u16 ‖
    /// sig`. Deterministic, so an attestation's bytes double as its
    /// identity.
    pub fn to_bytes(&self) -> Vec<u8> {
        let sig = signature_to_bytes(&self.sig);
        let mut out = Vec::with_capacity(8 + 8 + 32 + 2 + sig.len());
        out.extend_from_slice(&self.origin.to_le_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        out.extend_from_slice(&self.hash);
        out.extend_from_slice(&(sig.len() as u16).to_le_bytes());
        out.extend_from_slice(&sig);
        out
    }

    /// Decode one attestation from the front of `buf`; returns it and the
    /// number of bytes consumed. `None` on any structural problem — this
    /// is a fuzz-target path and must never panic.
    pub fn decode(group: &SchnorrGroup, buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < 50 {
            return None;
        }
        let origin = u64::from_le_bytes(buf[..8].try_into().ok()?);
        let height = u64::from_le_bytes(buf[8..16].try_into().ok()?);
        let hash: Digest = buf[16..48].try_into().ok()?;
        let sig_len = u16::from_le_bytes(buf[48..50].try_into().ok()?) as usize;
        let end = 50usize.checked_add(sig_len)?;
        if buf.len() < end {
            return None;
        }
        let sig = signature_from_bytes(group, &buf[50..end]).ok()?;
        Some((
            Attestation {
                origin,
                height,
                hash,
                sig,
            },
            end,
        ))
    }
}

/// Two conflicting attestations by one origin at one height — the
/// self-authenticating evidence every honest peer can verify locally.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivocationProof {
    pub a: Attestation,
    pub b: Attestation,
}

impl EquivocationProof {
    pub fn accused(&self) -> u64 {
        self.a.origin
    }

    pub fn height(&self) -> u64 {
        self.a.height
    }

    /// Structural + cryptographic validity: same origin, same height,
    /// different hashes, both signatures good under the accused's key.
    /// This is what stops a Byzantine peer from framing an honest one —
    /// a fabricated proof needs two signatures only the accused can make.
    pub fn verify(&self, group: &SchnorrGroup, directory: &[PublicKey]) -> bool {
        self.a.origin == self.b.origin
            && self.a.height == self.b.height
            && self.a.hash != self.b.hash
            && self.a.verify(group, directory)
            && self.b.verify(group, directory)
    }

    /// Wire layout: the two attestation encodings back to back.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.a.to_bytes();
        out.extend_from_slice(&self.b.to_bytes());
        out
    }

    /// Decode a proof; `None` on anything malformed (fuzz-target path).
    pub fn from_bytes(group: &SchnorrGroup, buf: &[u8]) -> Option<Self> {
        let (a, used) = Attestation::decode(group, buf)?;
        let (b, used_b) = Attestation::decode(group, &buf[used..])?;
        if used + used_b != buf.len() {
            return None;
        }
        Some(EquivocationProof { a, b })
    }

    /// Dedup key for the re-gossip set.
    pub fn id(&self) -> Digest {
        sha256(&self.to_bytes())
    }
}

/// Re-verify the claimed (c, ℓ)-diversity of every RS carried by `block`
/// against the receiver's own ledger — the per-block, adoption-time twin
/// of [`dams_store::recheck_immutability`]. The HT of a token is its
/// origin transaction (the auditor's reconstruction); claims with
/// `ℓ < 1` or `c ≤ 0` assert nothing and are skipped, as are rings
/// naming tokens the receiver has not seen (structural verification
/// rejects those anyway). Returns the height of the offending block on
/// the first violated claim.
pub fn recheck_block_diversity(chain: &Chain, block: &Block) -> Result<(), u64> {
    if block
        .transactions
        .iter()
        .all(|ct| ct.tx.inputs.is_empty())
    {
        return Ok(());
    }
    let mut ht_ids: HashMap<TxId, u32> = HashMap::new();
    let mut ht_of = Vec::with_capacity(chain.token_count());
    for i in 0..chain.token_count() as u64 {
        let next = ht_ids.len() as u32;
        let id = match chain.token(dams_blockchain::TokenId(i)) {
            Some(rec) => *ht_ids.entry(rec.origin).or_insert(next),
            None => next,
        };
        ht_of.push(HtId(id));
    }
    let universe = TokenUniverse::new(ht_of);
    for ct in &block.transactions {
        for input in &ct.tx.inputs {
            if input.claimed_l < 1 || input.claimed_c <= 0.0 {
                continue;
            }
            if input.ring.iter().any(|t| chain.token(*t).is_none()) {
                continue;
            }
            let ring = RingSet::new(
                input
                    .ring
                    .iter()
                    .map(|t| dams_diversity::TokenId(t.0 as u32)),
            );
            let req = DiversityRequirement::new(input.claimed_c, input.claimed_l);
            if !req.satisfied_by_ring(&ring, &universe) {
                return Err(block.header.height.0);
            }
        }
    }
    Ok(())
}

/// A block parked in the staging window, waiting out the
/// equivocation-detection delay.
#[derive(Debug, Clone)]
struct Staged {
    origin: usize,
    release_at: u64,
    block: Block,
}

/// An issued range request we are watching for withholding.
#[derive(Debug, Clone, Copy)]
struct PendingRange {
    peer: usize,
    claimed_height: u64,
    issued_at: u64,
    served: bool,
}

struct PeerState {
    score: f64,
    standing: Standing,
    was_quarantined: bool,
    buckets: [f64; FK_COUNT],
    /// Last tick a flood record was filed (dedup to one per tick).
    last_flood: Option<u64>,
    /// Frames pushed at us while quarantined.
    pressure: u64,
    /// Consecutive unanswered-range strikes.
    stale_strikes: u32,
    /// height → (hash, encoded attestation) of blocks this peer attested.
    attested: HashMap<u64, (Digest, Vec<u8>)>,
}

impl PeerState {
    fn new(cfg: &ClusterConfig) -> Self {
        PeerState {
            score: 0.0,
            standing: Standing::Good,
            was_quarantined: false,
            buckets: [
                cfg.block_bucket.0,
                cfg.tip_bucket.0,
                cfg.range_bucket.0,
                cfg.evidence_bucket.0,
            ],
            last_flood: None,
            pressure: 0,
            stale_strikes: 0,
            attested: HashMap::new(),
        }
    }
}

/// What intake decided about a frame before any decode work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intake {
    /// Process the frame.
    Allow,
    /// Drop it: the peer is banned, quarantined, or over its rate limit.
    Drop,
}

/// One node's view of its peers: scores, standings, staged blocks,
/// attestations, and known equivocation proofs. Each honest replica owns
/// one; verdict convergence across replicas comes from proof gossip, not
/// shared state.
pub struct PeerDefense {
    id: usize,
    cfg: ClusterConfig,
    group: SchnorrGroup,
    directory: Vec<PublicKey>,
    peers: Vec<PeerState>,
    rng: StdRng,
    now: u64,
    records: Vec<MisbehaviorRecord>,
    staged: Vec<Staged>,
    pending: Vec<PendingRange>,
    proofs: Vec<(Digest, EquivocationProof)>,
}

impl PeerDefense {
    /// A defense table for node `id` over `directory.len()` peers.
    /// Jitter draws come from `seed` (callers derive it from the cluster
    /// seed and the node id so every replica's decay schedule differs but
    /// replays exactly).
    pub fn new(
        id: usize,
        group: SchnorrGroup,
        directory: Vec<PublicKey>,
        cfg: ClusterConfig,
        seed: u64,
    ) -> Self {
        let peers = (0..directory.len()).map(|_| PeerState::new(&cfg)).collect();
        PeerDefense {
            id,
            cfg,
            group,
            directory,
            peers,
            rng: StdRng::seed_from_u64(seed),
            now: 0,
            records: Vec::new(),
            staged: Vec::new(),
            pending: Vec::new(),
            proofs: Vec::new(),
        }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn directory(&self) -> &[PublicKey] {
        &self.directory
    }

    pub fn standing(&self, peer: usize) -> Standing {
        self.peers
            .get(peer)
            .map_or(Standing::Good, |p| p.standing)
    }

    pub fn is_banned(&self, peer: usize) -> bool {
        matches!(self.standing(peer), Standing::Banned)
    }

    /// Peers currently banned.
    pub fn banned_peers(&self) -> Vec<usize> {
        (0..self.peers.len())
            .filter(|&p| self.is_banned(p))
            .collect()
    }

    /// Every offense filed so far, in filing order.
    pub fn records(&self) -> &[MisbehaviorRecord] {
        &self.records
    }

    /// Known equivocation proofs (for anti-entropy re-gossip).
    pub fn proofs(&self) -> impl Iterator<Item = &EquivocationProof> {
        self.proofs.iter().map(|(_, p)| p)
    }

    /// Blocks currently staged (tests and reports).
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Advance the defense clock: refill buckets, decay scores with
    /// seeded jitter, expire quarantines, and time out watched range
    /// requests (filing [`Misbehavior::StaleTipSpam`] after the
    /// configured strikes). `local_height` clears claims that did
    /// materialize — however they arrived.
    pub fn on_tick(&mut self, now: u64, local_height: u64) {
        self.now = now;
        let refills = [
            self.cfg.block_bucket,
            self.cfg.tip_bucket,
            self.cfg.range_bucket,
            self.cfg.evidence_bucket,
        ];
        for p in &mut self.peers {
            for (k, (cap, refill)) in refills.iter().enumerate() {
                p.buckets[k] = (p.buckets[k] + refill).min(*cap);
            }
            let jitter = self.rng.gen_range(0.0..self.cfg.decay_jitter.max(f64::MIN_POSITIVE));
            p.score = (p.score - self.cfg.decay_per_tick - jitter).max(0.0);
            if let Standing::Quarantined { until } = p.standing {
                if now >= until {
                    p.standing = Standing::Good;
                    p.pressure = 0;
                }
            }
        }

        // Range-watch expiry: a pending whose claimed height materialized
        // (from anywhere) clears its peer's strike streak; one that timed
        // out unserved is a strike.
        let timeout = self.cfg.range_timeout;
        let strikes_needed = self.cfg.stale_tip_strikes.max(1);
        let mut expired: Vec<PendingRange> = Vec::new();
        self.pending.retain(|w| {
            if w.served || local_height >= w.claimed_height {
                if let Some(p) = self.peers.get_mut(w.peer) {
                    p.stale_strikes = 0;
                }
                return false;
            }
            if now.saturating_sub(w.issued_at) > timeout {
                expired.push(*w);
                return false;
            }
            true
        });
        for w in expired {
            let strikes = {
                let Some(p) = self.peers.get_mut(w.peer) else {
                    continue;
                };
                p.stale_strikes += 1;
                p.stale_strikes
            };
            if strikes >= strikes_needed {
                if let Some(p) = self.peers.get_mut(w.peer) {
                    p.stale_strikes = 0;
                }
                self.record(
                    w.peer,
                    Misbehavior::StaleTipSpam {
                        height: w.claimed_height,
                    },
                );
            }
        }
    }

    /// Transport-level admission: banned and quarantined peers are
    /// silenced (quarantined ones accumulate pressure toward a ban), and
    /// each frame kind debits its token bucket. Runs before any decode.
    pub fn intake(&mut self, src: usize, kind: usize) -> Intake {
        let metrics = NodeMetrics::global();
        let Some(state) = self.peers.get_mut(src) else {
            return Intake::Drop;
        };
        match state.standing {
            Standing::Banned => {
                metrics.peers_frames_dropped.inc();
                return Intake::Drop;
            }
            Standing::Quarantined { .. } => {
                state.pressure += 1;
                metrics.peers_frames_dropped.inc();
                if state.pressure >= self.cfg.quarantine_pressure {
                    self.ban(src);
                }
                return Intake::Drop;
            }
            Standing::Good => {}
        }
        let bucket = &mut state.buckets[kind.min(FK_COUNT - 1)];
        if *bucket >= 1.0 {
            *bucket -= 1.0;
            return Intake::Allow;
        }
        metrics.peers_frames_dropped.inc();
        if state.last_flood != Some(self.now) {
            state.last_flood = Some(self.now);
            self.record(src, Misbehavior::FloodExceeded { kind });
        }
        Intake::Drop
    }

    /// File an offense: push the record, bump the score, and escalate.
    /// Quarantine → ban escalation is sticky: a peer that re-offends
    /// after (or during) a quarantine is banned outright.
    pub fn record(&mut self, peer: usize, offense: Misbehavior) -> Standing {
        let tick = self.now;
        let metrics = NodeMetrics::global();
        metrics.peers_misbehavior.inc();
        dams_obs::global()
            .counter_labeled("node.peers.misbehavior_total", "node", &self.id.to_string())
            .inc();
        dams_obs::global()
            .counter_labeled("node.peers.offense_total", "offense", offense.label())
            .inc();
        self.records.push(MisbehaviorRecord {
            peer,
            offense,
            tick,
        });
        let Some(state) = self.peers.get_mut(peer) else {
            return Standing::Good;
        };
        if state.standing == Standing::Banned {
            return Standing::Banned;
        }
        state.score += offense.severity();
        let escalate_ban = state.score >= self.cfg.ban_score
            || state.was_quarantined
            || matches!(state.standing, Standing::Quarantined { .. });
        if escalate_ban {
            self.ban(peer);
            return Standing::Banned;
        }
        if state.score >= self.cfg.quarantine_score {
            let jitter = self.rng.gen_range(0..=self.cfg.quarantine_ticks / 2);
            let until = self.now + self.cfg.quarantine_ticks + jitter;
            state.standing = Standing::Quarantined { until };
            state.was_quarantined = true;
            NodeMetrics::global().peers_quarantined.inc();
            return state.standing;
        }
        state.standing
    }

    fn ban(&mut self, peer: usize) {
        let Some(state) = self.peers.get_mut(peer) else {
            return;
        };
        if state.standing == Standing::Banned {
            return;
        }
        state.standing = Standing::Banned;
        NodeMetrics::global().peers_banned.inc();
        dams_obs::global()
            .counter_labeled("node.peers.banned_total", "node", &self.id.to_string())
            .inc();
        // A banned origin's staged blocks are void.
        self.staged.retain(|s| s.origin != peer);
        self.pending.retain(|w| w.peer != peer);
    }

    /// Watch a tip claim: returns whether a range request to `src` should
    /// be issued (one outstanding per peer, never to silenced peers) and
    /// registers the watch.
    pub fn watch_tip(&mut self, src: usize, claimed_height: u64) -> bool {
        if !matches!(self.standing(src), Standing::Good) {
            return false;
        }
        if self.pending.iter().any(|w| w.peer == src) {
            return false;
        }
        self.pending.push(PendingRange {
            peer: src,
            claimed_height,
            issued_at: self.now,
            served: false,
        });
        true
    }

    /// Note a block frame from `src` (it is serving *something*): clears
    /// its unanswered-range watches and strike streak.
    pub fn note_block_from(&mut self, src: usize) {
        for w in &mut self.pending {
            if w.peer == src {
                w.served = true;
            }
        }
        if let Some(p) = self.peers.get_mut(src) {
            p.stale_strikes = 0;
        }
    }

    /// Record a verified attestation. Returns an [`EquivocationProof`]
    /// when it conflicts with one already on file for the same origin and
    /// height — the caller bans the origin and gossips the proof.
    pub fn observe_attestation(&mut self, att: &Attestation) -> Option<EquivocationProof> {
        let origin = att.origin as usize;
        let state = self.peers.get_mut(origin)?;
        match state.attested.get(&att.height) {
            Some((hash, prior_bytes)) if *hash != att.hash => {
                let (prior, _) = Attestation::decode(&self.group, prior_bytes)?;
                Some(EquivocationProof {
                    a: prior,
                    b: att.clone(),
                })
            }
            Some(_) => None,
            None => {
                state
                    .attested
                    .insert(att.height, (att.hash, att.to_bytes()));
                None
            }
        }
    }

    /// Accept an equivocation proof (locally detected or gossiped):
    /// verify it, ban the accused, and remember it for re-gossip. Returns
    /// `false` for invalid or already-known proofs.
    pub fn apply_proof(&mut self, proof: &EquivocationProof) -> bool {
        if !proof.verify(&self.group, &self.directory) {
            return false;
        }
        let id = proof.id();
        if self.proofs.iter().any(|(known, _)| *known == id) {
            return false;
        }
        self.proofs.push((id, proof.clone()));
        let accused = proof.accused() as usize;
        if !self.is_banned(accused) {
            self.record(
                accused,
                Misbehavior::Equivocation {
                    height: proof.height(),
                },
            );
            // Equivocation severity crosses the ban threshold, but be
            // explicit: a proof is terminal.
            self.ban(accused);
        }
        true
    }

    /// Park a block in the staging window.
    pub fn stage(&mut self, origin: usize, block: Block) {
        self.staged.push(Staged {
            origin,
            release_at: self.now + self.cfg.stage_ticks,
            block,
        });
    }

    /// Whether a block with this hash is already staged (announce dedup).
    pub fn is_staged(&self, hash: &Digest) -> bool {
        self.staged.iter().any(|s| s.block.hash() == *hash)
    }

    /// Blocks whose staging window elapsed, ready for delivery, each with
    /// the peer that announced it (the release-time diversity recheck
    /// attributes to it). Blocks from since-silenced origins were already
    /// voided.
    pub fn release_staged(&mut self) -> Vec<(usize, Block)> {
        let now = self.now;
        let mut out = Vec::new();
        self.staged.retain(|s| {
            if s.release_at <= now {
                out.push((s.origin, s.block.clone()));
                false
            } else {
                true
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identities(group: &SchnorrGroup, n: usize, seed: u64) -> Vec<KeyPair> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| KeyPair::generate(group, &mut rng)).collect()
    }

    fn defense(n: usize) -> (PeerDefense, Vec<KeyPair>, SchnorrGroup) {
        let group = SchnorrGroup::default();
        let ids = identities(&group, n, 7);
        let dir: Vec<PublicKey> = ids.iter().map(|k| k.public).collect();
        (
            PeerDefense::new(0, group, dir, ClusterConfig::default(), 99),
            ids,
            group,
        )
    }

    #[test]
    fn attestation_roundtrip_and_verify() {
        let (_, ids, group) = defense(3);
        let mut rng = StdRng::seed_from_u64(1);
        let att =
            Attestation::sign(&group, 1, 5, [7u8; 32], &ids[1], &mut rng).unwrap();
        assert!(att.verify(&group, &ids.iter().map(|k| k.public).collect::<Vec<_>>()));
        let bytes = att.to_bytes();
        let (back, used) = Attestation::decode(&group, &bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, att);
        // Signed by the wrong identity → fails against the directory.
        let forged =
            Attestation::sign(&group, 1, 5, [7u8; 32], &ids[2], &mut rng).unwrap();
        assert!(!forged.verify(&group, &ids.iter().map(|k| k.public).collect::<Vec<_>>()));
    }

    #[test]
    fn conflicting_attestations_build_a_verifiable_proof() {
        let (mut d, ids, group) = defense(3);
        let dir: Vec<PublicKey> = ids.iter().map(|k| k.public).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let a = Attestation::sign(&group, 2, 4, [1u8; 32], &ids[2], &mut rng).unwrap();
        let b = Attestation::sign(&group, 2, 4, [2u8; 32], &ids[2], &mut rng).unwrap();
        assert!(d.observe_attestation(&a).is_none());
        let proof = d.observe_attestation(&b).expect("conflict must surface");
        assert!(proof.verify(&group, &dir));
        assert_eq!(proof.accused(), 2);
        assert!(d.apply_proof(&proof));
        assert!(d.is_banned(2));
        assert!(!d.apply_proof(&proof), "known proofs are deduped");
        // A framed proof (two different heights) never verifies.
        let c = Attestation::sign(&group, 2, 5, [3u8; 32], &ids[2], &mut rng).unwrap();
        let bad = EquivocationProof { a: a.clone(), b: c };
        assert!(!bad.verify(&group, &dir));
    }

    #[test]
    fn proof_decode_rejects_mangled_bytes() {
        let (_, ids, group) = defense(2);
        let mut rng = StdRng::seed_from_u64(3);
        let a = Attestation::sign(&group, 1, 2, [4u8; 32], &ids[1], &mut rng).unwrap();
        let b = Attestation::sign(&group, 1, 2, [5u8; 32], &ids[1], &mut rng).unwrap();
        let proof = EquivocationProof { a, b };
        let bytes = proof.to_bytes();
        assert_eq!(EquivocationProof::from_bytes(&group, &bytes), Some(proof));
        assert!(EquivocationProof::from_bytes(&group, &bytes[..bytes.len() - 1]).is_none());
        assert!(EquivocationProof::from_bytes(&group, &[]).is_none());
    }

    #[test]
    fn flood_drains_bucket_and_records_once_per_tick() {
        let (mut d, _, _) = defense(2);
        d.on_tick(1, 0);
        let cap = ClusterConfig::default().tip_bucket.0 as usize;
        for _ in 0..cap {
            assert_eq!(d.intake(1, FK_TIP), Intake::Allow);
        }
        assert_eq!(d.intake(1, FK_TIP), Intake::Drop);
        assert_eq!(d.intake(1, FK_TIP), Intake::Drop);
        let floods = d
            .records()
            .iter()
            .filter(|r| matches!(r.offense, Misbehavior::FloodExceeded { .. }))
            .count();
        assert_eq!(floods, 1, "one flood record per tick");
    }

    #[test]
    fn scores_decay_and_escalation_is_sticky() {
        let (mut d, _, _) = defense(2);
        d.on_tick(1, 0);
        assert_eq!(
            d.record(1, Misbehavior::RangeAbuse { requested: 99, cap: 16 }),
            Standing::Good
        );
        // Second offense crosses quarantine.
        let s = d.record(1, Misbehavior::RangeAbuse { requested: 99, cap: 16 });
        assert!(matches!(s, Standing::Quarantined { .. }), "{s:?}");
        // Long quiet: quarantine expires and the score decays away.
        for t in 2..200 {
            d.on_tick(t, 0);
        }
        assert_eq!(d.standing(1), Standing::Good);
        // But the next offense bans: quarantine → ban is sticky.
        assert_eq!(
            d.record(1, Misbehavior::FloodExceeded { kind: FK_TIP }),
            Standing::Banned
        );
    }

    #[test]
    fn quarantine_pressure_escalates_to_ban() {
        let (mut d, _, _) = defense(2);
        d.on_tick(1, 0);
        d.record(1, Misbehavior::RangeAbuse { requested: 99, cap: 16 });
        d.record(1, Misbehavior::RangeAbuse { requested: 99, cap: 16 });
        assert!(matches!(d.standing(1), Standing::Quarantined { .. }));
        let pressure = ClusterConfig::default().quarantine_pressure;
        for _ in 0..pressure {
            assert_eq!(d.intake(1, FK_TIP), Intake::Drop);
        }
        assert_eq!(d.standing(1), Standing::Banned);
    }

    #[test]
    fn unanswered_range_watches_strike_into_stale_tip_spam() {
        let (mut d, _, _) = defense(2);
        let cfg = ClusterConfig::default();
        let mut now = 1;
        d.on_tick(now, 3);
        assert!(d.watch_tip(1, 50));
        assert!(!d.watch_tip(1, 50), "one outstanding watch per peer");
        // Strike 1.
        for _ in 0..=cfg.range_timeout + 1 {
            now += 1;
            d.on_tick(now, 3);
        }
        assert!(d.records().is_empty(), "first strike is not yet an offense");
        // Strike 2 → record.
        assert!(d.watch_tip(1, 50));
        for _ in 0..=cfg.range_timeout + 1 {
            now += 1;
            d.on_tick(now, 3);
        }
        assert!(
            d.records()
                .iter()
                .any(|r| matches!(r.offense, Misbehavior::StaleTipSpam { height: 50 })),
            "{:?}",
            d.records()
        );
        // A served watch never strikes.
        assert!(d.watch_tip(0, 50));
        d.note_block_from(0);
        for _ in 0..=cfg.range_timeout + 1 {
            now += 1;
            d.on_tick(now, 3);
        }
        assert!(d
            .records()
            .iter()
            .all(|r| r.peer != 0), "{:?}", d.records());
    }

    #[test]
    fn staging_holds_and_releases_blocks() {
        let (mut d, _, group) = defense(2);
        let chain = Chain::new(group);
        let genesis = chain.blocks()[0].clone();
        d.on_tick(1, 0);
        d.stage(1, genesis.clone());
        assert!(d.is_staged(&genesis.hash()));
        assert!(d.release_staged().is_empty(), "window not yet elapsed");
        let release = ClusterConfig::default().stage_ticks;
        d.on_tick(1 + release, 0);
        assert_eq!(d.release_staged().len(), 1);
        // A banned origin's staged blocks are voided.
        d.stage(1, genesis.clone());
        d.record(1, Misbehavior::Equivocation { height: 1 });
        assert!(d.is_banned(1));
        d.on_tick(1 + 2 * release, 0);
        assert!(d.release_staged().is_empty(), "voided with the ban");
    }

    #[test]
    fn severities_rank_betrayals_over_noise() {
        assert!(
            Misbehavior::Equivocation { height: 1 }.severity()
                >= ClusterConfig::default().ban_score
        );
        assert!(
            Misbehavior::DiversityViolation { height: 1 }.severity()
                >= ClusterConfig::default().ban_score
        );
        assert!(
            Misbehavior::FloodExceeded { kind: FK_TIP }.severity()
                < ClusterConfig::default().quarantine_score
        );
    }
}
