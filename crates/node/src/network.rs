//! An in-process network simulation: nodes exchange blocks through a lossy
//! message bus, replay them locally, and converge on identical chain state
//! and TokenMagic batch lists — §4's consensus argument ("users have a
//! consensus about the block list ... users can have a consensus about
//! the batch list too") as an executable property.
//!
//! The node layer is panic-free and resource-bounded: the inbox and the
//! orphan pool have hard capacities with TTL eviction, missing parents are
//! re-requested under exponential backoff, and every failure surfaces as a
//! typed [`NodeError`] instead of crashing the replica. The deterministic
//! adversary exercising all of this lives in [`crate::faults`].

use std::collections::VecDeque;

use dams_blockchain::{block_to_bytes, decode_block, BatchList, Block, Chain, NoConfiguration};
use dams_core::DiversityIndex;
use dams_crypto::sha256::Digest;
use dams_crypto::SchnorrGroup;
use dams_store::{Backend, Recovered, RecoveryReport, Store, StoreConfig, StoreError};

use crate::error::NodeError;
use crate::indexing::{block_delta, index_of_chain};
use crate::obs::NodeMetrics;

/// A network message: one block, addressed to everyone (gossip).
#[derive(Debug, Clone)]
pub struct BlockAnnouncement {
    pub block: Block,
}

/// Resource bounds of a node: how much out-of-order traffic it buffers
/// before applying back-pressure, and how patiently it waits for parents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLimits {
    /// Maximum queued announcements; beyond this, `deliver` rejects.
    pub inbox_capacity: usize,
    /// Maximum parked orphan blocks; beyond this, the oldest is evicted.
    pub orphan_capacity: usize,
    /// Ticks (inbox-processing rounds) an orphan may wait for its parent
    /// before being evicted.
    pub orphan_ttl: u64,
    /// Parent re-request attempts before giving up on an orphan's
    /// ancestry (the orphan itself still waits out its TTL).
    pub max_parent_retries: u32,
}

impl Default for NodeLimits {
    fn default() -> Self {
        NodeLimits {
            inbox_capacity: 256,
            orphan_capacity: 64,
            orphan_ttl: 64,
            max_parent_retries: 8,
        }
    }
}

/// Counters a node keeps about its own degradation decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Announcements rejected because the inbox was full.
    pub inbox_rejected: u64,
    /// Orphans evicted by TTL expiry or pool overflow.
    pub orphans_evicted: u64,
    /// Blocks discarded after failing full validation.
    pub blocks_discarded: u64,
    /// Duplicate or stale announcements dropped on arrival.
    pub duplicates_dropped: u64,
    /// Parent requests emitted (including retries).
    pub parent_requests: u64,
}

/// A parked out-of-order block waiting for its parent.
#[derive(Debug, Clone)]
struct Orphan {
    block: Block,
    /// Tick the orphan entered the pool (TTL reference point).
    parked_at: u64,
    /// Parent re-requests already sent for this orphan.
    retries: u32,
    /// Earliest tick the next parent request may fire (exponential
    /// backoff: 1, 2, 4, ... ticks between attempts).
    next_retry: u64,
}

/// A simulated node: a chain replica plus bounded inbox and orphan pool.
pub struct SimNode {
    pub id: usize,
    chain: Chain,
    inbox: VecDeque<BlockAnnouncement>,
    orphans: Vec<Orphan>,
    limits: NodeLimits,
    /// Logical clock: one tick per `process_inbox` call.
    tick: u64,
    stats: NodeStats,
    /// Optional durable store. When attached, every adoption is atomic
    /// across crashes: WAL-append → fsync → apply.
    store: Option<Store>,
    /// Optional incremental diversity index, kept in lock-step with the
    /// chain: O(Δ) maintenance on every adoption, journaled rollback on
    /// reorg, full rebuild only on enable / store attach.
    index: Option<DiversityIndex>,
}

impl std::fmt::Debug for SimNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNode")
            .field("id", &self.id)
            .field("height", &self.chain.height())
            .field("inbox", &self.inbox.len())
            .field("orphans", &self.orphans.len())
            .field("tick", &self.tick)
            .field("stats", &self.stats)
            .field("durable", &self.store.is_some())
            .field("indexed", &self.index.is_some())
            .finish()
    }
}

impl SimNode {
    pub fn new(id: usize, group: SchnorrGroup) -> Self {
        Self::with_limits(id, group, NodeLimits::default())
    }

    pub fn with_limits(id: usize, group: SchnorrGroup, limits: NodeLimits) -> Self {
        SimNode {
            id,
            chain: Chain::new(group),
            inbox: VecDeque::new(),
            orphans: Vec::new(),
            limits,
            tick: 0,
            stats: NodeStats::default(),
            store: None,
            index: None,
        }
    }

    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Mutable chain access for the mining node of a simulation.
    pub fn chain_mut(&mut self) -> &mut Chain {
        &mut self.chain
    }

    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    pub fn limits(&self) -> &NodeLimits {
        &self.limits
    }

    pub fn tip_hash(&self) -> Result<Digest, NodeError> {
        Ok(self.chain.tip()?.hash())
    }

    /// Whether a durable store is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// The attached store (for fault injection and inspection in tests).
    pub fn store_mut(&mut self) -> Option<&mut Store> {
        self.store.as_mut()
    }

    /// Detach and return the store (e.g. to crash it and re-open).
    pub fn take_store(&mut self) -> Option<Store> {
        self.store.take()
    }

    /// Enable the incremental diversity index at batch parameter λ,
    /// cold-starting it over the current chain (O(chain), once). Every
    /// later adoption maintains it O(Δ); reorgs roll it back from its
    /// journal. Re-enabling replaces any existing index.
    pub fn enable_index(&mut self, lambda: usize) -> Result<(), NodeError> {
        NodeMetrics::global().index_rebuilds.inc();
        self.index = Some(index_of_chain(&self.chain, lambda)?);
        Ok(())
    }

    /// The incremental diversity index, if enabled.
    pub fn index(&self) -> Option<&DiversityIndex> {
        self.index.as_ref()
    }

    /// Mutable index access (journal pruning, stats inspection in tests).
    pub fn index_mut(&mut self) -> Option<&mut DiversityIndex> {
        self.index.as_mut()
    }

    /// Drop the index (e.g. to shed memory on a replica that stops
    /// serving selections).
    pub fn disable_index(&mut self) -> Option<DiversityIndex> {
        self.index.take()
    }

    /// Fold an adopted block into the index. A rejected delta means chain
    /// and index disagree — defensively rebuild from the chain (the chain
    /// is authoritative); if even the rebuild fails, drop the index rather
    /// than serve verdicts from a diverged replica.
    fn index_adopted(&mut self, delta: &dams_core::BlockDelta) {
        let Some(index) = &mut self.index else { return };
        let metrics = NodeMetrics::global();
        match index.apply_block(delta) {
            Ok(()) => {
                metrics.index_blocks_applied.inc();
                // The store refuses rollbacks below its checkpoint, so
                // journal entries older than the checkpoint can never be
                // undone — prune them to keep memory O(reorg horizon).
                if let Some(store) = &self.store {
                    let keep = delta.height.saturating_sub(store.checkpoint_height()) + 1;
                    index.prune_journal(keep as usize);
                }
            }
            Err(_) => {
                metrics.index_rebuilds.inc();
                let lambda = index.lambda();
                self.index = index_of_chain(&self.chain, lambda).ok();
            }
        }
    }

    /// Reorg-safe rollback of chain, store, and index to `target` height.
    /// Requires a durable store: only [`Store::rollback_to`] attests that
    /// no committed RS (whose claimed diversity is forever) is removed.
    /// Returns the number of blocks undone.
    pub fn rollback_to(&mut self, target: u64) -> Result<usize, NodeError> {
        let store = self.store.as_mut().ok_or(NodeError::RollbackNeedsStore)?;
        let before = self.chain.height();
        self.chain = store.rollback_to(&self.chain, target)?;
        let undone = before - self.chain.height();
        if let Some(index) = &mut self.index {
            match index.rollback_to_height(target) {
                Ok(n) => NodeMetrics::global().index_rollbacks.add(n as u64),
                Err(_) => {
                    // Journal too shallow (pruned past target) — rebuild.
                    NodeMetrics::global().index_rebuilds.inc();
                    let lambda = index.lambda();
                    self.index = index_of_chain(&self.chain, lambda).ok();
                }
            }
        }
        Ok(undone)
    }

    /// Attach a freshly opened store. The recovered chain must be a
    /// prefix of (or extend) this node's chain: whichever side is longer
    /// wins, and the shorter side is persisted/adopted to match, so node
    /// and store agree exactly afterwards.
    pub fn attach_store(&mut self, recovered: Recovered) -> Result<(), NodeError> {
        let Recovered {
            mut store,
            chain: stored,
            ..
        } = recovered;
        let common = stored.height().min(self.chain.height());
        if self.chain.blocks()[common - 1].hash() != stored.blocks()[common - 1].hash() {
            return Err(NodeError::Store(StoreError::CheckpointStateMismatch {
                height: common as u64 - 1,
                field: "store chain diverges from node chain",
            }));
        }
        if stored.height() > self.chain.height() {
            self.chain = stored;
            // The store's chain superseded ours: any incremental index is
            // anchored to the old tip, so re-anchor it over the winner.
            if let Some(index) = &self.index {
                NodeMetrics::global().index_rebuilds.inc();
                let lambda = index.lambda();
                self.index = index_of_chain(&self.chain, lambda).ok();
            }
        } else {
            for block in &self.chain.blocks()[stored.height()..] {
                store.append_block(block)?;
            }
            store.maybe_checkpoint(&self.chain)?;
        }
        self.store = Some(store);
        Ok(())
    }

    /// WAL-append + fsync `block` if a store is attached — the durability
    /// barrier that must precede applying the block to chain state.
    fn persist_block(&mut self, block: &Block) -> Result<(), NodeError> {
        if let Some(store) = &mut self.store {
            store.append_block(block)?;
        }
        Ok(())
    }

    /// Checkpoint opportunistically after an adoption. A checkpoint
    /// failure never loses data (the WAL has every block) so it degrades
    /// the node's recovery speed, not its correctness.
    fn after_adopt(&mut self) {
        if let Some(store) = &mut self.store {
            let _ = store.maybe_checkpoint(&self.chain);
        }
    }

    /// Seal the chain's mempool into a block and persist it: the mining
    /// path's counterpart to the gossip path's WAL-append → apply.
    /// (Sealing applies first by construction — the block does not exist
    /// until sealed — so a crash between seal and append costs the miner
    /// only its own newest block, never a committed prefix.)
    pub fn seal_block(&mut self) -> Result<Block, NodeError> {
        self.chain.seal_block()?;
        let block = self.chain.tip()?.clone();
        self.persist_block(&block)?;
        self.after_adopt();
        self.index_adopted(&block_delta(&block));
        Ok(block)
    }

    /// Rebuild a replica by opening its durable store: replay
    /// `checkpoint + WAL tail`, truncate torn tails, re-verify every
    /// recovered RS's claimed diversity. An immutability violation is a
    /// typed error — a node must not serve state whose evidence no longer
    /// holds. A flagged-but-recoverable report (corrupt tail truncated)
    /// yields a working node plus the report for the caller to act on.
    pub fn restore_from_store(
        id: usize,
        group: SchnorrGroup,
        limits: NodeLimits,
        wal: Box<dyn Backend>,
        cp: Box<dyn Backend>,
        cfg: StoreConfig,
    ) -> Result<(Self, RecoveryReport), NodeError> {
        let metrics = NodeMetrics::global();
        metrics.store_restores.inc();
        let recovered = Store::open(wal, cp, group, cfg)?;
        let report = recovered.report.clone();
        if !report.clean() {
            metrics.store_restore_flagged.inc();
        }
        if let Some(&(height, ring_index)) = report.immutability_violations.first() {
            return Err(NodeError::Store(StoreError::ImmutabilityViolated {
                height,
                ring_index,
            }));
        }
        let mut node = SimNode::with_limits(id, group, limits);
        node.chain = recovered.chain;
        node.store = Some(recovered.store);
        Ok((node, report))
    }

    /// Deliver an announcement to this node's inbox. Rejects (typed, not
    /// panicking, not allocating) when the inbox is at capacity — the
    /// gossip layer treats that like a dropped packet and retries later.
    pub fn deliver(&mut self, msg: BlockAnnouncement) -> Result<(), NodeError> {
        if self.inbox.len() >= self.limits.inbox_capacity {
            self.stats.inbox_rejected += 1;
            NodeMetrics::global().inbox_rejected.inc();
            return Err(NodeError::InboxFull {
                capacity: self.limits.inbox_capacity,
            });
        }
        self.inbox.push_back(msg);
        NodeMetrics::global()
            .inbox_high_watermark
            .set_max(self.inbox.len() as i64);
        Ok(())
    }

    /// Whether the chain already contains a block with this hash at its
    /// recorded height (cheap: height indexes the block list directly).
    fn already_have(&self, block: &Block) -> bool {
        self.chain
            .blocks()
            .get(block.header.height.0 as usize)
            .is_some_and(|own| own.hash() == block.hash())
    }

    /// Process the inbox: append blocks whose parent is our tip; park the
    /// rest as orphans (bounded, TTL-limited) and retry them after every
    /// successful append. Advances the node's logical clock.
    ///
    /// Returns how many blocks were appended.
    pub fn process_inbox(&mut self) -> usize {
        self.tick += 1;
        while let Some(msg) = self.inbox.pop_front() {
            self.park_orphan(msg.block);
        }
        let appended = self.drain_orphans();
        self.evict_expired_orphans();
        appended
    }

    /// Park a block in the orphan pool, deduplicating against the chain
    /// and the pool, and evicting the oldest entry on overflow.
    fn park_orphan(&mut self, block: Block) {
        if self.already_have(&block) {
            self.stats.duplicates_dropped += 1;
            NodeMetrics::global().duplicates_dropped.inc();
            return;
        }
        let hash = block.hash();
        if self.orphans.iter().any(|o| o.block.hash() == hash) {
            self.stats.duplicates_dropped += 1;
            NodeMetrics::global().duplicates_dropped.inc();
            return;
        }
        if self.orphans.len() >= self.limits.orphan_capacity {
            // Evict the longest-waiting orphan: it has had the most retry
            // opportunities, so dropping it loses the least progress.
            if let Some(oldest) = self
                .orphans
                .iter()
                .enumerate()
                .min_by_key(|(_, o)| o.parked_at)
                .map(|(i, _)| i)
            {
                self.orphans.swap_remove(oldest);
                self.stats.orphans_evicted += 1;
                NodeMetrics::global().orphans_evicted.inc();
            }
        }
        self.orphans.push(Orphan {
            block,
            parked_at: self.tick,
            retries: 0,
            next_retry: self.tick,
        });
        NodeMetrics::global()
            .orphans_high_watermark
            .set_max(self.orphans.len() as i64);
    }

    fn drain_orphans(&mut self) -> usize {
        let mut appended = 0;
        // `tip_hash` failing means corrupted local state: stop consuming,
        // keep orphans.
        while let Ok(tip) = self.tip_hash() {
            let Some(pos) = self
                .orphans
                .iter()
                .position(|o| o.block.header.prev_hash == tip)
            else {
                break;
            };
            let orphan = self.orphans.swap_remove(pos);
            // Adoption consumes the block, so project its index delta
            // first (only when an index is enabled — the projection is
            // O(Δ) but not free).
            let delta = self.index.is_some().then(|| block_delta(&orphan.block));
            // Full validation: structure, signatures, key images. Invalid
            // or non-adoptable blocks are discarded, never fatal. A
            // verified block is WAL-persisted *before* it is applied, so
            // adoption is atomic across crashes.
            let adopted = self
                .chain
                .verify_block(&orphan.block, &NoConfiguration)
                .map_err(NodeError::from)
                .and_then(|()| self.persist_block(&orphan.block))
                .and_then(|()| {
                    self.chain
                        .adopt_block(orphan.block)
                        .map_err(NodeError::from)
                });
            if adopted.is_err() {
                self.stats.blocks_discarded += 1;
                NodeMetrics::global().blocks_discarded.inc();
                continue;
            }
            self.after_adopt();
            if let Some(delta) = delta {
                self.index_adopted(&delta);
            }
            appended += 1;
        }
        appended
    }

    fn evict_expired_orphans(&mut self) {
        let ttl = self.limits.orphan_ttl;
        let tick = self.tick;
        let before = self.orphans.len();
        // An expired orphan whose parent is itself pooled is *live*: its
        // ancestry arrived (possibly on the exact expiry tick) and is
        // still being assembled, so evicting it would discard progress the
        // pool just made. TTL only fires on orphans whose parent is
        // nowhere in sight. Cycles cannot pin entries (block hashes form a
        // DAG), and a truly dead chain of orphans still drains: its root's
        // parent never appears, so the root expires, then its child, one
        // per tick.
        let pooled: Vec<Digest> = self.orphans.iter().map(|o| o.block.hash()).collect();
        self.orphans.retain(|o| {
            tick.saturating_sub(o.parked_at) <= ttl
                || pooled.contains(&o.block.header.prev_hash)
        });
        let expired = (before - self.orphans.len()) as u64;
        self.stats.orphans_evicted += expired;
        NodeMetrics::global().orphans_evicted.add(expired);
    }

    /// Parent hashes this node wants re-sent: one request per orphan whose
    /// parent is still missing and whose backoff window has elapsed.
    /// Each emission doubles the orphan's backoff (1, 2, 4, ... ticks) up
    /// to `max_parent_retries` attempts.
    pub fn parent_requests(&mut self) -> Vec<Digest> {
        let tick = self.tick;
        let max_retries = self.limits.max_parent_retries;
        let have: Vec<Digest> = self.chain.blocks().iter().map(Block::hash).collect();
        let pooled: Vec<Digest> = self.orphans.iter().map(|o| o.block.hash()).collect();
        let mut requests = Vec::new();
        for o in &mut self.orphans {
            let parent = o.block.header.prev_hash;
            if have.contains(&parent) || pooled.contains(&parent) {
                continue;
            }
            if o.retries >= max_retries || o.next_retry > tick {
                continue;
            }
            o.retries += 1;
            o.next_retry = tick + (1u64 << o.retries.min(16));
            requests.push(parent);
        }
        self.stats.parent_requests += requests.len() as u64;
        NodeMetrics::global()
            .parent_requests
            .add(requests.len() as u64);
        requests
    }

    /// Look up a block this node can serve to a peer requesting `hash`.
    pub fn serve_block(&self, hash: Digest) -> Option<Block> {
        self.chain
            .blocks()
            .iter()
            .find(|b| b.hash() == hash)
            .cloned()
    }

    /// Serve the contiguous height range `[from, to)`, capped at `max`
    /// blocks — the pull half of anti-entropy range repair. Heights past
    /// the local tip are silently clipped.
    pub fn serve_range(&self, from: usize, to: usize, max: usize) -> Vec<Block> {
        let hi = to.min(self.chain.height()).min(from.saturating_add(max));
        if from >= hi {
            return Vec::new();
        }
        self.chain.blocks()[from..hi].to_vec()
    }

    /// [`SimNode::serve_range`] with the requested span checked against
    /// `cap` *before* serving: a request for more than `cap` blocks is a
    /// typed [`NodeError::RangeRefused`], refused whole rather than
    /// silently truncated — the gossip layer answers it with a refusal
    /// frame and attributes the oversized ask to the requester.
    pub fn serve_range_checked(
        &self,
        from: usize,
        to: usize,
        cap: usize,
    ) -> Result<Vec<Block>, NodeError> {
        let requested = to.saturating_sub(from);
        if requested > cap {
            return Err(NodeError::RangeRefused {
                requested: requested as u64,
                cap: cap as u64,
            });
        }
        Ok(self.serve_range(from, to, cap))
    }

    /// Read access to the attached store (checkpoint/tail serving).
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Number of currently parked orphans (for tests and monitoring).
    pub fn orphan_count(&self) -> usize {
        self.orphans.len()
    }

    /// Number of queued, unprocessed announcements.
    pub fn inbox_len(&self) -> usize {
        self.inbox.len()
    }

    /// Snapshot the node's chain as encoded blocks — the durable state a
    /// crash survives. Inbox and orphans are volatile and intentionally
    /// not captured.
    pub fn snapshot(&self) -> Vec<Vec<u8>> {
        self.chain.blocks().iter().map(block_to_bytes).collect()
    }

    /// Rebuild a replica from a snapshot by *verified replay*: the first
    /// block must be the canonical genesis, and every subsequent block is
    /// re-validated (structure, signatures, key images) before adoption.
    /// A corrupted snapshot yields a typed error, never a partial node.
    pub fn restore(
        id: usize,
        group: SchnorrGroup,
        limits: NodeLimits,
        snapshot: &[Vec<u8>],
    ) -> Result<Self, NodeError> {
        let mut node = SimNode::with_limits(id, group, limits);
        let mut blocks = snapshot.iter().enumerate();
        match blocks.next() {
            Some((_, bytes)) => {
                let genesis = decode_block(&group, bytes)?;
                if genesis.hash() != node.tip_hash()? {
                    return Err(NodeError::SnapshotGenesisMismatch);
                }
            }
            None => return Err(NodeError::SnapshotGenesisMismatch),
        }
        for (index, bytes) in blocks {
            let block = decode_block(&group, bytes)?;
            node.chain
                .verify_block(&block, &NoConfiguration)
                .and_then(|()| node.chain.adopt_block(block))
                .map_err(|cause| NodeError::SnapshotBlockInvalid { index, cause })?;
        }
        Ok(node)
    }
}

/// A lossless, reordering message bus between nodes — the reference
/// fault-free network ([`crate::faults::FaultyBus`] is the adversarial
/// one).
pub struct Bus {
    pub nodes: Vec<SimNode>,
}

impl Bus {
    pub fn new(count: usize, group: SchnorrGroup) -> Self {
        Bus {
            nodes: (0..count).map(|i| SimNode::new(i, group)).collect(),
        }
    }

    /// Gossip a block from `origin` to every other node, optionally
    /// shuffling delivery order via the given permutation of node ids.
    /// Full inboxes count as drops (the node's own back-pressure).
    pub fn gossip(&mut self, origin: usize, block: Block, order: &[usize]) {
        for &i in order {
            if i != origin && i < self.nodes.len() {
                let _ = self.nodes[i].deliver(BlockAnnouncement {
                    block: block.clone(),
                });
            }
        }
    }

    /// Run inbox processing on every node until quiescent, serving parent
    /// requests between rounds so stragglers can backfill.
    pub fn settle(&mut self) {
        loop {
            let mut progressed = false;
            for n in &mut self.nodes {
                progressed |= n.process_inbox() > 0;
            }
            progressed |= self.serve_parent_requests() > 0;
            if !progressed {
                break;
            }
        }
    }

    /// Answer every pending parent request from whichever node has the
    /// block. Returns how many responses were delivered.
    fn serve_parent_requests(&mut self) -> usize {
        let mut served = 0;
        for i in 0..self.nodes.len() {
            let requests = self.nodes[i].parent_requests();
            for hash in requests {
                let block = self
                    .nodes
                    .iter()
                    .filter(|n| n.id != i)
                    .find_map(|n| n.serve_block(hash));
                if let Some(block) = block {
                    if self.nodes[i].deliver(BlockAnnouncement { block }).is_ok() {
                        served += 1;
                    }
                }
            }
        }
        served
    }

    /// Whether all nodes share the same tip (consensus).
    pub fn converged(&self) -> bool {
        let tips: Vec<Option<Digest>> =
            self.nodes.iter().map(|n| n.tip_hash().ok()).collect();
        tips.iter().all(Option::is_some) && tips.windows(2).all(|w| w[0] == w[1])
    }

    /// Whether all nodes derive identical batch lists at λ.
    pub fn batch_consensus(&self, lambda: usize) -> bool {
        let lists: Vec<BatchList> = self
            .nodes
            .iter()
            .map(|n| BatchList::build(n.chain(), lambda))
            .collect();
        lists
            .windows(2)
            .all(|w| w[0].batches() == w[1].batches())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_blockchain::{Amount, TokenOutput};
    use dams_crypto::KeyPair;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// Mine `blocks` coinbase blocks on node 0 and gossip them.
    fn mine_and_gossip(bus: &mut Bus, blocks: usize, per_block: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..blocks {
            let group = *bus.nodes[0].chain().group();
            let outs: Vec<TokenOutput> = (0..per_block)
                .map(|_| TokenOutput {
                    owner: KeyPair::generate(&group, &mut rng).public,
                    amount: Amount(1),
                })
                .collect();
            let chain = bus.nodes[0].chain_mut();
            chain.submit_coinbase(outs);
            chain.seal_block().unwrap();
            let block = chain.blocks().last().expect("just sealed").clone();
            let mut order: Vec<usize> = (0..bus.nodes.len()).collect();
            order.shuffle(&mut rng);
            bus.gossip(0, block, &order);
        }
    }

    fn mine_one(bus: &mut Bus, rng: &mut StdRng) -> Block {
        let g = *bus.nodes[0].chain().group();
        let outs = vec![TokenOutput {
            owner: KeyPair::generate(&g, rng).public,
            amount: Amount(1),
        }];
        let chain = bus.nodes[0].chain_mut();
        chain.submit_coinbase(outs);
        chain.seal_block().unwrap();
        chain.blocks().last().expect("just sealed").clone()
    }

    #[test]
    fn nodes_converge_on_chain_and_batches() {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(4, group);
        mine_and_gossip(&mut bus, 6, 3, 1);
        bus.settle();
        assert!(bus.converged(), "tips diverged");
        assert!(bus.batch_consensus(7), "batch lists diverged");
        for n in &bus.nodes {
            assert!(n.chain().audit());
            assert_eq!(n.chain().token_count(), 18);
        }
    }

    #[test]
    fn out_of_order_delivery_heals() {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(2, group);
        // Mine 3 blocks but deliver to node 1 in reverse order: the orphan
        // pool must reassemble them.
        let mut rng = StdRng::seed_from_u64(2);
        let blocks: Vec<Block> = (0..3).map(|_| mine_one(&mut bus, &mut rng)).collect();
        for b in blocks.into_iter().rev() {
            bus.nodes[1].deliver(BlockAnnouncement { block: b }).unwrap();
        }
        bus.settle();
        assert!(bus.converged());
    }

    #[test]
    fn tampered_block_discarded() {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(2, group);
        let mut rng = StdRng::seed_from_u64(3);
        let mut block = mine_one(&mut bus, &mut rng);
        // Tamper with the content after sealing.
        block.transactions.clear();
        bus.nodes[1].deliver(BlockAnnouncement { block }).unwrap();
        bus.settle();
        // Node 1 keeps only genesis; no convergence with poisoned data.
        assert_eq!(bus.nodes[1].chain().height(), 1);
        assert_eq!(bus.nodes[1].stats().blocks_discarded, 1);
    }

    #[test]
    fn inbox_applies_back_pressure() {
        let group = SchnorrGroup::default();
        let limits = NodeLimits {
            inbox_capacity: 2,
            ..NodeLimits::default()
        };
        let mut node = SimNode::with_limits(0, group, limits);
        let mut bus = Bus::new(1, group);
        let mut rng = StdRng::seed_from_u64(4);
        let block = mine_one(&mut bus, &mut rng);
        assert!(node.deliver(BlockAnnouncement { block: block.clone() }).is_ok());
        assert!(node.deliver(BlockAnnouncement { block: block.clone() }).is_ok());
        let err = node.deliver(BlockAnnouncement { block }).unwrap_err();
        assert_eq!(err, NodeError::InboxFull { capacity: 2 });
        assert_eq!(node.stats().inbox_rejected, 1);
    }

    #[test]
    fn orphan_pool_is_bounded_and_ttl_evicts() {
        let group = SchnorrGroup::default();
        let limits = NodeLimits {
            orphan_capacity: 3,
            orphan_ttl: 2,
            ..NodeLimits::default()
        };
        let mut bus = Bus::new(1, group);
        let mut rng = StdRng::seed_from_u64(5);
        // Mine 5 distinct blocks; withhold their common ancestry from the
        // victim so every one is an orphan there.
        let blocks: Vec<Block> = (0..5).map(|_| mine_one(&mut bus, &mut rng)).collect();
        let mut node = SimNode::with_limits(9, group, limits);
        for b in blocks.into_iter().skip(1) {
            node.deliver(BlockAnnouncement { block: b }).unwrap();
        }
        node.process_inbox();
        assert!(node.orphan_count() <= 3, "pool exceeded capacity");
        assert!(node.stats().orphans_evicted >= 1, "overflow must evict");
        // Nothing ever parents these orphans: TTL clears the pool. The
        // drain cascades from the ancestry root (whose parent never
        // appears) one orphan per tick — children with a pooled parent
        // are exempt from TTL until that parent expires first.
        for _ in 0..8 {
            node.process_inbox();
        }
        assert_eq!(node.orphan_count(), 0, "TTL eviction failed");
    }

    #[test]
    fn orphan_with_parent_arriving_at_expiry_tick_is_adopted() {
        let group = SchnorrGroup::default();
        let limits = NodeLimits {
            orphan_ttl: 3,
            ..NodeLimits::default()
        };
        let mut bus = Bus::new(1, group);
        let mut rng = StdRng::seed_from_u64(11);
        let b1 = mine_one(&mut bus, &mut rng);
        let b2 = mine_one(&mut bus, &mut rng);
        let b3 = mine_one(&mut bus, &mut rng);
        let mut node = SimNode::with_limits(9, group, limits);
        // b3 parks at tick 1; with ttl=3 it survives through tick 4 and
        // expires on tick 5.
        node.deliver(BlockAnnouncement { block: b3 }).unwrap();
        for _ in 0..4 {
            node.process_inbox();
        }
        assert_eq!(node.orphan_count(), 1, "b3 evicted before expiry");
        // b2 (b3's parent) arrives on the exact tick b3 expires. b2's own
        // parent b1 is still missing, so neither can be adopted yet — but
        // b3's ancestry is now assembling and must not be TTL-evicted.
        node.deliver(BlockAnnouncement { block: b2 }).unwrap();
        node.process_inbox();
        assert_eq!(node.orphan_count(), 2, "b3 evicted at the boundary tick");
        // Completing the ancestry adopts all three blocks.
        node.deliver(BlockAnnouncement { block: b1 }).unwrap();
        node.process_inbox();
        assert_eq!(node.chain().height(), 4, "orphan chain not adopted");
        assert_eq!(node.orphan_count(), 0);
    }

    #[test]
    fn serve_range_clips_to_tip_and_cap() {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(1, group);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..5 {
            mine_one(&mut bus, &mut rng);
        }
        let node = &bus.nodes[0]; // height 6 (genesis + 5)
        let all = node.serve_range(1, 6, 100);
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].header.height.0, 1);
        let capped = node.serve_range(1, 6, 2);
        assert_eq!(capped.len(), 2);
        let clipped = node.serve_range(4, 50, 100);
        assert_eq!(clipped.len(), 2, "past-tip heights must clip");
        assert!(node.serve_range(9, 12, 8).is_empty());
        assert!(node.serve_range(3, 3, 8).is_empty());
    }

    #[test]
    fn duplicate_announcements_are_dropped_not_pooled() {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(1, group);
        let mut rng = StdRng::seed_from_u64(6);
        let b1 = mine_one(&mut bus, &mut rng);
        let b2 = mine_one(&mut bus, &mut rng);
        let mut node = SimNode::new(9, group);
        for _ in 0..3 {
            node.deliver(BlockAnnouncement { block: b2.clone() }).unwrap();
        }
        node.process_inbox();
        assert_eq!(node.orphan_count(), 1, "duplicates must collapse");
        node.deliver(BlockAnnouncement { block: b1.clone() }).unwrap();
        node.deliver(BlockAnnouncement { block: b1 }).unwrap();
        node.process_inbox();
        assert_eq!(node.chain().height(), 3, "both blocks adopted once");
        assert!(node.stats().duplicates_dropped >= 3);
    }

    #[test]
    fn parent_requests_backfill_a_gap() {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(2, group);
        let mut rng = StdRng::seed_from_u64(7);
        // Node 0 mines 4 blocks; node 1 only hears about the last one.
        let blocks: Vec<Block> = (0..4).map(|_| mine_one(&mut bus, &mut rng)).collect();
        let last = blocks.last().unwrap().clone();
        bus.nodes[1].deliver(BlockAnnouncement { block: last }).unwrap();
        bus.settle();
        assert!(bus.converged(), "parent requests should walk the gap");
        assert!(bus.nodes[1].stats().parent_requests >= 3);
    }

    #[test]
    fn parent_request_backoff_caps_retries() {
        let group = SchnorrGroup::default();
        let limits = NodeLimits {
            max_parent_retries: 3,
            orphan_ttl: 10_000,
            ..NodeLimits::default()
        };
        let mut bus = Bus::new(1, group);
        let mut rng = StdRng::seed_from_u64(8);
        let _b1 = mine_one(&mut bus, &mut rng);
        let b2 = mine_one(&mut bus, &mut rng);
        let mut node = SimNode::with_limits(9, group, limits);
        node.deliver(BlockAnnouncement { block: b2 }).unwrap();
        let mut total = 0;
        for _ in 0..200 {
            node.process_inbox();
            total += node.parent_requests().len();
        }
        assert_eq!(total, 3, "backoff must cap at max_parent_retries");
    }

    /// Fingerprint vector of every batch — equal fingerprints mean the
    /// incremental index and a from-scratch rebuild agree exactly.
    fn index_fingerprints(index: &dams_core::DiversityIndex) -> Vec<u64> {
        (0..index.batch_count())
            .map(|b| index.batch_fingerprint(b))
            .collect()
    }

    #[test]
    fn index_tracks_gossip_adoption_in_lock_step() {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(2, group);
        bus.nodes[1].enable_index(5).unwrap();
        mine_and_gossip(&mut bus, 6, 3, 21);
        bus.settle();
        assert!(bus.converged());
        let node = &bus.nodes[1];
        let index = node.index().expect("index enabled");
        assert_eq!(index.token_count(), node.chain().token_count() as u64);
        assert_eq!(
            index.last_height(),
            Some(node.chain().height() as u64 - 1),
            "index must sit exactly at the adopted tip"
        );
        let rebuilt = crate::indexing::index_of_chain(node.chain(), 5).unwrap();
        assert_eq!(index_fingerprints(index), index_fingerprints(&rebuilt));
        // Genesis replayed at enable time + 6 gossiped blocks, all O(Δ).
        assert_eq!(index.stats().blocks_applied, 7, "O(Δ) path, not rebuilds");
    }

    #[test]
    fn sealing_maintains_the_miners_index() {
        let group = SchnorrGroup::default();
        let mut rng = StdRng::seed_from_u64(22);
        let mut node = SimNode::new(0, group);
        node.enable_index(4).unwrap();
        for _ in 0..5 {
            let outs = vec![TokenOutput {
                owner: KeyPair::generate(&group, &mut rng).public,
                amount: Amount(1),
            }];
            node.chain_mut().submit_coinbase(outs);
            node.seal_block().unwrap();
        }
        let index = node.index().unwrap();
        assert_eq!(index.token_count(), 5);
        let rebuilt = crate::indexing::index_of_chain(node.chain(), 4).unwrap();
        assert_eq!(index_fingerprints(index), index_fingerprints(&rebuilt));
    }

    #[test]
    fn rollback_without_store_is_refused() {
        let group = SchnorrGroup::default();
        let mut node = SimNode::new(0, group);
        assert_eq!(node.rollback_to(0).unwrap_err(), NodeError::RollbackNeedsStore);
    }

    #[test]
    fn rollback_rewinds_chain_store_and_index_together() {
        let group = SchnorrGroup::default();
        let mut rng = StdRng::seed_from_u64(23);
        let mut node = SimNode::new(0, group);
        let recovered = dams_store::Store::open(
            Box::new(dams_store::MemBackend::new()),
            Box::new(dams_store::MemBackend::new()),
            group,
            StoreConfig {
                checkpoint_interval: 0,
            },
        )
        .unwrap();
        node.attach_store(recovered).unwrap();
        node.enable_index(3).unwrap();
        for _ in 0..6 {
            let outs = vec![TokenOutput {
                owner: KeyPair::generate(&group, &mut rng).public,
                amount: Amount(1),
            }];
            node.chain_mut().submit_coinbase(outs);
            node.seal_block().unwrap();
        }
        let undone = node.rollback_to(3).unwrap();
        assert_eq!(undone, 3);
        assert_eq!(node.chain().height(), 4);
        let index = node.index().expect("index survives rollback");
        assert_eq!(index.last_height(), Some(3));
        assert_eq!(index.token_count(), 3);
        let rebuilt = crate::indexing::index_of_chain(node.chain(), 3).unwrap();
        assert_eq!(index_fingerprints(index), index_fingerprints(&rebuilt));
        // Re-extend after the reorg: the same index keeps tracking.
        let outs = vec![TokenOutput {
            owner: KeyPair::generate(&group, &mut rng).public,
            amount: Amount(1),
        }];
        node.chain_mut().submit_coinbase(outs);
        node.seal_block().unwrap();
        assert_eq!(node.index().unwrap().token_count(), 4);
    }

    #[test]
    fn snapshot_restore_roundtrips_and_verifies() {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(1, group);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..4 {
            mine_one(&mut bus, &mut rng);
        }
        let snapshot = bus.nodes[0].snapshot();
        let revived =
            SimNode::restore(7, group, NodeLimits::default(), &snapshot).unwrap();
        assert_eq!(revived.tip_hash().unwrap(), bus.nodes[0].tip_hash().unwrap());
        assert_eq!(revived.chain().token_count(), bus.nodes[0].chain().token_count());
        assert!(revived.chain().audit());
    }

    #[test]
    fn corrupted_snapshot_is_rejected() {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(1, group);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..3 {
            mine_one(&mut bus, &mut rng);
        }
        let mut snapshot = bus.nodes[0].snapshot();
        // Flip a byte inside the second block's body.
        let len = snapshot[2].len();
        snapshot[2][len / 2] ^= 0xFF;
        let err = SimNode::restore(7, group, NodeLimits::default(), &snapshot).unwrap_err();
        assert!(
            matches!(
                err,
                NodeError::Codec(_) | NodeError::SnapshotBlockInvalid { .. }
            ),
            "{err:?}"
        );
        // Empty snapshots are equally typed, not panics.
        assert_eq!(
            SimNode::restore(7, group, NodeLimits::default(), &[]).unwrap_err(),
            NodeError::SnapshotGenesisMismatch
        );
    }
}
