//! An in-process network simulation: nodes exchange blocks through a lossy
//! message bus, replay them locally, and converge on identical chain state
//! and TokenMagic batch lists — §4's consensus argument ("users have a
//! consensus about the block list ... users can have a consensus about
//! the batch list too") as an executable property.

use std::collections::VecDeque;

use dams_blockchain::{BatchList, Block, Chain, NoConfiguration};
use dams_crypto::sha256::Digest;
use dams_crypto::SchnorrGroup;

/// A network message: one block, addressed to everyone (gossip).
#[derive(Debug, Clone)]
pub struct BlockAnnouncement {
    pub block: Block,
}

/// A simulated node: a chain replica plus an inbox.
pub struct SimNode {
    pub id: usize,
    chain: Chain,
    inbox: VecDeque<BlockAnnouncement>,
    /// Blocks that arrived out of order, waiting for their parent.
    orphans: Vec<Block>,
}

impl SimNode {
    pub fn new(id: usize, group: SchnorrGroup) -> Self {
        SimNode {
            id,
            chain: Chain::new(group),
            inbox: VecDeque::new(),
            orphans: Vec::new(),
        }
    }

    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Mutable chain access for the mining node of a simulation.
    pub fn chain_mut(&mut self) -> &mut Chain {
        &mut self.chain
    }

    pub fn tip_hash(&self) -> Digest {
        self.chain
            .blocks()
            .last()
            .expect("genesis always present")
            .hash()
    }

    /// Deliver an announcement to this node's inbox.
    pub fn deliver(&mut self, msg: BlockAnnouncement) {
        self.inbox.push_back(msg);
    }

    /// Process the inbox: append blocks whose parent is our tip; park the
    /// rest as orphans and retry them after every successful append.
    ///
    /// Returns how many blocks were appended.
    pub fn process_inbox(&mut self) -> usize {
        let mut appended = 0;
        while let Some(msg) = self.inbox.pop_front() {
            self.orphans.push(msg.block);
            appended += self.drain_orphans();
        }
        appended
    }

    fn drain_orphans(&mut self) -> usize {
        let mut appended = 0;
        loop {
            let tip = self.tip_hash();
            let Some(pos) = self
                .orphans
                .iter()
                .position(|b| b.header.prev_hash == tip)
            else {
                break;
            };
            let block = self.orphans.swap_remove(pos);
            // Full validation: structure, signatures, key images.
            if self.chain.verify_block(&block, &NoConfiguration).is_err() {
                continue; // discard invalid block
            }
            self.chain.adopt_block(block);
            appended += 1;
        }
        appended
    }
}

/// A lossless, reordering message bus between nodes.
pub struct Bus {
    pub nodes: Vec<SimNode>,
}

impl Bus {
    pub fn new(count: usize, group: SchnorrGroup) -> Self {
        Bus {
            nodes: (0..count).map(|i| SimNode::new(i, group)).collect(),
        }
    }

    /// Gossip a block from `origin` to every other node, optionally
    /// shuffling delivery order via the given permutation of node ids.
    pub fn gossip(&mut self, origin: usize, block: Block, order: &[usize]) {
        for &i in order {
            if i != origin {
                self.nodes[i].deliver(BlockAnnouncement {
                    block: block.clone(),
                });
            }
        }
    }

    /// Run inbox processing on every node until quiescent.
    pub fn settle(&mut self) {
        loop {
            let mut progressed = false;
            for n in &mut self.nodes {
                progressed |= n.process_inbox() > 0;
            }
            if !progressed {
                break;
            }
        }
    }

    /// Whether all nodes share the same tip (consensus).
    pub fn converged(&self) -> bool {
        let tips: Vec<Digest> = self.nodes.iter().map(SimNode::tip_hash).collect();
        tips.windows(2).all(|w| w[0] == w[1])
    }

    /// Whether all nodes derive identical batch lists at λ.
    pub fn batch_consensus(&self, lambda: usize) -> bool {
        let lists: Vec<BatchList> = self
            .nodes
            .iter()
            .map(|n| BatchList::build(n.chain(), lambda))
            .collect();
        lists
            .windows(2)
            .all(|w| w[0].batches() == w[1].batches())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_blockchain::{Amount, TokenOutput};
    use dams_crypto::KeyPair;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// Mine `blocks` coinbase blocks on node 0 and gossip them.
    fn mine_and_gossip(bus: &mut Bus, blocks: usize, per_block: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..blocks {
            let group = *bus.nodes[0].chain().group();
            let outs: Vec<TokenOutput> = (0..per_block)
                .map(|_| TokenOutput {
                    owner: KeyPair::generate(&group, &mut rng).public,
                    amount: Amount(1),
                })
                .collect();
            let chain = &mut bus.nodes[0].chain;
            chain.submit_coinbase(outs);
            chain.seal_block();
            let block = chain.blocks().last().expect("just sealed").clone();
            let mut order: Vec<usize> = (0..bus.nodes.len()).collect();
            order.shuffle(&mut rng);
            bus.gossip(0, block, &order);
        }
    }

    #[test]
    fn nodes_converge_on_chain_and_batches() {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(4, group);
        mine_and_gossip(&mut bus, 6, 3, 1);
        bus.settle();
        assert!(bus.converged(), "tips diverged");
        assert!(bus.batch_consensus(7), "batch lists diverged");
        for n in &bus.nodes {
            assert!(n.chain().audit());
            assert_eq!(n.chain().token_count(), 18);
        }
    }

    #[test]
    fn out_of_order_delivery_heals() {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(2, group);
        // Mine 3 blocks but deliver to node 1 in reverse order: the orphan
        // pool must reassemble them.
        let mut rng = StdRng::seed_from_u64(2);
        let mut blocks = Vec::new();
        for _ in 0..3 {
            let g = *bus.nodes[0].chain().group();
            let outs = vec![TokenOutput {
                owner: KeyPair::generate(&g, &mut rng).public,
                amount: Amount(1),
            }];
            let chain = &mut bus.nodes[0].chain;
            chain.submit_coinbase(outs);
            chain.seal_block();
            blocks.push(chain.blocks().last().expect("sealed").clone());
        }
        for b in blocks.into_iter().rev() {
            bus.nodes[1].deliver(BlockAnnouncement { block: b });
        }
        bus.settle();
        assert!(bus.converged());
    }

    #[test]
    fn tampered_block_discarded() {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(2, group);
        let mut rng = StdRng::seed_from_u64(3);
        let g = *bus.nodes[0].chain().group();
        let outs = vec![TokenOutput {
            owner: KeyPair::generate(&g, &mut rng).public,
            amount: Amount(1),
        }];
        let chain = &mut bus.nodes[0].chain;
        chain.submit_coinbase(outs);
        chain.seal_block();
        let mut block = chain.blocks().last().expect("sealed").clone();
        // Tamper with the content after sealing.
        block.transactions.clear();
        bus.nodes[1].deliver(BlockAnnouncement { block });
        bus.settle();
        // Node 1 keeps only genesis; no convergence with poisoned data.
        assert_eq!(bus.nodes[1].chain().height(), 1);
    }
}
