//! The node half of the typed error taxonomy.
//!
//! Everything a simulated node can fail at — chain state operations,
//! wire decoding, resource exhaustion, snapshot recovery — funnels into
//! [`NodeError`], so the network layer is panic-free: a Byzantine peer,
//! a corrupted wire message, or a block flood degrades a node's service,
//! never its process.

use dams_blockchain::{ChainError, CodecError, VerifyError};
use dams_core::IndexError;
use dams_store::StoreError;

/// Why a node-layer operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeError {
    /// A chain state operation (seal, adopt, tip lookup) failed.
    Chain(ChainError),
    /// A wire message failed to decode.
    Codec(CodecError),
    /// The bounded inbox is full — the announcement was rejected
    /// (back-pressure instead of unbounded growth under a block flood).
    InboxFull { capacity: usize },
    /// An operation referenced a node id the bus does not know.
    UnknownPeer(usize),
    /// A snapshot's first block is not the canonical genesis, so the
    /// replica cannot be rebuilt from it.
    SnapshotGenesisMismatch,
    /// A snapshot block failed verified replay at the given position.
    SnapshotBlockInvalid { index: usize, cause: ChainError },
    /// The durable store failed — the inner error carries the byte
    /// offset / crc context a recovery report needs.
    Store(StoreError),
    /// A catch-up frame failed authentication or was structurally
    /// malformed; the sync attempt is abandoned, never partially applied.
    SyncRejected { reason: &'static str },
    /// The incremental diversity index rejected an update — the chain and
    /// the index would disagree, so the operation is refused instead of
    /// serving stale verdicts.
    Index(IndexError),
    /// A reorg rollback was requested on a node without a durable store;
    /// only [`dams_store::Store::rollback_to`] can attest that no
    /// committed RS is removed.
    RollbackNeedsStore,
    /// A range request asked for more blocks than the serving node's
    /// configured cap — refused whole (and attributed to the requester as
    /// `RangeAbuse`) instead of silently truncated.
    RangeRefused { requested: u64, cap: u64 },
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Chain(e) => write!(f, "chain operation failed: {e}"),
            NodeError::Codec(e) => write!(f, "wire decode failed: {e}"),
            NodeError::InboxFull { capacity } => {
                write!(f, "inbox full ({capacity} messages), announcement rejected")
            }
            NodeError::UnknownPeer(id) => write!(f, "unknown peer id {id}"),
            NodeError::SnapshotGenesisMismatch => {
                write!(f, "snapshot does not start at the canonical genesis")
            }
            NodeError::SnapshotBlockInvalid { index, cause } => {
                write!(f, "snapshot block {index} failed verified replay: {cause}")
            }
            NodeError::Store(e) => write!(f, "durable store failed: {e}"),
            NodeError::SyncRejected { reason } => {
                write!(f, "catch-up frame rejected: {reason}")
            }
            NodeError::Index(e) => write!(f, "diversity index out of step: {e}"),
            NodeError::RollbackNeedsStore => {
                write!(f, "rollback requires a durable store to attest RS immutability")
            }
            NodeError::RangeRefused { requested, cap } => {
                write!(f, "range request for {requested} blocks exceeds cap {cap}, refused")
            }
        }
    }
}

impl std::error::Error for NodeError {}

impl From<ChainError> for NodeError {
    fn from(e: ChainError) -> Self {
        NodeError::Chain(e)
    }
}

impl From<VerifyError> for NodeError {
    fn from(e: VerifyError) -> Self {
        NodeError::Chain(ChainError::Verify(e))
    }
}

impl From<CodecError> for NodeError {
    fn from(e: CodecError) -> Self {
        NodeError::Codec(e)
    }
}

impl From<StoreError> for NodeError {
    fn from(e: StoreError) -> Self {
        NodeError::Store(e)
    }
}

impl From<IndexError> for NodeError {
    fn from(e: IndexError) -> Self {
        NodeError::Index(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<NodeError> = vec![
            ChainError::MissingGenesis.into(),
            VerifyError::NoInputs.into(),
            CodecError::Truncated.into(),
            NodeError::InboxFull { capacity: 4 },
            NodeError::UnknownPeer(2),
            NodeError::SnapshotGenesisMismatch,
            NodeError::SnapshotBlockInvalid {
                index: 3,
                cause: ChainError::NotExtendingTip,
            },
            StoreError::CorruptRecord {
                offset: 16,
                expected_crc: 1,
                got_crc: 2,
            }
            .into(),
            NodeError::SyncRejected {
                reason: "bundle digest mismatch",
            },
            IndexError::NothingToRollBack.into(),
            NodeError::RollbackNeedsStore,
            NodeError::RangeRefused {
                requested: 64,
                cap: 16,
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_nest_correctly() {
        let e: NodeError = VerifyError::NoInputs.into();
        assert_eq!(e, NodeError::Chain(ChainError::Verify(VerifyError::NoInputs)));
    }
}
