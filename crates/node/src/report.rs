//! Human-readable audit reports: render a chain's privacy posture as the
//! text a block-explorer operator or compliance officer would read.

use std::fmt::Write as _;

use dams_diversity::{ring_anonymity, total_variation};

use crate::auditor::{audit, chain_view};
use dams_blockchain::Chain;

/// Render a full audit report for a chain.
pub fn render_report(chain: &Chain) -> String {
    let view = chain_view(chain);
    let report = audit(chain);
    let mut out = String::new();

    let _ = writeln!(out, "=== chain privacy audit ===");
    let _ = writeln!(
        out,
        "blocks: {}   tokens: {}   committed rings: {}",
        chain.height(),
        chain.token_count(),
        view.rings.len()
    );
    let _ = writeln!(
        out,
        "hash chain intact: {}   claim violations: {}",
        chain.audit(),
        report.claim_violations.len()
    );
    let _ = writeln!(
        out,
        "chain-reaction: {} of {} rings resolvable",
        report.analysis.resolved_count(),
        view.rings.len()
    );
    if !view.rings.is_empty() {
        let _ = writeln!(
            out,
            "anonymity: mean candidates {:.1}, min {}, mean HT entropy {:.2} bits, worst HT guess {:.0}%",
            report.anonymity.mean_candidates,
            report.anonymity.min_candidates,
            report.anonymity.mean_ht_entropy_bits,
            report.anonymity.worst_ht_guess * 100.0
        );
        let _ = writeln!(out, "\nper-ring detail:");
        let _ = writeln!(
            out,
            "{:<6} {:>5} {:>6} {:>8} {:>9} {:>8}",
            "ring", "size", "cands", "HTs", "entropy", "tv-dist"
        );
        for (rs, ring) in view.rings.iter() {
            let Some(m) = ring_anonymity(&report.analysis, rs, &view.universe) else {
                continue;
            };
            let tv = total_variation(ring, &view.universe);
            let flag = if m.candidate_count <= 1 { "  ← RESOLVED" } else { "" };
            let _ = writeln!(
                out,
                "r{:<5} {:>5} {:>6} {:>8} {:>8.2}b {:>8.2}{flag}",
                rs.0,
                ring.len(),
                m.candidate_count,
                m.ht_count,
                m.ht_entropy_bits,
                tv
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_blockchain::{Amount, NoConfiguration, RingInput, TokenOutput, Transaction};
    use dams_crypto::{KeyPair, SchnorrGroup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_with_spend() -> Chain {
        let group = SchnorrGroup::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut chain = Chain::new(group);
        let keys: Vec<KeyPair> = (0..4)
            .map(|_| KeyPair::generate(&group, &mut rng))
            .collect();
        chain.submit_coinbase(
            keys.iter()
                .map(|k| TokenOutput {
                    owner: k.public,
                    amount: Amount(1),
                })
                .collect(),
        );
        chain.seal_block().unwrap();
        let outputs = vec![];
        let shell = Transaction {
            inputs: vec![],
            outputs: outputs.clone(),
            memo: b"r".to_vec(),
        };
        let payload = shell.signing_payload();
        let ring_keys = vec![keys[0].public, keys[2].public];
        let sig = dams_crypto::sign(&group, &payload, &ring_keys, &keys[0], &mut rng).unwrap();
        chain
            .submit(
                Transaction {
                    inputs: vec![RingInput {
                        ring: vec![
                            dams_blockchain::TokenId(0),
                            dams_blockchain::TokenId(2),
                        ],
                        signature: sig,
                        claimed_c: 2.0,
                        claimed_l: 1,
                    }],
                    outputs,
                    memo: b"r".to_vec(),
                },
                &NoConfiguration,
            )
            .unwrap();
        chain.seal_block().unwrap();
        chain
    }

    #[test]
    fn report_renders_key_sections() {
        let chain = chain_with_spend();
        let r = render_report(&chain);
        assert!(r.contains("chain privacy audit"));
        assert!(r.contains("hash chain intact: true"));
        assert!(r.contains("per-ring detail"));
        assert!(r.contains("r0"));
        assert!(!r.contains("RESOLVED"), "{r}");
    }

    #[test]
    fn empty_chain_report() {
        let chain = Chain::new(SchnorrGroup::default());
        let r = render_report(&chain);
        assert!(r.contains("committed rings: 0"));
        assert!(!r.contains("per-ring detail"));
    }
}
