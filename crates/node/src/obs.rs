//! Node- and network-layer metrics (`node.*`).
//!
//! Mirrors the per-object counters the node layer already keeps
//! ([`crate::network::NodeStats`], [`crate::faults::FaultStats`]) into the
//! process-wide [`dams_obs`] registry, and adds two high-watermark gauges
//! the per-object stats cannot express: the deepest inbox and the fullest
//! orphan pool seen by any replica.
//!
//! Every recorded value derives from the simulation's seeded PRNG stream,
//! so a fixed seed yields a byte-identical deterministic snapshot — the
//! property `dams-cli --faults <seed> --metrics json` is tested on.

use std::sync::OnceLock;

use dams_obs::{Counter, Gauge, Registry};

/// Handles to every `node.*` metric.
#[derive(Clone)]
pub struct NodeMetrics {
    /// `node.bus.sent_total` — message copies handed to the faulty bus.
    pub bus_sent: Counter,
    /// `node.bus.dropped_total` — copies dropped in flight.
    pub bus_dropped: Counter,
    /// `node.bus.duplicated_total` — extra copies injected by duplication.
    pub bus_duplicated: Counter,
    /// `node.bus.delayed_total` — copies held back by a delivery delay.
    pub bus_delayed: Counter,
    /// `node.bus.corrupted_total` — copies with a byte flipped.
    pub bus_corrupted: Counter,
    /// `node.bus.decode_rejected_total` — deliveries the wire decoder refused.
    pub bus_decode_rejected: Counter,
    /// `node.bus.partition_blocked_total` — sends suppressed by a partition.
    pub bus_partition_blocked: Counter,
    /// `node.bus.delivered_total` — copies that reached a node's inbox.
    pub bus_delivered: Counter,
    /// `node.inbox.rejected_total` — deliveries refused by a full inbox.
    pub inbox_rejected: Counter,
    /// `node.inbox.high_watermark` — deepest inbox observed on any replica.
    pub inbox_high_watermark: Gauge,
    /// `node.orphans.evicted_total` — orphans lost to TTL or pool overflow.
    pub orphans_evicted: Counter,
    /// `node.orphans.high_watermark` — fullest orphan pool observed.
    pub orphans_high_watermark: Gauge,
    /// `node.blocks.discarded_total` — blocks failing full validation.
    pub blocks_discarded: Counter,
    /// `node.duplicates.dropped_total` — duplicate announcements dropped.
    pub duplicates_dropped: Counter,
    /// `node.parent.requests_total` — backoff parent re-requests emitted.
    pub parent_requests: Counter,
    /// `node.store.restores_total` — replicas rebuilt from their durable
    /// store after a crash.
    pub store_restores: Counter,
    /// `node.store.restore_flagged_total` — store restores whose recovery
    /// report was not clean (corruption or immutability violations).
    pub store_restore_flagged: Counter,
    /// `node.gossip.announcements_total` — tip announcements sent by
    /// cluster anti-entropy rounds.
    pub gossip_announcements: Counter,
    /// `node.gossip.range_requests_total` — pull-based range-repair
    /// requests emitted by lagging replicas.
    pub gossip_range_requests: Counter,
    /// `node.gossip.range_blocks_served_total` — blocks served in answer
    /// to range-repair requests.
    pub gossip_range_blocks_served: Counter,
    /// `node.gossip.frames_rejected_total` — gossip frames refused by the
    /// authenticated-frame decoder (corruption caught at the wire).
    pub gossip_frames_rejected: Counter,
    /// `node.sync.bundles_served_total` — catch-up bundles served to
    /// late joiners and restarted peers.
    pub sync_bundles_served: Counter,
    /// `node.sync.bootstraps_total` — replicas bootstrapped from a
    /// peer-served bundle.
    pub sync_bootstraps: Counter,
    /// `node.sync.prefix_adopted_total` — checkpoint-attested blocks
    /// adopted structurally during bundle bootstraps (the cheap part).
    pub sync_prefix_adopted: Counter,
    /// `node.sync.tail_verified_total` — blocks past the checkpoint fully
    /// re-verified during bundle bootstraps (the O(tail) part).
    pub sync_tail_verified: Counter,
    /// `node.sync.tail_blocks_total` — blocks applied from WAL-tail
    /// streams by crash-restarted peers catching up.
    pub sync_tail_blocks: Counter,
    /// `node.sync.rejected_total` — catch-up frames refused
    /// (authentication or structural failure).
    pub sync_rejected: Counter,
    /// `node.index.blocks_applied_total` — blocks folded into a replica's
    /// incremental diversity index on the adoption path (O(Δ) each).
    pub index_blocks_applied: Counter,
    /// `node.index.rollbacks_total` — blocks undone from an index by a
    /// reorg rollback.
    pub index_rollbacks: Counter,
    /// `node.index.rebuilds_total` — full O(chain) index rebuilds (enable,
    /// store attach, or defensive re-anchor after a desync).
    pub index_rebuilds: Counter,
    /// `node.gossip.dup_announce_total` — repeated block announcements
    /// deduplicated before re-entering verification.
    pub gossip_dup_announce: Counter,
    /// `node.gossip.range_refusals_total` — oversized range requests
    /// answered with a typed refusal instead of silent truncation.
    pub gossip_range_refusals: Counter,
    /// `node.gossip.evidence_frames_total` — equivocation proofs gossiped
    /// so honest peers converge on the same verdict.
    pub gossip_evidence_frames: Counter,
    /// `node.peers.misbehavior_total` — typed misbehavior records filed
    /// against peers (equivocation, diversity violation, flood, range
    /// abuse, stale-tip spam).
    pub peers_misbehavior: Counter,
    /// `node.peers.quarantined_total` — peers escalated to quarantine.
    pub peers_quarantined: Counter,
    /// `node.peers.banned_total` — peers escalated to a ban.
    pub peers_banned: Counter,
    /// `node.peers.frames_dropped_total` — frames refused at intake from
    /// banned, quarantined, or rate-limited peers.
    pub peers_frames_dropped: Counter,
    /// `node.peers.diversity_rejects_total` — announced blocks refused
    /// because a carried RS fails (c, ℓ)-diversity re-verification.
    pub peers_diversity_rejects: Counter,
}

impl NodeMetrics {
    /// Build (or re-attach to) the `node.*` metrics inside `registry`.
    pub fn in_registry(registry: &Registry) -> Self {
        NodeMetrics {
            bus_sent: registry.counter("node.bus.sent_total"),
            bus_dropped: registry.counter("node.bus.dropped_total"),
            bus_duplicated: registry.counter("node.bus.duplicated_total"),
            bus_delayed: registry.counter("node.bus.delayed_total"),
            bus_corrupted: registry.counter("node.bus.corrupted_total"),
            bus_decode_rejected: registry.counter("node.bus.decode_rejected_total"),
            bus_partition_blocked: registry.counter("node.bus.partition_blocked_total"),
            bus_delivered: registry.counter("node.bus.delivered_total"),
            inbox_rejected: registry.counter("node.inbox.rejected_total"),
            inbox_high_watermark: registry.gauge("node.inbox.high_watermark"),
            orphans_evicted: registry.counter("node.orphans.evicted_total"),
            orphans_high_watermark: registry.gauge("node.orphans.high_watermark"),
            blocks_discarded: registry.counter("node.blocks.discarded_total"),
            duplicates_dropped: registry.counter("node.duplicates.dropped_total"),
            parent_requests: registry.counter("node.parent.requests_total"),
            store_restores: registry.counter("node.store.restores_total"),
            store_restore_flagged: registry.counter("node.store.restore_flagged_total"),
            gossip_announcements: registry.counter("node.gossip.announcements_total"),
            gossip_range_requests: registry.counter("node.gossip.range_requests_total"),
            gossip_range_blocks_served: registry
                .counter("node.gossip.range_blocks_served_total"),
            gossip_frames_rejected: registry.counter("node.gossip.frames_rejected_total"),
            sync_bundles_served: registry.counter("node.sync.bundles_served_total"),
            sync_bootstraps: registry.counter("node.sync.bootstraps_total"),
            sync_prefix_adopted: registry.counter("node.sync.prefix_adopted_total"),
            sync_tail_verified: registry.counter("node.sync.tail_verified_total"),
            sync_tail_blocks: registry.counter("node.sync.tail_blocks_total"),
            sync_rejected: registry.counter("node.sync.rejected_total"),
            index_blocks_applied: registry.counter("node.index.blocks_applied_total"),
            index_rollbacks: registry.counter("node.index.rollbacks_total"),
            index_rebuilds: registry.counter("node.index.rebuilds_total"),
            gossip_dup_announce: registry.counter("node.gossip.dup_announce_total"),
            gossip_range_refusals: registry.counter("node.gossip.range_refusals_total"),
            gossip_evidence_frames: registry.counter("node.gossip.evidence_frames_total"),
            peers_misbehavior: registry.counter("node.peers.misbehavior_total"),
            peers_quarantined: registry.counter("node.peers.quarantined_total"),
            peers_banned: registry.counter("node.peers.banned_total"),
            peers_frames_dropped: registry.counter("node.peers.frames_dropped_total"),
            peers_diversity_rejects: registry.counter("node.peers.diversity_rejects_total"),
        }
    }

    /// The process-wide instance, backed by [`dams_obs::global`].
    pub fn global() -> &'static NodeMetrics {
        static GLOBAL: OnceLock<NodeMetrics> = OnceLock::new();
        GLOBAL.get_or_init(|| NodeMetrics::in_registry(dams_obs::global()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_registry_reattaches_same_counters() {
        let r = Registry::new();
        let a = NodeMetrics::in_registry(&r);
        let b = NodeMetrics::in_registry(&r);
        a.bus_sent.inc();
        assert_eq!(b.bus_sent.get(), 1);
    }

    #[test]
    fn watermark_gauges_only_rise() {
        let r = Registry::new();
        let m = NodeMetrics::in_registry(&r);
        m.inbox_high_watermark.set_max(5);
        m.inbox_high_watermark.set_max(3);
        assert_eq!(m.inbox_high_watermark.get(), 5);
    }
}
