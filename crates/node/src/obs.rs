//! Node- and network-layer metrics (`node.*`).
//!
//! Mirrors the per-object counters the node layer already keeps
//! ([`crate::network::NodeStats`], [`crate::faults::FaultStats`]) into the
//! process-wide [`dams_obs`] registry, and adds two high-watermark gauges
//! the per-object stats cannot express: the deepest inbox and the fullest
//! orphan pool seen by any replica.
//!
//! Every recorded value derives from the simulation's seeded PRNG stream,
//! so a fixed seed yields a byte-identical deterministic snapshot — the
//! property `dams-cli --faults <seed> --metrics json` is tested on.

use std::sync::OnceLock;

use dams_obs::{Counter, Gauge, Registry};

/// Handles to every `node.*` metric.
#[derive(Clone)]
pub struct NodeMetrics {
    /// `node.bus.sent_total` — message copies handed to the faulty bus.
    pub bus_sent: Counter,
    /// `node.bus.dropped_total` — copies dropped in flight.
    pub bus_dropped: Counter,
    /// `node.bus.duplicated_total` — extra copies injected by duplication.
    pub bus_duplicated: Counter,
    /// `node.bus.delayed_total` — copies held back by a delivery delay.
    pub bus_delayed: Counter,
    /// `node.bus.corrupted_total` — copies with a byte flipped.
    pub bus_corrupted: Counter,
    /// `node.bus.decode_rejected_total` — deliveries the wire decoder refused.
    pub bus_decode_rejected: Counter,
    /// `node.bus.partition_blocked_total` — sends suppressed by a partition.
    pub bus_partition_blocked: Counter,
    /// `node.bus.delivered_total` — copies that reached a node's inbox.
    pub bus_delivered: Counter,
    /// `node.inbox.rejected_total` — deliveries refused by a full inbox.
    pub inbox_rejected: Counter,
    /// `node.inbox.high_watermark` — deepest inbox observed on any replica.
    pub inbox_high_watermark: Gauge,
    /// `node.orphans.evicted_total` — orphans lost to TTL or pool overflow.
    pub orphans_evicted: Counter,
    /// `node.orphans.high_watermark` — fullest orphan pool observed.
    pub orphans_high_watermark: Gauge,
    /// `node.blocks.discarded_total` — blocks failing full validation.
    pub blocks_discarded: Counter,
    /// `node.duplicates.dropped_total` — duplicate announcements dropped.
    pub duplicates_dropped: Counter,
    /// `node.parent.requests_total` — backoff parent re-requests emitted.
    pub parent_requests: Counter,
    /// `node.store.restores_total` — replicas rebuilt from their durable
    /// store after a crash.
    pub store_restores: Counter,
    /// `node.store.restore_flagged_total` — store restores whose recovery
    /// report was not clean (corruption or immutability violations).
    pub store_restore_flagged: Counter,
}

impl NodeMetrics {
    /// Build (or re-attach to) the `node.*` metrics inside `registry`.
    pub fn in_registry(registry: &Registry) -> Self {
        NodeMetrics {
            bus_sent: registry.counter("node.bus.sent_total"),
            bus_dropped: registry.counter("node.bus.dropped_total"),
            bus_duplicated: registry.counter("node.bus.duplicated_total"),
            bus_delayed: registry.counter("node.bus.delayed_total"),
            bus_corrupted: registry.counter("node.bus.corrupted_total"),
            bus_decode_rejected: registry.counter("node.bus.decode_rejected_total"),
            bus_partition_blocked: registry.counter("node.bus.partition_blocked_total"),
            bus_delivered: registry.counter("node.bus.delivered_total"),
            inbox_rejected: registry.counter("node.inbox.rejected_total"),
            inbox_high_watermark: registry.gauge("node.inbox.high_watermark"),
            orphans_evicted: registry.counter("node.orphans.evicted_total"),
            orphans_high_watermark: registry.gauge("node.orphans.high_watermark"),
            blocks_discarded: registry.counter("node.blocks.discarded_total"),
            duplicates_dropped: registry.counter("node.duplicates.dropped_total"),
            parent_requests: registry.counter("node.parent.requests_total"),
            store_restores: registry.counter("node.store.restores_total"),
            store_restore_flagged: registry.counter("node.store.restore_flagged_total"),
        }
    }

    /// The process-wide instance, backed by [`dams_obs::global`].
    pub fn global() -> &'static NodeMetrics {
        static GLOBAL: OnceLock<NodeMetrics> = OnceLock::new();
        GLOBAL.get_or_init(|| NodeMetrics::in_registry(dams_obs::global()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_registry_reattaches_same_counters() {
        let r = Registry::new();
        let a = NodeMetrics::in_registry(&r);
        let b = NodeMetrics::in_registry(&r);
        a.bus_sent.inc();
        assert_eq!(b.bus_sent.get(), 1);
    }

    #[test]
    fn watermark_gauges_only_rise() {
        let r = Registry::new();
        let m = NodeMetrics::in_registry(&r);
        m.inbox_high_watermark.set_max(5);
        m.inbox_high_watermark.set_max(3);
        assert_eq!(m.inbox_high_watermark.get(), 5);
    }
}
