//! Anti-entropy gossip over the seeded fault channel: the multi-node
//! replication layer, hardened against Byzantine peers.
//!
//! A [`Cluster`] is N simulated replicas plus one dormant late-joiner
//! slot — and, in adversarial scenarios, f Byzantine slots driven by
//! [`crate::adversary`] actors — all exchanging typed frames through one
//! [`FaultChannel`], so every drop, duplicate, delay, reorder, byte-flip,
//! and partition decision the gossip traffic suffers replays exactly from
//! a single `u64` seed. Five frame kinds, each self-authenticating, all
//! decoded by the panic-free [`decode_frame`]:
//!
//! * **Block** — `kind ‖ sha256 ‖ (attestation ‖ block)`, the push half.
//!   The [`Attestation`] is the sender's signed claim over the block's
//!   height and hash; receivers enforce that its origin matches the
//!   transport source and its signature checks against the cluster's
//!   identity directory, so rejections are attributable and two
//!   conflicting attestations are an unforgeable equivocation proof.
//! * **Tip** — `kind ‖ sha256 ‖ (sender ‖ height ‖ tip-hash)`, the
//!   anti-entropy heartbeat. A receiver that is *behind* answers with a
//!   range request clamped to the range cap, and watches the claim: tips
//!   that repeatedly fail to materialize are stale-tip spam.
//! * **Range request** — `kind ‖ sha256 ‖ (requester ‖ from ‖ to)`, the
//!   pull half. Requests over [`ClusterConfig::max_range_blocks`] get a
//!   typed **refusal** frame back (and a `RangeAbuse` record), never a
//!   silent truncation.
//! * **Evidence** — `kind ‖ sha256 ‖ equivocation-proof`, gossiped so
//!   every honest peer verifies the same two signatures and converges on
//!   the same ban without trusting the reporter.
//! * **Refusal** — `kind ‖ sha256 ‖ (server ‖ requested ‖ cap)`, the
//!   typed answer to an oversized range request.
//!
//! Every live replica runs a [`PeerDefense`] in front of its inbox:
//! token-bucket rate limits per frame kind, severity-weighted misbehavior
//! scores with quarantine → ban escalation, a staging window that holds
//! remote blocks long enough for conflicting attestations to collide,
//! and a per-block (c, ℓ)-diversity re-verification that stops
//! structurally-valid-but-poisoned ring signatures at the door.
//!
//! Recovery composes the existing machinery: a killed replica restarts
//! from its own durable store and pulls the blocks it missed via
//! [`crate::sync::catch_up_tail`]; a late joiner bootstraps from a
//! peer-served checkpoint bundle. Convergence means identical tips *and*
//! identical selection verdicts.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dams_blockchain::{
    block_to_bytes, decode_block, Amount, BatchList, Block, CodecError, TokenOutput,
};
use dams_crypto::sha256::{sha256, Digest};
use dams_crypto::{KeyPair, PublicKey, SchnorrGroup};
use dams_store::{ImmutabilityCheck, MemBackend, RecoveryReport, Store, StoreConfig};

use crate::adversary::{Actor, ActorKind};
use crate::error::NodeError;
use crate::faults::{FaultChannel, FaultConfig, FaultStats};
use crate::network::{BlockAnnouncement, NodeLimits, SimNode};
use crate::obs::NodeMetrics;
use crate::peers::{
    recheck_block_diversity, Attestation, ClusterConfig, EquivocationProof, Intake, Misbehavior,
    PeerDefense, FK_BLOCK, FK_EVIDENCE, FK_RANGE, FK_TIP,
};
use crate::sync::{bootstrap_from_bundle, catch_up_tail, recheck_node, serve_bundle, SyncReport};

pub const KIND_BLOCK: u8 = 1;
pub const KIND_TIP: u8 = 2;
pub const KIND_RANGE: u8 = 3;
pub const KIND_EVIDENCE: u8 = 4;
pub const KIND_REFUSAL: u8 = 5;

/// Checked little-endian u64 read (the wire is hostile; never index).
fn u64le(bytes: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?))
}

fn frame_typed(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(33 + payload.len());
    out.push(kind);
    out.extend_from_slice(&sha256(payload));
    out.extend_from_slice(payload);
    out
}

/// Strip and check the digest of a typed frame body; `None` on any
/// length or digest mismatch.
fn authenticate(rest: &[u8]) -> Option<&[u8]> {
    if rest.len() < 32 {
        return None;
    }
    let (digest, payload) = rest.split_at(32);
    (sha256(payload).as_slice() == digest).then_some(payload)
}

/// Frame a block announcement under the sender's attestation.
pub fn frame_attested_block(attestation: &Attestation, block: &Block) -> Vec<u8> {
    let mut payload = attestation.to_bytes();
    payload.extend_from_slice(&block_to_bytes(block));
    frame_typed(KIND_BLOCK, &payload)
}

pub fn frame_tip(sender: usize, height: u64, tip: Digest) -> Vec<u8> {
    let mut payload = Vec::with_capacity(48);
    payload.extend_from_slice(&(sender as u64).to_le_bytes());
    payload.extend_from_slice(&height.to_le_bytes());
    payload.extend_from_slice(&tip);
    frame_typed(KIND_TIP, &payload)
}

pub fn frame_range(requester: usize, from: u64, to: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(24);
    payload.extend_from_slice(&(requester as u64).to_le_bytes());
    payload.extend_from_slice(&from.to_le_bytes());
    payload.extend_from_slice(&to.to_le_bytes());
    frame_typed(KIND_RANGE, &payload)
}

pub fn frame_evidence(proof: &EquivocationProof) -> Vec<u8> {
    frame_typed(KIND_EVIDENCE, &proof.to_bytes())
}

pub fn frame_refusal(server: usize, requested: u64, cap: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(24);
    payload.extend_from_slice(&(server as u64).to_le_bytes());
    payload.extend_from_slice(&requested.to_le_bytes());
    payload.extend_from_slice(&cap.to_le_bytes());
    frame_typed(KIND_REFUSAL, &payload)
}

/// A decoded gossip frame. The decoder is total: any byte string maps to
/// either a variant or a typed [`NodeError`], never a panic — the
/// property the wire fuzz tests pin.
#[derive(Debug, Clone, PartialEq)]
pub enum GossipFrame {
    Block {
        attestation: Attestation,
        block: Block,
    },
    Tip {
        sender: usize,
        height: u64,
        tip: Digest,
    },
    Range {
        requester: usize,
        from: u64,
        to: u64,
    },
    Evidence(EquivocationProof),
    Refusal {
        server: usize,
        requested: u64,
        cap: u64,
    },
}

/// Decode and authenticate one gossip frame. Structural errors surface
/// as [`NodeError::Codec`]; a block frame whose attestation does not
/// cover the carried block is `InvalidElement` (an attestation for one
/// block stapled to another is an attack, not noise).
pub fn decode_frame(group: &SchnorrGroup, bytes: &[u8]) -> Result<GossipFrame, NodeError> {
    let (&kind, rest) = bytes
        .split_first()
        .ok_or(NodeError::Codec(CodecError::Truncated))?;
    let payload = authenticate(rest).ok_or(NodeError::SyncRejected {
        reason: "gossip frame failed digest authentication",
    })?;
    match kind {
        KIND_BLOCK => {
            let (attestation, used) = Attestation::decode(group, payload)
                .ok_or(NodeError::Codec(CodecError::Truncated))?;
            let block = decode_block(group, &payload[used..])?;
            if attestation.hash != block.hash() || attestation.height != block.header.height.0 {
                return Err(NodeError::SyncRejected {
                    reason: "attestation does not cover the carried block",
                });
            }
            Ok(GossipFrame::Block { attestation, block })
        }
        KIND_TIP => {
            if payload.len() != 48 {
                return Err(NodeError::Codec(CodecError::Truncated));
            }
            let sender = u64le(&payload[..8]).ok_or(NodeError::Codec(CodecError::Truncated))?;
            let height = u64le(&payload[8..16]).ok_or(NodeError::Codec(CodecError::Truncated))?;
            let tip: Digest = payload[16..48]
                .try_into()
                .map_err(|_| NodeError::Codec(CodecError::Truncated))?;
            Ok(GossipFrame::Tip {
                sender: sender as usize,
                height,
                tip,
            })
        }
        KIND_RANGE => {
            if payload.len() != 24 {
                return Err(NodeError::Codec(CodecError::Truncated));
            }
            let requester = u64le(&payload[..8]).ok_or(NodeError::Codec(CodecError::Truncated))?;
            let from = u64le(&payload[8..16]).ok_or(NodeError::Codec(CodecError::Truncated))?;
            let to = u64le(&payload[16..24]).ok_or(NodeError::Codec(CodecError::Truncated))?;
            Ok(GossipFrame::Range {
                requester: requester as usize,
                from,
                to,
            })
        }
        KIND_EVIDENCE => EquivocationProof::from_bytes(group, payload)
            .map(GossipFrame::Evidence)
            .ok_or(NodeError::SyncRejected {
                reason: "equivocation proof failed verification",
            }),
        KIND_REFUSAL => {
            if payload.len() != 24 {
                return Err(NodeError::Codec(CodecError::Truncated));
            }
            let server = u64le(&payload[..8]).ok_or(NodeError::Codec(CodecError::Truncated))?;
            let requested =
                u64le(&payload[8..16]).ok_or(NodeError::Codec(CodecError::Truncated))?;
            let cap = u64le(&payload[16..24]).ok_or(NodeError::Codec(CodecError::Truncated))?;
            Ok(GossipFrame::Refusal {
                server: server as usize,
                requested,
                cap,
            })
        }
        _ => Err(NodeError::SyncRejected {
            reason: "unknown gossip frame kind",
        }),
    }
}

/// What the gossip protocol itself did (the transport's own adversary
/// accounting lives in [`FaultStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipStats {
    /// Tip announcements pushed into the channel.
    pub announcements: u64,
    /// Range-repair requests emitted by lagging replicas.
    pub range_requests: u64,
    /// Blocks streamed in answer to range requests.
    pub range_blocks_served: u64,
    /// Frames refused by authentication or structural checks.
    pub frames_rejected: u64,
    /// Blocks appended across all live replicas by gossip delivery.
    pub blocks_applied: u64,
    /// Repeated block announcements deduplicated before verification.
    pub dup_announces: u64,
    /// Oversized range requests answered with a typed refusal.
    pub range_refusals: u64,
    /// Equivocation-proof frames pushed into the channel.
    pub evidence_frames: u64,
    /// Announced blocks refused for failing (c, ℓ) re-verification.
    pub diversity_rejects: u64,
}

/// One replica slot: live, crashed-with-durable-state, Byzantine (a
/// shadow chain tracker driven by an adversary actor), or never started.
enum Slot {
    Live(Box<SimNode>),
    Down {
        wal: Box<dyn dams_store::Backend>,
        cp: Box<dyn dams_store::Backend>,
    },
    Byz(Box<SimNode>),
    Dormant,
}

/// N durable replicas (plus optional Byzantine slots and one dormant
/// late-joiner slot) over one seeded [`FaultChannel`].
pub struct Cluster {
    slots: Vec<Slot>,
    group: SchnorrGroup,
    limits: NodeLimits,
    channel: FaultChannel,
    stats: GossipStats,
    cfg: ClusterConfig,
    /// Registered identity keys, one per slot (the simulated PKI; the
    /// public halves form the directory each [`PeerDefense`] holds).
    identities: Vec<KeyPair>,
    /// One defense table per slot (only live slots consult theirs).
    defenses: Vec<PeerDefense>,
    /// Key material for minted coinbase outputs. Deliberately NOT the
    /// fault rng: honest chain content must be identical whether or not
    /// Byzantine slots exist, so the selection-snapshot differential
    /// (adversarial vs adversary-free run) compares byte-for-byte.
    mint_rng: StdRng,
    /// Randomness for honest attestation signatures (wire-only bytes).
    sign_rng: StdRng,
    /// token id → owner keypair for every coinbase output ever minted.
    /// Adversary actors draw from this — "the attacker owns some coins"
    /// — to sign structurally valid but diversity-poisoned rings.
    minted_keys: Vec<(u64, KeyPair)>,
    actors: Vec<Actor>,
}

impl Cluster {
    /// A cluster of `live` durable replicas and one extra dormant slot
    /// (id `live`) for a late joiner. Every fault decision derives from
    /// `seed`.
    pub fn new(
        live: usize,
        group: SchnorrGroup,
        seed: u64,
        cfg: FaultConfig,
    ) -> Result<Self, NodeError> {
        Self::with_limits(live, group, seed, cfg, NodeLimits::default())
    }

    pub fn with_limits(
        live: usize,
        group: SchnorrGroup,
        seed: u64,
        cfg: FaultConfig,
        limits: NodeLimits,
    ) -> Result<Self, NodeError> {
        Self::build(live, &[], group, seed, cfg, ClusterConfig::default(), limits)
    }

    /// A cluster of `honest` durable replicas plus one Byzantine slot per
    /// entry of `actors` (ids `honest..honest + f`), plus the dormant
    /// joiner slot. The adversaries hold registered identities — the
    /// threat model is Byzantine *peers*, not unauthenticated strangers.
    pub fn with_byzantine(
        honest: usize,
        actors: &[ActorKind],
        group: SchnorrGroup,
        seed: u64,
        fault_cfg: FaultConfig,
        cluster_cfg: ClusterConfig,
    ) -> Result<Self, NodeError> {
        Self::build(
            honest,
            actors,
            group,
            seed,
            fault_cfg,
            cluster_cfg,
            NodeLimits::default(),
        )
    }

    fn build(
        live: usize,
        actor_kinds: &[ActorKind],
        group: SchnorrGroup,
        seed: u64,
        cfg: FaultConfig,
        cluster_cfg: ClusterConfig,
        limits: NodeLimits,
    ) -> Result<Self, NodeError> {
        let mut slots = Vec::with_capacity(live + actor_kinds.len() + 1);
        for id in 0..live {
            let mut node = SimNode::with_limits(id, group, limits);
            let recovered = Store::open(
                Box::new(MemBackend::new()),
                Box::new(MemBackend::new()),
                group,
                StoreConfig::default(),
            )?;
            node.attach_store(recovered)?;
            slots.push(Slot::Live(Box::new(node)));
        }
        for (i, _) in actor_kinds.iter().enumerate() {
            slots.push(Slot::Byz(Box::new(SimNode::with_limits(
                live + i,
                group,
                limits,
            ))));
        }
        slots.push(Slot::Dormant);
        let endpoints = slots.len();

        // The simulated PKI: every slot — honest, Byzantine, joiner —
        // registers an identity key drawn from its own seeded stream.
        let mut identity_rng = StdRng::seed_from_u64(seed ^ 0x1de9_717e_5a17_ed01);
        let identities: Vec<KeyPair> = (0..endpoints)
            .map(|_| KeyPair::generate(&group, &mut identity_rng))
            .collect();
        let directory: Vec<PublicKey> = identities.iter().map(|k| k.public).collect();
        let defenses = (0..endpoints)
            .map(|id| {
                PeerDefense::new(
                    id,
                    group,
                    directory.clone(),
                    cluster_cfg,
                    seed ^ 0xdefe_a5ed_0000_0000 ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                )
            })
            .collect();
        let actors = actor_kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                let id = live + i;
                Actor::new(
                    kind,
                    id,
                    group,
                    identities[id],
                    seed ^ 0xbad0_bad0_bad0_bad0 ^ (id as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f),
                )
            })
            .collect();
        Ok(Cluster {
            slots,
            group,
            limits,
            channel: FaultChannel::new(endpoints, seed, cfg),
            stats: GossipStats::default(),
            cfg: cluster_cfg,
            identities,
            defenses,
            mint_rng: StdRng::seed_from_u64(seed ^ 0x317e_d0c0_1157_a9e5),
            sign_rng: StdRng::seed_from_u64(seed ^ 0x51c7_ed5e_5510_7a11),
            minted_keys: Vec::new(),
            actors,
        })
    }

    /// The live replica at `id`, if any.
    pub fn node(&self, id: usize) -> Option<&SimNode> {
        match self.slots.get(id) {
            Some(Slot::Live(node)) => Some(node),
            _ => None,
        }
    }

    /// Ids of all live replicas.
    pub fn live_ids(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, Slot::Live(_)).then_some(i))
            .collect()
    }

    /// Ids of the Byzantine slots.
    pub fn byzantine_ids(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, Slot::Byz(_)).then_some(i))
            .collect()
    }

    /// Replica `id`'s peer-defense table.
    pub fn defense(&self, id: usize) -> Option<&PeerDefense> {
        self.defenses.get(id)
    }

    /// The gossip-layer configuration this cluster runs.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn gossip_stats(&self) -> GossipStats {
        self.stats
    }

    /// The cluster's logical clock (fault-channel ticks elapsed).
    pub fn tick(&self) -> u64 {
        self.channel.tick()
    }

    pub fn fault_stats(&self) -> FaultStats {
        self.channel.stats
    }

    /// Split the network (see [`FaultChannel::partition`]).
    pub fn partition(&mut self, isolated: &[usize]) -> Result<(), NodeError> {
        self.channel.partition(isolated)
    }

    pub fn heal(&mut self) {
        self.channel.heal();
    }

    /// Mine one coinbase block of `outputs` fresh tokens on `origin` and
    /// push-announce it, attested, to every reachable peer. Key material
    /// comes from the dedicated mint stream and is retained so
    /// adversarial actors can later spend "their own" coins.
    pub fn mine_on(&mut self, origin: usize, outputs: usize) -> Result<Block, NodeError> {
        let group = self.group;
        let out_keys: Vec<KeyPair> = (0..outputs)
            .map(|_| KeyPair::generate(&group, &mut self.mint_rng))
            .collect();
        let outs: Vec<TokenOutput> = out_keys
            .iter()
            .map(|k| TokenOutput {
                owner: k.public,
                amount: Amount(1),
            })
            .collect();
        let (block, token_count) = {
            let Some(Slot::Live(node)) = self.slots.get_mut(origin) else {
                return Err(NodeError::UnknownPeer(origin));
            };
            node.chain_mut().submit_coinbase(outs);
            let block = node.seal_block()?;
            (block, node.chain().token_count() as u64)
        };
        let first_id = token_count - outputs as u64;
        for (i, kp) in out_keys.into_iter().enumerate() {
            self.minted_keys.push((first_id + i as u64, kp));
        }
        let att = Attestation::sign(
            &group,
            origin as u64,
            block.header.height.0,
            block.hash(),
            &self.identities[origin],
            &mut self.sign_rng,
        )
        .ok_or(NodeError::SyncRejected {
            reason: "attestation signing failed",
        })?;
        let frame = frame_attested_block(&att, &block);
        for dest in 0..self.slots.len() {
            if dest != origin {
                self.channel.send_reachable(origin, dest, frame.clone());
            }
        }
        Ok(block)
    }

    /// Anti-entropy round: every live replica announces its tip to every
    /// reachable peer and re-gossips its known equivocation proofs, so
    /// verdicts converge cluster-wide even when the original evidence
    /// frames were dropped.
    pub fn announce_tips(&mut self) {
        let metrics = NodeMetrics::global();
        let mut frames = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            let Slot::Live(node) = slot else { continue };
            let Ok(tip) = node.tip_hash() else { continue };
            let height = node.chain().height() as u64;
            if height <= 1 {
                continue;
            }
            frames.push((i, FK_TIP, frame_tip(i, height, tip)));
            for proof in self.defenses[i].proofs() {
                frames.push((i, FK_EVIDENCE, frame_evidence(proof)));
            }
        }
        for (src, fk, frame) in frames {
            for dest in 0..self.slots.len() {
                if dest == src {
                    continue;
                }
                if self.channel.send_reachable(src, dest, frame.clone()) {
                    if fk == FK_TIP {
                        self.stats.announcements += 1;
                        metrics.gossip_announcements.inc();
                        dams_obs::global()
                            .counter_labeled(
                                "node.gossip.announcements_total",
                                "node",
                                &src.to_string(),
                            )
                            .inc();
                    } else {
                        self.stats.evidence_frames += 1;
                        metrics.gossip_evidence_frames.inc();
                    }
                }
            }
        }
    }

    /// Let every Byzantine actor emit this tick's attack traffic into the
    /// fault gauntlet.
    fn run_actors(&mut self) {
        if self.actors.is_empty() {
            return;
        }
        let honest = self.live_ids();
        let Cluster {
            slots,
            actors,
            channel,
            minted_keys,
            ..
        } = self;
        let tick = channel.tick();
        for actor in actors.iter_mut() {
            let Some(Slot::Byz(shadow)) = slots.get(actor.id()) else {
                continue;
            };
            for (dest, bytes) in actor.act(shadow, &honest, minted_keys, tick) {
                channel.send_reachable(actor.id(), dest, bytes);
            }
        }
    }

    /// Advance one tick: adversary actors fire, due frames deliver
    /// through each receiver's defense (rate limits → authentication →
    /// attribution → equivocation/diversity checks → staging), staged
    /// blocks whose window elapsed reach the inbox, every inbox is
    /// processed, and parent requests route through the same channel.
    /// Returns how many blocks were appended across all live replicas.
    pub fn step(&mut self) -> usize {
        self.run_actors();
        let group = self.group;
        let metrics = NodeMetrics::global();
        let frames = self.channel.advance_attributed();
        let now = self.channel.tick();
        // Responses generated while dispatching (range requests, served
        // ranges, refusals, evidence) are collected and sent after the
        // borrow of the slot table ends; they re-enter the fault gauntlet
        // like any frame.
        let mut outgoing: Vec<(usize, usize, Vec<u8>)> = Vec::new();
        {
            let Cluster {
                slots,
                defenses,
                channel,
                stats,
                identities,
                sign_rng,
                cfg,
                ..
            } = self;
            let chan_stats = &mut channel.stats;
            let n = slots.len();
            for (i, slot) in slots.iter().enumerate() {
                if let Slot::Live(node) = slot {
                    defenses[i].on_tick(now, node.chain().height() as u64);
                }
            }
            for (src, dest, bytes) in frames {
                let node = match slots.get_mut(dest) {
                    Some(Slot::Live(node)) => node,
                    Some(Slot::Byz(shadow)) => {
                        // A Byzantine slot's shadow tracker swallows block
                        // frames so its actor knows the honest tip; it
                        // never answers anything.
                        if let Ok(GossipFrame::Block { block, .. }) = decode_frame(&group, &bytes)
                        {
                            let _ = shadow.deliver(BlockAnnouncement { block });
                        }
                        continue;
                    }
                    // Frames addressed to a dead or dormant slot vanish,
                    // like packets to a powered-off host.
                    _ => continue,
                };
                let defense = &mut defenses[dest];
                let fk = match bytes.first() {
                    Some(&KIND_BLOCK) => FK_BLOCK,
                    Some(&KIND_TIP) => FK_TIP,
                    Some(&KIND_RANGE) => FK_RANGE,
                    _ => FK_EVIDENCE,
                };
                if src != dest && defense.intake(src, fk) == Intake::Drop {
                    continue;
                }
                let mut reject = false;
                match decode_frame(&group, &bytes) {
                    Err(_) => reject = true,
                    Ok(GossipFrame::Block { attestation, block }) => {
                        // Attribution: the sender must vouch, under its
                        // own registered key, for exactly what it sends.
                        if attestation.origin as usize != src
                            || !attestation.verify(&group, defense.directory())
                        {
                            reject = true;
                        } else {
                            let hash = block.hash();
                            let h = attestation.height as usize;
                            let already = node
                                .chain()
                                .blocks()
                                .get(h)
                                .is_some_and(|b| b.hash() == hash);
                            if already || defense.is_staged(&hash) {
                                stats.dup_announces += 1;
                                metrics.gossip_dup_announce.inc();
                                defense.note_block_from(src);
                            } else if let Some(proof) = defense.observe_attestation(&attestation)
                            {
                                // Caught red-handed: two signed claims at
                                // one height. Ban locally, void the
                                // equivocator's staged blocks, and hand
                                // every peer the same verifiable proof.
                                if defense.apply_proof(&proof) {
                                    dams_obs::global()
                                        .counter_labeled(
                                            "node.peers.equivocations_total",
                                            "node",
                                            &dest.to_string(),
                                        )
                                        .inc();
                                    let ev = frame_evidence(&proof);
                                    for peer in 0..n {
                                        if peer != dest {
                                            outgoing.push((dest, peer, ev.clone()));
                                        }
                                    }
                                }
                            } else if let Err(h) = recheck_block_diversity(node.chain(), &block) {
                                // Structurally valid, cryptographically
                                // signed — and lying about its rings'
                                // (c, ℓ)-diversity. Never staged.
                                defense.record(src, Misbehavior::DiversityViolation { height: h });
                                stats.diversity_rejects += 1;
                                metrics.peers_diversity_rejects.inc();
                            } else {
                                defense.note_block_from(src);
                                defense.stage(src, block);
                                chan_stats.delivered += 1;
                                metrics.bus_delivered.inc();
                                dams_obs::global()
                                    .counter_labeled(
                                        "node.gossip.delivered_total",
                                        "node",
                                        &dest.to_string(),
                                    )
                                    .inc();
                            }
                        }
                    }
                    Ok(GossipFrame::Tip { sender, height, .. }) => {
                        if sender != src {
                            reject = true;
                        } else {
                            let local = node.chain().height() as u64;
                            if height > local {
                                // Clamp the pull to the server's cap — an
                                // oversized request would be refused whole.
                                let target = height.min(local + cfg.max_range_blocks as u64);
                                if defense.watch_tip(src, target) {
                                    outgoing.push((dest, src, frame_range(dest, local, target)));
                                    stats.range_requests += 1;
                                    metrics.gossip_range_requests.inc();
                                }
                            }
                        }
                    }
                    Ok(GossipFrame::Range { requester, from, to }) => {
                        if requester != src {
                            reject = true;
                        } else {
                            match node.serve_range_checked(
                                from as usize,
                                to as usize,
                                cfg.max_range_blocks,
                            ) {
                                Ok(blocks) => {
                                    stats.range_blocks_served += blocks.len() as u64;
                                    metrics.gossip_range_blocks_served.add(blocks.len() as u64);
                                    for b in &blocks {
                                        if let Some(att) = Attestation::sign(
                                            &group,
                                            dest as u64,
                                            b.header.height.0,
                                            b.hash(),
                                            &identities[dest],
                                            sign_rng,
                                        ) {
                                            outgoing.push((
                                                dest,
                                                src,
                                                frame_attested_block(&att, b),
                                            ));
                                        }
                                    }
                                }
                                Err(NodeError::RangeRefused { requested, cap }) => {
                                    defense.record(src, Misbehavior::RangeAbuse { requested, cap });
                                    stats.range_refusals += 1;
                                    metrics.gossip_range_refusals.inc();
                                    outgoing.push((
                                        dest,
                                        src,
                                        frame_refusal(dest, requested, cap),
                                    ));
                                }
                                Err(_) => reject = true,
                            }
                        }
                    }
                    Ok(GossipFrame::Evidence(proof)) => {
                        // Self-authenticating: verify the two signatures
                        // locally, never trust the reporter.
                        defense.apply_proof(&proof);
                    }
                    Ok(GossipFrame::Refusal { server, .. }) => {
                        // An honest requester never trips the cap (it
                        // clamps), so a refusal is informational; the
                        // pending watch resolves or strikes on its own.
                        if server != src {
                            reject = true;
                        }
                    }
                }
                if reject {
                    chan_stats.decode_rejected += 1;
                    stats.frames_rejected += 1;
                    metrics.bus_decode_rejected.inc();
                    metrics.gossip_frames_rejected.inc();
                }
            }

            // Staged blocks whose equivocation window elapsed reach the
            // inbox — re-checked against the *current* ledger first, so a
            // poisoned ring can't slip through by racing its own mint.
            for (i, slot) in slots.iter_mut().enumerate() {
                let Slot::Live(node) = slot else { continue };
                let defense = &mut defenses[i];
                for (origin, block) in defense.release_staged() {
                    if let Err(h) = recheck_block_diversity(node.chain(), &block) {
                        defense.record(origin, Misbehavior::DiversityViolation { height: h });
                        stats.diversity_rejects += 1;
                        metrics.peers_diversity_rejects.inc();
                        continue;
                    }
                    if node.deliver(BlockAnnouncement { block }).is_err() {
                        chan_stats.inbox_rejected += 1;
                    }
                }
            }
        }
        for (src, dest, frame) in outgoing {
            self.channel.send_reachable(src, dest, frame);
        }

        let mut appended = 0;
        for slot in &mut self.slots {
            match slot {
                Slot::Live(node) => appended += node.process_inbox(),
                Slot::Byz(shadow) => {
                    shadow.process_inbox();
                }
                _ => {}
            }
        }
        self.stats.blocks_applied += appended as u64;

        // Parent-request protocol: the first reachable live peer that has
        // the block serves it, attested, through the same faulty channel.
        for i in 0..self.slots.len() {
            let requests = match &mut self.slots[i] {
                Slot::Live(node) => node.parent_requests(),
                _ => continue,
            };
            for hash in requests {
                let served = (0..self.slots.len())
                    .filter(|&j| j != i && self.channel.reachable(i, j))
                    .find_map(|j| match &self.slots[j] {
                        Slot::Live(peer) => peer.serve_block(hash).map(|b| (j, b)),
                        _ => None,
                    });
                if let Some((server, block)) = served {
                    if let Some(att) = Attestation::sign(
                        &self.group,
                        server as u64,
                        block.header.height.0,
                        block.hash(),
                        &self.identities[server],
                        &mut self.sign_rng,
                    ) {
                        self.channel
                            .send_from(server, i, frame_attested_block(&att, &block));
                    }
                }
            }
        }
        appended
    }

    /// Crash replica `id` mid-run: volatile state dies, in-flight traffic
    /// to it dies, but its durable store survives for [`Cluster::restart`].
    pub fn kill(&mut self, id: usize) -> Result<(), NodeError> {
        let slot = self.slots.get_mut(id).ok_or(NodeError::UnknownPeer(id))?;
        let Slot::Live(node) = slot else {
            return Err(NodeError::UnknownPeer(id));
        };
        let mut store = node.take_store().ok_or(NodeError::SyncRejected {
            reason: "killed replica has no durable store",
        })?;
        store.crash();
        let (wal, cp) = store.into_backends();
        *slot = Slot::Down { wal, cp };
        self.channel.drop_addressed_to(id);
        Ok(())
    }

    /// Restart a killed replica: recover from its own durable store
    /// (checkpoint + WAL tail, verified replay), then stream the blocks
    /// it missed from the first reachable live peer. Returns the local
    /// recovery report and how many blocks the tail stream applied.
    pub fn restart(&mut self, id: usize) -> Result<(RecoveryReport, u64), NodeError> {
        let slot = self.slots.get_mut(id).ok_or(NodeError::UnknownPeer(id))?;
        let (wal, cp) = match std::mem::replace(slot, Slot::Dormant) {
            Slot::Down { wal, cp } => (wal, cp),
            other => {
                *slot = other;
                return Err(NodeError::UnknownPeer(id));
            }
        };
        let (mut node, report) =
            SimNode::restore_from_store(id, self.group, self.limits, wal, cp, StoreConfig::default())?;
        let mut applied = 0;
        for peer_id in 0..self.slots.len() {
            if peer_id == id || !self.channel.reachable(id, peer_id) {
                continue;
            }
            if let Slot::Live(peer) = &mut self.slots[peer_id] {
                if peer.has_store() {
                    applied = catch_up_tail(&mut node, peer)?;
                    break;
                }
            }
        }
        self.slots[id] = Slot::Live(Box::new(node));
        Ok((report, applied))
    }

    /// Bring the dormant slot `id` online by bootstrapping it from a
    /// bundle served by live peer `from` — checkpoint catch-up, not full
    /// replay.
    pub fn join(&mut self, id: usize, from: usize) -> Result<SyncReport, NodeError> {
        if !matches!(self.slots.get(id), Some(Slot::Dormant)) {
            return Err(NodeError::UnknownPeer(id));
        }
        let frame = match self.slots.get_mut(from) {
            Some(Slot::Live(peer)) => serve_bundle(peer)?,
            _ => return Err(NodeError::UnknownPeer(from)),
        };
        let (node, report) = bootstrap_from_bundle(id, self.group, self.limits, &frame)?;
        self.slots[id] = Slot::Live(Box::new(node));
        Ok(report)
    }

    /// Drive the cluster until every live replica converges and the
    /// channel drains, re-announcing tips every few ticks. Returns ticks
    /// consumed, or `None` if `max_ticks` elapsed without convergence.
    pub fn run_until_converged(&mut self, max_ticks: u64) -> Option<u64> {
        let start = self.channel.tick();
        for _ in 0..max_ticks {
            self.step();
            if self.channel.idle() && self.converged() && self.staging_empty() {
                return Some(self.channel.tick() - start);
            }
            if self.channel.tick().is_multiple_of(4) {
                self.announce_tips();
            }
        }
        None
    }

    /// Drive an adversarial cluster until the honest replicas converge at
    /// `expected_height` with every Byzantine peer banned everywhere and
    /// no blocks left in staging. `idle()` is useless here — adversaries
    /// keep transmitting — so the exit condition is the defended state
    /// itself. Returns ticks consumed, or `None` on budget exhaustion.
    pub fn run_until_defended(&mut self, expected_height: usize, max_ticks: u64) -> Option<u64> {
        let start = self.channel.tick();
        for _ in 0..max_ticks {
            self.step();
            if self.defended(expected_height) {
                return Some(self.channel.tick() - start);
            }
            if self.channel.tick().is_multiple_of(4) {
                self.announce_tips();
            }
        }
        None
    }

    /// The defended state: honest convergence at the expected height,
    /// every Byzantine peer banned by every honest replica, staging
    /// drained.
    pub fn defended(&self, expected_height: usize) -> bool {
        let byz = self.byzantine_ids();
        self.converged()
            && self.staging_empty()
            && self.live_ids().iter().all(|&i| {
                self.node(i)
                    .is_some_and(|n| n.chain().height() == expected_height)
            })
            && self
                .live_ids()
                .iter()
                .all(|&i| byz.iter().all(|&b| self.defenses[i].is_banned(b)))
    }

    /// Whether no live replica holds blocks in its staging window.
    pub fn staging_empty(&self) -> bool {
        self.live_ids()
            .iter()
            .all(|&i| self.defenses[i].staged_len() == 0)
    }

    /// Whether all live replicas share byte-identical tip blocks.
    pub fn converged(&self) -> bool {
        let mut tips: Vec<Vec<u8>> = Vec::new();
        for slot in &self.slots {
            if let Slot::Live(node) = slot {
                match node.chain().blocks().last() {
                    Some(tip) => tips.push(block_to_bytes(tip)),
                    None => return false,
                }
            }
        }
        !tips.is_empty() && tips.windows(2).all(|w| w[0] == w[1])
    }

    /// Whether all live replicas derive identical batch lists at λ.
    pub fn batch_consensus(&self, lambda: usize) -> bool {
        let lists: Vec<BatchList> = self
            .slots
            .iter()
            .filter_map(|s| match s {
                Slot::Live(node) => Some(BatchList::build(node.chain(), lambda)),
                _ => None,
            })
            .collect();
        lists.windows(2).all(|w| w[0].batches() == w[1].batches())
    }

    /// Re-verify every live replica's committed (c, ℓ)-diversity evidence
    /// and require identical, violation-free verdicts across the cluster.
    pub fn immutability_consensus(&self) -> bool {
        let checks: Vec<ImmutabilityCheck> = self
            .slots
            .iter()
            .filter_map(|s| match s {
                Slot::Live(node) => Some(recheck_node(node)),
                _ => None,
            })
            .collect();
        checks.iter().all(|c| c.violations.is_empty())
            && checks.windows(2).all(|w| w[0] == w[1])
    }

    /// Total blocks served to peers by all live replicas' stores.
    pub fn blocks_served_total(&self) -> u64 {
        self.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Live(node) => node.store().map(Store::blocks_served),
                _ => None,
            })
            .sum()
    }
}

/// Outcome of one scripted cluster scenario (see
/// [`run_cluster_scenario`]).
#[derive(Debug, Clone)]
pub struct ClusterReport {
    pub seed: u64,
    /// Replicas the scenario started with (the late joiner is extra).
    pub nodes: usize,
    /// Live replicas at the end (includes the joiner).
    pub live: usize,
    /// All live replicas ended on byte-identical tips.
    pub converged: bool,
    /// All live replicas derive the same batch list at the run's λ.
    pub batch_consensus: bool,
    /// All live replicas hold identical, violation-free (c, ℓ) verdicts.
    pub immutability_ok: bool,
    /// Final chain height of node 0 (including genesis).
    pub height: usize,
    /// Ticks the run took to converge, `None` when it hit the budget.
    pub ticks: Option<u64>,
    /// Crash/restart phase: (recovery was clean, blocks the tail stream
    /// applied). `None` when the scenario had no kill phase.
    pub restart: Option<(bool, u64)>,
    /// Late-joiner bootstrap split (checkpoint prefix vs verified tail).
    pub joiner: Option<SyncReport>,
    /// Blocks served to peers across all stores (bundle + tail streams).
    pub blocks_served: u64,
    pub fault_stats: FaultStats,
    pub gossip_stats: GossipStats,
}

impl ClusterReport {
    /// Whether the scenario met every convergence invariant.
    pub fn ok(&self) -> bool {
        self.converged
            && self.batch_consensus
            && self.immutability_ok
            && self.ticks.is_some()
            && self.restart.is_none_or(|(clean, _)| clean)
            && self.joiner.is_none_or(|j| j.clean)
    }

    /// Deterministic multi-line rendering for `dams-cli cluster-sim`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("cluster report:\n");
        out.push_str(&format!(
            "  scenario: seed {}, {} nodes (+1 late joiner), height {}\n",
            self.seed, self.nodes, self.height
        ));
        out.push_str(&format!(
            "  convergence: {} live replicas, {}\n",
            self.live,
            match self.ticks {
                Some(t) => format!("byte-identical tips after {t} ticks"),
                None => "tick budget exhausted".into(),
            }
        ));
        out.push_str(&format!(
            "  batch consensus: {}\n",
            if self.batch_consensus { "identical batch lists" } else { "DIVERGENT" }
        ));
        out.push_str(&format!(
            "  immutability: {}\n",
            if self.immutability_ok {
                "identical violation-free (c, l) verdicts"
            } else {
                "VERDICTS DIVERGE OR VIOLATED"
            }
        ));
        match self.restart {
            Some((clean, applied)) => out.push_str(&format!(
                "  crash/restart: recovered {}, tail stream applied {} blocks\n",
                if clean { "CLEAN" } else { "FLAGGED" },
                applied
            )),
            None => out.push_str("  crash/restart: not exercised\n"),
        }
        match &self.joiner {
            Some(j) => out.push_str(&format!(
                "  late joiner: {} blocks structural (checkpoint), {} fully verified (tail), \
                 {} rings rechecked\n",
                j.prefix_adopted, j.tail_verified, j.rings_rechecked
            )),
            None => out.push_str("  late joiner: not exercised\n"),
        }
        out.push_str(&format!(
            "  catch-up served: {} blocks\n",
            self.blocks_served
        ));
        let g = &self.gossip_stats;
        out.push_str(&format!(
            "  gossip: {} announcements, {} range requests, {} range blocks served, \
             {} frames rejected, {} blocks applied, {} dup announces, {} refusals\n",
            g.announcements, g.range_requests, g.range_blocks_served, g.frames_rejected,
            g.blocks_applied, g.dup_announces, g.range_refusals
        ));
        let f = &self.fault_stats;
        out.push_str(&format!(
            "  faults: {} sent, {} dropped, {} duplicated, {} delayed, {} corrupted, \
             {} decode-rejected, {} partition-blocked\n",
            f.sent, f.dropped, f.duplicated, f.delayed, f.corrupted, f.decode_rejected,
            f.partition_blocked
        ));
        out.push_str(&format!(
            "  verdict: {}\n",
            if self.ok() { "CONVERGED" } else { "DIVERGED" }
        ));
        out
    }
}

/// The scripted cluster scenario, replayable from `seed`: `nodes` durable
/// replicas mine under the default fault model, a minority partitions
/// away while mining continues (3+ nodes), one replica is killed mid-run
/// and restarted from its store + a peer tail stream (2+ nodes), a late
/// joiner bootstraps from a checkpoint bundle, and everyone must converge
/// on byte-identical tips with identical selection verdicts.
pub fn run_cluster_scenario(seed: u64, nodes: usize) -> Result<ClusterReport, NodeError> {
    const LAMBDA: usize = 4;
    let nodes = nodes.max(1);
    let group = SchnorrGroup::default();
    let mut cluster = Cluster::new(nodes, group, seed, FaultConfig::default())?;

    // Phase 1: healthy-but-faulty mining.
    for _ in 0..4 {
        cluster.mine_on(0, 2)?;
        cluster.step();
    }

    // Phase 2 (3+ nodes): partition a minority; the majority keeps mining.
    if nodes >= 3 {
        cluster.partition(&[nodes - 1])?;
        for _ in 0..3 {
            cluster.mine_on(0, 2)?;
            cluster.step();
        }
        cluster.heal();
        cluster.step();
    }

    // Phase 3 (2+ nodes): kill a replica mid-run, mine past it, restart
    // it from its own store plus a peer-served WAL tail.
    let restart = if nodes >= 2 {
        cluster.kill(1)?;
        for _ in 0..2 {
            cluster.mine_on(0, 2)?;
            cluster.step();
        }
        let (report, applied) = cluster.restart(1)?;
        Some((report.clean(), applied))
    } else {
        for _ in 0..2 {
            cluster.mine_on(0, 2)?;
            cluster.step();
        }
        None
    };

    // Phase 4: one more block, then the late joiner bootstraps from a
    // checkpoint bundle served by node 0.
    cluster.mine_on(0, 2)?;
    cluster.step();
    let joiner = cluster.join(nodes, 0)?;

    let ticks = cluster.run_until_converged(800);
    let height = cluster
        .node(0)
        .map(|n| n.chain().height())
        .unwrap_or_default();
    Ok(ClusterReport {
        seed,
        nodes,
        live: cluster.live_ids().len(),
        converged: cluster.converged(),
        batch_consensus: cluster.batch_consensus(LAMBDA),
        immutability_ok: cluster.immutability_consensus(),
        height,
        ticks,
        restart,
        joiner: Some(joiner),
        blocks_served: cluster.blocks_served_total(),
        fault_stats: cluster.fault_stats(),
        gossip_stats: cluster.gossip_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_cluster_converges_via_push_gossip() {
        let group = SchnorrGroup::default();
        let mut cluster = Cluster::new(3, group, 7, FaultConfig::lossless()).unwrap();
        for _ in 0..3 {
            cluster.mine_on(0, 2).unwrap();
        }
        assert!(cluster.run_until_converged(100).is_some());
        assert!(cluster.converged());
        assert!(cluster.batch_consensus(3));
        assert!(cluster.immutability_consensus());
        assert_eq!(cluster.live_ids(), vec![0, 1, 2]);
    }

    #[test]
    fn tip_announcements_trigger_range_repair() {
        let group = SchnorrGroup::default();
        let mut cluster = Cluster::new(3, group, 9, FaultConfig::lossless()).unwrap();
        // Node 2 misses all push gossip while partitioned.
        cluster.partition(&[2]).unwrap();
        for _ in 0..4 {
            cluster.mine_on(0, 1).unwrap();
            cluster.step();
        }
        assert_eq!(cluster.node(2).unwrap().chain().height(), 1);
        cluster.heal();
        // No new blocks are pushed after the heal: only anti-entropy tip
        // announcements + pull range repair can close the gap.
        assert!(cluster.run_until_converged(200).is_some());
        assert!(cluster.converged());
        let stats = cluster.gossip_stats();
        assert!(stats.range_requests > 0, "{stats:?}");
        assert!(stats.range_blocks_served >= 4, "{stats:?}");
    }

    #[test]
    fn kill_restart_recovers_from_store_and_tail_stream() {
        let group = SchnorrGroup::default();
        let mut cluster = Cluster::new(3, group, 11, FaultConfig::lossless()).unwrap();
        for _ in 0..3 {
            cluster.mine_on(0, 1).unwrap();
            cluster.step();
        }
        cluster.run_until_converged(100).unwrap();
        cluster.kill(1).unwrap();
        assert_eq!(cluster.live_ids(), vec![0, 2]);
        for _ in 0..2 {
            cluster.mine_on(0, 1).unwrap();
            cluster.step();
        }
        let (report, applied) = cluster.restart(1).unwrap();
        assert!(report.clean(), "{report:?}");
        assert_eq!(
            report.height, 3,
            "local store recovers the pre-crash chain"
        );
        assert_eq!(applied, 2, "tail stream applies exactly the missed blocks");
        assert!(cluster.run_until_converged(200).is_some());
        assert!(cluster.converged());
    }

    #[test]
    fn late_joiner_bootstraps_o_tail() {
        let group = SchnorrGroup::default();
        let mut cluster = Cluster::new(2, group, 13, FaultConfig::lossless()).unwrap();
        for _ in 0..6 {
            cluster.mine_on(0, 1).unwrap();
            cluster.step();
        }
        cluster.run_until_converged(100).unwrap();
        let report = cluster.join(2, 0).unwrap();
        assert!(report.clean, "{report:?}");
        assert_eq!(report.height, 6);
        assert!(
            report.tail_verified <= StoreConfig::default().checkpoint_interval,
            "O(tail) violated: {report:?}"
        );
        assert!(report.prefix_adopted >= 4, "{report:?}");
        assert!(cluster.run_until_converged(100).is_some());
        assert_eq!(cluster.live_ids(), vec![0, 1, 2]);
        // Joining twice is a typed error, not a double-spawn.
        assert!(cluster.join(2, 0).is_err());
    }

    #[test]
    fn scripted_scenario_replays_identically() {
        let a = run_cluster_scenario(42, 3).unwrap();
        let b = run_cluster_scenario(42, 3).unwrap();
        assert_eq!(a.fault_stats, b.fault_stats);
        assert_eq!(a.gossip_stats, b.gossip_stats);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.render(), b.render(), "render must be deterministic");
    }

    #[test]
    fn scripted_scenario_converges_at_all_bench_sizes() {
        for nodes in [1, 3, 5] {
            let report = run_cluster_scenario(1234, nodes).unwrap();
            assert!(report.ok(), "nodes {nodes}: {}", report.render());
            let expected_height = if nodes >= 3 { 11 } else { 8 };
            assert_eq!(report.height, expected_height, "nodes {nodes}");
            if let Some(j) = report.joiner {
                assert!(
                    j.tail_verified <= StoreConfig::default().checkpoint_interval,
                    "nodes {nodes}: O(tail) violated: {j:?}"
                );
            }
        }
    }

    #[test]
    fn corrupt_frames_never_reach_a_chain() {
        let group = SchnorrGroup::default();
        let cfg = FaultConfig {
            corrupt_prob: 1.0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
            reorder: false,
        };
        let mut cluster = Cluster::new(2, group, 5, cfg).unwrap();
        cluster.mine_on(0, 2).unwrap();
        for _ in 0..10 {
            cluster.step();
        }
        cluster.announce_tips();
        for _ in 0..10 {
            cluster.step();
        }
        // Every frame was corrupted: block frames fail the digest or the
        // attestation, tip/range frames fail their digests. Node 1 never
        // adopts anything — and no honest peer is blamed for transport
        // damage (corruption is the channel's fault, not the sender's).
        assert_eq!(cluster.node(1).unwrap().chain().height(), 1);
        let f = cluster.fault_stats();
        assert!(f.decode_rejected > 0, "{f:?}");
        assert!(
            cluster.defense(1).unwrap().records().is_empty(),
            "corruption must not be attributed: {:?}",
            cluster.defense(1).unwrap().records()
        );
    }

    #[test]
    fn duplicate_announcements_are_deduplicated() {
        let group = SchnorrGroup::default();
        let cfg = FaultConfig {
            dup_prob: 1.0,
            drop_prob: 0.0,
            delay_prob: 0.0,
            corrupt_prob: 0.0,
            max_delay: 0,
            reorder: false,
        };
        let mut cluster = Cluster::new(2, group, 21, cfg).unwrap();
        cluster.mine_on(0, 1).unwrap();
        assert!(cluster.run_until_converged(100).is_some());
        let stats = cluster.gossip_stats();
        assert!(
            stats.dup_announces > 0,
            "every frame was duplicated, dedup must fire: {stats:?}"
        );
        // The duplicate never re-entered verification or staging: exactly
        // one copy of the block was staged and adopted.
        assert_eq!(cluster.node(1).unwrap().chain().height(), 2);
    }

    #[test]
    fn oversized_range_requests_get_typed_refusals() {
        let group = SchnorrGroup::default();
        let mut cluster = Cluster::new(2, group, 23, FaultConfig::lossless()).unwrap();
        for _ in 0..3 {
            cluster.mine_on(0, 1).unwrap();
            cluster.step();
        }
        cluster.run_until_converged(100).unwrap();
        let cap = cluster.config().max_range_blocks as u64;
        // A hand-rolled range request far over the cap, "from" node 1.
        let abusive = frame_range(1, 0, cap * 10);
        cluster.channel.send_from(1, 0, abusive);
        cluster.step();
        cluster.step();
        let stats = cluster.gossip_stats();
        assert_eq!(stats.range_refusals, 1, "{stats:?}");
        let defense = cluster.defense(0).unwrap();
        assert!(
            defense
                .records()
                .iter()
                .any(|r| r.peer == 1
                    && matches!(r.offense, Misbehavior::RangeAbuse { requested, cap: c }
                        if requested == cap * 10 && c == cap)),
            "{:?}",
            defense.records()
        );
    }

    #[test]
    fn gossip_frames_roundtrip_through_decode_frame() {
        let group = SchnorrGroup::default();
        let mut rng = StdRng::seed_from_u64(3);
        let identity = KeyPair::generate(&group, &mut rng);
        let tip = frame_tip(2, 9, [6u8; 32]);
        assert_eq!(
            decode_frame(&group, &tip).unwrap(),
            GossipFrame::Tip {
                sender: 2,
                height: 9,
                tip: [6u8; 32]
            }
        );
        let range = frame_range(1, 4, 9);
        assert_eq!(
            decode_frame(&group, &range).unwrap(),
            GossipFrame::Range {
                requester: 1,
                from: 4,
                to: 9
            }
        );
        let refusal = frame_refusal(0, 99, 16);
        assert_eq!(
            decode_frame(&group, &refusal).unwrap(),
            GossipFrame::Refusal {
                server: 0,
                requested: 99,
                cap: 16
            }
        );
        let a = Attestation::sign(&group, 0, 3, [1u8; 32], &identity, &mut rng).unwrap();
        let b = Attestation::sign(&group, 0, 3, [2u8; 32], &identity, &mut rng).unwrap();
        let proof = EquivocationProof { a, b };
        let ev = frame_evidence(&proof);
        assert_eq!(
            decode_frame(&group, &ev).unwrap(),
            GossipFrame::Evidence(proof)
        );
        // A block frame whose attestation covers a different block is an
        // attack, not a decode success.
        let chain = dams_blockchain::Chain::new(group);
        let genesis = chain.blocks()[0].clone();
        let stapled =
            Attestation::sign(&group, 0, 0, [9u8; 32], &identity, &mut rng).unwrap();
        let bad = frame_attested_block(&stapled, &genesis);
        assert!(decode_frame(&group, &bad).is_err());
        let good_att =
            Attestation::sign(&group, 0, 0, genesis.hash(), &identity, &mut rng).unwrap();
        let good = frame_attested_block(&good_att, &genesis);
        assert!(matches!(
            decode_frame(&group, &good),
            Ok(GossipFrame::Block { .. })
        ));
    }
}
