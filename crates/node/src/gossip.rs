//! Anti-entropy gossip over the seeded fault channel: the multi-node
//! replication layer.
//!
//! A [`Cluster`] is N simulated replicas plus one dormant late-joiner
//! slot, all exchanging typed frames through one [`FaultChannel`] — so
//! every drop, duplicate, delay, reorder, byte-flip, and partition
//! decision the gossip traffic suffers replays exactly from a single
//! `u64` seed. Three frame kinds, each self-authenticating:
//!
//! * **Block** — `kind ‖ hash ‖ bytes`, the push half: a freshly sealed
//!   block is announced to every reachable peer (same framing as
//!   [`crate::faults::FaultyBus`]).
//! * **Tip** — `kind ‖ sha256 ‖ (sender ‖ height ‖ tip-hash)`, the
//!   anti-entropy heartbeat. A receiver that is *behind* the announced
//!   height answers with a range request; a corrupt tip frame is
//!   rejected at the wire.
//! * **Range request** — `kind ‖ sha256 ‖ (requester ‖ from ‖ to)`, the
//!   pull half: the server streams the requested heights (capped per
//!   request) back as ordinary block frames, which re-enter the fault
//!   gauntlet like any other traffic.
//!
//! Recovery composes the existing machinery instead of re-inventing it:
//! a killed replica restarts from its own durable store
//! ([`SimNode::restore_from_store`]) and pulls the blocks it missed via
//! [`crate::sync::catch_up_tail`]; a late joiner bootstraps from a
//! peer-served checkpoint bundle ([`crate::sync::bootstrap_from_bundle`])
//! and fully re-verifies only the blocks past the checkpoint. Every
//! replica's committed (c, ℓ)-diversity evidence is re-checked after a
//! scenario — convergence means identical tips *and* identical selection
//! verdicts.

use dams_blockchain::{block_to_bytes, Amount, BatchList, Block, TokenOutput};
use dams_crypto::sha256::{sha256, Digest};
use dams_crypto::{KeyPair, SchnorrGroup};
use dams_store::{ImmutabilityCheck, MemBackend, RecoveryReport, Store, StoreConfig};

use crate::error::NodeError;
use crate::faults::{frame_block, unframe_block, FaultChannel, FaultConfig, FaultStats};
use crate::network::{BlockAnnouncement, NodeLimits, SimNode};
use crate::obs::NodeMetrics;
use crate::sync::{bootstrap_from_bundle, catch_up_tail, recheck_node, serve_bundle, SyncReport};

const KIND_BLOCK: u8 = 1;
const KIND_TIP: u8 = 2;
const KIND_RANGE: u8 = 3;

/// Blocks a single range request may stream — a lagging node recovers a
/// long gap over several tip→request→serve rounds instead of one
/// unbounded burst.
const MAX_RANGE_BLOCKS: usize = 16;

fn u64le(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
}

fn frame_typed(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(33 + payload.len());
    out.push(kind);
    out.extend_from_slice(&sha256(payload));
    out.extend_from_slice(payload);
    out
}

/// Strip and check the digest of a typed frame body; `None` on any
/// length or digest mismatch.
fn authenticate(rest: &[u8], payload_len: usize) -> Option<&[u8]> {
    if rest.len() != 32 + payload_len {
        return None;
    }
    let (digest, payload) = rest.split_at(32);
    (sha256(payload).as_slice() == digest).then_some(payload)
}

fn frame_gossip_block(block: &Block) -> Vec<u8> {
    let mut out = vec![KIND_BLOCK];
    out.extend_from_slice(&frame_block(block));
    out
}

fn frame_tip(sender: usize, height: u64, tip: Digest) -> Vec<u8> {
    let mut payload = Vec::with_capacity(48);
    payload.extend_from_slice(&(sender as u64).to_le_bytes());
    payload.extend_from_slice(&height.to_le_bytes());
    payload.extend_from_slice(&tip);
    frame_typed(KIND_TIP, &payload)
}

fn frame_range(requester: usize, from: u64, to: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(24);
    payload.extend_from_slice(&(requester as u64).to_le_bytes());
    payload.extend_from_slice(&from.to_le_bytes());
    payload.extend_from_slice(&to.to_le_bytes());
    frame_typed(KIND_RANGE, &payload)
}

/// What the gossip protocol itself did (the transport's own adversary
/// accounting lives in [`FaultStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipStats {
    /// Tip announcements pushed into the channel.
    pub announcements: u64,
    /// Range-repair requests emitted by lagging replicas.
    pub range_requests: u64,
    /// Blocks streamed in answer to range requests.
    pub range_blocks_served: u64,
    /// Frames refused by authentication or structural checks.
    pub frames_rejected: u64,
    /// Blocks appended across all replicas by gossip delivery.
    pub blocks_applied: u64,
}

/// One replica slot: live, crashed-with-durable-state, or never started.
enum Slot {
    Live(Box<SimNode>),
    Down {
        wal: Box<dyn dams_store::Backend>,
        cp: Box<dyn dams_store::Backend>,
    },
    Dormant,
}

/// N durable replicas plus a dormant late-joiner slot over one seeded
/// [`FaultChannel`].
pub struct Cluster {
    slots: Vec<Slot>,
    group: SchnorrGroup,
    limits: NodeLimits,
    channel: FaultChannel,
    stats: GossipStats,
}

impl Cluster {
    /// A cluster of `live` durable replicas and one extra dormant slot
    /// (id `live`) for a late joiner. Every fault decision derives from
    /// `seed`.
    pub fn new(
        live: usize,
        group: SchnorrGroup,
        seed: u64,
        cfg: FaultConfig,
    ) -> Result<Self, NodeError> {
        Self::with_limits(live, group, seed, cfg, NodeLimits::default())
    }

    pub fn with_limits(
        live: usize,
        group: SchnorrGroup,
        seed: u64,
        cfg: FaultConfig,
        limits: NodeLimits,
    ) -> Result<Self, NodeError> {
        let mut slots = Vec::with_capacity(live + 1);
        for id in 0..live {
            let mut node = SimNode::with_limits(id, group, limits);
            let recovered = Store::open(
                Box::new(MemBackend::new()),
                Box::new(MemBackend::new()),
                group,
                StoreConfig::default(),
            )?;
            node.attach_store(recovered)?;
            slots.push(Slot::Live(Box::new(node)));
        }
        slots.push(Slot::Dormant);
        let endpoints = slots.len();
        Ok(Cluster {
            slots,
            group,
            limits,
            channel: FaultChannel::new(endpoints, seed, cfg),
            stats: GossipStats::default(),
        })
    }

    /// The live replica at `id`, if any.
    pub fn node(&self, id: usize) -> Option<&SimNode> {
        match self.slots.get(id) {
            Some(Slot::Live(node)) => Some(node),
            _ => None,
        }
    }

    /// Ids of all live replicas.
    pub fn live_ids(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, Slot::Live(_)).then_some(i))
            .collect()
    }

    pub fn gossip_stats(&self) -> GossipStats {
        self.stats
    }

    pub fn fault_stats(&self) -> FaultStats {
        self.channel.stats
    }

    /// Split the network (see [`FaultChannel::partition`]).
    pub fn partition(&mut self, isolated: &[usize]) -> Result<(), NodeError> {
        self.channel.partition(isolated)
    }

    pub fn heal(&mut self) {
        self.channel.heal();
    }

    /// Mine one coinbase block of `outputs` fresh tokens on `origin` and
    /// push-announce it to every reachable peer. Key material comes from
    /// the channel's seeded stream.
    pub fn mine_on(&mut self, origin: usize, outputs: usize) -> Result<Block, NodeError> {
        let group = self.group;
        let outs: Vec<TokenOutput> = (0..outputs)
            .map(|_| TokenOutput {
                owner: KeyPair::generate(&group, self.channel.rng_mut()).public,
                amount: Amount(1),
            })
            .collect();
        let Some(Slot::Live(node)) = self.slots.get_mut(origin) else {
            return Err(NodeError::UnknownPeer(origin));
        };
        node.chain_mut().submit_coinbase(outs);
        let block = node.seal_block()?;
        let frame = frame_gossip_block(&block);
        for dest in 0..self.slots.len() {
            if dest != origin {
                self.channel.send_reachable(origin, dest, frame.clone());
            }
        }
        Ok(block)
    }

    /// Anti-entropy round: every live replica announces its tip to every
    /// reachable peer. Lagging receivers answer with range requests.
    pub fn announce_tips(&mut self) {
        let metrics = NodeMetrics::global();
        let mut frames = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            let Slot::Live(node) = slot else { continue };
            let Ok(tip) = node.tip_hash() else { continue };
            let height = node.chain().height() as u64;
            if height <= 1 {
                continue;
            }
            frames.push((i, frame_tip(i, height, tip)));
        }
        for (src, frame) in frames {
            for dest in 0..self.slots.len() {
                if dest == src {
                    continue;
                }
                if self.channel.send_reachable(src, dest, frame.clone()) {
                    self.stats.announcements += 1;
                    metrics.gossip_announcements.inc();
                    dams_obs::global()
                        .counter_labeled(
                            "node.gossip.announcements_total",
                            "node",
                            &src.to_string(),
                        )
                        .inc();
                }
            }
        }
    }

    /// Advance one tick: deliver due frames, dispatch by kind, process
    /// every inbox, and route parent requests through the same channel.
    /// Returns how many blocks were appended across all replicas.
    pub fn step(&mut self) -> usize {
        let group = self.group;
        let metrics = NodeMetrics::global();
        let frames = self.channel.advance();
        // Responses generated while dispatching (range requests, served
        // ranges) are collected and sent after the borrow of the slot
        // table ends; they re-enter the fault gauntlet like any frame.
        let mut outgoing: Vec<(usize, usize, Vec<u8>)> = Vec::new();
        {
            let slots = &mut self.slots;
            let stats = &mut self.stats;
            let chan_stats = &mut self.channel.stats;
            let n = slots.len();
            for (dest, bytes) in frames {
                let Some(Slot::Live(node)) = slots.get_mut(dest) else {
                    // Frames addressed to a dead or dormant slot vanish,
                    // like packets to a powered-off host.
                    continue;
                };
                let mut reject = false;
                match bytes.split_first() {
                    Some((&KIND_BLOCK, rest)) => match unframe_block(&group, rest) {
                        Some(block) => {
                            if node.deliver(BlockAnnouncement { block }).is_ok() {
                                chan_stats.delivered += 1;
                                metrics.bus_delivered.inc();
                                dams_obs::global()
                                    .counter_labeled(
                                        "node.gossip.delivered_total",
                                        "node",
                                        &dest.to_string(),
                                    )
                                    .inc();
                            } else {
                                chan_stats.inbox_rejected += 1;
                            }
                        }
                        None => reject = true,
                    },
                    Some((&KIND_TIP, rest)) => match authenticate(rest, 48) {
                        Some(payload) => {
                            let sender = u64le(&payload[..8]) as usize;
                            let height = u64le(&payload[8..16]);
                            let local = node.chain().height() as u64;
                            if sender < n && sender != dest && local < height {
                                outgoing.push((dest, sender, frame_range(dest, local, height)));
                                stats.range_requests += 1;
                                metrics.gossip_range_requests.inc();
                            }
                        }
                        None => reject = true,
                    },
                    Some((&KIND_RANGE, rest)) => match authenticate(rest, 24) {
                        Some(payload) => {
                            let requester = u64le(&payload[..8]) as usize;
                            let from = u64le(&payload[8..16]) as usize;
                            let to = u64le(&payload[16..24]) as usize;
                            if requester < n && requester != dest {
                                let blocks = node.serve_range(from, to, MAX_RANGE_BLOCKS);
                                stats.range_blocks_served += blocks.len() as u64;
                                metrics
                                    .gossip_range_blocks_served
                                    .add(blocks.len() as u64);
                                for b in &blocks {
                                    outgoing.push((dest, requester, frame_gossip_block(b)));
                                }
                            }
                        }
                        None => reject = true,
                    },
                    _ => reject = true,
                }
                if reject {
                    chan_stats.decode_rejected += 1;
                    stats.frames_rejected += 1;
                    metrics.bus_decode_rejected.inc();
                    metrics.gossip_frames_rejected.inc();
                }
            }
        }
        for (src, dest, frame) in outgoing {
            self.channel.send_reachable(src, dest, frame);
        }

        let mut appended = 0;
        for slot in &mut self.slots {
            if let Slot::Live(node) = slot {
                appended += node.process_inbox();
            }
        }
        self.stats.blocks_applied += appended as u64;

        // Parent-request protocol: the first reachable live peer that has
        // the block serves it, through the same faulty channel.
        for i in 0..self.slots.len() {
            let requests = match &mut self.slots[i] {
                Slot::Live(node) => node.parent_requests(),
                _ => continue,
            };
            for hash in requests {
                let served = (0..self.slots.len())
                    .filter(|&j| j != i && self.channel.reachable(i, j))
                    .find_map(|j| match &self.slots[j] {
                        Slot::Live(peer) => peer.serve_block(hash),
                        _ => None,
                    });
                if let Some(block) = served {
                    self.channel.send(i, frame_gossip_block(&block));
                }
            }
        }
        appended
    }

    /// Crash replica `id` mid-run: volatile state dies, in-flight traffic
    /// to it dies, but its durable store survives for [`Cluster::restart`].
    pub fn kill(&mut self, id: usize) -> Result<(), NodeError> {
        let slot = self.slots.get_mut(id).ok_or(NodeError::UnknownPeer(id))?;
        let Slot::Live(node) = slot else {
            return Err(NodeError::UnknownPeer(id));
        };
        let mut store = node.take_store().ok_or(NodeError::SyncRejected {
            reason: "killed replica has no durable store",
        })?;
        store.crash();
        let (wal, cp) = store.into_backends();
        *slot = Slot::Down { wal, cp };
        self.channel.drop_addressed_to(id);
        Ok(())
    }

    /// Restart a killed replica: recover from its own durable store
    /// (checkpoint + WAL tail, verified replay), then stream the blocks
    /// it missed from the first reachable live peer. Returns the local
    /// recovery report and how many blocks the tail stream applied.
    pub fn restart(&mut self, id: usize) -> Result<(RecoveryReport, u64), NodeError> {
        let slot = self.slots.get_mut(id).ok_or(NodeError::UnknownPeer(id))?;
        if !matches!(slot, Slot::Down { .. }) {
            return Err(NodeError::UnknownPeer(id));
        }
        let Slot::Down { wal, cp } = std::mem::replace(slot, Slot::Dormant) else {
            unreachable!("matched Down above");
        };
        let (mut node, report) =
            SimNode::restore_from_store(id, self.group, self.limits, wal, cp, StoreConfig::default())?;
        let mut applied = 0;
        for peer_id in 0..self.slots.len() {
            if peer_id == id || !self.channel.reachable(id, peer_id) {
                continue;
            }
            if let Slot::Live(peer) = &mut self.slots[peer_id] {
                if peer.has_store() {
                    applied = catch_up_tail(&mut node, peer)?;
                    break;
                }
            }
        }
        self.slots[id] = Slot::Live(Box::new(node));
        Ok((report, applied))
    }

    /// Bring the dormant slot `id` online by bootstrapping it from a
    /// bundle served by live peer `from` — checkpoint catch-up, not full
    /// replay.
    pub fn join(&mut self, id: usize, from: usize) -> Result<SyncReport, NodeError> {
        if !matches!(self.slots.get(id), Some(Slot::Dormant)) {
            return Err(NodeError::UnknownPeer(id));
        }
        let frame = match self.slots.get_mut(from) {
            Some(Slot::Live(peer)) => serve_bundle(peer)?,
            _ => return Err(NodeError::UnknownPeer(from)),
        };
        let (node, report) = bootstrap_from_bundle(id, self.group, self.limits, &frame)?;
        self.slots[id] = Slot::Live(Box::new(node));
        Ok(report)
    }

    /// Drive the cluster until every live replica converges and the
    /// channel drains, re-announcing tips every few ticks. Returns ticks
    /// consumed, or `None` if `max_ticks` elapsed without convergence.
    pub fn run_until_converged(&mut self, max_ticks: u64) -> Option<u64> {
        let start = self.channel.tick();
        for _ in 0..max_ticks {
            self.step();
            if self.channel.idle() && self.converged() {
                return Some(self.channel.tick() - start);
            }
            if self.channel.tick().is_multiple_of(4) {
                self.announce_tips();
            }
        }
        None
    }

    /// Whether all live replicas share byte-identical tip blocks.
    pub fn converged(&self) -> bool {
        let mut tips: Vec<Vec<u8>> = Vec::new();
        for slot in &self.slots {
            if let Slot::Live(node) = slot {
                match node.chain().blocks().last() {
                    Some(tip) => tips.push(block_to_bytes(tip)),
                    None => return false,
                }
            }
        }
        !tips.is_empty() && tips.windows(2).all(|w| w[0] == w[1])
    }

    /// Whether all live replicas derive identical batch lists at λ.
    pub fn batch_consensus(&self, lambda: usize) -> bool {
        let lists: Vec<BatchList> = self
            .slots
            .iter()
            .filter_map(|s| match s {
                Slot::Live(node) => Some(BatchList::build(node.chain(), lambda)),
                _ => None,
            })
            .collect();
        lists.windows(2).all(|w| w[0].batches() == w[1].batches())
    }

    /// Re-verify every live replica's committed (c, ℓ)-diversity evidence
    /// and require identical, violation-free verdicts across the cluster.
    pub fn immutability_consensus(&self) -> bool {
        let checks: Vec<ImmutabilityCheck> = self
            .slots
            .iter()
            .filter_map(|s| match s {
                Slot::Live(node) => Some(recheck_node(node)),
                _ => None,
            })
            .collect();
        checks.iter().all(|c| c.violations.is_empty())
            && checks.windows(2).all(|w| w[0] == w[1])
    }

    /// Total blocks served to peers by all live replicas' stores.
    pub fn blocks_served_total(&self) -> u64 {
        self.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Live(node) => node.store().map(Store::blocks_served),
                _ => None,
            })
            .sum()
    }
}

/// Outcome of one scripted cluster scenario (see
/// [`run_cluster_scenario`]).
#[derive(Debug, Clone)]
pub struct ClusterReport {
    pub seed: u64,
    /// Replicas the scenario started with (the late joiner is extra).
    pub nodes: usize,
    /// Live replicas at the end (includes the joiner).
    pub live: usize,
    /// All live replicas ended on byte-identical tips.
    pub converged: bool,
    /// All live replicas derive the same batch list at the run's λ.
    pub batch_consensus: bool,
    /// All live replicas hold identical, violation-free (c, ℓ) verdicts.
    pub immutability_ok: bool,
    /// Final chain height of node 0 (including genesis).
    pub height: usize,
    /// Ticks the run took to converge, `None` when it hit the budget.
    pub ticks: Option<u64>,
    /// Crash/restart phase: (recovery was clean, blocks the tail stream
    /// applied). `None` when the scenario had no kill phase.
    pub restart: Option<(bool, u64)>,
    /// Late-joiner bootstrap split (checkpoint prefix vs verified tail).
    pub joiner: Option<SyncReport>,
    /// Blocks served to peers across all stores (bundle + tail streams).
    pub blocks_served: u64,
    pub fault_stats: FaultStats,
    pub gossip_stats: GossipStats,
}

impl ClusterReport {
    /// Whether the scenario met every convergence invariant.
    pub fn ok(&self) -> bool {
        self.converged
            && self.batch_consensus
            && self.immutability_ok
            && self.ticks.is_some()
            && self.restart.is_none_or(|(clean, _)| clean)
            && self.joiner.is_none_or(|j| j.clean)
    }

    /// Deterministic multi-line rendering for `dams-cli cluster-sim`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("cluster report:\n");
        out.push_str(&format!(
            "  scenario: seed {}, {} nodes (+1 late joiner), height {}\n",
            self.seed, self.nodes, self.height
        ));
        out.push_str(&format!(
            "  convergence: {} live replicas, {}\n",
            self.live,
            match self.ticks {
                Some(t) => format!("byte-identical tips after {t} ticks"),
                None => "tick budget exhausted".into(),
            }
        ));
        out.push_str(&format!(
            "  batch consensus: {}\n",
            if self.batch_consensus { "identical batch lists" } else { "DIVERGENT" }
        ));
        out.push_str(&format!(
            "  immutability: {}\n",
            if self.immutability_ok {
                "identical violation-free (c, l) verdicts"
            } else {
                "VERDICTS DIVERGE OR VIOLATED"
            }
        ));
        match self.restart {
            Some((clean, applied)) => out.push_str(&format!(
                "  crash/restart: recovered {}, tail stream applied {} blocks\n",
                if clean { "CLEAN" } else { "FLAGGED" },
                applied
            )),
            None => out.push_str("  crash/restart: not exercised\n"),
        }
        match &self.joiner {
            Some(j) => out.push_str(&format!(
                "  late joiner: {} blocks structural (checkpoint), {} fully verified (tail), \
                 {} rings rechecked\n",
                j.prefix_adopted, j.tail_verified, j.rings_rechecked
            )),
            None => out.push_str("  late joiner: not exercised\n"),
        }
        out.push_str(&format!(
            "  catch-up served: {} blocks\n",
            self.blocks_served
        ));
        let g = &self.gossip_stats;
        out.push_str(&format!(
            "  gossip: {} announcements, {} range requests, {} range blocks served, \
             {} frames rejected, {} blocks applied\n",
            g.announcements, g.range_requests, g.range_blocks_served, g.frames_rejected,
            g.blocks_applied
        ));
        let f = &self.fault_stats;
        out.push_str(&format!(
            "  faults: {} sent, {} dropped, {} duplicated, {} delayed, {} corrupted, \
             {} decode-rejected, {} partition-blocked\n",
            f.sent, f.dropped, f.duplicated, f.delayed, f.corrupted, f.decode_rejected,
            f.partition_blocked
        ));
        out.push_str(&format!(
            "  verdict: {}\n",
            if self.ok() { "CONVERGED" } else { "DIVERGED" }
        ));
        out
    }
}

/// The scripted cluster scenario, replayable from `seed`: `nodes` durable
/// replicas mine under the default fault model, a minority partitions
/// away while mining continues (3+ nodes), one replica is killed mid-run
/// and restarted from its store + a peer tail stream (2+ nodes), a late
/// joiner bootstraps from a checkpoint bundle, and everyone must converge
/// on byte-identical tips with identical selection verdicts.
pub fn run_cluster_scenario(seed: u64, nodes: usize) -> Result<ClusterReport, NodeError> {
    const LAMBDA: usize = 4;
    let nodes = nodes.max(1);
    let group = SchnorrGroup::default();
    let mut cluster = Cluster::new(nodes, group, seed, FaultConfig::default())?;

    // Phase 1: healthy-but-faulty mining.
    for _ in 0..4 {
        cluster.mine_on(0, 2)?;
        cluster.step();
    }

    // Phase 2 (3+ nodes): partition a minority; the majority keeps mining.
    if nodes >= 3 {
        cluster.partition(&[nodes - 1])?;
        for _ in 0..3 {
            cluster.mine_on(0, 2)?;
            cluster.step();
        }
        cluster.heal();
        cluster.step();
    }

    // Phase 3 (2+ nodes): kill a replica mid-run, mine past it, restart
    // it from its own store plus a peer-served WAL tail.
    let restart = if nodes >= 2 {
        cluster.kill(1)?;
        for _ in 0..2 {
            cluster.mine_on(0, 2)?;
            cluster.step();
        }
        let (report, applied) = cluster.restart(1)?;
        Some((report.clean(), applied))
    } else {
        for _ in 0..2 {
            cluster.mine_on(0, 2)?;
            cluster.step();
        }
        None
    };

    // Phase 4: one more block, then the late joiner bootstraps from a
    // checkpoint bundle served by node 0.
    cluster.mine_on(0, 2)?;
    cluster.step();
    let joiner = cluster.join(nodes, 0)?;

    let ticks = cluster.run_until_converged(800);
    let height = cluster
        .node(0)
        .map(|n| n.chain().height())
        .unwrap_or_default();
    Ok(ClusterReport {
        seed,
        nodes,
        live: cluster.live_ids().len(),
        converged: cluster.converged(),
        batch_consensus: cluster.batch_consensus(LAMBDA),
        immutability_ok: cluster.immutability_consensus(),
        height,
        ticks,
        restart,
        joiner: Some(joiner),
        blocks_served: cluster.blocks_served_total(),
        fault_stats: cluster.fault_stats(),
        gossip_stats: cluster.gossip_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_cluster_converges_via_push_gossip() {
        let group = SchnorrGroup::default();
        let mut cluster = Cluster::new(3, group, 7, FaultConfig::lossless()).unwrap();
        for _ in 0..3 {
            cluster.mine_on(0, 2).unwrap();
        }
        assert!(cluster.run_until_converged(100).is_some());
        assert!(cluster.converged());
        assert!(cluster.batch_consensus(3));
        assert!(cluster.immutability_consensus());
        assert_eq!(cluster.live_ids(), vec![0, 1, 2]);
    }

    #[test]
    fn tip_announcements_trigger_range_repair() {
        let group = SchnorrGroup::default();
        let mut cluster = Cluster::new(3, group, 9, FaultConfig::lossless()).unwrap();
        // Node 2 misses all push gossip while partitioned.
        cluster.partition(&[2]).unwrap();
        for _ in 0..4 {
            cluster.mine_on(0, 1).unwrap();
            cluster.step();
        }
        assert_eq!(cluster.node(2).unwrap().chain().height(), 1);
        cluster.heal();
        // No new blocks are pushed after the heal: only anti-entropy tip
        // announcements + pull range repair can close the gap.
        assert!(cluster.run_until_converged(200).is_some());
        assert!(cluster.converged());
        let stats = cluster.gossip_stats();
        assert!(stats.range_requests > 0, "{stats:?}");
        assert!(stats.range_blocks_served >= 4, "{stats:?}");
    }

    #[test]
    fn kill_restart_recovers_from_store_and_tail_stream() {
        let group = SchnorrGroup::default();
        let mut cluster = Cluster::new(3, group, 11, FaultConfig::lossless()).unwrap();
        for _ in 0..3 {
            cluster.mine_on(0, 1).unwrap();
            cluster.step();
        }
        cluster.run_until_converged(100).unwrap();
        cluster.kill(1).unwrap();
        assert_eq!(cluster.live_ids(), vec![0, 2]);
        for _ in 0..2 {
            cluster.mine_on(0, 1).unwrap();
            cluster.step();
        }
        let (report, applied) = cluster.restart(1).unwrap();
        assert!(report.clean(), "{report:?}");
        assert_eq!(
            report.height, 3,
            "local store recovers the pre-crash chain"
        );
        assert_eq!(applied, 2, "tail stream applies exactly the missed blocks");
        assert!(cluster.run_until_converged(200).is_some());
        assert!(cluster.converged());
    }

    #[test]
    fn late_joiner_bootstraps_o_tail() {
        let group = SchnorrGroup::default();
        let mut cluster = Cluster::new(2, group, 13, FaultConfig::lossless()).unwrap();
        for _ in 0..6 {
            cluster.mine_on(0, 1).unwrap();
            cluster.step();
        }
        cluster.run_until_converged(100).unwrap();
        let report = cluster.join(2, 0).unwrap();
        assert!(report.clean, "{report:?}");
        assert_eq!(report.height, 6);
        assert!(
            report.tail_verified <= StoreConfig::default().checkpoint_interval,
            "O(tail) violated: {report:?}"
        );
        assert!(report.prefix_adopted >= 4, "{report:?}");
        assert!(cluster.run_until_converged(100).is_some());
        assert_eq!(cluster.live_ids(), vec![0, 1, 2]);
        // Joining twice is a typed error, not a double-spawn.
        assert!(cluster.join(2, 0).is_err());
    }

    #[test]
    fn scripted_scenario_replays_identically() {
        let a = run_cluster_scenario(42, 3).unwrap();
        let b = run_cluster_scenario(42, 3).unwrap();
        assert_eq!(a.fault_stats, b.fault_stats);
        assert_eq!(a.gossip_stats, b.gossip_stats);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.render(), b.render(), "render must be deterministic");
    }

    #[test]
    fn scripted_scenario_converges_at_all_bench_sizes() {
        for nodes in [1, 3, 5] {
            let report = run_cluster_scenario(1234, nodes).unwrap();
            assert!(report.ok(), "nodes {nodes}: {}", report.render());
            let expected_height = if nodes >= 3 { 11 } else { 8 };
            assert_eq!(report.height, expected_height, "nodes {nodes}");
            if let Some(j) = report.joiner {
                assert!(
                    j.tail_verified <= StoreConfig::default().checkpoint_interval,
                    "nodes {nodes}: O(tail) violated: {j:?}"
                );
            }
        }
    }

    #[test]
    fn corrupt_frames_never_reach_a_chain() {
        let group = SchnorrGroup::default();
        let cfg = FaultConfig {
            corrupt_prob: 1.0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
            reorder: false,
        };
        let mut cluster = Cluster::new(2, group, 5, cfg).unwrap();
        cluster.mine_on(0, 2).unwrap();
        for _ in 0..10 {
            cluster.step();
        }
        cluster.announce_tips();
        for _ in 0..10 {
            cluster.step();
        }
        // Every frame was corrupted: block frames fail the hash or block
        // validation, tip/range frames fail their digests. Node 1 never
        // adopts anything.
        assert_eq!(cluster.node(1).unwrap().chain().height(), 1);
        let f = cluster.fault_stats();
        let discarded = cluster.node(1).unwrap().stats().blocks_discarded;
        assert!(
            f.decode_rejected + discarded > 0,
            "{f:?} discarded={discarded}"
        );
    }
}
