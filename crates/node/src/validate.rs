//! A full Definition-5 validator for a proposed ring against a batch
//! state: diversity, non-eliminated (via the matching adversary), and
//! immutability (via the Theorem 6.1 fast DTRS path under the first
//! practical configuration).
//!
//! This is what a wallet runs before broadcasting, and what an auditor
//! runs over a block's rings; it is polynomial, unlike the BFS-internal
//! exact checks.

use dams_core::{dtrs_diverse_fast, satisfies_first_configuration};
use dams_diversity::{
    analyze, DiversityRequirement, HtHistogram, RingIndex, RingSet, TokenUniverse,
};

/// The validator's verdict: either eligible or the first failed constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    Eligible,
    /// The ring's own HT multiset misses the requirement.
    DiversityViolated,
    /// The first practical configuration is violated (partial overlap).
    ConfigurationViolated,
    /// Committing the ring lets chain-reaction analysis eliminate a token
    /// of some ring (possibly this one).
    EliminationPossible,
    /// A DTRS of the new ring would violate the requirement.
    DtrsViolated,
    /// A previously committed ring would lose its claimed diversity.
    ImmutabilityViolated,
    /// The caller supplied fewer claims than committed rings, so
    /// immutability cannot be checked — reject rather than panic.
    ClaimsMissing,
}

/// Validate `candidate` (which will claim `req`) against the committed
/// `history` with claims `claims`, over `universe`.
pub fn validate_ring(
    candidate: &RingSet,
    req: DiversityRequirement,
    history: &RingIndex,
    claims: &[DiversityRequirement],
    universe: &TokenUniverse,
) -> Verdict {
    // Diversity of the ring itself (Definition 4, condition 1).
    if !req.satisfied_by(&HtHistogram::from_ring(candidate, universe)) {
        return Verdict::DiversityViolated;
    }
    // First practical configuration.
    if !satisfies_first_configuration(candidate, history) {
        return Verdict::ConfigurationViolated;
    }
    // Non-eliminated: append the candidate and ask the matching adversary
    // whether any ring's candidate set shrank below its full ring.
    let mut appended = history.clone();
    let new_id = appended.push(candidate.clone());
    let analysis = analyze(&appended, &[]);
    for (rs, ring) in appended.iter() {
        // A ring without a candidate entry is fully resolved — the
        // strongest form of elimination.
        let eliminated = analysis
            .candidates
            .get(&rs)
            .is_none_or(|cands| cands.len() != ring.len());
        if eliminated {
            let _ = new_id;
            return Verdict::EliminationPossible;
        }
    }
    // DTRS diversity of the new ring (Definition 4, condition 2) via
    // Theorem 6.1. Under the first configuration the candidate becomes a
    // super RS; its subset count is 1 + #history rings it contains.
    let v = 1 + history
        .iter()
        .filter(|(_, r)| candidate.is_superset(r))
        .count();
    if !dtrs_diverse_fast(candidate, universe, v, req) {
        return Verdict::DtrsViolated;
    }
    // Immutability: every committed ring keeps its claimed diversity.
    // Under the first configuration the candidate either contains or is
    // disjoint from each committed ring (Theorem 6.3); the contained
    // rings' subset counts grow by one, so re-check their DTRS diversity.
    for (rs, ring) in history.iter() {
        let Some(&claim) = claims.get(rs.0 as usize) else {
            return Verdict::ClaimsMissing;
        };
        let v_old = history
            .iter()
            .filter(|(other, r)| *other != rs && r.is_superset(ring))
            .count()
            + 1;
        let v_new = v_old + usize::from(candidate.is_superset(ring));
        if !dtrs_diverse_fast(ring, universe, v_new, claim) {
            return Verdict::ImmutabilityViolated;
        }
    }
    Verdict::Eligible
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_diversity::{ring, HtId};

    fn uni(hts: &[u32]) -> TokenUniverse {
        TokenUniverse::new(hts.iter().map(|&h| HtId(h)).collect())
    }

    #[test]
    fn example1_good_solution_is_eligible() {
        // t1..t4 = ids 0..3; HTs h1,h2,h1,h3; history r1 = r2 = {0,1}.
        let universe = uni(&[1, 2, 1, 3]);
        let history = RingIndex::from_rings([ring(&[0, 1]), ring(&[0, 1])]);
        let claims = vec![DiversityRequirement::new(2.0, 1); 2];
        let verdict = validate_ring(
            &ring(&[2, 3]),
            DiversityRequirement::new(2.0, 1),
            &history,
            &claims,
            &universe,
        );
        assert_eq!(verdict, Verdict::Eligible);
    }

    #[test]
    fn example1_solution_two_is_eliminable() {
        let universe = uni(&[1, 2, 1, 3]);
        let history = RingIndex::from_rings([ring(&[0, 1]), ring(&[0, 1])]);
        let claims = vec![DiversityRequirement::new(2.0, 1); 2];
        // {t2, t3} = {1, 2}: overlap without containment → config violated
        // before the elimination check even runs.
        let verdict = validate_ring(
            &ring(&[1, 2]),
            DiversityRequirement::new(2.0, 1),
            &history,
            &claims,
            &universe,
        );
        assert_eq!(verdict, Verdict::ConfigurationViolated);
    }

    #[test]
    fn homogeneous_ring_fails_dtrs() {
        // Disjoint from history, diverse enough for (5,1) on its own HT
        // multiset? {0, 2} both h1 → q=[2]: 2 < 5·2 ✓ diversity passes,
        // but the empty-side-information DTRS argument shows the HT leaks:
        // Theorem 6.1 with v = 1... ψ exists only if v >= |r| - |T̃| + 1 =
        // 2 - 2 + 1 = 1 ✓ → ψ = {} with q = [] violating any (c, l>=1)?
        // Empty histograms never satisfy, so DTRS check fails. Exactly the
        // homogeneity attack caught through the DTRS lens.
        let universe = uni(&[1, 2, 1, 3]);
        let history = RingIndex::new();
        let verdict = validate_ring(
            &ring(&[0, 2]),
            DiversityRequirement::new(5.0, 1),
            &history,
            &[],
            &universe,
        );
        assert_eq!(verdict, Verdict::DtrsViolated);
    }

    #[test]
    fn diversity_violation_detected_first() {
        let universe = uni(&[1, 1, 1, 1]);
        let verdict = validate_ring(
            &ring(&[0, 1, 2]),
            DiversityRequirement::new(0.5, 1),
            &RingIndex::new(),
            &[],
            &universe,
        );
        assert_eq!(verdict, Verdict::DiversityViolated);
    }

    #[test]
    fn stranding_ring_is_eliminable() {
        // History r1={0,2}, r2={0,1}: candidate {0,1,2} (superset of both)
        // would prove all three tokens consumed and pin a later {x,3} ring;
        // more immediately, committing it lets the adversary eliminate:
        // after the commit, candidates of each ring shrink? The union of
        // the 3 rings is {0,1,2} with 3 rings → every saturating matching
        // covers all three; each ring's candidate set stays full though.
        // The elimination shows up for the *next* ring; the η guard is the
        // paper's answer there. Here we check a direct elimination case:
        // candidate {1,2} against r1={1,2}, r2={1,2} triplicates the pair.
        let universe = uni(&[1, 2, 3, 4]);
        let history = RingIndex::from_rings([ring(&[1, 2]), ring(&[1, 2])]);
        let claims = vec![DiversityRequirement::new(9.0, 1); 2];
        let verdict = validate_ring(
            &ring(&[1, 2, 3]),
            DiversityRequirement::new(9.0, 1),
            &history,
            &claims,
            &universe,
        );
        // {1,2} both consumed in history → candidate's own spend is pinned
        // to 3: elimination possible.
        assert_eq!(verdict, Verdict::EliminationPossible);
    }

    #[test]
    fn immutability_guarded_by_claims() {
        // History ring {0,1} with both tokens from h1 claims (3, 1):
        // its own DTRS (empty set, HT determined) violates (3,1) as soon
        // as v reaches |r| — which the superset candidate causes.
        let universe = uni(&[1, 1, 2, 3, 4]);
        let history = RingIndex::from_rings([ring(&[0, 1])]);
        let claims = vec![DiversityRequirement::new(3.0, 1)];
        let verdict = validate_ring(
            &ring(&[0, 1, 2, 3]),
            DiversityRequirement::new(3.0, 1),
            &history,
            &claims,
            &universe,
        );
        assert_eq!(verdict, Verdict::ImmutabilityViolated);
    }
}
