//! Seeded Byzantine actors and the adversarial-peer gauntlet.
//!
//! Each [`Actor`] occupies a cluster slot with a *registered* identity —
//! the threat model is an authenticated peer turning hostile, not an
//! unauthenticated stranger — and drives one attack playbook through the
//! same fault channel honest traffic uses:
//!
//! * **Equivocator** — signs attestations over two distinct valid blocks
//!   at one height and floods both to every honest peer. The defense's
//!   staging window lets the conflicting attestations collide before
//!   either block reaches a chain; the collision yields a self-contained
//!   [`crate::peers::EquivocationProof`] every peer verifies locally.
//! * **Spammer** — drives a [`BurstSchedule`] frame cannon of
//!   well-formed tip announcements. Token buckets absorb the baseline,
//!   flood records tax the peaks, quarantine pressure converts sustained
//!   abuse into a ban.
//! * **Withholder** — forever advertises a tip far beyond its chain and
//!   never answers the range requests it provokes. Unanswered range
//!   watches strike into `StaleTipSpam` records.
//! * **Ring-poisoner** — spends coins it legitimately owns in a
//!   structurally valid, correctly signed ring whose claimed (c, ℓ)
//!   recursive diversity is a lie (every ring member shares one history
//!   tree). The block passes every chain check; per-block diversity
//!   re-verification at gossip intake is the only thing standing between
//!   it and the ledger.
//!
//! [`run_byzantine_scenario`] scripts a mining run with f such actors
//! alongside N honest replicas, then demands the *defended* state: honest
//! convergence at the adversary-free height, every Byzantine peer banned
//! by every honest replica with attributed misbehavior records, no
//! poisoned ring adopted anywhere, and honest selection verdicts
//! byte-identical to the same-seed adversary-free run.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dams_blockchain::{
    block_to_bytes, Amount, BatchList, NoConfiguration, RingInput, TokenId, TokenOutput,
    Transaction,
};
use dams_crypto::sha256::{sha256, Digest};
use dams_crypto::{KeyPair, SchnorrGroup};
use dams_workload::BurstSchedule;

use crate::error::NodeError;
use crate::faults::{FaultConfig, FaultStats};
use crate::gossip::{frame_attested_block, frame_tip, Cluster, GossipStats};
use crate::network::SimNode;
use crate::peers::{Attestation, ClusterConfig};

/// The attack playbooks the gauntlet exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorKind {
    Equivocator,
    Spammer,
    Withholder,
    RingPoisoner,
}

impl ActorKind {
    pub const ALL: [ActorKind; 4] = [
        ActorKind::Equivocator,
        ActorKind::Spammer,
        ActorKind::Withholder,
        ActorKind::RingPoisoner,
    ];

    /// Stable kebab-case name (CLI flags, reports, JSON rows).
    pub fn label(&self) -> &'static str {
        match self {
            ActorKind::Equivocator => "equivocator",
            ActorKind::Spammer => "spammer",
            ActorKind::Withholder => "withholder",
            ActorKind::RingPoisoner => "ring-poisoner",
        }
    }

    pub fn parse(s: &str) -> Option<ActorKind> {
        ActorKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// The standard adversary mix at strength `f`: the first `f` kinds,
    /// cycling — so f=1 fields an equivocator, f=4 one of each.
    pub fn mix(f: usize) -> Vec<ActorKind> {
        (0..f).map(|i| ActorKind::ALL[i % ActorKind::ALL.len()]).collect()
    }
}

impl std::fmt::Display for ActorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One Byzantine peer: a playbook, a registered identity, and a seeded
/// rng so every attack replays byte-identically.
pub struct Actor {
    kind: ActorKind,
    id: usize,
    group: SchnorrGroup,
    identity: KeyPair,
    rng: StdRng,
    bursts: BurstSchedule,
    /// Crafted attack frames, built once then replayed (re-crafting each
    /// tick would self-equivocate via fresh signatures).
    crafted: Option<Vec<Vec<u8>>>,
    /// Remaining broadcast ticks for the crafted frames.
    sends_left: u64,
}

impl Actor {
    pub(crate) fn new(
        kind: ActorKind,
        id: usize,
        group: SchnorrGroup,
        identity: KeyPair,
        seed: u64,
    ) -> Self {
        Actor {
            kind,
            id,
            group,
            identity,
            rng: StdRng::seed_from_u64(seed),
            bursts: BurstSchedule::spammer(seed ^ 0x5b_a3_3e_d5),
            crafted: None,
            sends_left: match kind {
                ActorKind::Equivocator => 12,
                ActorKind::Spammer => u64::MAX,
                ActorKind::Withholder => 400,
                ActorKind::RingPoisoner => 6,
            },
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    pub fn kind(&self) -> ActorKind {
        self.kind
    }

    /// Emit this tick's attack traffic: `(destination, frame)` pairs fed
    /// into the fault channel. `shadow` is the actor's honest-protocol
    /// chain tracker; `minted` maps token ids to the keypairs that own
    /// them (the poisoner's legitimately held coins).
    pub(crate) fn act(
        &mut self,
        shadow: &SimNode,
        honest: &[usize],
        minted: &[(u64, KeyPair)],
        tick: u64,
    ) -> Vec<(usize, Vec<u8>)> {
        match self.kind {
            ActorKind::Equivocator => {
                if self.crafted.is_none() && shadow.chain().height() >= 2 {
                    self.crafted = self.craft_equivocation(shadow);
                }
                self.broadcast(honest)
            }
            ActorKind::Spammer => {
                let shots = self.bursts.intensity(tick);
                let height = shadow.chain().height() as u64 + 7 + tick % 5;
                let fake = sha256(&tick.to_le_bytes());
                let mut out = Vec::with_capacity(shots as usize * honest.len());
                for _ in 0..shots {
                    for &dest in honest {
                        out.push((dest, frame_tip(self.id, height, fake)));
                    }
                }
                out
            }
            ActorKind::Withholder => {
                if self.sends_left == 0 {
                    return Vec::new();
                }
                self.sends_left -= 1;
                // Advertise riches, serve nothing: the claimed tip stays
                // far enough ahead that honest mining never reaches it.
                let height = shadow.chain().height() as u64 + 50;
                let fake = sha256(b"withheld-tip");
                honest
                    .iter()
                    .map(|&dest| (dest, frame_tip(self.id, height, fake)))
                    .collect()
            }
            ActorKind::RingPoisoner => {
                if self.crafted.is_none() {
                    self.crafted = self.craft_poison(shadow, minted);
                }
                self.broadcast(honest)
            }
        }
    }

    fn broadcast(&mut self, honest: &[usize]) -> Vec<(usize, Vec<u8>)> {
        let Some(frames) = &self.crafted else {
            return Vec::new();
        };
        if self.sends_left == 0 {
            return Vec::new();
        }
        self.sends_left -= 1;
        let mut out = Vec::with_capacity(frames.len() * honest.len());
        for frame in frames {
            for &dest in honest {
                out.push((dest, frame.clone()));
            }
        }
        out
    }

    /// Two distinct, individually valid children of the shadow tip, each
    /// under its own signed attestation at the same height.
    fn craft_equivocation(&mut self, shadow: &SimNode) -> Option<Vec<Vec<u8>>> {
        let mut frames = Vec::with_capacity(2);
        for _ in 0..2 {
            let mut fork = shadow.chain().clone();
            let kp = KeyPair::generate(&self.group, &mut self.rng);
            fork.submit_coinbase(vec![TokenOutput {
                owner: kp.public,
                amount: Amount(1),
            }]);
            fork.seal_block().ok()?;
            let block = fork.tip().ok()?.clone();
            let att = Attestation::sign(
                &self.group,
                self.id as u64,
                block.header.height.0,
                block.hash(),
                &self.identity,
                &mut self.rng,
            )?;
            frames.push(frame_attested_block(&att, &block));
        }
        Some(frames)
    }

    /// A block that survives every chain-level check — known tokens,
    /// sorted ring, fresh key image, valid ring signature by a key the
    /// actor really owns — while its ring's claimed (c, ℓ)-diversity is
    /// false: all members share one history tree, so the ℓ-th tail sum is
    /// zero and any positive c is violated.
    fn craft_poison(
        &mut self,
        shadow: &SimNode,
        minted: &[(u64, KeyPair)],
    ) -> Option<Vec<Vec<u8>>> {
        let chain = shadow.chain();
        // Group the coins this actor can spend by origin transaction
        // (= history tree); any group of 2+ makes a zero-diversity ring.
        let mut by_origin: BTreeMap<u64, Vec<(u64, KeyPair)>> = BTreeMap::new();
        for &(tid, kp) in minted {
            if let Some(rec) = chain.token(TokenId(tid)) {
                if rec.owner == kp.public {
                    by_origin.entry(rec.origin.0).or_default().push((tid, kp));
                }
            }
        }
        let coins = by_origin.into_values().find(|v| v.len() >= 2)?;
        let spender = coins[0].1;
        let ring: Vec<TokenId> = coins.iter().map(|&(t, _)| TokenId(t)).collect();
        let ring_keys: Vec<_> = ring
            .iter()
            .filter_map(|&t| chain.token(t).map(|r| r.owner))
            .collect();
        if ring_keys.len() != ring.len() {
            return None;
        }
        let payee = KeyPair::generate(&self.group, &mut self.rng);
        let mut tx = Transaction {
            inputs: vec![],
            outputs: vec![TokenOutput {
                owner: payee.public,
                amount: Amount(1),
            }],
            memo: b"looks legitimate".to_vec(),
        };
        let sig = dams_crypto::sign(
            &self.group,
            &tx.signing_payload(),
            &ring_keys,
            &spender,
            &mut self.rng,
        )
        .ok()?;
        tx.inputs.push(RingInput {
            ring,
            signature: sig,
            claimed_c: 1.0,
            claimed_l: 2,
        });
        let mut fork = chain.clone();
        fork.submit(tx, &NoConfiguration).ok()?;
        fork.seal_block().ok()?;
        let block = fork.tip().ok()?.clone();
        let att = Attestation::sign(
            &self.group,
            self.id as u64,
            block.header.height.0,
            block.hash(),
            &self.identity,
            &mut self.rng,
        )?;
        Some(vec![frame_attested_block(&att, &block)])
    }
}

/// Chain height every gauntlet run must reach (genesis + 16 mined
/// blocks).
pub const SCENARIO_HEIGHT: usize = 17;

/// Fixed tick horizon every run is padded to, so goodput denominators —
/// and therefore the f=1-within-10%-of-f=0 gate — are f-invariant.
pub const SCENARIO_HORIZON: u64 = 400;

fn step_and_announce(cluster: &mut Cluster) {
    cluster.step();
    if cluster.tick().is_multiple_of(4) {
        cluster.announce_tips();
    }
}

/// The scripted gauntlet run: mine 4 blocks, then 8 more interleaved
/// with 24 ticks of live adversary traffic, then 4 more; drive to the
/// defended state; pad to the fixed horizon. The transport is lossless —
/// transport faults have their own gauntlet in
/// [`crate::gossip::run_cluster_scenario`]; here every frame the
/// adversary fires is guaranteed to arrive, which is the harder case for
/// the defense and keeps verdicts deterministic.
fn drive(
    seed: u64,
    honest: usize,
    actors: &[ActorKind],
) -> Result<(Cluster, Option<u64>), NodeError> {
    let group = SchnorrGroup::default();
    let mut cluster = Cluster::with_byzantine(
        honest,
        actors,
        group,
        seed,
        FaultConfig::lossless(),
        ClusterConfig::default(),
    )?;
    for _ in 0..4 {
        cluster.mine_on(0, 2)?;
        step_and_announce(&mut cluster);
    }
    for t in 0..24u64 {
        if t % 3 == 0 {
            cluster.mine_on(0, 2)?;
        }
        step_and_announce(&mut cluster);
    }
    for _ in 0..4 {
        cluster.mine_on(0, 2)?;
        step_and_announce(&mut cluster);
    }
    let ticks = cluster.run_until_defended(SCENARIO_HEIGHT, 1200);
    while cluster.tick() < SCENARIO_HORIZON {
        step_and_announce(&mut cluster);
    }
    Ok((cluster, ticks))
}

/// Honest selection state, hashed: node 0's full block bytes plus its
/// derived batch list. Two runs whose snapshots match made byte-identical
/// selection decisions.
pub fn selection_snapshot(cluster: &Cluster) -> Option<Digest> {
    let node = cluster.node(0)?;
    let mut buf = Vec::new();
    for block in node.chain().blocks() {
        buf.extend_from_slice(&block_to_bytes(block));
    }
    let batches = BatchList::build(node.chain(), 4);
    buf.extend_from_slice(format!("{:?}", batches.batches()).as_bytes());
    Some(sha256(&buf))
}

/// Outcome of one gauntlet run (see [`run_byzantine_scenario`]).
#[derive(Debug, Clone)]
pub struct ByzantineReport {
    pub seed: u64,
    pub honest: usize,
    pub actors: Vec<ActorKind>,
    /// Honest replicas ended on byte-identical tips.
    pub converged: bool,
    /// Final honest chain height (must equal [`SCENARIO_HEIGHT`]).
    pub height: usize,
    /// Ticks from scenario start until the defended state, `None` when
    /// the budget ran out first.
    pub ticks: Option<u64>,
    /// Every Byzantine peer is banned by every honest replica.
    pub all_banned: bool,
    /// No honest chain adopted any ring-bearing transaction (the
    /// scenario mines coinbase only, so any input is poison).
    pub no_poison: bool,
    pub snapshot: Option<Digest>,
    /// Snapshot equals the same-seed adversary-free run's.
    pub snapshot_match: bool,
    /// Honest block adoptions per tick over the fixed horizon.
    pub goodput: f64,
    pub baseline_goodput: f64,
    /// Misbehavior records across all honest defenses, by offense label.
    pub offenses: Vec<(String, u64)>,
    /// Records that accuse an *honest* peer — false positives. Zero on a
    /// lossless transport; bounded, recoverable noise under loss.
    pub honest_accusations: u64,
    pub fault_stats: FaultStats,
    pub gossip_stats: GossipStats,
}

impl ByzantineReport {
    /// Whether the run reached the fully defended state.
    pub fn ok(&self) -> bool {
        self.converged
            && self.height == SCENARIO_HEIGHT
            && self.ticks.is_some()
            && self.all_banned
            && self.no_poison
            && self.snapshot_match
    }

    /// Deterministic multi-line rendering for `dams-cli cluster-sim
    /// --byzantine`; the last line is the grep-able verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("byzantine report:\n");
        let kinds: Vec<&str> = self.actors.iter().map(|a| a.label()).collect();
        out.push_str(&format!(
            "  scenario: seed {}, {} honest + {} byzantine [{}], height {}\n",
            self.seed,
            self.honest,
            self.actors.len(),
            kinds.join(", "),
            self.height
        ));
        out.push_str(&format!(
            "  defense: {}\n",
            match self.ticks {
                Some(t) => format!("defended state after {t} ticks"),
                None => "tick budget exhausted before defended state".into(),
            }
        ));
        out.push_str(&format!(
            "  bans: {}\n",
            if self.all_banned {
                "every byzantine peer banned by every honest replica"
            } else {
                "INCOMPLETE"
            }
        ));
        out.push_str(&format!(
            "  poisoned rings adopted: {}\n",
            if self.no_poison { "none" } else { "PRESENT" }
        ));
        let snap = self
            .snapshot
            .map(|d| {
                d[..8]
                    .iter()
                    .map(|b| format!("{b:02x}"))
                    .collect::<String>()
            })
            .unwrap_or_else(|| "unavailable".into());
        out.push_str(&format!(
            "  selection snapshot: {snap} ({})\n",
            if self.snapshot_match {
                "byte-identical to adversary-free run"
            } else {
                "DIVERGES FROM ADVERSARY-FREE RUN"
            }
        ));
        out.push_str(&format!(
            "  goodput: {:.4} blocks/tick vs {:.4} adversary-free\n",
            self.goodput, self.baseline_goodput
        ));
        out.push_str(&format!(
            "  false positives: {} records accusing honest peers\n",
            self.honest_accusations
        ));
        if self.offenses.is_empty() {
            out.push_str("  offenses: none recorded\n");
        } else {
            let parts: Vec<String> = self
                .offenses
                .iter()
                .map(|(label, n)| format!("{label} x{n}"))
                .collect();
            out.push_str(&format!("  offenses: {}\n", parts.join(", ")));
        }
        let g = &self.gossip_stats;
        out.push_str(&format!(
            "  gossip: {} announcements, {} range requests, {} frames rejected, \
             {} dup announces, {} refusals, {} evidence frames, {} diversity rejects\n",
            g.announcements,
            g.range_requests,
            g.frames_rejected,
            g.dup_announces,
            g.range_refusals,
            g.evidence_frames,
            g.diversity_rejects
        ));
        out.push_str(&format!(
            "  verdict: {}\n",
            if self.ok() { "CONVERGED" } else { "COMPROMISED" }
        ));
        out
    }
}

/// Run the adversarial-peer gauntlet: N honest replicas, one Byzantine
/// slot per entry of `actors`, everything derived from `seed`. When
/// `actors` is non-empty, the same-seed adversary-free run supplies the
/// baseline snapshot and goodput the defended state is judged against.
pub fn run_byzantine_scenario(
    seed: u64,
    honest: usize,
    actors: &[ActorKind],
) -> Result<ByzantineReport, NodeError> {
    let (cluster, ticks) = drive(seed, honest, actors)?;
    let snapshot = selection_snapshot(&cluster);
    let goodput = cluster.gossip_stats().blocks_applied as f64 / SCENARIO_HORIZON as f64;
    let (baseline_snapshot, baseline_goodput) = if actors.is_empty() {
        (snapshot, goodput)
    } else {
        let (baseline, _) = drive(seed, honest, &[])?;
        (
            selection_snapshot(&baseline),
            baseline.gossip_stats().blocks_applied as f64 / SCENARIO_HORIZON as f64,
        )
    };
    let mut tally: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut honest_accusations = 0u64;
    for &i in &cluster.live_ids() {
        if let Some(d) = cluster.defense(i) {
            for r in d.records() {
                *tally.entry(r.offense.label()).or_default() += 1;
                if r.peer < honest {
                    honest_accusations += 1;
                }
            }
        }
    }
    let byz = cluster.byzantine_ids();
    let all_banned = cluster.live_ids().iter().all(|&i| {
        byz.iter()
            .all(|&b| cluster.defense(i).is_some_and(|d| d.is_banned(b)))
    });
    let no_poison = cluster.live_ids().iter().all(|&i| {
        cluster.node(i).is_some_and(|n| {
            n.chain()
                .blocks()
                .iter()
                .all(|b| b.transactions.iter().all(|ct| ct.tx.inputs.is_empty()))
        })
    });
    let height = cluster
        .node(0)
        .map(|n| n.chain().height())
        .unwrap_or_default();
    Ok(ByzantineReport {
        seed,
        honest,
        actors: actors.to_vec(),
        converged: cluster.converged(),
        height,
        ticks,
        all_banned,
        no_poison,
        snapshot,
        snapshot_match: snapshot.is_some() && snapshot == baseline_snapshot,
        goodput,
        baseline_goodput,
        offenses: tally
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        honest_accusations,
        fault_stats: cluster.fault_stats(),
        gossip_stats: cluster.gossip_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_kind_labels_roundtrip() {
        for kind in ActorKind::ALL {
            assert_eq!(ActorKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(ActorKind::parse("gremlin"), None);
    }

    #[test]
    fn mix_cycles_through_all_kinds() {
        assert_eq!(ActorKind::mix(1), vec![ActorKind::Equivocator]);
        assert_eq!(ActorKind::mix(5).len(), 5);
        assert_eq!(ActorKind::mix(5)[4], ActorKind::Equivocator);
    }

    #[test]
    fn adversary_free_run_is_its_own_baseline() {
        let report = run_byzantine_scenario(3, 3, &[]).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert!(report.snapshot_match);
        assert_eq!(report.goodput, report.baseline_goodput);
        assert!(report.render().contains("verdict: CONVERGED"));
    }

    #[test]
    fn equivocator_is_caught_and_banned() {
        let report =
            run_byzantine_scenario(7, 3, &[ActorKind::Equivocator]).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert!(
            report
                .offenses
                .iter()
                .any(|(label, n)| label == "equivocation" && *n > 0),
            "{:?}",
            report.offenses
        );
    }
}
