//! A wallet: the client-side actor of the whole pipeline.
//!
//! Owns key pairs, tracks which ledger tokens it can spend, and drives
//! the full Step-1→2 flow: derive the batch's algorithmic view, run a
//! DA-MS selection under its privacy policy, validate the candidate ring
//! (Definition 5), sign, and submit — exactly what §4 describes a user
//! doing offline before broadcasting.

use std::collections::HashMap;

use rand::Rng;

use dams_blockchain::{
    Chain, ChainError, RingConfiguration, RingInput, TokenOutput, Transaction, TxId, VerifyError,
};
use dams_core::{ModularHistory, ModularInstance, PracticalAlgorithm, SelectionPolicy, TokenMagic};
use dams_crypto::{KeyPair, PublicKey};
use dams_diversity::{
    DiversityRequirement, HtId, NeighborTracker, RingIndex, RingSet, TokenUniverse,
};

use crate::auditor::chain_view;
use crate::validate::{validate_ring, Verdict};

/// Errors a wallet can surface.
#[derive(Debug)]
pub enum WalletError {
    /// The wallet holds no key for the requested token.
    NotOurs(dams_blockchain::TokenId),
    /// The batch cannot produce an eligible ring (relax the requirement).
    Selection(dams_core::SelectError),
    /// The wallet's own Definition-5 validation rejected the ring.
    Validation(Verdict),
    /// The chain rejected the signed transaction.
    Chain(VerifyError),
    /// Sealing the block (or another chain state operation) failed.
    ChainState(ChainError),
    /// Signing over the selected ring failed.
    Signing(dams_crypto::SignError),
    /// The committed history is not laminar — the chain contains rings
    /// that violate the first practical configuration.
    BrokenHistory,
    /// The selection service refused the request (admission control):
    /// the deadline budget is infeasible or the exact-tier circuit is
    /// open. The spend was not attempted — retry with a larger budget or
    /// without `require_exact`.
    Shed(dams_svc::ShedReason),
}

impl std::fmt::Display for WalletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalletError::NotOurs(t) => write!(f, "token {} is not controlled by this wallet", t.0),
            WalletError::Selection(e) => write!(f, "mixin selection failed: {e}"),
            WalletError::Validation(v) => write!(f, "self-validation rejected the ring: {v:?}"),
            WalletError::Chain(e) => write!(f, "chain rejected the transaction: {e}"),
            WalletError::ChainState(e) => write!(f, "chain state operation failed: {e}"),
            WalletError::Signing(e) => write!(f, "ring signing failed: {e}"),
            WalletError::BrokenHistory => {
                write!(f, "committed rings violate the practical configuration")
            }
            WalletError::Shed(r) => write!(f, "selection service shed the request: {r}"),
        }
    }
}

impl std::error::Error for WalletError {}

/// A long-lived spend session: the incremental counterpart of deriving a
/// fresh [`ChainView`](crate::auditor::ChainView) and running
/// [`ModularInstance::decompose`] on every spend.
///
/// The session keeps a [`ModularHistory`] in lock-step with the chain:
/// [`SpendSession::sync`] folds each new block's minted tokens in via
/// `extend_universe` and each committed ring via `absorb_ring` — an O(n)
/// merge per ring instead of the O(n²) from-scratch decomposition — so a
/// wallet making many spends pays the partition cost once per *block*,
/// not once per *spend*.
#[derive(Default)]
pub struct SpendSession {
    history: Option<ModularHistory>,
    /// Dense renumbering of origin `TxId`s, mirroring
    /// [`chain_view`](crate::auditor::chain_view)'s labeling exactly so
    /// session verdicts are bit-identical to snapshot verdicts.
    ht_ids: HashMap<TxId, u32>,
    /// Blocks already folded into the history.
    blocks_seen: usize,
}

impl SpendSession {
    pub fn new() -> Self {
        SpendSession::default()
    }

    /// The maintained modular view (for inspection; `None` before the
    /// first [`SpendSession::sync`]).
    pub fn history(&self) -> Option<&ModularHistory> {
        self.history.as_ref()
    }

    /// How many chain blocks the session has absorbed.
    pub fn blocks_seen(&self) -> usize {
        self.blocks_seen
    }

    /// Catch the session up to `chain`'s tip: O(Δ) in the new blocks.
    ///
    /// A non-laminar committed ring (one that straddles the maintained
    /// partition) surfaces as [`WalletError::BrokenHistory`] — the same
    /// verdict the decompose path gives for such a chain.
    pub fn sync(&mut self, chain: &Chain) -> Result<(), WalletError> {
        let mut history = self
            .history
            .take()
            .unwrap_or_else(|| ModularHistory::fresh(TokenUniverse::new(Vec::new())));
        for block in &chain.blocks()[self.blocks_seen..] {
            // Mint first: a block's rings may reference its own earlier
            // transactions' outputs.
            let mut new_hts = Vec::new();
            for ct in &block.transactions {
                for _ in &ct.output_ids {
                    let next = self.ht_ids.len() as u32;
                    new_hts.push(HtId(*self.ht_ids.entry(ct.id).or_insert(next)));
                }
            }
            history.extend_universe(new_hts);
            for ct in &block.transactions {
                for input in &ct.tx.inputs {
                    let ring = RingSet::new(
                        input.ring.iter().map(|t| dams_diversity::TokenId(t.0 as u32)),
                    );
                    let claim = DiversityRequirement::new(
                        input.claimed_c.max(f64::MIN_POSITIVE),
                        input.claimed_l.max(1),
                    );
                    if history.absorb_ring(&ring, claim).is_err() {
                        // The chain's committed history is non-laminar; a
                        // half-absorbed block must not linger, so reset —
                        // a retry resyncs from genesis and fails at the
                        // same ring.
                        self.blocks_seen = 0;
                        self.ht_ids.clear();
                        return Err(WalletError::BrokenHistory);
                    }
                }
            }
            self.blocks_seen += 1;
        }
        self.history = Some(history);
        Ok(())
    }
}

/// The wallet.
pub struct Wallet {
    /// Owned key pairs, by public key value.
    keys: HashMap<u64, KeyPair>,
    /// The privacy policy applied to every spend.
    pub policy: SelectionPolicy,
    /// Which practical algorithm drives selection.
    pub algorithm: PracticalAlgorithm,
    /// Admission-control tuning for [`Wallet::spend_with_budget`].
    pub svc: dams_svc::FrontendConfig,
}

impl Wallet {
    pub fn new(policy: SelectionPolicy, algorithm: PracticalAlgorithm) -> Self {
        Wallet {
            keys: HashMap::new(),
            policy,
            algorithm,
            svc: dams_svc::FrontendConfig::default(),
        }
    }

    /// Generate and register a fresh key; returns its public half.
    pub fn new_address<R: Rng + ?Sized>(
        &mut self,
        chain: &Chain,
        rng: &mut R,
    ) -> PublicKey {
        let kp = KeyPair::generate(chain.group(), rng);
        self.keys.insert(kp.public.value(), kp);
        kp.public
    }

    /// Import an existing key pair.
    pub fn import(&mut self, kp: KeyPair) {
        self.keys.insert(kp.public.value(), kp);
    }

    /// Restore a wallet's first `n` keys from a deterministic key chain
    /// (HD-style recovery from a seed — see `dams_crypto::KeyChain`).
    pub fn restore_from_chain(&mut self, chain: &dams_crypto::KeyChain, n: u64) {
        for kp in chain.derive_range(n) {
            self.import(kp);
        }
    }

    /// Scan the chain for tokens this wallet controls and whose key image
    /// has not been consumed.
    pub fn spendable(&self, chain: &Chain) -> Vec<dams_blockchain::TokenId> {
        (0..chain.token_count() as u64)
            .map(dams_blockchain::TokenId)
            .filter(|t| {
                chain.token(*t).is_some_and(|rec| {
                    self.keys.get(&rec.owner.value()).is_some_and(|kp| {
                        !chain.image_consumed(kp.key_image(chain.group()))
                    })
                })
            })
            .collect()
    }

    /// Spend `token` to `receiver`: select mixins, self-validate, sign,
    /// submit under `config`, and seal a block.
    pub fn spend<R: Rng + ?Sized>(
        &self,
        chain: &mut Chain,
        token: dams_blockchain::TokenId,
        receiver: PublicKey,
        config: &dyn RingConfiguration,
        rng: &mut R,
    ) -> Result<RingSet, WalletError> {
        let rec = chain
            .token(token)
            .ok_or(WalletError::NotOurs(token))?
            .clone();
        let signer = *self
            .keys
            .get(&rec.owner.value())
            .ok_or(WalletError::NotOurs(token))?;

        // Step 1: derive the view, decompose, select.
        let view = chain_view(chain);
        let instance = dams_core::Instance::new(
            view.universe.clone(),
            view.rings.clone(),
            view.claims
                .iter()
                .map(|&(c, l)| DiversityRequirement::new(c.max(f64::MIN_POSITIVE), l.max(1)))
                .collect(),
        );
        let modular =
            ModularInstance::decompose(&instance).map_err(|_| WalletError::BrokenHistory)?;
        let tm = TokenMagic::new(self.algorithm, self.policy);
        let tracker = NeighborTracker::new();
        let alg_token = dams_diversity::TokenId(token.0 as u32);
        let selection = tm
            .generate(&modular, alg_token, &tracker, rng)
            .map_err(WalletError::Selection)?;

        self.validate_sign_submit(
            chain,
            &selection.ring,
            &view.rings,
            &instance.claims,
            &view.universe,
            rec.amount,
            &signer,
            receiver,
            config,
            rng,
        )?;
        Ok(selection.ring)
    }

    /// Spend `token` through a long-lived [`SpendSession`]: the session's
    /// incrementally maintained [`ModularHistory`] replaces the per-spend
    /// chain-view rebuild and O(n²) decomposition of [`Wallet::spend`].
    /// The session catches up O(Δ) on the blocks adopted since its last
    /// sync (including the wallet's own previous spends) before selecting.
    pub fn spend_incremental<R: Rng + ?Sized>(
        &self,
        chain: &mut Chain,
        session: &mut SpendSession,
        token: dams_blockchain::TokenId,
        receiver: PublicKey,
        config: &dyn RingConfiguration,
        rng: &mut R,
    ) -> Result<RingSet, WalletError> {
        let rec = chain
            .token(token)
            .ok_or(WalletError::NotOurs(token))?
            .clone();
        let signer = *self
            .keys
            .get(&rec.owner.value())
            .ok_or(WalletError::NotOurs(token))?;

        session.sync(chain)?;
        let history = session.history.as_ref().expect("sync installs a history");
        let tm = TokenMagic::new(self.algorithm, self.policy);
        let tracker = NeighborTracker::new();
        let alg_token = dams_diversity::TokenId(token.0 as u32);
        let selection = tm
            .generate(history.instance(), alg_token, &tracker, rng)
            .map_err(WalletError::Selection)?;

        self.validate_sign_submit(
            chain,
            &selection.ring,
            history.rings(),
            history.claims(),
            history.universe(),
            rec.amount,
            &signer,
            receiver,
            config,
            rng,
        )?;
        Ok(selection.ring)
    }

    /// Spend `token` under an explicit deadline budget, routed through
    /// the overload-aware selection frontend (`dams-svc`).
    ///
    /// Unlike [`Wallet::spend`], selection runs the degrade ladder: the
    /// budget (in virtual ticks — see `dams_svc::Frontend`) buys as much
    /// exact search as it affords and falls back to the approximation
    /// tiers otherwise. A budget below the configured reserve, or an
    /// open exact-tier circuit when `require_exact` is set, sheds the
    /// request with [`WalletError::Shed`] *before* any work runs.
    /// Metrics land in `registry` under `svc.*` / `core.*`.
    #[allow(clippy::too_many_arguments)]
    pub fn spend_with_budget<R: Rng + ?Sized>(
        &self,
        chain: &mut Chain,
        token: dams_blockchain::TokenId,
        receiver: PublicKey,
        config: &dyn RingConfiguration,
        budget_ticks: u64,
        require_exact: bool,
        registry: &dams_obs::Registry,
        rng: &mut R,
    ) -> Result<RingSet, WalletError> {
        let rec = chain
            .token(token)
            .ok_or(WalletError::NotOurs(token))?
            .clone();
        let signer = *self
            .keys
            .get(&rec.owner.value())
            .ok_or(WalletError::NotOurs(token))?;

        let view = chain_view(chain);
        let instance = dams_core::Instance::new(
            view.universe.clone(),
            view.rings.clone(),
            view.claims
                .iter()
                .map(|&(c, l)| DiversityRequirement::new(c.max(f64::MIN_POSITIVE), l.max(1)))
                .collect(),
        );
        let mut frontend = dams_svc::Frontend::new(&instance, self.policy, self.svc, registry);
        let alg_token = dams_diversity::TokenId(token.0 as u32);
        let degraded = frontend
            .select(alg_token, budget_ticks, require_exact)
            .map_err(WalletError::Shed)?;

        self.validate_sign_submit(
            chain,
            &degraded.selection.ring,
            &view.rings,
            &instance.claims,
            &view.universe,
            rec.amount,
            &signer,
            receiver,
            config,
            rng,
        )?;
        Ok(degraded.selection.ring)
    }

    /// Shared spend tail: Definition-5 self-validation, ring signing,
    /// submission, and block sealing.
    #[allow(clippy::too_many_arguments)]
    fn validate_sign_submit<R: Rng + ?Sized>(
        &self,
        chain: &mut Chain,
        ring: &RingSet,
        rings: &RingIndex,
        claims: &[DiversityRequirement],
        universe: &TokenUniverse,
        amount: dams_blockchain::Amount,
        signer: &KeyPair,
        receiver: PublicKey,
        config: &dyn RingConfiguration,
        rng: &mut R,
    ) -> Result<(), WalletError> {
        // Definition-5 self-validation before broadcasting.
        let verdict = validate_ring(ring, self.policy.requirement, rings, claims, universe);
        if verdict != Verdict::Eligible {
            return Err(WalletError::Validation(verdict));
        }

        // Step 2: sign over the declared ring, sorted by ledger id.
        let outputs = vec![TokenOutput {
            owner: receiver,
            amount,
        }];
        let shell = Transaction {
            inputs: vec![],
            outputs: outputs.clone(),
            memo: vec![],
        };
        let payload = shell.signing_payload();
        let ring_ids: Vec<dams_blockchain::TokenId> = ring
            .tokens()
            .iter()
            .map(|t| dams_blockchain::TokenId(t.0 as u64))
            .collect();
        let ring_keys: Vec<PublicKey> = ring_ids
            .iter()
            .map(|t| chain.token(*t).map(|rec| rec.owner).ok_or(WalletError::NotOurs(*t)))
            .collect::<Result<_, _>>()?;
        let sig = dams_crypto::sign(chain.group(), &payload, &ring_keys, signer, rng)
            .map_err(WalletError::Signing)?;
        let tx = Transaction {
            inputs: vec![RingInput {
                ring: ring_ids,
                signature: sig,
                claimed_c: self.policy.requirement.c,
                claimed_l: self.policy.requirement.l,
            }],
            outputs,
            memo: vec![],
        };
        chain.submit(tx, config).map_err(WalletError::Chain)?;
        chain.seal_block().map_err(WalletError::ChainState)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_blockchain::{Amount, NoConfiguration};
    use dams_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Mint 16 tokens (4 per coinbase) to a wallet.
    fn setup() -> (Chain, Wallet, StdRng) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut chain = Chain::new(SchnorrGroup::default());
        let mut wallet = Wallet::new(
            SelectionPolicy::new(DiversityRequirement::new(1.0, 3)),
            PracticalAlgorithm::Progressive,
        );
        for _ in 0..4 {
            let outs: Vec<TokenOutput> = (0..4)
                .map(|_| TokenOutput {
                    owner: wallet.new_address(&chain, &mut rng),
                    amount: Amount(5),
                })
                .collect();
            chain.submit_coinbase(outs);
            chain.seal_block().unwrap();
        }
        (chain, wallet, rng)
    }

    #[test]
    fn hd_restore_recovers_spendable_tokens() {
        // Mint tokens to HD-derived keys, then restore a fresh wallet from
        // the same passphrase and confirm it sees them all.
        let mut rng = StdRng::seed_from_u64(8);
        let mut chain_ledger = Chain::new(SchnorrGroup::default());
        let kc = dams_crypto::KeyChain::from_passphrase(
            *chain_ledger.group(),
            "open sesame",
            0,
        );
        let keys = kc.derive_range(6);
        chain_ledger.submit_coinbase(
            keys.iter()
                .map(|k| TokenOutput {
                    owner: k.public,
                    amount: Amount(1),
                })
                .collect(),
        );
        chain_ledger.seal_block().unwrap();
        let _ = &mut rng;

        let mut restored = Wallet::new(
            SelectionPolicy::new(DiversityRequirement::new(1.0, 1)),
            PracticalAlgorithm::Smallest,
        );
        restored.restore_from_chain(
            &dams_crypto::KeyChain::from_passphrase(
                *chain_ledger.group(),
                "open sesame",
                0,
            ),
            6,
        );
        assert_eq!(restored.spendable(&chain_ledger).len(), 6);
        // wrong passphrase restores nothing
        let mut wrong = Wallet::new(
            SelectionPolicy::new(DiversityRequirement::new(1.0, 1)),
            PracticalAlgorithm::Smallest,
        );
        wrong.restore_from_chain(
            &dams_crypto::KeyChain::from_passphrase(
                *chain_ledger.group(),
                "open sesame?",
                0,
            ),
            6,
        );
        assert!(wrong.spendable(&chain_ledger).is_empty());
    }

    #[test]
    fn scan_finds_owned_tokens() {
        let (chain, wallet, _rng) = setup();
        assert_eq!(wallet.spendable(&chain).len(), 16);
    }

    #[test]
    fn spend_end_to_end() {
        let (mut chain, wallet, mut rng) = setup();
        let receiver = KeyPair::generate(chain.group(), &mut rng).public;
        let ring = wallet
            .spend(
                &mut chain,
                dams_blockchain::TokenId(0),
                receiver,
                &NoConfiguration,
                &mut rng,
            )
            .unwrap();
        assert!(ring.contains(dams_diversity::TokenId(0)));
        assert!(chain.audit());
        // The spent token no longer appears spendable.
        assert!(!wallet
            .spendable(&chain)
            .contains(&dams_blockchain::TokenId(0)));
    }

    #[test]
    fn double_spend_blocked_by_wallet_or_chain() {
        let (mut chain, wallet, mut rng) = setup();
        let receiver = KeyPair::generate(chain.group(), &mut rng).public;
        wallet
            .spend(
                &mut chain,
                dams_blockchain::TokenId(0),
                receiver,
                &NoConfiguration,
                &mut rng,
            )
            .unwrap();
        let err = wallet
            .spend(
                &mut chain,
                dams_blockchain::TokenId(0),
                receiver,
                &NoConfiguration,
                &mut rng,
            )
            .unwrap_err();
        // Either the selection layer (token now in a committed ring whose
        // reuse would violate validation) or the chain's image registry
        // stops it; both are correct.
        match err {
            WalletError::Chain(VerifyError::ImageReused(_))
            | WalletError::Validation(_)
            | WalletError::Selection(_) => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn budgeted_spend_end_to_end() {
        let (mut chain, wallet, mut rng) = setup();
        let receiver = KeyPair::generate(chain.group(), &mut rng).public;
        let registry = dams_obs::Registry::new();
        let ring = wallet
            .spend_with_budget(
                &mut chain,
                dams_blockchain::TokenId(1),
                receiver,
                &NoConfiguration,
                1 << 20,
                false,
                &registry,
                &mut rng,
            )
            .unwrap();
        assert!(ring.contains(dams_diversity::TokenId(1)));
        assert!(chain.audit());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("svc.completed_total"), Some(1));
        // A generous budget buys the exact tier.
        assert_eq!(snap.counter("svc.degraded_total"), Some(0));
    }

    #[test]
    fn starved_budget_spend_is_shed_typed() {
        let (mut chain, mut wallet, mut rng) = setup();
        wallet.svc.reserve_ticks = 1 << 16;
        let receiver = KeyPair::generate(chain.group(), &mut rng).public;
        let registry = dams_obs::Registry::new();
        let err = wallet
            .spend_with_budget(
                &mut chain,
                dams_blockchain::TokenId(1),
                receiver,
                &NoConfiguration,
                8,
                false,
                &registry,
                &mut rng,
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                WalletError::Shed(dams_svc::ShedReason::DeadlineInfeasible)
            ),
            "{err:?}"
        );
        // Nothing was signed or submitted.
        assert_eq!(
            registry.snapshot().counter("svc.completed_total"),
            Some(0)
        );
        assert!(wallet
            .spendable(&chain)
            .contains(&dams_blockchain::TokenId(1)));
    }

    #[test]
    fn tight_budget_spend_degrades_but_completes() {
        let (mut chain, wallet, mut rng) = setup();
        let receiver = KeyPair::generate(chain.group(), &mut rng).public;
        let registry = dams_obs::Registry::new();
        // Clears the default reserve (64) but grants almost no exact
        // candidates: the ladder answers at an approximation tier.
        let ring = wallet
            .spend_with_budget(
                &mut chain,
                dams_blockchain::TokenId(2),
                receiver,
                &NoConfiguration,
                68,
                false,
                &registry,
                &mut rng,
            )
            .unwrap();
        assert!(ring.contains(dams_diversity::TokenId(2)));
        assert!(chain.audit());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("svc.degraded_total"), Some(1));
    }

    #[test]
    fn incremental_first_spend_matches_oneshot() {
        // On an untouched chain the session's instance is identical to the
        // decompose path's, so the same rng stream selects the same ring.
        let (mut chain_a, wallet, mut rng_a) = setup();
        let (mut chain_b, _, _) = setup();
        let mut rng_b = rng_a.clone();
        let receiver = KeyPair::generate(chain_a.group(), &mut rng_a).public;
        let _ = KeyPair::generate(chain_b.group(), &mut rng_b).public;
        let oneshot = wallet
            .spend(
                &mut chain_a,
                dams_blockchain::TokenId(0),
                receiver,
                &NoConfiguration,
                &mut rng_a,
            )
            .unwrap();
        let mut session = SpendSession::new();
        let incremental = wallet
            .spend_incremental(
                &mut chain_b,
                &mut session,
                dams_blockchain::TokenId(0),
                receiver,
                &NoConfiguration,
                &mut rng_b,
            )
            .unwrap();
        assert_eq!(oneshot, incremental);
    }

    #[test]
    fn sequential_incremental_spends_stay_private_and_in_sync() {
        let (mut chain, wallet, mut rng) = setup();
        let receiver = KeyPair::generate(chain.group(), &mut rng).public;
        let mut session = SpendSession::new();
        for t in [0u64, 5, 10] {
            let ring = wallet
                .spend_incremental(
                    &mut chain,
                    &mut session,
                    dams_blockchain::TokenId(t),
                    receiver,
                    &NoConfiguration,
                    &mut rng,
                )
                .unwrap();
            assert!(ring.contains(dams_diversity::TokenId(t as u32)));
        }
        let report = crate::auditor::audit(&chain);
        assert_eq!(report.analysis.resolved_count(), 0, "spends linkable");
        assert!(report.claim_violations.is_empty());
        // The session's maintained partition must equal the from-scratch
        // decomposition of the final chain (canonically, module order
        // aside — the session appends merges, decompose sorts by ring id).
        let mut session_check = SpendSession::new();
        session_check.sync(&chain).unwrap();
        let history = session_check.history().unwrap();
        let view = chain_view(&chain);
        let instance = dams_core::Instance::new(
            view.universe.clone(),
            view.rings.clone(),
            view.claims
                .iter()
                .map(|&(c, l)| DiversityRequirement::new(c.max(f64::MIN_POSITIVE), l.max(1)))
                .collect(),
        );
        let full = ModularInstance::decompose(&instance).unwrap();
        let canon = |mi: &ModularInstance| {
            let mut v: Vec<Vec<u32>> = mi
                .modules()
                .iter()
                .map(|m| m.tokens.tokens().iter().map(|t| t.0).collect())
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(history.instance()), canon(&full));
        assert_eq!(history.rings().len(), view.rings.len());
        // And syncing an already-current session is a no-op.
        let blocks = session_check.blocks_seen();
        session_check.sync(&chain).unwrap();
        assert_eq!(session_check.blocks_seen(), blocks);
    }

    #[test]
    fn foreign_token_rejected() {
        let (mut chain, wallet, mut rng) = setup();
        // Mint one token to an outsider.
        let outsider = KeyPair::generate(chain.group(), &mut rng);
        chain.submit_coinbase(vec![TokenOutput {
            owner: outsider.public,
            amount: Amount(1),
        }]);
        chain.seal_block().unwrap();
        let foreign = dams_blockchain::TokenId(16);
        let receiver = KeyPair::generate(chain.group(), &mut rng).public;
        let err = wallet
            .spend(&mut chain, foreign, receiver, &NoConfiguration, &mut rng)
            .unwrap_err();
        assert!(matches!(err, WalletError::NotOurs(_)), "{err:?}");
    }

    #[test]
    fn sequential_spends_stay_private() {
        let (mut chain, wallet, mut rng) = setup();
        let receiver = KeyPair::generate(chain.group(), &mut rng).public;
        for t in [0u64, 5, 10] {
            wallet
                .spend(
                    &mut chain,
                    dams_blockchain::TokenId(t),
                    receiver,
                    &NoConfiguration,
                    &mut rng,
                )
                .unwrap();
        }
        let report = crate::auditor::audit(&chain);
        assert_eq!(report.analysis.resolved_count(), 0, "spends linkable");
        assert!(report.claim_violations.is_empty());
    }
}
