//! Verifier-side (Step 3) configuration checks.
//!
//! §2.1: "verifiers can check if r satisfies some extra configurations…
//! If r conflicts these configurations, r will also be rejected." §6.1's
//! practical configurations are enforced here when miners validate a
//! transaction:
//!
//! 1. **Batch membership** — every ring token comes from one TokenMagic
//!    batch (§4: mixins only from the spent token's batch);
//! 2. **First practical configuration** — the ring is a superset of every
//!    committed ring it intersects;
//! 3. **Claimed diversity** — the ring's HT multiset satisfies the
//!    claimed recursive (c, ℓ)-diversity (using on-chain origins as HTs).

use std::collections::HashMap;

use dams_blockchain::{BatchList, Chain, RingConfiguration, TokenId};
use dams_diversity::{DiversityRequirement, HtHistogram, HtId, RingIndex, RingSet};

/// The TokenMagic verifier configuration. Holds the committed ring
/// history (at the algorithmic layer) and the batch parameter λ.
pub struct TokenMagicConfiguration {
    /// λ — tokens per batch.
    pub lambda: usize,
    /// Committed rings (ledger token ids), appended as blocks seal.
    history: RingIndex,
    /// The claimed requirement of each committed ring.
    claims: Vec<DiversityRequirement>,
    /// Minimum claim any new ring must declare (system floor); `None`
    /// disables the diversity check (claims are then caller-verified).
    pub required_claim: Option<DiversityRequirement>,
}

impl TokenMagicConfiguration {
    pub fn new(lambda: usize) -> Self {
        TokenMagicConfiguration {
            lambda,
            history: RingIndex::new(),
            claims: Vec::new(),
            required_claim: None,
        }
    }

    pub fn with_required_claim(mut self, claim: DiversityRequirement) -> Self {
        self.required_claim = Some(claim);
        self
    }

    /// Record a committed ring so later verifications see it.
    pub fn commit(&mut self, ring_tokens: &[TokenId], claim: DiversityRequirement) {
        self.history.push(ledger_ring(ring_tokens));
        self.claims.push(claim);
    }

    pub fn history(&self) -> &RingIndex {
        &self.history
    }
}

/// Convert ledger token ids to the algorithmic ring representation.
fn ledger_ring(tokens: &[TokenId]) -> RingSet {
    RingSet::new(
        tokens
            .iter()
            .map(|t| dams_diversity::TokenId(t.0 as u32)),
    )
}

/// HT histogram of a ledger ring using transaction origins as HTs.
fn ledger_histogram(chain: &Chain, tokens: &[TokenId]) -> Result<HtHistogram, String> {
    let mut origin_ids: HashMap<u64, u32> = HashMap::new();
    let mut hts = Vec::with_capacity(tokens.len());
    for &t in tokens {
        let rec = chain
            .token(t)
            .ok_or_else(|| format!("unknown token {}", t.0))?;
        let next = origin_ids.len() as u32;
        let id = *origin_ids.entry(rec.origin.0).or_insert(next);
        hts.push(HtId(id));
    }
    Ok(HtHistogram::from_hts(hts))
}

impl RingConfiguration for TokenMagicConfiguration {
    fn check(&self, chain: &Chain, ring: &[TokenId]) -> Result<(), String> {
        // 1. Batch membership.
        let batches = BatchList::build(chain, self.lambda);
        let first = ring.first().ok_or("empty ring")?;
        let batch = batches
            .batch_of(*first)
            .ok_or_else(|| format!("token {} not in any batch", first.0))?;
        for t in ring {
            if batch.tokens.binary_search(t).is_err() {
                return Err(format!(
                    "token {} outside the spent token's batch {}",
                    t.0, batch.index
                ));
            }
        }
        // 2. First practical configuration against committed history.
        let candidate = ledger_ring(ring);
        for (_, committed) in self.history.iter() {
            if candidate.intersects(committed) && !candidate.is_superset(committed) {
                return Err("ring overlaps a committed ring without containing it".into());
            }
        }
        // 3. Claimed diversity floor.
        if let Some(claim) = self.required_claim {
            let hist = ledger_histogram(chain, ring)?;
            if !claim.satisfied_by(&hist) {
                return Err(format!(
                    "ring violates the required recursive ({}, {})-diversity",
                    claim.c, claim.l
                ));
            }
        }
        Ok(())
    }
}

/// Monero's recency rule from §2.1, as a second pluggable configuration:
/// at least half of the ring must come from the most recent `window`
/// blocks.
pub struct RecencyConfiguration {
    /// How many trailing blocks count as "recent" (Monero: ~1.8 days).
    pub window: u64,
}

impl RingConfiguration for RecencyConfiguration {
    fn check(&self, chain: &Chain, ring: &[TokenId]) -> Result<(), String> {
        let tip = chain.height() as u64 - 1;
        let cutoff = tip.saturating_sub(self.window);
        let recent = ring
            .iter()
            .filter(|t| {
                chain
                    .token(**t)
                    .is_some_and(|rec| rec.block.0 > cutoff)
            })
            .count();
        if recent * 2 >= ring.len() {
            Ok(())
        } else {
            Err(format!(
                "only {recent}/{} ring members from the last {} blocks",
                ring.len(),
                self.window
            ))
        }
    }
}

/// Chain several configurations; all must pass.
pub struct AllOf<'a>(pub Vec<&'a dyn RingConfiguration>);

impl RingConfiguration for AllOf<'_> {
    fn check(&self, chain: &Chain, ring: &[TokenId]) -> Result<(), String> {
        for cfg in &self.0 {
            cfg.check(chain, ring)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_blockchain::{Amount, TokenOutput};
    use dams_crypto::{KeyPair, SchnorrGroup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_with_blocks(per_block: &[usize]) -> Chain {
        let mut rng = StdRng::seed_from_u64(1);
        let mut chain = Chain::new(SchnorrGroup::default());
        for &n in per_block {
            let outs = (0..n)
                .map(|_| TokenOutput {
                    owner: KeyPair::generate(chain.group(), &mut rng).public,
                    amount: Amount(1),
                })
                .collect();
            chain.submit_coinbase(outs);
            chain.seal_block().unwrap();
        }
        chain
    }

    #[test]
    fn batch_membership_enforced() {
        // λ = 4 over two 4-token blocks → two batches {0..3}, {4..7}.
        let chain = chain_with_blocks(&[4, 4]);
        let cfg = TokenMagicConfiguration::new(4);
        assert!(cfg.check(&chain, &[TokenId(0), TokenId(2)]).is_ok());
        let err = cfg.check(&chain, &[TokenId(0), TokenId(5)]).unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn first_configuration_enforced() {
        let chain = chain_with_blocks(&[8]);
        let mut cfg = TokenMagicConfiguration::new(8);
        cfg.commit(
            &[TokenId(0), TokenId(1)],
            DiversityRequirement::new(1.0, 1),
        );
        // superset: ok
        assert!(cfg
            .check(&chain, &[TokenId(0), TokenId(1), TokenId(2)])
            .is_ok());
        // disjoint: ok
        assert!(cfg.check(&chain, &[TokenId(3), TokenId(4)]).is_ok());
        // partial overlap: rejected
        assert!(cfg.check(&chain, &[TokenId(1), TokenId(2)]).is_err());
    }

    #[test]
    fn diversity_floor_enforced() {
        // Two blocks of 2 → two HTs; λ = 4 puts them in one batch.
        let chain = chain_with_blocks(&[2, 2]);
        let cfg = TokenMagicConfiguration::new(4)
            .with_required_claim(DiversityRequirement::new(2.0, 2));
        // Same-origin pair: q = [2], θ = 1 < ℓ → rejected.
        assert!(cfg.check(&chain, &[TokenId(0), TokenId(1)]).is_err());
        // Cross-origin pair: q = [1,1]: 1 < 2·1 → ok.
        assert!(cfg.check(&chain, &[TokenId(0), TokenId(2)]).is_ok());
    }

    #[test]
    fn recency_rule() {
        let chain = chain_with_blocks(&[2, 2, 2]); // blocks 1..3 hold tokens
        let cfg = RecencyConfiguration { window: 1 };
        // Tokens 4, 5 are in the last block (3 > 3-1): recent.
        assert!(cfg.check(&chain, &[TokenId(4), TokenId(5)]).is_ok());
        assert!(cfg.check(&chain, &[TokenId(4), TokenId(0)]).is_ok()); // 1/2 recent
        assert!(cfg
            .check(&chain, &[TokenId(0), TokenId(1), TokenId(4)])
            .is_err()); // 1/3 recent
    }

    #[test]
    fn all_of_combines() {
        let chain = chain_with_blocks(&[4]);
        let tm = TokenMagicConfiguration::new(4);
        let rec = RecencyConfiguration { window: 10 };
        let combined = AllOf(vec![&tm, &rec]);
        assert!(combined.check(&chain, &[TokenId(0), TokenId(1)]).is_ok());
    }
}
