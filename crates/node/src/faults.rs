//! A deterministic fault-injecting message bus.
//!
//! Wraps the [`crate::network::SimNode`] replicas in an adversarial
//! network that **drops**, **duplicates**, **reorders**, **delays**, and
//! **corrupts** gossip traffic (at the wire level — messages travel as
//! encoded bytes through the real codec) and can **partition** the node
//! set and later heal it. Every fault decision is drawn from a single
//! seeded PRNG stream, so an entire adversarial run — including which
//! byte of which message was flipped — replays exactly from one `u64`
//! seed.
//!
//! The fault gauntlet itself lives in [`FaultChannel`], a transport that
//! knows nothing about blocks: raw frames go in, `(dest, bytes)` pairs
//! come out when due. [`FaultyBus`] wires it to block announcements;
//! [`crate::gossip::Cluster`] runs its richer typed gossip protocol
//! (push announcements, tip anti-entropy, pull range repair) over the
//! very same channel, so cluster scenarios inherit the identical fault
//! model and replay from one seed.
//!
//! Recovery relies on the node-layer robustness machinery: bounded
//! inboxes and orphan pools, TTL eviction, exponential-backoff parent
//! requests, and periodic anti-entropy tip announcements. The claim the
//! property tests pin down: for any seed, after the faults stop the
//! replicas converge on identical tips and identical TokenMagic batch
//! lists, with zero panics along the way.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dams_blockchain::{block_to_bytes, decode_block, Amount, BatchList, Block, TokenOutput};
use dams_crypto::sha256::Digest;
use dams_crypto::{KeyPair, SchnorrGroup};
use dams_store::{MemBackend, RecoveryReport, StorageFault, Store, StoreConfig};

use crate::error::NodeError;
use crate::network::{BlockAnnouncement, NodeLimits, SimNode};
use crate::obs::NodeMetrics;

/// Per-delivery fault probabilities and knobs. All probabilities are in
/// `[0, 1]` and evaluated independently per message copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a message copy is silently dropped.
    pub drop_prob: f64,
    /// Probability a message copy is duplicated (the copy itself may then
    /// be dropped/delayed/corrupted independently).
    pub dup_prob: f64,
    /// Probability a message copy is delayed by 1..=`max_delay` ticks.
    pub delay_prob: f64,
    /// Maximum delivery delay, in bus ticks.
    pub max_delay: u64,
    /// Probability one byte of the encoded message is flipped.
    pub corrupt_prob: f64,
    /// Whether same-tick deliveries are shuffled (reordering).
    pub reorder: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_prob: 0.10,
            dup_prob: 0.10,
            delay_prob: 0.25,
            max_delay: 6,
            corrupt_prob: 0.05,
            reorder: true,
        }
    }
}

impl FaultConfig {
    /// A fault-free configuration (useful as a control group).
    pub fn lossless() -> Self {
        FaultConfig {
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
            corrupt_prob: 0.0,
            reorder: false,
        }
    }
}

/// What the adversary did, and what the nodes survived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Message copies handed to the bus (before fault decisions).
    pub sent: u64,
    /// Copies dropped in flight.
    pub dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Copies held back by a delivery delay.
    pub delayed: u64,
    /// Copies with a byte flipped.
    pub corrupted: u64,
    /// Deliveries rejected by the wire decoder (corruption caught).
    pub decode_rejected: u64,
    /// Deliveries rejected by a full inbox (back-pressure).
    pub inbox_rejected: u64,
    /// Sends suppressed because source and destination were partitioned.
    pub partition_blocked: u64,
    /// Copies that reached a node's inbox.
    pub delivered: u64,
}

/// One message copy travelling through the faulty network. The source
/// endpoint is transport metadata (the simulated analogue of the TCP
/// connection a frame arrived on): corruption can garble the payload but
/// never re-attribute a frame to a different sender.
#[derive(Debug, Clone)]
struct InFlight {
    src: usize,
    dest: usize,
    bytes: Vec<u8>,
    due: u64,
}

/// Wire frame: the block's id (its header hash) followed by its encoding.
/// Receivers recompute the hash; a frame whose payload does not hash to
/// its id is discarded — the inv/getdata discipline real gossip layers
/// use, and what makes *every* single-byte corruption detectable (the
/// header hash covers the timestamp, which block validation alone cannot
/// cross-check).
pub(crate) fn frame_block(block: &Block) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&block.hash());
    out.extend_from_slice(&block_to_bytes(block));
    out
}

/// Decode and authenticate a frame. `None` for anything malformed.
pub(crate) fn unframe_block(group: &SchnorrGroup, frame: &[u8]) -> Option<Block> {
    if frame.len() < 32 {
        return None;
    }
    let (id, body) = frame.split_at(32);
    let block = decode_block(group, body).ok()?;
    (block.hash().as_slice() == id).then_some(block)
}

/// The seeded fault gauntlet as a reusable transport.
///
/// Every frame handed to [`FaultChannel::send`] runs the full adversary:
/// duplication, drops, single-byte corruption, delivery delay, and (on
/// [`FaultChannel::advance`]) same-tick reordering. Endpoints can be
/// split into partition components; sends across the split are
/// suppressed and counted. All randomness comes from one seeded PRNG,
/// exposed via [`FaultChannel::rng_mut`] so a scenario's other draws
/// (key material, shuffles) share the stream and the whole run replays
/// from a single `u64`.
pub struct FaultChannel {
    cfg: FaultConfig,
    rng: StdRng,
    in_flight: Vec<InFlight>,
    /// Partition component id per endpoint; equal ids can talk.
    partition: Vec<usize>,
    tick: u64,
    pub stats: FaultStats,
}

impl FaultChannel {
    /// A channel between `endpoints` peers whose every fault decision
    /// derives from `seed`.
    pub fn new(endpoints: usize, seed: u64, cfg: FaultConfig) -> Self {
        FaultChannel {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            in_flight: Vec::new(),
            partition: vec![0; endpoints],
            tick: 0,
            stats: FaultStats::default(),
        }
    }

    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of endpoints the channel connects.
    pub fn endpoints(&self) -> usize {
        self.partition.len()
    }

    /// Whether nothing is in flight.
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// The channel's seeded PRNG. Callers draw scenario randomness (key
    /// material, delivery shuffles) from here so one seed replays the
    /// entire run.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Split the network: endpoints listed in `isolated` form one
    /// component, everyone else the other. Unknown ids yield a typed
    /// error.
    pub fn partition(&mut self, isolated: &[usize]) -> Result<(), NodeError> {
        if let Some(&bad) = isolated.iter().find(|&&i| i >= self.partition.len()) {
            return Err(NodeError::UnknownPeer(bad));
        }
        for (i, comp) in self.partition.iter_mut().enumerate() {
            *comp = usize::from(isolated.contains(&i));
        }
        Ok(())
    }

    /// Heal all partitions: every endpoint can talk to every other again.
    pub fn heal(&mut self) {
        self.partition.fill(0);
    }

    pub fn reachable(&self, a: usize, b: usize) -> bool {
        self.partition[a] == self.partition[b]
    }

    /// Push one frame through the fault gauntlet toward `dest` without a
    /// meaningful source (the frame is attributed to `dest` itself).
    /// Receivers that care about attribution use [`FaultChannel::send_from`].
    pub fn send(&mut self, dest: usize, bytes: Vec<u8>) {
        self.send_from(dest, dest, bytes);
    }

    /// Push one frame from `src` toward `dest` through the fault gauntlet.
    pub fn send_from(&mut self, src: usize, dest: usize, bytes: Vec<u8>) {
        self.stats.sent += 1;
        NodeMetrics::global().bus_sent.inc();
        if self.rng.gen_bool(self.cfg.dup_prob.clamp(0.0, 1.0)) {
            self.stats.duplicated += 1;
            NodeMetrics::global().bus_duplicated.inc();
            let copy = bytes.clone();
            self.enqueue_copy(src, dest, copy);
        }
        self.enqueue_copy(src, dest, bytes);
    }

    /// [`FaultChannel::send_from`] honouring the partition: a frame across
    /// the split is suppressed and counted. Returns whether the frame
    /// entered the channel.
    pub fn send_reachable(&mut self, src: usize, dest: usize, bytes: Vec<u8>) -> bool {
        if !self.reachable(src, dest) {
            self.stats.partition_blocked += 1;
            NodeMetrics::global().bus_partition_blocked.inc();
            return false;
        }
        self.send_from(src, dest, bytes);
        true
    }

    fn enqueue_copy(&mut self, src: usize, dest: usize, mut bytes: Vec<u8>) {
        let metrics = NodeMetrics::global();
        if self.rng.gen_bool(self.cfg.drop_prob.clamp(0.0, 1.0)) {
            self.stats.dropped += 1;
            metrics.bus_dropped.inc();
            return;
        }
        if !bytes.is_empty() && self.rng.gen_bool(self.cfg.corrupt_prob.clamp(0.0, 1.0)) {
            let idx = self.rng.gen_range(0..bytes.len());
            bytes[idx] ^= 1u8 << self.rng.gen_range(0..8u32);
            self.stats.corrupted += 1;
            metrics.bus_corrupted.inc();
        }
        let due = if self.cfg.max_delay > 0
            && self.rng.gen_bool(self.cfg.delay_prob.clamp(0.0, 1.0))
        {
            self.stats.delayed += 1;
            metrics.bus_delayed.inc();
            self.tick + self.rng.gen_range(1..=self.cfg.max_delay)
        } else {
            self.tick
        };
        self.in_flight.push(InFlight {
            src,
            dest,
            bytes,
            due,
        });
    }

    /// Advance one tick and collect every frame due for delivery,
    /// shuffled when reordering is on.
    pub fn advance(&mut self) -> Vec<(usize, Vec<u8>)> {
        self.advance_attributed()
            .into_iter()
            .map(|(_, dest, bytes)| (dest, bytes))
            .collect()
    }

    /// [`FaultChannel::advance`] keeping the transport-level source of
    /// each frame: `(src, dest, bytes)` triples. The source is what the
    /// peer-defense layer attributes misbehavior to.
    pub fn advance_attributed(&mut self) -> Vec<(usize, usize, Vec<u8>)> {
        self.tick += 1;
        let mut due: Vec<InFlight> = Vec::new();
        let mut waiting: Vec<InFlight> = Vec::new();
        for m in self.in_flight.drain(..) {
            if m.due <= self.tick {
                due.push(m);
            } else {
                waiting.push(m);
            }
        }
        self.in_flight = waiting;
        if self.cfg.reorder {
            due.shuffle(&mut self.rng);
        }
        due.into_iter().map(|m| (m.src, m.dest, m.bytes)).collect()
    }

    /// Drop every in-flight frame addressed to `dest` — it crashed, and
    /// traffic aimed at it dies with it.
    pub fn drop_addressed_to(&mut self, dest: usize) {
        self.in_flight.retain(|m| m.dest != dest);
    }
}

/// The fault-injecting bus: block announcements over a [`FaultChannel`].
pub struct FaultyBus {
    pub nodes: Vec<SimNode>,
    group: SchnorrGroup,
    channel: FaultChannel,
}

impl FaultyBus {
    /// A bus of `count` nodes whose every fault decision derives from
    /// `seed`.
    pub fn new(count: usize, group: SchnorrGroup, seed: u64, cfg: FaultConfig) -> Self {
        Self::with_limits(count, group, seed, cfg, NodeLimits::default())
    }

    pub fn with_limits(
        count: usize,
        group: SchnorrGroup,
        seed: u64,
        cfg: FaultConfig,
        limits: NodeLimits,
    ) -> Self {
        FaultyBus {
            nodes: (0..count)
                .map(|i| SimNode::with_limits(i, group, limits))
                .collect(),
            group,
            channel: FaultChannel::new(count, seed, cfg),
        }
    }

    pub fn tick(&self) -> u64 {
        self.channel.tick()
    }

    /// What the adversary did so far, and what the nodes survived.
    pub fn stats(&self) -> FaultStats {
        self.channel.stats
    }

    /// Attach a fresh in-memory durable store to every node that lacks
    /// one. Storage never draws from the bus's seeded PRNG, so a durable
    /// run replays byte-identically to a volatile one.
    pub fn make_durable(&mut self) -> Result<(), NodeError> {
        for node in &mut self.nodes {
            if node.has_store() {
                continue;
            }
            let recovered = Store::open(
                Box::new(MemBackend::new()),
                Box::new(MemBackend::new()),
                self.group,
                StoreConfig::default(),
            )?;
            node.attach_store(recovered)?;
        }
        Ok(())
    }

    /// Inject a storage fault into node `id`'s durable WAL bytes — the
    /// disk half of the fault model. Takes effect at the next
    /// [`FaultyBus::crash_and_restore`] of that node.
    pub fn inject_storage_fault(
        &mut self,
        id: usize,
        fault: &StorageFault,
    ) -> Result<(), NodeError> {
        let node = self.nodes.get_mut(id).ok_or(NodeError::UnknownPeer(id))?;
        let store = node
            .store_mut()
            .ok_or(NodeError::Store(dams_store::StoreError::FaultUnsupported))?;
        store.inject_wal_fault(fault)?;
        Ok(())
    }

    /// Split the network: nodes listed in `isolated` form one component,
    /// everyone else the other. Unknown ids yield a typed error.
    pub fn partition(&mut self, isolated: &[usize]) -> Result<(), NodeError> {
        self.channel.partition(isolated)
    }

    /// Heal all partitions: every node can talk to every other again.
    pub fn heal(&mut self) {
        self.channel.heal();
    }

    fn reachable(&self, a: usize, b: usize) -> bool {
        self.channel.reachable(a, b)
    }

    /// Gossip a block from `origin` to every reachable peer, as encoded
    /// bytes subject to the fault model.
    pub fn gossip(&mut self, origin: usize, block: &Block) -> Result<(), NodeError> {
        if origin >= self.nodes.len() {
            return Err(NodeError::UnknownPeer(origin));
        }
        let bytes = frame_block(block);
        for dest in 0..self.nodes.len() {
            if dest == origin {
                continue;
            }
            self.channel.send_reachable(origin, dest, bytes.clone());
        }
        Ok(())
    }

    /// Mine one coinbase block of `outputs` fresh tokens on `origin` and
    /// gossip it. Key material comes from the bus's seeded stream, so the
    /// whole run stays replayable.
    pub fn mine_and_gossip(
        &mut self,
        origin: usize,
        outputs: usize,
    ) -> Result<Block, NodeError> {
        if origin >= self.nodes.len() {
            return Err(NodeError::UnknownPeer(origin));
        }
        let group = self.group;
        let outs: Vec<TokenOutput> = (0..outputs)
            .map(|_| TokenOutput {
                owner: KeyPair::generate(&group, self.channel.rng_mut()).public,
                amount: Amount(1),
            })
            .collect();
        let node = &mut self.nodes[origin];
        node.chain_mut().submit_coinbase(outs);
        // Durable seal when a store is attached: the sealed block is
        // WAL-appended + fsynced before it leaves the miner.
        let block = node.seal_block()?;
        self.gossip(origin, &block)?;
        Ok(block)
    }

    /// Crash `id` mid-run: volatile state (inbox, orphans) is lost, and
    /// the replica is rebuilt. With a durable store attached, recovery is
    /// the real path a node takes from disk — power-loss the store, then
    /// replay `checkpoint + WAL tail` with full re-verification. Without
    /// one, the legacy chain-snapshot replay is used.
    pub fn crash_and_restore(&mut self, id: usize) -> Result<(), NodeError> {
        self.crash_and_restore_reported(id).map(|_| ())
    }

    /// [`FaultyBus::crash_and_restore`], also returning the recovery
    /// report when the node recovered through its durable store.
    pub fn crash_and_restore_reported(
        &mut self,
        id: usize,
    ) -> Result<Option<RecoveryReport>, NodeError> {
        let node = self.nodes.get_mut(id).ok_or(NodeError::UnknownPeer(id))?;
        let limits = *node.limits();
        // Any in-flight traffic addressed to the crashed node dies with it.
        if let Some(mut store) = node.take_store() {
            self.channel.drop_addressed_to(id);
            store.crash();
            let (wal, cp) = store.into_backends();
            let (revived, report) = SimNode::restore_from_store(
                id,
                self.group,
                limits,
                wal,
                cp,
                StoreConfig::default(),
            )?;
            self.nodes[id] = revived;
            return Ok(Some(report));
        }
        let snapshot = node.snapshot();
        self.channel.drop_addressed_to(id);
        let revived = SimNode::restore(id, self.group, limits, &snapshot)?;
        self.nodes[id] = revived;
        Ok(None)
    }

    /// Advance one tick: deliver due messages (shuffled when reordering
    /// is on), let every node process its inbox, and route parent
    /// requests through the same faulty channel.
    ///
    /// Returns how many blocks were appended across all nodes.
    pub fn step(&mut self) -> usize {
        for (dest, bytes) in self.channel.advance() {
            match unframe_block(&self.group, &bytes) {
                Some(block) => {
                    if self.nodes[dest]
                        .deliver(BlockAnnouncement { block })
                        .is_ok()
                    {
                        self.channel.stats.delivered += 1;
                        NodeMetrics::global().bus_delivered.inc();
                    } else {
                        self.channel.stats.inbox_rejected += 1;
                    }
                }
                None => {
                    self.channel.stats.decode_rejected += 1;
                    NodeMetrics::global().bus_decode_rejected.inc();
                }
            }
        }

        let mut appended = 0;
        for n in &mut self.nodes {
            appended += n.process_inbox();
        }

        // Parent-request protocol: route each request to the first
        // reachable peer that can serve the block, through the same
        // faulty channel (responses can be dropped too — the requester's
        // backoff covers that).
        for i in 0..self.nodes.len() {
            let requests = self.nodes[i].parent_requests();
            for hash in requests {
                let served: Option<Vec<u8>> = (0..self.nodes.len())
                    .filter(|&j| j != i && self.reachable(i, j))
                    .find_map(|j| self.nodes[j].serve_block(hash))
                    .map(|b| frame_block(&b));
                if let Some(bytes) = served {
                    self.channel.send(i, bytes);
                }
            }
        }
        appended
    }

    /// Anti-entropy: every node announces its tip to all reachable peers.
    /// Receivers that already have it drop the duplicate; stragglers gain
    /// an orphan whose parent requests walk the gap.
    pub fn announce_tips(&mut self) {
        for i in 0..self.nodes.len() {
            if let Ok(Some(tip)) = self
                .nodes[i]
                .tip_hash()
                .map(|h| self.nodes[i].serve_block(h))
            {
                if tip.header.height.0 > 0 {
                    let _ = self.gossip(i, &tip);
                }
            }
        }
    }

    /// Drive the bus until the replicas converge and the network drains,
    /// re-announcing tips every few ticks as anti-entropy. Returns the
    /// number of ticks consumed, or `None` if `max_ticks` elapsed without
    /// convergence.
    pub fn run_until_quiet(&mut self, max_ticks: u64) -> Option<u64> {
        let start = self.channel.tick();
        for _ in 0..max_ticks {
            self.step();
            if self.channel.idle() && self.converged() {
                return Some(self.channel.tick() - start);
            }
            if self.channel.tick().is_multiple_of(4) {
                self.announce_tips();
            }
        }
        None
    }

    /// Whether all nodes share the same tip (consensus).
    pub fn converged(&self) -> bool {
        let tips: Vec<Option<Digest>> =
            self.nodes.iter().map(|n| n.tip_hash().ok()).collect();
        tips.iter().all(Option::is_some) && tips.windows(2).all(|w| w[0] == w[1])
    }

    /// Whether all nodes derive identical batch lists at λ.
    pub fn batch_consensus(&self, lambda: usize) -> bool {
        let lists: Vec<BatchList> = self
            .nodes
            .iter()
            .map(|n| BatchList::build(n.chain(), lambda))
            .collect();
        lists.windows(2).all(|w| w[0].batches() == w[1].batches())
    }
}

/// Outcome of one scripted adversarial run (see
/// [`run_faulted_simulation`]).
#[derive(Debug, Clone)]
pub struct FaultReport {
    pub seed: u64,
    /// All replicas ended on the same tip.
    pub converged: bool,
    /// All replicas derived the same batch list at the run's λ.
    pub batch_consensus: bool,
    /// The common tip (when converged).
    pub tip: Option<Digest>,
    /// Final chain height of node 0 (including genesis).
    pub height: usize,
    /// Ticks the run took, `None` when it hit the tick budget.
    pub ticks: Option<u64>,
    pub stats: FaultStats,
}

/// The scripted end-to-end adversarial scenario, replayable from `seed`:
/// five durably-stored replicas mine under the default fault model,
/// suffer a partition (mining continues on the majority side), heal,
/// lose one node to a crash (recovered from its WAL + checkpoint by
/// verified replay), keep mining, and must still converge on one tip and
/// one batch list.
pub fn run_faulted_simulation(seed: u64) -> FaultReport {
    const NODES: usize = 5;
    const LAMBDA: usize = 4;
    let group = SchnorrGroup::default();
    let mut bus = FaultyBus::new(NODES, group, seed, FaultConfig::default());
    // All replicas run durably: adoption is WAL-append → fsync → apply,
    // and the phase-3 crash recovers through the store's verified replay.
    // (Fresh in-memory stores cannot fail to open; if they somehow do,
    // the run degrades to volatile nodes rather than panicking.)
    let _ = bus.make_durable();

    // Phase 1: healthy-but-faulty mining.
    for _ in 0..4 {
        let _ = bus.mine_and_gossip(0, 2);
        bus.step();
    }

    // Phase 2: partition {3, 4} away; the majority keeps mining.
    let _ = bus.partition(&[3, 4]);
    for _ in 0..3 {
        let _ = bus.mine_and_gossip(0, 2);
        bus.step();
    }

    // Phase 3: heal, then crash node 2 and restore it from snapshot.
    bus.heal();
    bus.step();
    let _ = bus.crash_and_restore(2);

    // Phase 4: more mining after recovery, then settle.
    for _ in 0..2 {
        let _ = bus.mine_and_gossip(0, 2);
        bus.step();
    }
    let ticks = bus.run_until_quiet(600);

    FaultReport {
        seed,
        converged: bus.converged(),
        batch_consensus: bus.batch_consensus(LAMBDA),
        tip: bus.nodes[0].tip_hash().ok(),
        height: bus.nodes[0].chain().height(),
        ticks,
        stats: bus.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_bus_behaves_like_reference() {
        let group = SchnorrGroup::default();
        let mut bus = FaultyBus::new(3, group, 7, FaultConfig::lossless());
        for _ in 0..3 {
            bus.mine_and_gossip(0, 2).unwrap();
        }
        assert!(bus.run_until_quiet(100).is_some());
        assert!(bus.converged());
        assert!(bus.batch_consensus(3));
        assert_eq!(bus.stats().dropped, 0);
        assert_eq!(bus.stats().corrupted, 0);
    }

    #[test]
    fn same_seed_replays_identically() {
        let a = run_faulted_simulation(42);
        let b = run_faulted_simulation(42);
        assert_eq!(a.stats, b.stats, "fault schedule must replay exactly");
        assert_eq!(a.tip, b.tip);
        assert_eq!(a.height, b.height);
        assert_eq!(a.ticks, b.ticks);
    }

    #[test]
    fn different_seeds_draw_different_fault_schedules() {
        let a = run_faulted_simulation(1);
        let b = run_faulted_simulation(2);
        // Chains differ (different minted keys), so tips must differ.
        assert_ne!(a.tip, b.tip);
    }

    #[test]
    fn scripted_scenario_converges() {
        let report = run_faulted_simulation(1234);
        assert!(report.converged, "replicas diverged: {report:?}");
        assert!(report.batch_consensus, "batch lists diverged: {report:?}");
        assert_eq!(report.height, 10, "genesis + 9 mined blocks");
        assert!(report.ticks.is_some(), "hit the tick budget: {report:?}");
    }

    #[test]
    fn corruption_is_detected_not_adopted() {
        let group = SchnorrGroup::default();
        let cfg = FaultConfig {
            corrupt_prob: 1.0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
            reorder: false,
        };
        let mut bus = FaultyBus::new(2, group, 5, cfg);
        bus.mine_and_gossip(0, 2).unwrap();
        for _ in 0..20 {
            bus.step();
        }
        // Every copy was corrupted. Header flips fail the authenticated
        // frame (decode_rejected); transaction-body flips pass the frame
        // but fail the content hash in block validation
        // (blocks_discarded). Either way no tampered block is adopted.
        assert_eq!(bus.nodes[1].chain().height(), 1);
        assert!(
            bus.stats().decode_rejected + bus.nodes[1].stats().blocks_discarded > 0,
            "{:?}",
            bus.stats()
        );
    }

    #[test]
    fn partition_blocks_traffic_until_heal() {
        let group = SchnorrGroup::default();
        let mut bus = FaultyBus::new(3, group, 11, FaultConfig::lossless());
        bus.partition(&[2]).unwrap();
        bus.mine_and_gossip(0, 1).unwrap();
        assert!(bus.run_until_quiet(50).is_none(), "cannot converge split");
        assert!(bus.stats().partition_blocked > 0);
        assert_eq!(bus.nodes[2].chain().height(), 1);
        bus.heal();
        assert!(bus.run_until_quiet(100).is_some());
        assert!(bus.converged());
    }

    #[test]
    fn unknown_ids_are_typed_errors() {
        let group = SchnorrGroup::default();
        let mut bus = FaultyBus::new(2, group, 1, FaultConfig::lossless());
        assert_eq!(
            bus.partition(&[5]).unwrap_err(),
            NodeError::UnknownPeer(5)
        );
        assert_eq!(
            bus.crash_and_restore(9).unwrap_err(),
            NodeError::UnknownPeer(9)
        );
        assert_eq!(
            bus.mine_and_gossip(7, 1).unwrap_err(),
            NodeError::UnknownPeer(7)
        );
    }

    #[test]
    fn channel_replays_and_drops_addressed_frames() {
        let mut a = FaultChannel::new(3, 9, FaultConfig::default());
        let mut b = FaultChannel::new(3, 9, FaultConfig::default());
        for ch in [&mut a, &mut b] {
            for i in 0..20 {
                ch.send(i % 3, vec![i as u8; 8]);
            }
        }
        let mut da = Vec::new();
        let mut db = Vec::new();
        for _ in 0..12 {
            da.extend(a.advance());
            db.extend(b.advance());
        }
        assert_eq!(da, db, "channel schedule must replay from the seed");
        assert_eq!(a.stats, b.stats);

        let mut c = FaultChannel::new(2, 1, FaultConfig::lossless());
        c.send(0, vec![1]);
        c.send(1, vec![2]);
        c.drop_addressed_to(1);
        let due = c.advance();
        assert_eq!(due, vec![(0, vec![1])]);
        assert!(c.idle());
    }
}
