//! A chain auditor: reconstructs the algorithmic privacy view (token→HT
//! universe + committed rings) from raw ledger data and runs the
//! chain-reaction adversary plus anonymity metrics over it.
//!
//! This closes the loop between substrate and theory: the same analysis
//! the paper's adversary performs on public Monero data runs here against
//! the bytes our own chain committed — so an integration test can assert
//! that what the wallet *intended* (a diverse, unresolvable ring) is what
//! the public record actually *shows*.

use std::collections::HashMap;

use dams_blockchain::{Chain, TxId};
use dams_diversity::{
    analyze, batch_anonymity, Analysis, BatchAnonymity, HtId, RingIndex, RingSet, TokenUniverse,
};

/// The algorithmic view reconstructed from a chain.
pub struct ChainView {
    /// Dense algorithmic universe: ledger token id i → HT label.
    pub universe: TokenUniverse,
    /// Every ring input committed on the chain, in commit order.
    pub rings: RingIndex,
    /// Claimed requirements as recorded in the ring inputs `(c, ℓ)`.
    pub claims: Vec<(f64, usize)>,
}

/// Build the view from a chain: HT = origin transaction, rings = all ring
/// inputs of all committed transactions.
pub fn chain_view(chain: &Chain) -> ChainView {
    // HT labels: dense renumbering of origin TxIds.
    let mut ht_ids: HashMap<TxId, u32> = HashMap::new();
    let n = chain.token_count();
    let mut ht_of = Vec::with_capacity(n);
    let mut synthetic = 0u32;
    for i in 0..n as u64 {
        let next = ht_ids.len() as u32 + synthetic;
        let id = match chain.token(dams_blockchain::TokenId(i)) {
            Some(rec) => *ht_ids.entry(rec.origin).or_insert(next),
            // Unreachable for a well-formed chain (token ids are dense);
            // a missing record gets a fresh singleton HT label instead of
            // panicking the auditor.
            None => {
                synthetic += 1;
                next
            }
        };
        ht_of.push(HtId(id));
    }
    let universe = TokenUniverse::new(ht_of);

    let mut rings = RingIndex::new();
    let mut claims = Vec::new();
    for block in chain.blocks() {
        for ct in &block.transactions {
            for input in &ct.tx.inputs {
                rings.push(RingSet::new(
                    input
                        .ring
                        .iter()
                        .map(|t| dams_diversity::TokenId(t.0 as u32)),
                ));
                claims.push((input.claimed_c, input.claimed_l));
            }
        }
    }
    ChainView {
        universe,
        rings,
        claims,
    }
}

/// A full audit: run the chain-reaction adversary over the reconstructed
/// view and summarise anonymity.
pub struct AuditReport {
    pub analysis: Analysis,
    pub anonymity: BatchAnonymity,
    /// Rings whose claimed (c, ℓ)-diversity does not even hold on their
    /// own token multiset (a protocol violation a verifier should have
    /// caught).
    pub claim_violations: Vec<usize>,
}

/// Audit a chain end-to-end.
pub fn audit(chain: &Chain) -> AuditReport {
    let view = chain_view(chain);
    let analysis = analyze(&view.rings, &[]);
    let anonymity = batch_anonymity(&analysis, &view.universe);
    let mut claim_violations = Vec::new();
    for (i, (_, ring)) in view.rings.iter().enumerate() {
        let (c, l) = view.claims[i];
        if l >= 1 && c > 0.0 {
            let req = dams_diversity::DiversityRequirement::new(c, l);
            if !req.satisfied_by_ring(ring, &view.universe) {
                claim_violations.push(i);
            }
        }
    }
    AuditReport {
        analysis,
        anonymity,
        claim_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_blockchain::{Amount, NoConfiguration, RingInput, TokenOutput, Transaction};
    use dams_crypto::{KeyPair, SchnorrGroup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A chain with 2 coinbases of 3 tokens each and one 2-token ring spend.
    fn sample_chain() -> Chain {
        let mut rng = StdRng::seed_from_u64(1);
        let mut chain = Chain::new(SchnorrGroup::default());
        let keys: Vec<KeyPair> = (0..6)
            .map(|_| KeyPair::generate(chain.group(), &mut rng))
            .collect();
        for half in keys.chunks(3) {
            chain.submit_coinbase(
                half.iter()
                    .map(|k| TokenOutput {
                        owner: k.public,
                        amount: Amount(1),
                    })
                    .collect(),
            );
            chain.seal_block().unwrap();
        }
        // Spend token 0 over ring {0, 3} (cross-origin → diverse).
        let outputs = vec![TokenOutput {
            owner: keys[0].public,
            amount: Amount(1),
        }];
        let shell = Transaction {
            inputs: vec![],
            outputs: outputs.clone(),
            memo: vec![],
        };
        let payload = shell.signing_payload();
        let ring_keys = vec![keys[0].public, keys[3].public];
        let sig = dams_crypto::sign(chain.group(), &payload, &ring_keys, &keys[0], &mut rng)
            .unwrap();
        chain
            .submit(
                Transaction {
                    inputs: vec![RingInput {
                        ring: vec![
                            dams_blockchain::TokenId(0),
                            dams_blockchain::TokenId(3),
                        ],
                        signature: sig,
                        claimed_c: 2.0,
                        claimed_l: 1,
                    }],
                    outputs,
                    memo: vec![],
                },
                &NoConfiguration,
            )
            .unwrap();
        chain.seal_block().unwrap();
        chain
    }

    #[test]
    fn view_reconstructs_origins_and_rings() {
        let chain = sample_chain();
        let view = chain_view(&chain);
        assert_eq!(view.universe.len(), 7); // 6 coinbase + 1 spend output
        // first three tokens share an origin, next three another
        assert_eq!(
            view.universe.ht(dams_diversity::TokenId(0)),
            view.universe.ht(dams_diversity::TokenId(2))
        );
        assert_ne!(
            view.universe.ht(dams_diversity::TokenId(0)),
            view.universe.ht(dams_diversity::TokenId(3))
        );
        assert_eq!(view.rings.len(), 1);
        assert_eq!(view.claims[0], (2.0, 1));
    }

    #[test]
    fn audit_clean_chain() {
        let chain = sample_chain();
        let report = audit(&chain);
        assert_eq!(report.analysis.resolved_count(), 0);
        assert_eq!(report.anonymity.rings, 1);
        assert!(report.claim_violations.is_empty());
        assert!(report.anonymity.mean_candidates >= 2.0);
    }

    #[test]
    fn audit_flags_claim_violation() {
        // A ring whose two members share an origin cannot satisfy a claim
        // needing 2 distinct HTs.
        let mut rng = StdRng::seed_from_u64(2);
        let mut chain = Chain::new(SchnorrGroup::default());
        let keys: Vec<KeyPair> = (0..2)
            .map(|_| KeyPair::generate(chain.group(), &mut rng))
            .collect();
        chain.submit_coinbase(
            keys.iter()
                .map(|k| TokenOutput {
                    owner: k.public,
                    amount: Amount(1),
                })
                .collect(),
        );
        chain.seal_block().unwrap();
        let outputs = vec![];
        let shell = Transaction {
            inputs: vec![],
            outputs: outputs.clone(),
            memo: b"x".to_vec(),
        };
        let payload = shell.signing_payload();
        let ring_keys = vec![keys[0].public, keys[1].public];
        let sig =
            dams_crypto::sign(chain.group(), &payload, &ring_keys, &keys[0], &mut rng).unwrap();
        chain
            .submit(
                Transaction {
                    inputs: vec![RingInput {
                        ring: vec![
                            dams_blockchain::TokenId(0),
                            dams_blockchain::TokenId(1),
                        ],
                        signature: sig,
                        claimed_c: 1.0,
                        claimed_l: 2,
                    }],
                    outputs,
                    memo: b"x".to_vec(),
                },
                &NoConfiguration,
            )
            .unwrap();
        chain.seal_block().unwrap();
        let report = audit(&chain);
        assert_eq!(report.claim_violations, vec![0]);
    }
}
