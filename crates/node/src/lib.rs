//! # dams-node
//!
//! Verifier-side node integration tying the substrates together:
//!
//! * [`verifier`] — Step-3 ring-configuration checks miners run when
//!   blocking transactions (TokenMagic batch membership, the first
//!   practical configuration, a claimed-diversity floor, Monero-style
//!   recency, and combinators);
//! * [`views`] — full-node / light-node batch views with the §4 consensus
//!   property;
//! * [`validate`] — the polynomial Definition-5 validator wallets run
//!   before broadcasting and auditors run over blocks.

pub mod adversary;
pub mod auditor;
pub mod error;
pub mod faults;
pub mod gossip;
pub mod peers;
pub mod indexing;
pub mod network;
pub mod obs;
pub mod report;
pub mod sync;
pub mod validate;
pub mod verifier;
pub mod wallet;
pub mod views;

pub use auditor::{audit, chain_view, AuditReport, ChainView};
pub use error::NodeError;
pub use faults::{
    run_faulted_simulation, FaultChannel, FaultConfig, FaultReport, FaultStats, FaultyBus,
};
pub use adversary::{
    run_byzantine_scenario, selection_snapshot, ActorKind, ByzantineReport, SCENARIO_HEIGHT,
    SCENARIO_HORIZON,
};
pub use gossip::{
    decode_frame, frame_attested_block, frame_evidence, frame_range, frame_refusal, frame_tip,
    run_cluster_scenario, Cluster, ClusterReport, GossipFrame, GossipStats,
};
pub use peers::{
    Attestation, ClusterConfig, EquivocationProof, Misbehavior, MisbehaviorRecord, PeerDefense,
    Standing,
};
pub use indexing::{block_delta, index_of_chain};
pub use network::{BlockAnnouncement, Bus, NodeLimits, NodeStats, SimNode};
pub use sync::{bootstrap_from_bundle, catch_up_tail, recheck_node, serve_bundle, SyncReport};
pub use obs::NodeMetrics;
pub use report::render_report;
pub use validate::{validate_ring, Verdict};
pub use verifier::{AllOf, RecencyConfiguration, TokenMagicConfiguration};
pub use views::{BatchProvider, FullNode, LightNode};
pub use wallet::{SpendSession, Wallet, WalletError};
