//! Checkpoint-based catch-up: how a late joiner or crash-restarted
//! replica reaches the cluster tip **without** fully re-verifying the
//! whole chain.
//!
//! Two paths, both peer-served from the PR-4 durable store:
//!
//! * **Bundle bootstrap** ([`serve_bundle`] → [`bootstrap_from_bundle`])
//!   — a peer exports its newest checkpoint plus its full WAL as one
//!   authenticated frame. The joiner replays it through
//!   [`dams_store::Store::open`]:
//!   the checkpoint-attested prefix is adopted *structurally* (its
//!   attestation — tip hash, key-image set, ring fingerprints — is
//!   cross-checked instead), and only the blocks past the checkpoint are
//!   fully re-verified. With checkpoints every `checkpoint_interval`
//!   adoptions, that bounds full verification at O(tail), not O(chain).
//! * **Tail streaming** ([`catch_up_tail`]) — a crash-restarted replica
//!   already recovered its own durable prefix; replicas append identical
//!   bytes for identical adoptions, so its local WAL length names the
//!   exact byte where a peer's WAL continues. The peer streams the
//!   missing framed records and the node applies them through its normal
//!   verify → WAL-append → adopt path.
//!
//! Either way the recovered replica's *entire* chain still passes
//! [`dams_store::recheck_immutability`] before it serves traffic: the
//! paper's (c, ℓ)-diversity evidence is re-verified across the hand-off,
//! so a peer cannot launder a violated claim through a checkpoint.
//!
//! Frames are authenticated the same way gossip frames are: a sha256 of
//! the payload travels with it, and any mismatch is a typed
//! [`NodeError::SyncRejected`], never a partially-applied sync.

use dams_blockchain::decode_block;
use dams_crypto::sha256::sha256;
use dams_store::wal::{self, TailStatus, TAG_BLOCK};
use dams_store::{group_fingerprint, CatchUpBundle, MemBackend, StoreConfig};

use crate::error::NodeError;
use crate::network::{BlockAnnouncement, NodeLimits, SimNode};
use crate::obs::NodeMetrics;

/// What a catch-up did: how much was adopted cheaply (checkpoint-attested
/// prefix), how much was fully verified (the tail), and whether the
/// result is clean. The O(tail) assertion of the cluster sweeps is
/// `tail_verified <= checkpoint_interval`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Recovered tip height (genesis = 0).
    pub height: u64,
    /// Checkpoint-attested blocks adopted structurally.
    pub prefix_adopted: u64,
    /// Blocks past the checkpoint re-verified in full.
    pub tail_verified: u64,
    /// Committed RSs whose claimed (c, ℓ)-diversity was re-checked.
    pub rings_rechecked: u64,
    /// The underlying recovery found no corruption and no immutability
    /// violations.
    pub clean: bool,
}

/// Wire layout: `sha256(payload) ‖ payload` with
/// `payload = cp_len u64le ‖ checkpoint ‖ wal`.
fn encode_bundle(bundle: &CatchUpBundle) -> Vec<u8> {
    let mut payload =
        Vec::with_capacity(8 + bundle.checkpoint.len() + bundle.wal.len());
    payload.extend_from_slice(&(bundle.checkpoint.len() as u64).to_le_bytes());
    payload.extend_from_slice(&bundle.checkpoint);
    payload.extend_from_slice(&bundle.wal);
    let mut out = Vec::with_capacity(32 + payload.len());
    out.extend_from_slice(&sha256(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Authenticate and split a bundle frame into `(checkpoint, wal)` images.
fn decode_bundle(frame: &[u8]) -> Result<(Vec<u8>, Vec<u8>), NodeError> {
    let reject = |reason| {
        NodeMetrics::global().sync_rejected.inc();
        Err(NodeError::SyncRejected { reason })
    };
    if frame.len() < 40 {
        return reject("bundle frame shorter than digest + length prefix");
    }
    let (digest, payload) = frame.split_at(32);
    if sha256(payload).as_slice() != digest {
        return reject("bundle digest mismatch");
    }
    let Some(len_bytes) = payload.get(..8).and_then(|b| <[u8; 8]>::try_from(b).ok()) else {
        return reject("bundle length prefix truncated");
    };
    let cp_len = u64::from_le_bytes(len_bytes) as usize;
    let rest = &payload[8..];
    if cp_len > rest.len() {
        return reject("bundle checkpoint length exceeds payload");
    }
    let (cp, wal) = rest.split_at(cp_len);
    Ok((cp.to_vec(), wal.to_vec()))
}

/// Export `peer`'s durable state as one authenticated catch-up frame.
/// Requires a durable store (there is nothing attested to serve without
/// one). Counts the contained blocks as served on the peer's store.
pub fn serve_bundle(peer: &mut SimNode) -> Result<Vec<u8>, NodeError> {
    let store = peer.store_mut().ok_or(NodeError::SyncRejected {
        reason: "serving peer has no durable store",
    })?;
    let bundle = store.serve_catchup()?;
    NodeMetrics::global().sync_bundles_served.inc();
    Ok(encode_bundle(&bundle))
}

/// Bootstrap a fresh replica from a peer-served bundle frame: verify the
/// frame, recover through [`dams_store::Store::open`] (structural prefix + fully
/// verified tail + whole-chain immutability recheck), and report the
/// split. An immutability violation in the served state is a typed error
/// — a joiner never goes live on laundered evidence.
pub fn bootstrap_from_bundle(
    id: usize,
    group: dams_crypto::SchnorrGroup,
    limits: NodeLimits,
    frame: &[u8],
) -> Result<(SimNode, SyncReport), NodeError> {
    let metrics = NodeMetrics::global();
    let (cp, wal_image) = decode_bundle(frame)?;
    let (node, recovery) = SimNode::restore_from_store(
        id,
        group,
        limits,
        Box::new(MemBackend::from_durable(wal_image)),
        Box::new(MemBackend::from_durable(cp)),
        StoreConfig::default(),
    )?;
    let prefix = recovery
        .checkpoint_height
        .min(recovery.records_replayed);
    let report = SyncReport {
        height: recovery.height,
        prefix_adopted: prefix,
        tail_verified: recovery.records_replayed - prefix,
        rings_rechecked: recovery.rings_checked,
        clean: recovery.clean(),
    };
    metrics.sync_bootstraps.inc();
    metrics.sync_prefix_adopted.add(report.prefix_adopted);
    metrics.sync_tail_verified.add(report.tail_verified);
    Ok((node, report))
}

/// Stream the WAL records `node` is missing from `peer` and apply them
/// through the node's normal verify → WAL-append → adopt path. Both
/// replicas need durable stores; identical adoptions write identical WAL
/// bytes, so the node's own WAL length names the peer-side resume point.
///
/// Returns how many blocks were applied. A tail stream that fails crc
/// framing or carries a non-block record is rejected whole.
pub fn catch_up_tail(node: &mut SimNode, peer: &mut SimNode) -> Result<u64, NodeError> {
    let metrics = NodeMetrics::global();
    let from = node
        .store()
        .ok_or(NodeError::SyncRejected {
            reason: "catching-up node has no durable store",
        })?
        .wal_len();
    let peer_store = peer.store_mut().ok_or(NodeError::SyncRejected {
        reason: "serving peer has no durable store",
    })?;
    let tail = peer_store.wal_tail(from)?;
    if tail.is_empty() {
        return Ok(0);
    }
    let reject = |reason| {
        metrics.sync_rejected.inc();
        Err(NodeError::SyncRejected { reason })
    };
    // Re-frame the stream as a well-formed WAL image so the store's
    // scanner performs the length + crc gauntlet for us.
    let group = *node.chain().group();
    let mut image = wal::encode_header(group_fingerprint(&group));
    image.extend_from_slice(&tail);
    let Ok(outcome) = wal::scan(&image) else {
        return reject("tail stream failed crc framing");
    };
    if !matches!(outcome.tail, TailStatus::Clean) {
        return reject("tail stream ends in a torn or corrupt record");
    }
    let mut applied = 0u64;
    for span in &outcome.records {
        let payload = &image[span.payload_start..span.payload_end];
        if payload.first() != Some(&TAG_BLOCK) {
            return reject("tail stream carries a non-block record");
        }
        let Ok(block) = decode_block(&group, &payload[1..]) else {
            return reject("tail stream block failed to decode");
        };
        node.deliver(BlockAnnouncement { block })?;
        applied += node.process_inbox() as u64;
    }
    applied += node.process_inbox() as u64;
    metrics.sync_tail_blocks.add(applied);
    Ok(applied)
}

/// Re-run the immutability recheck over `node`'s live chain — the
/// convergence sweeps call this on every replica after a scenario to
/// assert the selection verdicts survived replication.
pub fn recheck_node(node: &SimNode) -> dams_store::ImmutabilityCheck {
    dams_store::recheck_immutability(node.chain())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultConfig, FaultyBus};
    use dams_crypto::SchnorrGroup;

    /// A durable 2-node bus with `blocks` mined on node 0 and settled.
    fn mined_bus(blocks: usize, seed: u64) -> FaultyBus {
        let group = SchnorrGroup::default();
        let mut bus = FaultyBus::new(2, group, seed, FaultConfig::lossless());
        bus.make_durable().unwrap();
        for _ in 0..blocks {
            bus.mine_and_gossip(0, 2).unwrap();
            bus.step();
        }
        bus.run_until_quiet(100).unwrap();
        bus
    }

    #[test]
    fn bundle_bootstrap_splits_prefix_and_tail() {
        let mut bus = mined_bus(6, 3);
        let frame = serve_bundle(&mut bus.nodes[0]).unwrap();
        let (joiner, report) = bootstrap_from_bundle(
            9,
            *bus.nodes[0].chain().group(),
            *bus.nodes[0].limits(),
            &frame,
        )
        .unwrap();
        assert!(report.clean, "{report:?}");
        assert_eq!(report.height, 6);
        assert_eq!(
            report.prefix_adopted + report.tail_verified,
            6,
            "{report:?}"
        );
        // checkpoint_interval = 4 and checkpoints fire on every adoption
        // check, so the unverified tail never exceeds the interval.
        assert!(
            report.tail_verified <= StoreConfig::default().checkpoint_interval,
            "tail not O(interval): {report:?}"
        );
        assert!(report.prefix_adopted >= 4, "checkpoint unused: {report:?}");
        assert_eq!(
            joiner.tip_hash().unwrap(),
            bus.nodes[0].tip_hash().unwrap()
        );
        assert!(joiner.has_store(), "joiner must come up durable");
    }

    #[test]
    fn tampered_bundle_is_rejected_whole() {
        let mut bus = mined_bus(3, 4);
        let group = *bus.nodes[0].chain().group();
        let limits = *bus.nodes[0].limits();
        let mut frame = serve_bundle(&mut bus.nodes[0]).unwrap();
        let mid = frame.len() / 2;
        frame[mid] ^= 0x40;
        let err = bootstrap_from_bundle(9, group, limits, &frame)
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, NodeError::SyncRejected { .. }),
            "tamper must be caught at the frame: {err:?}"
        );
        // Truncated frames are equally typed.
        let err = bootstrap_from_bundle(9, group, limits, &frame[..20])
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, NodeError::SyncRejected { .. }), "{err:?}");
    }

    #[test]
    fn tail_stream_catches_a_lagging_replica_up() {
        let mut bus = mined_bus(3, 5);
        // Node 1 stops hearing gossip; node 0 mines on.
        bus.partition(&[1]).unwrap();
        for _ in 0..3 {
            bus.mine_and_gossip(0, 1).unwrap();
            bus.step();
        }
        let (mut lagging, mut serving) = {
            let mut it = bus.nodes.drain(..);
            let serving = it.next().unwrap();
            (it.next().unwrap(), serving)
        };
        assert_eq!(lagging.chain().height(), 4);
        let applied = catch_up_tail(&mut lagging, &mut serving).unwrap();
        assert_eq!(applied, 3, "exactly the missing blocks stream");
        assert_eq!(lagging.tip_hash().unwrap(), serving.tip_hash().unwrap());
        assert_eq!(
            serving.store().unwrap().blocks_served(),
            3,
            "served blocks must be counted on the peer"
        );
        // A second catch-up is a no-op, not a duplicate application.
        assert_eq!(catch_up_tail(&mut lagging, &mut serving).unwrap(), 0);
        assert_eq!(lagging.chain().height(), 7);
    }

    #[test]
    fn corrupted_tail_stream_is_rejected_whole() {
        let mut bus = mined_bus(2, 6);
        bus.partition(&[1]).unwrap();
        bus.mine_and_gossip(0, 1).unwrap();
        bus.step();
        let (lagging, mut serving) = {
            let mut it = bus.nodes.drain(..);
            let serving = it.next().unwrap();
            (it.next().unwrap(), serving)
        };
        let before = lagging.chain().height();
        // Corrupt the stream by lying about the resume point: an offset
        // off a record boundary yields an empty stream (no torn frames),
        // and a node-side corrupted image is refused by the crc gauntlet.
        let from = lagging.store().unwrap().wal_len();
        let mut tail = serving.store_mut().unwrap().wal_tail(from).unwrap();
        assert!(!tail.is_empty());
        let mid = tail.len() / 2;
        tail[mid] ^= 0x10;
        let group = *lagging.chain().group();
        let mut image = wal::encode_header(group_fingerprint(&group));
        image.extend_from_slice(&tail);
        let rejected = match wal::scan(&image) {
            Err(_) => true,
            Ok(outcome) => !matches!(outcome.tail, TailStatus::Clean),
        };
        assert!(rejected, "flipped byte must not scan clean");
        assert_eq!(lagging.chain().height(), before, "nothing applied");
    }
}
