//! Chain → index glue: translating adopted blocks into the incremental
//! diversity index's [`BlockDelta`] language and rebuilding a whole index
//! from a chain replica.
//!
//! The [`crate::network::SimNode`] adoption paths call [`block_delta`] on
//! every block they adopt so an enabled [`DiversityIndex`] tracks the chain
//! O(Δ) per block; [`index_of_chain`] is the O(chain) cold-start used when
//! an index is first enabled or has to be re-anchored after a restore.

use dams_blockchain::{Block, Chain};
use dams_core::{BlockDelta, DeltaRing, DiversityIndex, IndexError};

/// Project a chain block onto the index's delta language.
///
/// * Every output token minted by a committed transaction becomes a
///   `(token id, historical transaction)` pair — the historical transaction
///   key is the minting [`TxId`](dams_blockchain::TxId), matching how the
///   snapshot pipeline labels token histories.
/// * Every ring input becomes a [`DeltaRing`] with its claimed recursive
///   (c, ℓ)-diversity requirement, in transaction order (the order rings
///   were committed, which the index's partition update depends on).
pub fn block_delta(block: &Block) -> BlockDelta {
    let mut minted = Vec::new();
    let mut rings = Vec::new();
    for ct in &block.transactions {
        for input in &ct.tx.inputs {
            rings.push(DeltaRing {
                tokens: input.ring.iter().map(|t| t.0).collect(),
                claimed_c: input.claimed_c,
                claimed_l: input.claimed_l,
            });
        }
        for out in &ct.output_ids {
            minted.push((out.0, ct.id.0));
        }
    }
    BlockDelta {
        height: block.header.height.0,
        minted,
        rings,
    }
}

/// Build a fresh index over every block of `chain` — the O(chain)
/// cold-start path. Incremental maintenance afterwards is O(Δ) per block.
pub fn index_of_chain(chain: &Chain, lambda: usize) -> Result<DiversityIndex, IndexError> {
    let mut index = DiversityIndex::new(lambda);
    for block in chain.blocks() {
        index.apply_block(&block_delta(block))?;
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_blockchain::{Amount, BatchList, TokenOutput};
    use dams_crypto::{KeyPair, SchnorrGroup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_with(blocks: usize, per_block: usize, seed: u64) -> Chain {
        let group = SchnorrGroup::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chain = Chain::new(group);
        for _ in 0..blocks {
            let outs: Vec<TokenOutput> = (0..per_block)
                .map(|_| TokenOutput {
                    owner: KeyPair::generate(chain.group(), &mut rng).public,
                    amount: Amount(1),
                })
                .collect();
            chain.submit_coinbase(outs);
            chain.seal_block().unwrap();
        }
        chain
    }

    #[test]
    fn index_batches_match_batch_list() {
        for lambda in [1usize, 3, 7, 50] {
            let chain = chain_with(9, 3, 42);
            let index = index_of_chain(&chain, lambda).unwrap();
            let bl = BatchList::build(&chain, lambda);
            assert_eq!(index.batch_count(), bl.batches().len());
            for (i, batch) in bl.batches().iter().enumerate() {
                let tokens: Vec<u64> = batch.tokens.iter().map(|t| t.0).collect();
                assert_eq!(index.batch_tokens(i), tokens.as_slice(), "λ={lambda} batch {i}");
                assert_eq!(index.batch_closed(i), batch.closed);
                assert_eq!(index.batch_first_block(i), batch.first_block.0);
            }
            assert_eq!(index.token_count(), chain.token_count() as u64);
        }
    }

    #[test]
    fn delta_of_coinbase_block_carries_no_rings() {
        let chain = chain_with(2, 4, 7);
        let delta = block_delta(&chain.blocks()[1]);
        assert_eq!(delta.height, 1);
        assert_eq!(delta.minted.len(), 4);
        assert!(delta.rings.is_empty());
        // All four outputs come from one coinbase transaction: one HT key.
        assert!(delta.minted.windows(2).all(|w| w[0].1 == w[1].1));
    }
}
