//! The 64-run adversarial-peer gauntlet.
//!
//! Every Byzantine actor kind, at strengths f ∈ {1, 2} against N ∈ {4, 5}
//! honest replicas, across 4 seeds per configuration — 64 scripted runs,
//! each demanding the fully defended state:
//!
//! * honest replicas converge on byte-identical tips at the
//!   adversary-free height;
//! * every Byzantine peer ends banned by every honest replica, with the
//!   offense that kind of actor actually commits on the record;
//! * no poisoned ring signature is adopted anywhere;
//! * honest selection verdicts (block bytes + derived batch list) are
//!   byte-identical to the same-seed adversary-free run;
//! * honest goodput over the fixed horizon stays within 10% of the
//!   adversary-free baseline.
//!
//! Failures name the seed and configuration so any regression replays
//! with a one-liner.

use dams_node::{run_byzantine_scenario, ActorKind, ByzantineReport, SCENARIO_HEIGHT};

/// The offense each playbook is guaranteed to put on the record.
fn signature_offense(kind: ActorKind) -> &'static str {
    match kind {
        ActorKind::Equivocator => "equivocation",
        ActorKind::Spammer => "flood_exceeded",
        ActorKind::Withholder => "stale_tip_spam",
        ActorKind::RingPoisoner => "diversity_violation",
    }
}

fn assert_defended(report: &ByzantineReport, ctx: &str) {
    assert!(
        report.ok(),
        "{ctx}: gauntlet failed\n{}",
        report.render()
    );
    assert_eq!(report.height, SCENARIO_HEIGHT, "{ctx}");
    assert!(report.snapshot_match, "{ctx}: selection verdicts diverged");
    assert!(report.no_poison, "{ctx}: poisoned ring adopted");
    let ratio = report.goodput / report.baseline_goodput;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "{ctx}: goodput {:.4} vs baseline {:.4} (ratio {ratio:.3}) outside 10%",
        report.goodput,
        report.baseline_goodput
    );
    assert!(
        report.render().contains("verdict: CONVERGED"),
        "{ctx}: report must end in the grep-able verdict"
    );
}

#[test]
fn gauntlet_64_runs_across_actor_strength_and_size() {
    for (ki, kind) in ActorKind::ALL.into_iter().enumerate() {
        for f in [1usize, 2] {
            for honest in [4usize, 5] {
                for s in 0..4u64 {
                    let seed = (ki as u64) * 1009 + (f as u64) * 101 + (honest as u64) * 11 + s;
                    let actors = vec![kind; f];
                    let ctx = format!(
                        "kind {} f {f} honest {honest} seed {seed}",
                        kind.label()
                    );
                    let report = run_byzantine_scenario(seed, honest, &actors)
                        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                    assert_defended(&report, &ctx);
                    let expected = signature_offense(kind);
                    assert!(
                        report
                            .offenses
                            .iter()
                            .any(|(label, n)| label == expected && *n >= f as u64),
                        "{ctx}: expected offense {expected:?} on the record, got {:?}",
                        report.offenses
                    );
                }
            }
        }
    }
}

#[test]
fn mixed_adversary_mob_is_fully_banned() {
    // All four playbooks at once against a 5-replica honest majority.
    for seed in [3u64, 17, 91] {
        let actors = ActorKind::mix(4);
        let report = run_byzantine_scenario(seed, 5, &actors).unwrap();
        assert_defended(&report, &format!("mixed mob seed {seed}"));
        for kind in ActorKind::ALL {
            let expected = signature_offense(kind);
            assert!(
                report.offenses.iter().any(|(label, _)| label == expected),
                "mixed mob seed {seed}: no {expected:?} record\n{}",
                report.render()
            );
        }
    }
}

#[test]
fn gauntlet_replays_identically_from_one_seed() {
    let actors = ActorKind::mix(2);
    let a = run_byzantine_scenario(29, 4, &actors).unwrap();
    let b = run_byzantine_scenario(29, 4, &actors).unwrap();
    assert_eq!(a.render(), b.render(), "gauntlet must replay byte-identically");
    assert_eq!(a.snapshot, b.snapshot);
    assert_eq!(a.ticks, b.ticks);
    assert_eq!(a.offenses, b.offenses);
}

#[test]
fn honest_peers_are_never_accused_on_a_lossless_transport() {
    // The gauntlet runs on a lossless transport, so every misbehavior
    // record must accuse a Byzantine id: zero false positives against
    // honest peers, for every playbook.
    for kind in ActorKind::ALL {
        let report = run_byzantine_scenario(7, 4, &[kind]).unwrap();
        assert_defended(&report, &format!("attribution {}", kind.label()));
        assert_eq!(
            report.honest_accusations, 0,
            "kind {}: honest peer accused\n{}",
            kind.label(),
            report.render()
        );
    }
}
