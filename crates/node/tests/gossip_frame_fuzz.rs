//! Gossip-frame corruption sweep over all five wire kinds — block,
//! tip, range, evidence (equivocation proof), refusal.
//!
//! Golden vectors prove clean frames round-trip through [`decode_frame`];
//! then 64 seeded bit-flips and 64 seeded truncations per kind prove a
//! mutated frame is either rejected with a typed [`NodeError`] or — in
//! the one legal survivor case, a flip inside a signature of a block
//! frame — decodes to a frame whose attestation no longer verifies
//! against the identity directory. Never a panic, never a silent
//! acceptance: this is the wire half of the Byzantine-defense argument
//! (the transport may mangle anything; attribution must survive it).

use dams_node::{
    decode_frame, frame_attested_block, frame_evidence, frame_range, frame_refusal, frame_tip,
    Attestation, EquivocationProof, GossipFrame,
};
use dams_blockchain::{Amount, Chain, TokenOutput};
use dams_crypto::{KeyPair, PublicKey, SchnorrGroup};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 64;

struct Fixture {
    group: SchnorrGroup,
    directory: Vec<PublicKey>,
    /// (kind name, clean frame bytes) for every wire kind.
    frames: Vec<(&'static str, Vec<u8>)>,
}

fn fixture() -> Fixture {
    let group = SchnorrGroup::default();
    let mut rng = StdRng::seed_from_u64(1717);
    let identity = KeyPair::generate(&group, &mut rng);
    let directory = vec![identity.public];

    // A realistic announced block: genesis + one sealed coinbase.
    let mut chain = Chain::new(group);
    let owner = KeyPair::generate(&group, &mut rng);
    chain.submit_coinbase(vec![TokenOutput {
        owner: owner.public,
        amount: Amount(5),
    }]);
    chain.seal_block().expect("coinbase seals");
    let block = chain.blocks().last().expect("sealed").clone();
    let att = Attestation::sign(
        &group,
        0,
        block.header.height.0,
        block.hash(),
        &identity,
        &mut rng,
    )
    .expect("ring-of-one signs");

    let a = Attestation::sign(&group, 0, 3, [1u8; 32], &identity, &mut rng).unwrap();
    let b = Attestation::sign(&group, 0, 3, [2u8; 32], &identity, &mut rng).unwrap();
    let proof = EquivocationProof { a, b };
    assert!(proof.verify(&group, &directory), "fixture proof must verify");

    Fixture {
        group,
        directory,
        frames: vec![
            ("block", frame_attested_block(&att, &block)),
            ("tip", frame_tip(0, 7, [9u8; 32])),
            ("range", frame_range(1, 2, 9)),
            ("evidence", frame_evidence(&proof)),
            ("refusal", frame_refusal(0, 99, 16)),
        ],
    }
}

#[test]
fn golden_vectors_roundtrip_every_kind() {
    let fx = fixture();
    for (name, bytes) in &fx.frames {
        let decoded = decode_frame(&fx.group, bytes)
            .unwrap_or_else(|e| panic!("golden {name} frame rejected: {e}"));
        match (*name, &decoded) {
            ("block", GossipFrame::Block { attestation, block }) => {
                assert!(attestation.verify(&fx.group, &fx.directory));
                assert_eq!(attestation.hash, block.hash());
            }
            ("tip", GossipFrame::Tip { sender, height, tip }) => {
                assert_eq!((*sender, *height, *tip), (0, 7, [9u8; 32]));
            }
            ("range", GossipFrame::Range { requester, from, to }) => {
                assert_eq!((*requester, *from, *to), (1, 2, 9));
            }
            ("evidence", GossipFrame::Evidence(proof)) => {
                assert!(proof.verify(&fx.group, &fx.directory));
            }
            ("refusal", GossipFrame::Refusal { server, requested, cap }) => {
                assert_eq!((*server, *requested, *cap), (0, 99, 16));
            }
            (name, other) => panic!("golden {name} decoded as wrong kind: {other:?}"),
        }
    }
}

#[test]
fn bit_flips_yield_typed_errors_or_unverifiable_frames() {
    let fx = fixture();
    for (name, clean) in &fx.frames {
        for seed in 0..SEEDS {
            let mut rng = StdRng::seed_from_u64(0xF1A6_0000 + seed);
            let mut bytes = clean.clone();
            let idx = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u8);
            bytes[idx] ^= 1 << bit;
            match decode_frame(&fx.group, &bytes) {
                Err(_) => {} // typed rejection: the expected outcome
                Ok(GossipFrame::Block { attestation, block }) => {
                    // The only tolerable survivor: a flip that decode
                    // cannot see (inside signature bytes covered by the
                    // frame digest we also flipped? impossible — one flip
                    // only). A decoded block frame must therefore fail
                    // attestation verification or mismatch the original.
                    assert!(
                        !attestation.verify(&fx.group, &fx.directory)
                            || attestation.hash != block.hash(),
                        "{name} seed {seed}: bit {bit} of byte {idx} survived \
                         decode AND attestation verification — silent acceptance"
                    );
                }
                Ok(other) => panic!(
                    "{name} seed {seed}: single bit flip (byte {idx}, bit {bit}) \
                     decoded cleanly as {other:?} — the frame digest missed it"
                ),
            }
        }
    }
}

#[test]
fn truncations_always_yield_typed_errors() {
    let fx = fixture();
    for (name, clean) in &fx.frames {
        for seed in 0..SEEDS {
            let mut rng = StdRng::seed_from_u64(0x7256_0000 + seed);
            let cut = rng.gen_range(0..clean.len());
            assert!(
                decode_frame(&fx.group, &clean[..cut]).is_err(),
                "{name} seed {seed}: truncation at {cut}/{} still decoded",
                clean.len()
            );
        }
    }
}

#[test]
fn mangled_evidence_never_verifies_as_a_proof() {
    // Evidence frames are the frames peers act on hardest (a verified
    // proof is an instant ban), so pin the stronger property: however a
    // single byte is mangled, the result either fails to decode or fails
    // proof verification. No mutation may yield a *different valid
    // proof*.
    let fx = fixture();
    let clean = &fx.frames[3].1;
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0xE71D ^ (seed << 8));
        let mut bytes = clean.clone();
        let idx = rng.gen_range(0..bytes.len());
        bytes[idx] = bytes[idx].wrapping_add(rng.gen_range(1..=255u8));
        if let Ok(GossipFrame::Evidence(proof)) = decode_frame(&fx.group, &bytes) {
            assert!(
                !proof.verify(&fx.group, &fx.directory),
                "seed {seed}: mutated byte {idx} produced a verifying proof"
            );
        }
    }
}
