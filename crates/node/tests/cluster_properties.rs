//! Seed-sweep properties for the multi-node replication layer: the
//! scripted cluster scenario — gossip under the default fault model, a
//! minority partition healed mid-run, a crash/restart recovered from the
//! replica's own durable store plus a peer WAL-tail stream, and a late
//! joiner bootstrapped from a checkpoint bundle — must converge for
//! *every* seed, with catch-up work bounded by the checkpoint interval
//! (O(tail), never O(chain)). A failure message names the seed so the
//! run replays exactly (`dams-cli cluster-sim --seed <seed>`).

use dams_node::run_cluster_scenario;
use dams_store::StoreConfig;

const SEEDS: u64 = 64;

/// The acceptance sweep: 64 seeds of the 3-node scenario, each asserting
/// convergence (byte-identical tips, identical batch lists, identical
/// violation-free (c, ℓ) verdicts) and the two catch-up bounds.
#[test]
fn cluster_scenario_converges_across_seeds() {
    let interval = StoreConfig::default().checkpoint_interval;
    for seed in 0..SEEDS {
        let report = run_cluster_scenario(seed, 3).unwrap();
        assert!(report.converged, "seed {seed}:\n{}", report.render());
        assert!(report.batch_consensus, "seed {seed}: batch lists diverge");
        assert!(
            report.immutability_ok,
            "seed {seed}: selection verdicts diverge or violated"
        );
        assert!(report.ticks.is_some(), "seed {seed}: tick budget exhausted");
        assert_eq!(report.height, 11, "seed {seed}: lost mined blocks");

        // Crash/restart: local recovery must be clean, and the peer tail
        // stream must cover at least the 2 blocks mined while the replica
        // was down (more if gossip drops had left it behind at the kill).
        let (clean, applied) = report.restart.expect("3-node scenario kills a replica");
        assert!(clean, "seed {seed}: restart recovery flagged");
        assert!(
            applied >= 2,
            "seed {seed}: tail stream applied {applied} < 2 missed blocks"
        );

        // Late joiner: bootstrap is O(tail) — full verification is bounded
        // by the checkpoint interval, everything earlier rides the
        // checkpoint attestation; every recovered ring re-verified.
        let joiner = report.joiner.expect("scenario spawns a late joiner");
        assert!(joiner.clean, "seed {seed}: joiner bootstrap flagged");
        assert!(
            joiner.tail_verified <= interval,
            "seed {seed}: verified {} blocks > checkpoint interval {interval} — \
             catch-up is not O(tail)",
            joiner.tail_verified
        );
        assert!(
            joiner.prefix_adopted + joiner.tail_verified >= 10,
            "seed {seed}: joiner missing blocks ({} + {})",
            joiner.prefix_adopted,
            joiner.tail_verified
        );

        // The peers' stores did the serving (store.checkpoint.served_total
        // feeds from the same per-store counters).
        assert!(
            report.blocks_served as u64 >= applied + joiner.prefix_adopted + joiner.tail_verified,
            "seed {seed}: served {} blocks < catch-up work",
            report.blocks_served
        );
    }
}

/// Determinism: one seed, two runs, identical reports — including the
/// rendered text the CLI prints, which the CI gate greps.
#[test]
fn cluster_scenario_replays_identically_across_seeds() {
    for seed in 0..8 {
        let a = run_cluster_scenario(seed, 3).unwrap();
        let b = run_cluster_scenario(seed, 3).unwrap();
        assert_eq!(a.render(), b.render(), "seed {seed}: nondeterministic run");
        assert_eq!(a.fault_stats, b.fault_stats, "seed {seed}");
        assert_eq!(a.gossip_stats, b.gossip_stats, "seed {seed}");
    }
}

/// The scenario holds at the other bench sizes too (single replica and a
/// 5-replica cluster with a partitioned minority), on a reduced sweep.
#[test]
fn cluster_scenario_converges_at_other_sizes() {
    let interval = StoreConfig::default().checkpoint_interval;
    for seed in 0..16 {
        for nodes in [1usize, 5] {
            let report = run_cluster_scenario(seed, nodes).unwrap();
            assert!(
                report.converged && report.batch_consensus && report.immutability_ok,
                "seed {seed}, {nodes} nodes:\n{}",
                report.render()
            );
            let joiner = report.joiner.expect("every size spawns a joiner");
            assert!(
                joiner.tail_verified <= interval,
                "seed {seed}, {nodes} nodes: catch-up not O(tail)"
            );
        }
    }
}
