//! The 64-seed index-equivalence sweep: a node's incrementally maintained
//! diversity index must produce **bit-identical** selection verdicts to a
//! from-scratch snapshot recompute at every point of a chain's life —
//! gossip adoption, reorg rollback + redelivery, and crash + recovery —
//! while paying only O(Δ) maintenance per adopted block.
//!
//! Two oracles run at every checkpoint:
//!
//! 1. [`recompute_equivalence`] — structural: replay the chain's deltas
//!    through an independent snapshot pipeline and demand agreement on
//!    every observable (batch boundaries, histograms, rings, module
//!    partitions with subset counts).
//! 2. Verdict bit-identity — behavioural: run the degrade ladder for a
//!    sample of targets through the live index *and* through a fresh
//!    [`index_of_chain`] rebuild, under the same deterministic counter
//!    budget (no wall-clock timeouts — those would make "identical"
//!    unfalsifiable), and `assert_eq!` the full
//!    [`dams_core::IndexedSelection`] including tier, ring, and stats.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dams_blockchain::{Amount, Block, Chain, NoConfiguration, TokenOutput};
use dams_core::{
    recompute_equivalence, BfsBudget, CoreMetrics, DegradeBudget, DiversityIndex, LadderExec,
    PracticalAlgorithm, SelectionPolicy, Tier,
};
use dams_crypto::{KeyPair, SchnorrGroup};
use dams_diversity::DiversityRequirement;
use dams_node::{block_delta, index_of_chain, BlockAnnouncement, NodeLimits, SimNode, Wallet};
use dams_obs::Registry;
use dams_store::{MemBackend, Store, StoreConfig};

const SEEDS: u64 = 64;
const LAMBDA: usize = 6;
const SWEEP_DOMAIN: u64 = 0x01dc_5eed_ca11_ab1e;

/// A fresh in-memory store with checkpointing disabled, so the sweep may
/// roll back to any height the RS-immutability rule allows.
fn mem_store(group: SchnorrGroup) -> dams_store::Recovered {
    Store::open(
        Box::new(MemBackend::new()),
        Box::new(MemBackend::new()),
        group,
        StoreConfig {
            checkpoint_interval: 0,
        },
    )
    .expect("fresh store opens")
}

/// Counter-only budget: enough exact search for λ-sized batches, zero
/// wall-clock nondeterminism.
fn deterministic_budget() -> DegradeBudget {
    DegradeBudget {
        exact_timeout: None,
        bfs: BfsBudget {
            max_candidates: 400,
            max_worlds: 64,
            deadline: None,
        },
    }
}

/// Deliver `block` to the node's inbox and pump it through adoption.
fn adopt(node: &mut SimNode, block: Block) {
    node.deliver(BlockAnnouncement { block }).expect("inbox has room");
    assert_eq!(node.process_inbox(), 1, "block must adopt immediately");
}

/// Deliver every producer block the node does not have yet. Returns how
/// many were delivered.
fn catch_up(node: &mut SimNode, chain: &Chain) -> usize {
    let have = node.chain().height();
    let missing = &chain.blocks()[have..];
    for block in missing {
        adopt(node, block.clone());
    }
    missing.len()
}

/// Both oracles against `chain` (which must equal the index's chain).
fn assert_equivalent(index: &DiversityIndex, chain: &Chain, seed: u64) {
    // Structural: independent replay of the chain's deltas.
    let deltas: Vec<_> = chain.blocks().iter().map(block_delta).collect();
    recompute_equivalence(index, &deltas)
        .unwrap_or_else(|d| panic!("seed {seed}: index diverged from recompute: {d}"));

    // Behavioural: bit-identical ladder verdicts vs a fresh rebuild.
    let rebuilt = index_of_chain(chain, index.lambda())
        .unwrap_or_else(|e| panic!("seed {seed}: rebuild failed: {e}"));
    let registry = Registry::new();
    let metrics = CoreMetrics::in_registry(&registry);
    let exec = LadderExec {
        workers: 1,
        cache: None,
        modular: None,
    };
    let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 2));
    let ladder = [Tier::ExactBfs, Tier::Progressive, Tier::GameTheoretic];
    for target in (0..index.token_count()).step_by(3) {
        let live = index.select(
            target,
            policy,
            deterministic_budget(),
            &ladder,
            &metrics,
            &exec,
        );
        let fresh = rebuilt.select(
            target,
            policy,
            deterministic_budget(),
            &ladder,
            &metrics,
            &exec,
        );
        assert_eq!(
            live, fresh,
            "seed {seed}: verdict for token {target} diverged from recompute"
        );
    }
}

/// One seeded life-cycle: fund → interleaved spends/mints → reorg →
/// redelivery → crash + recovery, checking both oracles at each stage.
/// Returns how many ring signatures the wallet committed.
fn run_seed(seed: u64) -> u64 {
    let group = SchnorrGroup::default();
    let mut rng = StdRng::seed_from_u64(seed ^ SWEEP_DOMAIN);

    // Producer side: a wallet driving its own chain.
    let mut chain = Chain::new(group);
    let wallet_policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 2));
    let mut wallet = Wallet::new(wallet_policy, PracticalAlgorithm::Progressive);

    // Observer side: the indexed, durable node, fed only by gossip.
    let mut node = SimNode::new(0, group);
    node.attach_store(mem_store(group)).expect("attach fresh store");
    node.enable_index(LAMBDA).expect("index on genesis-only chain");
    let mut adoptions = 0usize;

    // Fund: 3 coinbase blocks, 2 txs × 2 tokens each (distinct txs give
    // the batches distinct HT labels, keeping selection feasible).
    for _ in 0..3 {
        for _ in 0..2 {
            let outs: Vec<TokenOutput> = (0..2)
                .map(|_| TokenOutput {
                    owner: wallet.new_address(&chain, &mut rng),
                    amount: Amount(5),
                })
                .collect();
            chain.submit_coinbase(outs);
        }
        chain.seal_block().expect("coinbase seals");
        adoptions += catch_up(&mut node, &chain);
    }

    // Interleave wallet spends (ring-carrying blocks) with further mints.
    let mut rings = 0u64;
    for step in 0..6 {
        if step % 2 == 0 {
            if let Some(&token) = wallet.spendable(&chain).first() {
                let receiver = wallet.new_address(&chain, &mut rng);
                if wallet
                    .spend(&mut chain, token, receiver, &NoConfiguration, &mut rng)
                    .is_ok()
                {
                    rings += 1;
                }
            }
        } else {
            let outs = vec![TokenOutput {
                owner: KeyPair::generate(&group, &mut rng).public,
                amount: Amount(1),
            }];
            chain.submit_coinbase(outs);
            chain.seal_block().expect("coinbase seals");
        }
        adoptions += catch_up(&mut node, &chain);
    }
    assert_equivalent(node.index().expect("enabled"), node.chain(), seed);

    // A coinbase-only tail the store will let us reorg away (committed
    // ring signatures are immutable — the store refuses to unwind them).
    for _ in 0..3 {
        let outs = vec![TokenOutput {
            owner: KeyPair::generate(&group, &mut rng).public,
            amount: Amount(1),
        }];
        chain.submit_coinbase(outs);
        chain.seal_block().expect("coinbase seals");
        adoptions += catch_up(&mut node, &chain);
    }

    // Reorg: roll chain + store + index back 3 blocks together.
    let target = node.chain().height() as u64 - 1 - 3;
    let undone = node.rollback_to(target).expect("coinbase tail unwinds");
    assert_eq!(undone, 3, "seed {seed}");
    let index = node.index().expect("index survives rollback");
    assert_eq!(index.stats().blocks_rolled_back, 3, "journaled undo, not rebuild");
    assert_equivalent(index, node.chain(), seed);

    // Redeliver the reorged-away tail: adoption is idempotent re-entry.
    adoptions += catch_up(&mut node, &chain);
    assert_eq!(
        node.tip_hash().expect("tip"),
        chain.tip().expect("tip").hash(),
        "seed {seed}: node must re-converge on the producer chain"
    );
    let index = node.index().expect("enabled");
    // O(Δ) accounting: every adoption (plus the genesis replay at enable
    // time and the 3 re-applied blocks' first pass) went through the
    // incremental path — the apply counter explains the chain exactly,
    // leaving no room for hidden rebuilds.
    assert_eq!(
        index.stats().blocks_applied as usize,
        1 + adoptions,
        "seed {seed}: adoption must be incremental"
    );
    // O(Δ) cost: the priciest single block is bounded by its own content
    // (a few txs and one ring), never by chain length.
    assert!(
        index.stats().max_block_ops <= 512,
        "seed {seed}: per-block maintenance exploded: {:?}",
        index.stats()
    );
    assert_equivalent(index, node.chain(), seed);

    // Crash: drop the node, reopen its store, recover, re-enable.
    let mut store = node.take_store().expect("store attached");
    store.crash();
    let (wal, cp) = store.into_backends();
    drop(node);
    let (mut revived, report) = SimNode::restore_from_store(
        1,
        group,
        NodeLimits::default(),
        wal,
        cp,
        StoreConfig {
            checkpoint_interval: 0,
        },
    )
    .expect("recovery from own WAL");
    assert!(report.clean(), "seed {seed}: recovery flagged: {report:?}");
    assert_eq!(
        revived.tip_hash().expect("tip"),
        chain.tip().expect("tip").hash(),
        "seed {seed}: recovered node lost blocks"
    );
    revived.enable_index(LAMBDA).expect("index over recovered chain");
    assert_equivalent(revived.index().expect("enabled"), revived.chain(), seed);

    rings
}

#[test]
fn index_verdicts_match_recompute_across_64_seeds() {
    let mut total_rings = 0u64;
    for seed in 0..SEEDS {
        total_rings += run_seed(seed);
    }
    // The sweep must actually exercise ring-carrying history, not just
    // coinbase mints — otherwise the module-partition maintenance and the
    // cross-batch frontier never run.
    assert!(
        total_rings >= SEEDS,
        "only {total_rings} rings committed across {SEEDS} seeds"
    );
}
