//! Seed-sweep properties for the fault-injection harness: the §4
//! consensus argument must hold under drops, duplicates, reordering,
//! delays, partitions, and crash/restart — for *every* seed, not a lucky
//! one. Each property sweeps 64 PRNG seeds; a failure message names the
//! seed so the run replays exactly (`dams_cli --faults <seed>`).

use dams_crypto::sha256::Digest;
use dams_crypto::SchnorrGroup;
use dams_node::{run_faulted_simulation, FaultConfig, FaultyBus};

const SEEDS: u64 = 64;

fn tips(bus: &FaultyBus) -> Vec<Digest> {
    bus.nodes.iter().map(|n| n.tip_hash().unwrap()).collect()
}

/// Partition-then-heal: a minority side cut off during mining must catch
/// back up after the heal, ending on the identical tip hash and batch
/// list as the majority.
#[test]
fn partition_then_heal_converges_across_seeds() {
    let group = SchnorrGroup::default();
    for seed in 0..SEEDS {
        let mut bus = FaultyBus::new(3, group, seed, FaultConfig::default());
        for _ in 0..3 {
            bus.mine_and_gossip(0, 2).unwrap();
            bus.step();
        }
        bus.partition(&[2]).unwrap();
        for _ in 0..2 {
            bus.mine_and_gossip(0, 2).unwrap();
            bus.step();
        }
        bus.heal();
        let ticks = bus.run_until_quiet(400);
        assert!(ticks.is_some(), "seed {seed}: no convergence after heal");
        let tips = tips(&bus);
        assert!(
            tips.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: divergent tips {tips:?}"
        );
        assert!(bus.batch_consensus(3), "seed {seed}: batch lists diverge");
    }
}

/// Idempotence: aggressive duplication + delay + reordering (no losses)
/// must change nothing — every replica applies each block exactly once
/// and lands on the mined height.
#[test]
fn duplicated_reordered_delivery_is_idempotent_across_seeds() {
    let group = SchnorrGroup::default();
    let cfg = FaultConfig {
        drop_prob: 0.0,
        dup_prob: 0.6,
        delay_prob: 0.4,
        max_delay: 4,
        corrupt_prob: 0.0,
        reorder: true,
    };
    const MINED: usize = 5;
    for seed in 0..SEEDS {
        let mut bus = FaultyBus::new(3, group, seed, cfg);
        for _ in 0..MINED {
            bus.mine_and_gossip(0, 2).unwrap();
            bus.step();
        }
        let ticks = bus.run_until_quiet(300);
        assert!(ticks.is_some(), "seed {seed}: no convergence");
        for node in &bus.nodes {
            // Genesis + each mined block exactly once, despite duplicates.
            assert_eq!(
                node.chain().height(),
                MINED + 1,
                "seed {seed}: duplicate application"
            );
        }
        assert!(bus.batch_consensus(4), "seed {seed}: batch lists diverge");
        assert!(bus.stats().duplicated > 0, "seed {seed}: fault model inert");
    }
}

/// Crash/restart: a replica rebuilt from its snapshot by verified replay
/// must reconverge with the survivors on the same tip and batch list.
#[test]
fn crash_restart_reconverges_across_seeds() {
    let group = SchnorrGroup::default();
    for seed in 0..SEEDS {
        let mut bus = FaultyBus::new(3, group, seed, FaultConfig::default());
        for _ in 0..3 {
            bus.mine_and_gossip(0, 2).unwrap();
            bus.step();
        }
        bus.crash_and_restore(1).unwrap();
        for _ in 0..2 {
            bus.mine_and_gossip(0, 2).unwrap();
            bus.step();
        }
        let ticks = bus.run_until_quiet(400);
        assert!(ticks.is_some(), "seed {seed}: no reconvergence after crash");
        let tips = tips(&bus);
        assert!(
            tips.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: divergent tips {tips:?}"
        );
        assert!(bus.batch_consensus(3), "seed {seed}: batch lists diverge");
    }
}

/// Partition + heal interleaving with corrupted traffic still in flight
/// across the heal: healing restores *reachability*, never integrity. A
/// frame corrupted while the partition stood must still be refused when
/// it finally lands after the heal, and the wire accounting must prove
/// no copy slipped through unexamined.
#[test]
fn corrupt_frame_in_flight_across_heal_is_rejected_across_seeds() {
    let group = SchnorrGroup::default();
    let cfg = FaultConfig {
        drop_prob: 0.0,
        dup_prob: 0.0,
        delay_prob: 1.0,
        max_delay: 8,
        corrupt_prob: 1.0,
        reorder: true,
    };
    for seed in 0..SEEDS {
        let mut bus = FaultyBus::new(3, group, seed, cfg);
        bus.partition(&[2]).unwrap();
        // The announcement to node 1 is corrupted and delayed in flight;
        // the copy for partitioned node 2 is suppressed at the source.
        bus.mine_and_gossip(0, 1).unwrap();
        bus.heal();
        for _ in 0..12 {
            bus.step();
        }
        // The corrupted frame lands after the heal and is still refused —
        // at the authenticated-frame decoder (header flip) or at full
        // block validation (body flip). Either way no replica but the
        // miner ever adopts anything.
        assert_eq!(bus.nodes[0].chain().height(), 2, "seed {seed}");
        for node in &bus.nodes[1..] {
            assert_eq!(
                node.chain().height(),
                1,
                "seed {seed}: corrupted frame was applied after the heal"
            );
        }
        let s = bus.stats();
        let discarded: u64 = bus.nodes.iter().map(|n| n.stats().blocks_discarded).sum();
        assert!(
            s.corrupted >= 1 && s.delayed >= 1,
            "seed {seed}: fault model inert {s:?}"
        );
        assert!(s.partition_blocked >= 1, "seed {seed}: partition inert");
        assert!(
            s.decode_rejected + discarded >= 1,
            "seed {seed}: corrupt frame rejected nowhere {s:?}"
        );
        // Every sent copy is accounted for: delivered to an inbox,
        // refused at decode, or refused by a full inbox — none vanish
        // across the heal boundary.
        assert_eq!(
            s.delivered + s.decode_rejected + s.inbox_rejected,
            s.sent,
            "seed {seed}: accounting leak {s:?}"
        );
    }
}

/// The full scripted adversarial scenario (drop + duplicate + reorder +
/// delay + corrupt + partition/heal + crash/restore) converges for every
/// seed — the acceptance criterion of the fault-injection work.
#[test]
fn scripted_simulation_converges_across_seeds() {
    for seed in 0..SEEDS {
        let report = run_faulted_simulation(seed);
        assert!(report.converged, "seed {seed}: {report:?}");
        assert!(report.batch_consensus, "seed {seed}: {report:?}");
        assert!(report.ticks.is_some(), "seed {seed}: tick budget exhausted");
        assert_eq!(report.height, 10, "seed {seed}: lost mined blocks");
    }
}
