//! Property tests for the network layer: consensus must hold under every
//! delivery order and any gossip interleaving.

use proptest::prelude::*;

use dams_blockchain::{Amount, TokenOutput};
use dams_crypto::{KeyPair, SchnorrGroup};
use dams_node::{BlockAnnouncement, Bus};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mine `blocks` coinbase blocks on node 0, collecting them.
fn mine(bus: &mut Bus, blocks: usize, seed: u64) -> Vec<dams_blockchain::Block> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..blocks {
        let group = *bus.nodes[0].chain().group();
        let outs: Vec<TokenOutput> = (0..2)
            .map(|_| TokenOutput {
                owner: KeyPair::generate(&group, &mut rng).public,
                amount: Amount(1),
            })
            .collect();
        // Node 0 mines locally through its public chain handle.
        let node = &mut bus.nodes[0];
        let chain = node_chain_mut(node);
        chain.submit_coinbase(outs);
        chain.seal_block().unwrap();
        out.push(chain.blocks().last().expect("sealed").clone());
    }
    out
}

/// Test-only access to a node's chain (the `SimNode` field is private; we
/// go through a helper the crate exposes for mining nodes).
fn node_chain_mut(node: &mut dams_node::SimNode) -> &mut dams_blockchain::Chain {
    node.chain_mut()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any permutation of block delivery converges to the miner's chain.
    #[test]
    fn convergence_under_any_delivery_order(
        perm in prop::collection::vec(0usize..1000, 5..=5),
        seed in 0u64..100,
    ) {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(3, group);
        let blocks = mine(&mut bus, 5, seed);
        // Deliver to nodes 1 and 2 in the permuted order.
        let mut order: Vec<usize> = (0..blocks.len()).collect();
        order.sort_by_key(|&i| perm[i]);
        for &i in &order {
            bus.nodes[1].deliver(BlockAnnouncement { block: blocks[i].clone() }).unwrap();
        }
        for &i in order.iter().rev() {
            bus.nodes[2].deliver(BlockAnnouncement { block: blocks[i].clone() }).unwrap();
        }
        bus.settle();
        prop_assert!(bus.converged());
        prop_assert!(bus.batch_consensus(4));
    }

    /// Dropping an interior block no longer stalls convergence: later
    /// blocks park as orphans whose parent requests backfill the gap from
    /// the mining node. Only a dropped *tip* (nothing after it to orphan)
    /// stalls, and redelivery heals that too.
    #[test]
    fn missing_block_heals_via_parent_requests(drop_idx in 0usize..4, seed in 0u64..50) {
        let group = SchnorrGroup::default();
        let mut bus = Bus::new(2, group);
        let blocks = mine(&mut bus, 4, seed);
        for (i, b) in blocks.iter().enumerate() {
            if i != drop_idx {
                bus.nodes[1].deliver(BlockAnnouncement { block: b.clone() }).unwrap();
            }
        }
        bus.settle();
        if drop_idx < blocks.len() - 1 {
            prop_assert!(bus.converged(), "parent requests should heal gap {drop_idx}");
        } else {
            prop_assert!(!bus.converged(), "nothing signals a missing tip");
        }
        // Redelivering the dropped block converges (and is idempotent for
        // the interior cases that already healed).
        bus.nodes[1].deliver(BlockAnnouncement { block: blocks[drop_idx].clone() }).unwrap();
        bus.settle();
        prop_assert!(bus.converged());
    }
}
