//! # dams-proptest
//!
//! A hand-rolled, dependency-free property-testing harness covering the
//! subset of the `proptest` crate's API this workspace uses. The
//! workspace aliases it as `proptest`, so the existing property tests
//! compile unchanged while running entirely offline.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case index and the
//!   exact PRNG seed that regenerates it (the whole workspace is
//!   seed-deterministic), which substitutes for minimisation.
//! * **Fixed seeding.** Cases derive from a constant base seed, so a
//!   failure reproduces on every run and in CI; set `DAMS_PROPTEST_SEED`
//!   to explore a different region of the input space.

#[doc(hidden)]
pub use rand::rngs::StdRng;
pub use rand::SeedableRng;

pub mod test_runner {
    //! Runner configuration and case-level control flow.

    /// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many accepted (non-rejected) cases each property runs.
        pub cases: u32,
        /// Base seed; case `i` uses a stream derived from `seed + i`.
        pub seed: u64,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let seed = std::env::var("DAMS_PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x4441_4d53); // "DAMS"
            ProptestConfig { cases: 256, seed }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs out; the case is retried
        /// with fresh inputs and does not count toward `cases`.
        Reject(String),
        /// A `prop_assert*` failed; the property is falsified.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub mod strategy {
    //! The value-generation trait and its combinators.

    use super::StdRng;

    /// A recipe for generating values of one type. Unlike the real
    /// proptest there is no value tree: `new_value` draws directly from
    /// the runner's seeded PRNG.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values (`proptest`'s `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// The `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut StdRng) -> f64 {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Strategy for `any::<T>()` — the whole domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            rand::Rng::gen(rng)
        }
    }
}

/// Uniform values over the full domain of `T` (`proptest::arbitrary::any`).
pub fn any<T: rand::Standard>() -> strategy::Any<T> {
    strategy::Any(core::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use super::strategy::Strategy;
    use super::StdRng;

    /// An inclusive length band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.min..=self.size.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let target = rand::Rng::gen_range(rng, self.size.min..=self.size.max);
            let mut set = std::collections::BTreeSet::new();
            // Collisions shrink the set below `target`; retry enough that
            // small domains (the usual case here) still fill up, then
            // accept whatever landed — mirroring proptest's tolerance.
            let mut attempts = 0;
            while set.len() < target && attempts < 20 * (target + 1) {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample`).

    use super::strategy::Strategy;
    use super::StdRng;

    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly one of the given options (`prop::sample::select`).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            use rand::seq::SliceRandom;
            self.options
                .choose(rng)
                .expect("non-empty by construction")
                .clone()
        }
    }
}

pub mod prelude {
    //! The glob import every property-test file starts with.

    pub use super::any;
    pub use super::strategy::Strategy;
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! The `prop::` path used inside strategies.
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` seeded cases; a failure reports
/// the case index and seed that regenerate it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            use $crate::SeedableRng as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            let max_attempts = u64::from(config.cases) * 20 + 100;
            while accepted < config.cases {
                assert!(
                    attempt < max_attempts,
                    "property '{}': too many rejected cases ({} attempts for {} accepted)",
                    stringify!($name),
                    attempt,
                    accepted,
                );
                let case_seed = config.seed.wrapping_add(attempt);
                attempt += 1;
                let mut __rng = $crate::StdRng::seed_from_u64(case_seed);
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "property '{}' falsified at case {} (regenerate with seed {:#x}): {}",
                        stringify!($name),
                        accepted,
                        case_seed,
                        msg,
                    ),
                }
            }
        }
    )*};
}

/// `assert!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r,
                )
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+),
                            l,
                            r,
                        )),
                    );
                }
            }
        }
    };
}

/// `assert_ne!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {} (both {:?})",
                    stringify!($left),
                    stringify!($right),
                    l,
                )
            }
        }
    };
}

/// Filter out uninteresting inputs; rejected cases are retried and do not
/// count toward the configured case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_respect_band(v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn btree_set_is_deduplicated(s in prop::collection::btree_set(0u32..6, 1..=6)) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.len() <= 6);
        }

        #[test]
        fn map_applies(x in (0u32..50).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn select_draws_from_options(c in prop::sample::select(vec![0.5f64, 1.0, 2.0])) {
            prop_assert!([0.5, 1.0, 2.0].contains(&c));
        }

        #[test]
        fn assume_filters(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn tuples_and_any(pair in (any::<u8>(), 0usize..4), flag in any::<u64>()) {
            prop_assert!(pair.1 < 4);
            let _ = flag;
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_seed() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
