//! Property-based tests for the ledger substrate.

use proptest::prelude::*;

use dams_blockchain::{Amount, BatchList, Chain, TokenId, TokenOutput};
use dams_crypto::{KeyPair, SchnorrGroup};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a chain of `blocks` coinbase blocks with the given token counts.
fn build_chain(token_counts: &[usize], seed: u64) -> Chain {
    let group = SchnorrGroup::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chain = Chain::new(group);
    for &count in token_counts {
        let outs: Vec<TokenOutput> = (0..count)
            .map(|_| TokenOutput {
                owner: KeyPair::generate(chain.group(), &mut rng).public,
                amount: Amount(1),
            })
            .collect();
        chain.submit_coinbase(outs);
        chain.seal_block().unwrap();
    }
    chain
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batch_list_partitions_tokens(
        counts in prop::collection::vec(0usize..6, 1..12),
        lambda in 1usize..10,
    ) {
        let chain = build_chain(&counts, 1);
        let total: usize = counts.iter().sum();
        let bl = BatchList::build(&chain, lambda);

        // Every token in exactly one batch.
        let mut seen = std::collections::BTreeSet::new();
        for b in bl.batches() {
            for t in &b.tokens {
                prop_assert!(seen.insert(*t), "token {t:?} in two batches");
            }
        }
        prop_assert_eq!(seen.len(), total);

        // Closed batches meet λ; only the last batch may be open.
        for (i, b) in bl.batches().iter().enumerate() {
            if b.closed {
                prop_assert!(b.tokens.len() >= lambda);
            } else {
                prop_assert_eq!(i, bl.batches().len() - 1, "only trailing batch open");
            }
        }

        // Block ranges are sequential and disjoint.
        for w in bl.batches().windows(2) {
            prop_assert!(w[0].last_block < w[1].first_block);
        }
    }

    #[test]
    fn batch_lookup_agrees_with_membership(
        counts in prop::collection::vec(1usize..5, 1..8),
        lambda in 1usize..8,
    ) {
        let chain = build_chain(&counts, 2);
        let bl = BatchList::build(&chain, lambda);
        for i in 0..chain.token_count() as u64 {
            let t = TokenId(i);
            let b = bl.batch_of(t);
            prop_assert!(b.is_some());
            prop_assert!(b.expect("checked").tokens.contains(&t));
            prop_assert_eq!(
                bl.mixin_universe(t).expect("token known"),
                b.expect("checked").tokens.as_slice()
            );
        }
    }

    #[test]
    fn chain_audit_holds_after_any_mint_sequence(
        counts in prop::collection::vec(0usize..5, 1..10),
    ) {
        let chain = build_chain(&counts, 3);
        prop_assert!(chain.audit());
        prop_assert_eq!(chain.height(), counts.len() + 1); // + genesis
        prop_assert_eq!(chain.token_count(), counts.iter().sum::<usize>());
    }

    #[test]
    fn origins_partition_by_block(counts in prop::collection::vec(1usize..5, 2..6)) {
        let chain = build_chain(&counts, 4);
        // Tokens minted in the same coinbase share an origin; across
        // different coinbases origins differ.
        let mut start = 0u64;
        let mut prev_origin = None;
        for &count in &counts {
            let first = chain.token(TokenId(start)).expect("minted").origin;
            for k in 0..count as u64 {
                prop_assert_eq!(chain.token(TokenId(start + k)).expect("minted").origin, first);
            }
            if let Some(prev) = prev_origin {
                prop_assert_ne!(first, prev);
            }
            prev_origin = Some(first);
            start += count as u64;
        }
    }
}
