//! Property tests for the wire codec: roundtrips over arbitrary
//! structurally-valid transactions, and decoder robustness on arbitrary
//! byte soup (no panics, only errors).

use proptest::prelude::*;

use dams_blockchain::codec::{decode_block, encode_transaction};
use dams_blockchain::{block_to_bytes, Amount, Block, BlockHeader, CommittedTransaction};
use dams_blockchain::{BlockHeight, TokenId, TokenOutput, Transaction, TxId};
use dams_crypto::{KeyPair, SchnorrGroup};

/// An arbitrary inputless transaction (outputs + memo); ring inputs are
/// exercised by the unit tests with real signatures.
fn arb_transaction() -> impl Strategy<Value = Transaction> {
    (
        prop::collection::vec((1u64..1000, 0u64..1_000_000), 0..5),
        prop::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(outs, memo)| {
            let group = SchnorrGroup::default();
            Transaction {
                inputs: vec![],
                outputs: outs
                    .into_iter()
                    .map(|(secret, amount)| TokenOutput {
                        owner: KeyPair::from_secret(&group, secret).public,
                        amount: Amount(amount),
                    })
                    .collect(),
                memo,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn block_roundtrips(txs in prop::collection::vec(arb_transaction(), 0..4), ts in any::<u64>()) {
        let group = SchnorrGroup::default();
        let committed: Vec<CommittedTransaction> = txs
            .into_iter()
            .enumerate()
            .map(|(i, tx)| {
                let n_out = tx.outputs.len() as u64;
                CommittedTransaction {
                    id: TxId(i as u64),
                    tx,
                    output_ids: (0..n_out).map(TokenId).collect(),
                }
            })
            .collect();
        let block = Block {
            header: BlockHeader {
                height: BlockHeight(1),
                prev_hash: [7; 32],
                content_hash: Block::content_hash(&committed),
                timestamp: ts,
            },
            transactions: committed,
        };
        let bytes = block_to_bytes(&block);
        let decoded = decode_block(&group, &bytes).expect("roundtrip");
        prop_assert_eq!(&decoded, &block);
        prop_assert_eq!(decoded.hash(), block.hash());
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let group = SchnorrGroup::default();
        let _ = decode_block(&group, &bytes); // must return, never panic
    }

    #[test]
    fn encoding_is_injective(a in arb_transaction(), b in arb_transaction()) {
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        encode_transaction(&a, &mut ba);
        encode_transaction(&b, &mut bb);
        if a != b {
            prop_assert_ne!(ba, bb);
        } else {
            prop_assert_eq!(ba, bb);
        }
    }
}
