//! Codec corruption sweep: for 64 seeds, encode a realistic block (ring
//! signatures included), flip one seeded random byte, and prove the
//! mutation can never be *silently* accepted — decoding either fails, or
//! the decoded block no longer matches the original's hash, or the
//! recomputed content hash exposes the tampered body. This is the codec
//! half of the durable store's integrity argument: the WAL's crc32
//! catches media faults, and these properties catch anything that slips
//! past a checksum.

use dams_blockchain::{
    block_to_bytes, decode_block, Amount, Block, Chain, NoConfiguration, RingInput, TokenId,
    TokenOutput, Transaction,
};
use dams_crypto::{KeyPair, SchnorrGroup};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 64;

/// A block carrying a coinbase and a ring spend — every codec section
/// (header, outputs, ring, signature responses, key image) is populated.
fn realistic_block() -> (SchnorrGroup, Block) {
    let group = SchnorrGroup::default();
    let mut rng = StdRng::seed_from_u64(404);
    let keys: Vec<KeyPair> = (0..4).map(|_| KeyPair::generate(&group, &mut rng)).collect();
    let mut chain = Chain::new(group);
    chain.submit_coinbase(
        keys.iter()
            .map(|k| TokenOutput {
                owner: k.public,
                amount: Amount(10),
            })
            .collect(),
    );
    chain.seal_block().expect("coinbase seals");

    let outputs = vec![TokenOutput {
        owner: keys[1].public,
        amount: Amount(10),
    }];
    let shell = Transaction {
        inputs: vec![],
        outputs: outputs.clone(),
        memo: b"codec fuzz".to_vec(),
    };
    let payload = shell.signing_payload();
    let ring: Vec<TokenId> = [0u64, 1, 2].into_iter().map(TokenId).collect();
    let ring_keys: Vec<_> = ring
        .iter()
        .map(|t| chain.token(*t).expect("minted").owner)
        .collect();
    let sig = dams_crypto::sign(chain.group(), &payload, &ring_keys, &keys[1], &mut rng)
        .expect("signable");
    let tx = Transaction {
        inputs: vec![RingInput {
            ring,
            signature: sig,
            claimed_c: 0.6,
            claimed_l: 2,
        }],
        outputs,
        memo: b"codec fuzz".to_vec(),
    };
    chain.submit(tx, &NoConfiguration).expect("valid spend");
    chain.seal_block().expect("spend seals");
    let block = chain.blocks().last().expect("sealed block").clone();
    (group, block)
}

#[test]
fn roundtrip_is_identity() {
    let (group, block) = realistic_block();
    let bytes = block_to_bytes(&block);
    let decoded = decode_block(&group, &bytes).expect("clean bytes decode");
    assert_eq!(decoded, block);
    assert_eq!(decoded.hash(), block.hash());
}

#[test]
fn single_byte_flip_is_never_silently_accepted() {
    let (group, block) = realistic_block();
    let clean = block_to_bytes(&block);
    let original_hash = block.hash();
    let mut rejected = 0u32;
    let mut hash_mismatch = 0u32;
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0xC0DE_C000 + seed);
        let mut bytes = clean.clone();
        let idx = rng.gen_range(0..bytes.len());
        let bit = rng.gen_range(0..8u8);
        bytes[idx] ^= 1 << bit;
        match decode_block(&group, &bytes) {
            Err(_) => rejected += 1,
            Ok(decoded) => {
                let hash_detects = decoded.hash() != original_hash;
                let content_detects =
                    Block::content_hash(&decoded.transactions) != decoded.header.content_hash;
                assert!(
                    hash_detects || content_detects,
                    "seed {seed}: flipping bit {bit} of byte {idx} survived decode, \
                     block hash, AND content hash — silent acceptance"
                );
                hash_mismatch += 1;
            }
        }
    }
    // Both detection paths must actually fire across the sweep, otherwise
    // the property above is vacuous for one of them.
    assert!(rejected > 0, "no mutation was rejected by the decoder");
    assert!(
        hash_mismatch > 0,
        "no mutation reached the hash checks — the decoder is suspiciously strict"
    );
}

#[test]
fn truncation_always_fails_decode() {
    let (group, block) = realistic_block();
    let clean = block_to_bytes(&block);
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0x7A11 + seed);
        let cut = rng.gen_range(0..clean.len());
        assert!(
            decode_block(&group, &clean[..cut]).is_err(),
            "seed {seed}: truncated encoding at {cut}/{} still decoded",
            clean.len()
        );
    }
}
