//! Confidential amounts: a RingCT-style layer over the ledger.
//!
//! §2.1's Step-2 reference (RingCT 3.0) hides transaction amounts inside
//! Pedersen commitments and proves input/output balance homomorphically.
//! This module tracks a commitment per token and verifies, per spend:
//!
//! 1. the linkable ring signature (as everywhere else),
//! 2. the key image is fresh,
//! 3. `Π C_in = Π C_out · g^z` for the published excess blinding `z` —
//!    no value is created or destroyed, yet amounts never appear.
//!
//! The mixin-selection layer is oblivious to amounts; this exists so the
//! end-to-end pipeline carries the full confidential-transaction contract.

use std::collections::{HashMap, HashSet};

use dams_crypto::pedersen::{Commitment, Opening, PedersenParams};
use dams_crypto::range_proof::{prove_range, verify_range, RangeProof};
use dams_crypto::{verify as verify_ring_sig, KeyPair, PublicKey, RingSignature, Scalar};
use rand::Rng;

use crate::types::TokenId;

/// A confidential output: one-time key plus an amount commitment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfidentialOutput {
    pub owner: PublicKey,
    pub commitment: Commitment,
}

/// A confidential spend: the ring, the signature, the declared input
/// commitment (the ring member actually spent commits to this much — in
/// full RingCT the commitment is re-randomised; here the spender reveals
/// a *pseudo-output* commitment to the same amount under fresh blinding).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidentialSpend {
    pub ring: Vec<TokenId>,
    pub signature: RingSignature,
    /// The pseudo-output commitment standing in for the spent input.
    pub pseudo_commitment: Commitment,
    pub outputs: Vec<ConfidentialOutput>,
    /// Excess blinding `z` such that `pseudo = Π outputs · g^z`.
    pub excess: Scalar,
    /// Range proofs for each output commitment (amount < 2^AMOUNT_BITS) —
    /// without them, the modular balance equation would accept "negative"
    /// amounts and mint value.
    pub range_proofs: Vec<RangeProof>,
}

/// Bits every output amount must fit in (and be proven to fit in).
pub const AMOUNT_BITS: usize = 16;

/// Errors from confidential verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfidentialError {
    UnknownToken(TokenId),
    BadSignature,
    ImageReused,
    Unbalanced,
    EmptyRing,
    /// An output lacks a valid range proof.
    BadRangeProof,
}

impl std::fmt::Display for ConfidentialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfidentialError::UnknownToken(t) => write!(f, "unknown token {}", t.0),
            ConfidentialError::BadSignature => write!(f, "ring signature invalid"),
            ConfidentialError::ImageReused => write!(f, "key image already spent"),
            ConfidentialError::Unbalanced => write!(f, "commitments do not balance"),
            ConfidentialError::EmptyRing => write!(f, "empty ring"),
            ConfidentialError::BadRangeProof => write!(f, "output range proof invalid"),
        }
    }
}

impl std::error::Error for ConfidentialError {}

/// A minimal confidential ledger: token → (owner, commitment), consumed
/// key images, and the Pedersen parameters.
pub struct ConfidentialLedger {
    params: PedersenParams,
    tokens: Vec<ConfidentialOutput>,
    consumed: HashSet<u64>,
    /// Wallet-side book of openings (a real wallet stores only its own).
    openings: HashMap<u64, Opening>,
}

impl ConfidentialLedger {
    pub fn new(params: PedersenParams) -> Self {
        ConfidentialLedger {
            params,
            tokens: Vec::new(),
            consumed: HashSet::new(),
            openings: HashMap::new(),
        }
    }

    pub fn params(&self) -> &PedersenParams {
        &self.params
    }

    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }

    /// Mint a token with a hidden amount; returns its id.
    pub fn mint<R: Rng + ?Sized>(
        &mut self,
        owner: PublicKey,
        amount: u64,
        rng: &mut R,
    ) -> TokenId {
        let (commitment, opening) = self.params.commit_random(amount, rng);
        let id = TokenId(self.tokens.len() as u64);
        self.tokens.push(ConfidentialOutput { owner, commitment });
        self.openings.insert(id.0, opening);
        id
    }

    /// The public record of a token.
    pub fn token(&self, id: TokenId) -> Option<&ConfidentialOutput> {
        self.tokens.get(id.0 as usize)
    }

    /// The wallet-side opening of a token (None once pruned/foreign).
    pub fn opening(&self, id: TokenId) -> Option<Opening> {
        self.openings.get(&id.0).copied()
    }

    /// Build a confidential spend of `spent` (with key pair `signer`) over
    /// `ring`, paying `amounts` to `receivers`.
    ///
    /// Panics if the caller lacks the opening of the spent token or if the
    /// output amounts exceed the input (a wallet bug, not a runtime input).
    pub fn build_spend<R: Rng + ?Sized>(
        &self,
        ring: &[TokenId],
        spent: TokenId,
        signer: &KeyPair,
        payments: &[(PublicKey, u64)],
        rng: &mut R,
    ) -> ConfidentialSpend {
        let input_opening = self
            .opening(spent)
            .expect("wallet owns the opening of its own token");
        let total_out: u64 = payments.iter().map(|(_, a)| a).sum();
        assert!(
            total_out == input_opening.amount,
            "outputs ({total_out}) must spend the input exactly ({})",
            input_opening.amount
        );
        // Pseudo-output: same amount, fresh blinding.
        let (pseudo, pseudo_open) = self.params.commit_random(input_opening.amount, rng);
        let mut outputs = Vec::with_capacity(payments.len());
        let mut out_opens = Vec::with_capacity(payments.len());
        let mut range_proofs = Vec::with_capacity(payments.len());
        for &(owner, amount) in payments {
            assert!(
                (amount as u128) < (1u128 << AMOUNT_BITS),
                "amount {amount} exceeds the provable range"
            );
            let (c, o) = self.params.commit_random(amount, rng);
            outputs.push(ConfidentialOutput {
                owner,
                commitment: c,
            });
            range_proofs.push(prove_range(&self.params, c, o, AMOUNT_BITS, rng));
            out_opens.push(o);
        }
        let excess = self.params.excess(&[pseudo_open], &out_opens);

        // Sign over the ring keys and a payload binding the commitments.
        let ring_keys: Vec<PublicKey> = ring
            .iter()
            .map(|t| self.token(*t).expect("ring member minted").owner)
            .collect();
        let payload = spend_payload(&pseudo, &outputs);
        let signature = dams_crypto::sign(self.params.group(), &payload, &ring_keys, signer, rng)
            .expect("signer in ring");
        ConfidentialSpend {
            ring: ring.to_vec(),
            signature,
            pseudo_commitment: pseudo,
            outputs,
            excess,
            range_proofs,
        }
    }

    /// Verify and apply a confidential spend; mints its outputs.
    pub fn apply(&mut self, spend: &ConfidentialSpend) -> Result<Vec<TokenId>, ConfidentialError> {
        if spend.ring.is_empty() {
            return Err(ConfidentialError::EmptyRing);
        }
        let mut ring_keys = Vec::with_capacity(spend.ring.len());
        for t in &spend.ring {
            let rec = self
                .token(*t)
                .ok_or(ConfidentialError::UnknownToken(*t))?;
            ring_keys.push(rec.owner);
        }
        let image = spend.signature.key_image.value();
        if self.consumed.contains(&image) {
            return Err(ConfidentialError::ImageReused);
        }
        let payload = spend_payload(&spend.pseudo_commitment, &spend.outputs);
        if !verify_ring_sig(self.params.group(), &payload, &ring_keys, &spend.signature) {
            return Err(ConfidentialError::BadSignature);
        }
        // Range proofs: every output must be proven small, or the balance
        // equation below is meaningless.
        if spend.range_proofs.len() != spend.outputs.len() {
            return Err(ConfidentialError::BadRangeProof);
        }
        for (o, rp) in spend.outputs.iter().zip(&spend.range_proofs) {
            if rp.bits() != AMOUNT_BITS || !verify_range(&self.params, o.commitment, rp) {
                return Err(ConfidentialError::BadRangeProof);
            }
        }
        // Balance: pseudo input vs outputs.
        let out_commits: Vec<Commitment> =
            spend.outputs.iter().map(|o| o.commitment).collect();
        if !self
            .params
            .balanced(&[spend.pseudo_commitment], &out_commits, spend.excess)
        {
            return Err(ConfidentialError::Unbalanced);
        }
        self.consumed.insert(image);
        let mut minted = Vec::with_capacity(spend.outputs.len());
        for o in &spend.outputs {
            let id = TokenId(self.tokens.len() as u64);
            self.tokens.push(*o);
            minted.push(id);
        }
        Ok(minted)
    }
}

/// The byte string a confidential spend signs: pseudo commitment plus all
/// output owners and commitments, length-framed.
fn spend_payload(pseudo: &Commitment, outputs: &[ConfidentialOutput]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + outputs.len() * 16 + 8);
    buf.extend_from_slice(&pseudo.value().to_le_bytes());
    buf.extend_from_slice(&(outputs.len() as u64).to_le_bytes());
    for o in outputs {
        buf.extend_from_slice(&o.owner.value().to_le_bytes());
        buf.extend_from_slice(&o.commitment.value().to_le_bytes());
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Setup {
        ledger: ConfidentialLedger,
        keys: Vec<KeyPair>,
        rng: StdRng,
    }

    fn setup(amounts: &[u64]) -> Setup {
        let group = SchnorrGroup::default();
        let params = PedersenParams::new(group);
        let mut rng = StdRng::seed_from_u64(7);
        let mut ledger = ConfidentialLedger::new(params);
        let keys: Vec<KeyPair> = amounts
            .iter()
            .map(|&a| {
                let kp = KeyPair::generate(&group, &mut rng);
                ledger.mint(kp.public, a, &mut rng);
                kp
            })
            .collect();
        Setup { ledger, keys, rng }
    }

    #[test]
    fn confidential_roundtrip() {
        let mut s = setup(&[100, 50, 75]);
        let receiver = KeyPair::generate(s.ledger.params().group(), &mut s.rng);
        let ring = [TokenId(0), TokenId(1), TokenId(2)];
        let spend = s.ledger.build_spend(
            &ring,
            TokenId(1),
            &s.keys[1],
            &[(receiver.public, 30), (receiver.public, 20)],
            &mut s.rng,
        );
        let minted = s.ledger.apply(&spend).unwrap();
        assert_eq!(minted.len(), 2);
        assert_eq!(s.ledger.token_count(), 5);
    }

    #[test]
    fn double_spend_rejected() {
        let mut s = setup(&[10, 10]);
        let receiver = KeyPair::generate(s.ledger.params().group(), &mut s.rng);
        let ring = [TokenId(0), TokenId(1)];
        let spend = s.ledger.build_spend(
            &ring,
            TokenId(0),
            &s.keys[0],
            &[(receiver.public, 10)],
            &mut s.rng,
        );
        s.ledger.apply(&spend).unwrap();
        assert_eq!(
            s.ledger.apply(&spend).unwrap_err(),
            ConfidentialError::ImageReused
        );
    }

    #[test]
    fn inflation_rejected() {
        let mut s = setup(&[10, 10]);
        let receiver = KeyPair::generate(s.ledger.params().group(), &mut s.rng);
        let ring = [TokenId(0), TokenId(1)];
        let mut spend = s.ledger.build_spend(
            &ring,
            TokenId(0),
            &s.keys[0],
            &[(receiver.public, 10)],
            &mut s.rng,
        );
        // Swap the output commitment for one committing to more.
        let (bigger, _o) = s.ledger.params().commit_random(1000, &mut s.rng);
        spend.outputs[0].commitment = bigger;
        let err = s.ledger.apply(&spend).unwrap_err();
        // The signature binds the commitments, so tampering trips either
        // the signature or the balance check — both are sound outcomes.
        assert!(
            matches!(
                err,
                ConfidentialError::Unbalanced | ConfidentialError::BadSignature
            ),
            "{err:?}"
        );
    }

    #[test]
    fn overflow_inflation_blocked_by_range_proofs() {
        // The attack the range proof exists for: an output committing to
        // an amount outside the provable range (a modular "negative" is
        // the extreme case) must be refused. The attacker cannot produce
        // a 16-bit range proof for it, so they ship a mismatched or
        // missing proof — both are caught before the balance check can be
        // fooled.
        let mut s = setup(&[10, 10]);
        let receiver = KeyPair::generate(s.ledger.params().group(), &mut s.rng);
        let ring = [TokenId(0), TokenId(1)];
        let mut spend = s.ledger.build_spend(
            &ring,
            TokenId(0),
            &s.keys[0],
            &[(receiver.public, 10)],
            &mut s.rng,
        );
        // Swap in a commitment to a too-large amount, keeping the old proof.
        let (c_big, _o) = s.ledger.params().commit_random(1 << 20, &mut s.rng);
        spend.outputs[0].commitment = c_big;
        let err = s.ledger.apply(&spend).unwrap_err();
        assert!(
            matches!(
                err,
                ConfidentialError::BadRangeProof | ConfidentialError::BadSignature
            ),
            "{err:?}"
        );
        // Stripping the proofs entirely is caught too.
        let mut spend2 = s.ledger.build_spend(
            &ring,
            TokenId(1),
            &s.keys[1],
            &[(receiver.public, 10)],
            &mut s.rng,
        );
        spend2.range_proofs.clear();
        assert_eq!(
            s.ledger.apply(&spend2).unwrap_err(),
            ConfidentialError::BadRangeProof
        );
    }

    #[test]
    fn amounts_never_public() {
        // The ledger's public state holds only group elements; two mints
        // of the same amount are indistinguishable.
        let s = setup(&[42, 42]);
        let a = s.ledger.token(TokenId(0)).unwrap().commitment;
        let b = s.ledger.token(TokenId(1)).unwrap().commitment;
        assert_ne!(a, b, "same amount, different commitments");
    }

    #[test]
    fn tampered_excess_rejected() {
        let mut s = setup(&[10, 10]);
        let receiver = KeyPair::generate(s.ledger.params().group(), &mut s.rng);
        let ring = [TokenId(0), TokenId(1)];
        let mut spend = s.ledger.build_spend(
            &ring,
            TokenId(0),
            &s.keys[0],
            &[(receiver.public, 10)],
            &mut s.rng,
        );
        spend.excess = s
            .ledger
            .params()
            .group()
            .scalar_add(spend.excess, s.ledger.params().group().scalar(1));
        assert_eq!(
            s.ledger.apply(&spend).unwrap_err(),
            ConfidentialError::Unbalanced
        );
    }

    #[test]
    #[should_panic(expected = "outputs")]
    fn wallet_refuses_unbalanced_build() {
        let mut s = setup(&[10]);
        let receiver = KeyPair::generate(s.ledger.params().group(), &mut s.rng);
        let _ = s.ledger.build_spend(
            &[TokenId(0)],
            TokenId(0),
            &s.keys[0],
            &[(receiver.public, 11)],
            &mut s.rng,
        );
    }

    #[test]
    fn unknown_ring_member_rejected() {
        let mut s = setup(&[10, 10]);
        let receiver = KeyPair::generate(s.ledger.params().group(), &mut s.rng);
        let mut spend = s.ledger.build_spend(
            &[TokenId(0), TokenId(1)],
            TokenId(0),
            &s.keys[0],
            &[(receiver.public, 10)],
            &mut s.rng,
        );
        spend.ring[1] = TokenId(99);
        assert_eq!(
            s.ledger.apply(&spend).unwrap_err(),
            ConfidentialError::UnknownToken(TokenId(99))
        );
    }
}
