//! Ledger-level identifiers and primitive types for the UTXO substrate.

/// A globally unique token (UTXO) identifier, minted in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(pub u64);

/// A transaction identifier (position in global commit order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub u64);

/// A block height.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockHeight(pub u64);

/// A token amount (indivisible units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Amount(pub u64);

impl Amount {
    pub const ZERO: Amount = Amount(0);

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: Amount) -> Option<Amount> {
        self.0.checked_add(other.0).map(Amount)
    }
}

impl std::ops::Add for Amount {
    type Output = Amount;
    fn add(self, rhs: Amount) -> Amount {
        Amount(self.0 + rhs.0)
    }
}

impl std::iter::Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |a, b| a + b)
    }
}

/// A wall-clock-free logical timestamp (block heights double as time).
pub type Timestamp = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amount_arithmetic() {
        assert_eq!(Amount(2) + Amount(3), Amount(5));
        assert_eq!(
            [Amount(1), Amount(2), Amount(3)].into_iter().sum::<Amount>(),
            Amount(6)
        );
        assert_eq!(Amount(u64::MAX).checked_add(Amount(1)), None);
        assert_eq!(Amount(1).checked_add(Amount(2)), Some(Amount(3)));
    }

    #[test]
    fn ids_are_ordered() {
        assert!(TokenId(1) < TokenId(2));
        assert!(BlockHeight(0) < BlockHeight(10));
    }
}
