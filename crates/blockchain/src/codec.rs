//! Wire formats: deterministic byte encodings for the types nodes gossip
//! (ring signatures, transactions, blocks), with strict, length-checked
//! decoding. Hand-rolled little-endian framing — no serialization crate,
//! no reflection, every byte accounted for.

use dams_crypto::{KeyImage, PublicKey, RingSignature, SchnorrGroup};

use crate::block::{Block, BlockHeader};
use crate::transaction::{CommittedTransaction, RingInput, TokenOutput, Transaction};
use crate::types::{Amount, BlockHeight, TokenId, TxId};

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the announced length.
    Truncated,
    /// A length prefix exceeds sane bounds.
    LengthOutOfBounds(u64),
    /// Trailing bytes after a complete decode.
    TrailingBytes(usize),
    /// A group element failed subgroup validation.
    InvalidElement(u64),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::LengthOutOfBounds(n) => write!(f, "length {n} out of bounds"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            CodecError::InvalidElement(v) => write!(f, "invalid group element {v}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Maximum list length accepted by the decoder (anti-DoS bound).
const MAX_LEN: u64 = 1 << 20;

/// A little-endian byte reader with bounds checking.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let end = self.pos.checked_add(8).ok_or(CodecError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn len(&mut self) -> Result<usize, CodecError> {
        let n = self.u64()?;
        if n > MAX_LEN {
            return Err(CodecError::LengthOutOfBounds(n));
        }
        Ok(n as usize)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    fn digest(&mut self) -> Result<[u8; 32], CodecError> {
        Ok(self.bytes(32)?.try_into().expect("32 bytes"))
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.buf.len() - self.pos))
        }
    }
}

/// Validate-and-wrap a raw residue as a public key.
fn decode_public_key(group: &SchnorrGroup, raw: u64) -> Result<PublicKey, CodecError> {
    PublicKey::from_value(group, raw).ok_or(CodecError::InvalidElement(raw))
}

/// Validate-and-wrap a raw residue as a key image.
fn decode_key_image(group: &SchnorrGroup, raw: u64) -> Result<KeyImage, CodecError> {
    KeyImage::from_value(group, raw).ok_or(CodecError::InvalidElement(raw))
}

// --- ring signatures ---

/// Encode a ring signature.
pub fn encode_signature(sig: &RingSignature, out: &mut Vec<u8>) {
    out.extend_from_slice(&sig.c0.value().to_le_bytes());
    out.extend_from_slice(&(sig.responses.len() as u64).to_le_bytes());
    for r in &sig.responses {
        out.extend_from_slice(&r.value().to_le_bytes());
    }
    out.extend_from_slice(&sig.key_image.value().to_le_bytes());
}

fn decode_signature(group: &SchnorrGroup, r: &mut Reader) -> Result<RingSignature, CodecError> {
    let c0 = group.scalar(r.u64()?);
    let n = r.len()?;
    let mut responses = Vec::with_capacity(n);
    for _ in 0..n {
        responses.push(group.scalar(r.u64()?));
    }
    let key_image = decode_key_image(group, r.u64()?)?;
    Ok(RingSignature {
        c0,
        responses,
        key_image,
    })
}

/// Encode a ring signature on its own (gossip attestations and
/// equivocation proofs carry signatures outside any transaction).
pub fn signature_to_bytes(sig: &RingSignature) -> Vec<u8> {
    let mut out = Vec::new();
    encode_signature(sig, &mut out);
    out
}

/// Decode a standalone ring-signature encoding, rejecting trailing bytes.
pub fn signature_from_bytes(
    group: &SchnorrGroup,
    buf: &[u8],
) -> Result<RingSignature, CodecError> {
    let mut r = Reader::new(buf);
    let sig = decode_signature(group, &mut r)?;
    r.finish()?;
    Ok(sig)
}

// --- transactions ---

/// Encode a transaction.
pub fn encode_transaction(tx: &Transaction, out: &mut Vec<u8>) {
    out.extend_from_slice(&(tx.inputs.len() as u64).to_le_bytes());
    for input in &tx.inputs {
        out.extend_from_slice(&(input.ring.len() as u64).to_le_bytes());
        for t in &input.ring {
            out.extend_from_slice(&t.0.to_le_bytes());
        }
        encode_signature(&input.signature, out);
        out.extend_from_slice(&input.claimed_c.to_le_bytes());
        out.extend_from_slice(&(input.claimed_l as u64).to_le_bytes());
    }
    out.extend_from_slice(&(tx.outputs.len() as u64).to_le_bytes());
    for o in &tx.outputs {
        out.extend_from_slice(&o.owner.value().to_le_bytes());
        out.extend_from_slice(&o.amount.0.to_le_bytes());
    }
    out.extend_from_slice(&(tx.memo.len() as u64).to_le_bytes());
    out.extend_from_slice(&tx.memo);
}

fn decode_transaction(group: &SchnorrGroup, r: &mut Reader) -> Result<Transaction, CodecError> {
    let n_in = r.len()?;
    let mut inputs = Vec::with_capacity(n_in);
    for _ in 0..n_in {
        let ring_len = r.len()?;
        let mut ring = Vec::with_capacity(ring_len);
        for _ in 0..ring_len {
            ring.push(TokenId(r.u64()?));
        }
        let signature = decode_signature(group, r)?;
        let claimed_c = f64::from_le_bytes(r.bytes(8)?.try_into().expect("8 bytes"));
        let claimed_l = r.u64()? as usize;
        inputs.push(RingInput {
            ring,
            signature,
            claimed_c,
            claimed_l,
        });
    }
    let n_out = r.len()?;
    let mut outputs = Vec::with_capacity(n_out);
    for _ in 0..n_out {
        let owner = decode_public_key(group, r.u64()?)?;
        let amount = Amount(r.u64()?);
        outputs.push(TokenOutput { owner, amount });
    }
    let memo_len = r.len()?;
    let memo = r.bytes(memo_len)?.to_vec();
    Ok(Transaction {
        inputs,
        outputs,
        memo,
    })
}

// --- blocks ---

/// Encode a block (header + committed transactions).
pub fn encode_block(block: &Block, out: &mut Vec<u8>) {
    out.extend_from_slice(&block.header.height.0.to_le_bytes());
    out.extend_from_slice(&block.header.prev_hash);
    out.extend_from_slice(&block.header.content_hash);
    out.extend_from_slice(&block.header.timestamp.to_le_bytes());
    out.extend_from_slice(&(block.transactions.len() as u64).to_le_bytes());
    for ct in &block.transactions {
        out.extend_from_slice(&ct.id.0.to_le_bytes());
        encode_transaction(&ct.tx, out);
        out.extend_from_slice(&(ct.output_ids.len() as u64).to_le_bytes());
        for t in &ct.output_ids {
            out.extend_from_slice(&t.0.to_le_bytes());
        }
    }
}

/// Decode a block; the whole buffer must be consumed.
pub fn decode_block(group: &SchnorrGroup, buf: &[u8]) -> Result<Block, CodecError> {
    let mut r = Reader::new(buf);
    let height = BlockHeight(r.u64()?);
    let prev_hash = r.digest()?;
    let content_hash = r.digest()?;
    let timestamp = r.u64()?;
    let n_tx = r.len()?;
    let mut transactions = Vec::with_capacity(n_tx);
    for _ in 0..n_tx {
        let id = TxId(r.u64()?);
        let tx = decode_transaction(group, &mut r)?;
        let n_ids = r.len()?;
        let mut output_ids = Vec::with_capacity(n_ids);
        for _ in 0..n_ids {
            output_ids.push(TokenId(r.u64()?));
        }
        transactions.push(CommittedTransaction { id, tx, output_ids });
    }
    r.finish()?;
    Ok(Block {
        header: BlockHeader {
            height,
            prev_hash,
            content_hash,
            timestamp,
        },
        transactions,
    })
}

/// One-shot helpers.
pub fn block_to_bytes(block: &Block) -> Vec<u8> {
    let mut out = Vec::new();
    encode_block(block, &mut out);
    out
}

pub fn transaction_to_bytes(tx: &Transaction) -> Vec<u8> {
    let mut out = Vec::new();
    encode_transaction(tx, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{Chain, NoConfiguration};
    use dams_crypto::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A chain with one coinbase and one ring spend, returning its blocks.
    fn sample_blocks() -> (SchnorrGroup, Vec<Block>) {
        let group = SchnorrGroup::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut chain = Chain::new(group);
        let keys: Vec<KeyPair> = (0..3)
            .map(|_| KeyPair::generate(&group, &mut rng))
            .collect();
        chain.submit_coinbase(
            keys.iter()
                .map(|k| TokenOutput {
                    owner: k.public,
                    amount: Amount(2),
                })
                .collect(),
        );
        chain.seal_block().unwrap();
        let outputs = vec![TokenOutput {
            owner: keys[1].public,
            amount: Amount(2),
        }];
        let shell = Transaction {
            inputs: vec![],
            outputs: outputs.clone(),
            memo: b"memo".to_vec(),
        };
        let payload = shell.signing_payload();
        let ring_keys: Vec<_> = keys.iter().map(|k| k.public).collect();
        let sig = dams_crypto::sign(&group, &payload, &ring_keys, &keys[0], &mut rng).unwrap();
        chain
            .submit(
                Transaction {
                    inputs: vec![RingInput {
                        ring: vec![TokenId(0), TokenId(1), TokenId(2)],
                        signature: sig,
                        claimed_c: 0.6,
                        claimed_l: 2,
                    }],
                    outputs,
                    memo: b"memo".to_vec(),
                },
                &NoConfiguration,
            )
            .unwrap();
        chain.seal_block().unwrap();
        (group, chain.blocks().to_vec())
    }

    #[test]
    fn block_roundtrip() {
        let (group, blocks) = sample_blocks();
        for b in &blocks {
            let bytes = block_to_bytes(b);
            let decoded = decode_block(&group, &bytes).unwrap();
            assert_eq!(&decoded, b);
            assert_eq!(decoded.hash(), b.hash(), "hash stability");
        }
    }

    #[test]
    fn decoded_signature_still_verifies() {
        let (group, blocks) = sample_blocks();
        let spend_block = &blocks[2];
        let bytes = block_to_bytes(spend_block);
        let decoded = decode_block(&group, &bytes).unwrap();
        let ct = &decoded.transactions[0];
        let payload = ct.tx.signing_payload();
        // Rebuild the ring keys from the coinbase block.
        let coinbase = &blocks[1];
        let ring_keys: Vec<PublicKey> = coinbase.transactions[0]
            .tx
            .outputs
            .iter()
            .map(|o| o.owner)
            .collect();
        assert!(dams_crypto::verify(
            &group,
            &payload,
            &ring_keys,
            &ct.tx.inputs[0].signature
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let (group, blocks) = sample_blocks();
        let bytes = block_to_bytes(&blocks[2]);
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_block(&group, &bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (group, blocks) = sample_blocks();
        let mut bytes = block_to_bytes(&blocks[1]);
        bytes.push(0);
        assert_eq!(
            decode_block(&group, &bytes).unwrap_err(),
            CodecError::TrailingBytes(1)
        );
    }

    #[test]
    fn hostile_length_rejected() {
        let (group, blocks) = sample_blocks();
        let mut bytes = block_to_bytes(&blocks[1]);
        // The transaction-count length prefix sits after 8+32+32+8 bytes.
        let pos = 80;
        bytes[pos..pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_block(&group, &bytes).unwrap_err();
        assert!(
            matches!(err, CodecError::LengthOutOfBounds(_)),
            "{err:?}"
        );
    }

    #[test]
    fn invalid_public_key_rejected() {
        // Craft a transaction whose output owner is not in the subgroup.
        let group = SchnorrGroup::default();
        let mut rng = StdRng::seed_from_u64(2);
        let kp = KeyPair::generate(&group, &mut rng);
        let tx = Transaction {
            inputs: vec![],
            outputs: vec![TokenOutput {
                owner: kp.public,
                amount: Amount(1),
            }],
            memo: vec![],
        };
        let mut bytes = transaction_to_bytes(&tx);
        // Overwrite the owner residue (starts after the 8-byte input count
        // and 8-byte output count) with 0 — never a subgroup member.
        bytes[16..24].copy_from_slice(&0u64.to_le_bytes());
        let mut r = Reader::new(&bytes);
        let err = decode_transaction(&group, &mut r).unwrap_err();
        assert!(matches!(err, CodecError::InvalidElement(0)), "{err:?}");
    }
}
