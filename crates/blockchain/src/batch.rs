//! The TokenMagic batch list (§4, Figure 2).
//!
//! TokenMagic partitions the blockchain's blocks into disjoint, sequential
//! batches, each holding at least λ tokens (the last, still-open batch may
//! hold fewer). A token's mixin universe is exactly the tokens of its own
//! batch, which bounds the related-RS-set size by the batch token count and
//! makes related sets of different batches disjoint.

use crate::chain::Chain;
use crate::types::{BlockHeight, TokenId};

/// One closed or open batch: a contiguous block range and its tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Batch index in `B = [B_1, B_2, ...]` (0-based here).
    pub index: usize,
    /// First block of the batch (inclusive).
    pub first_block: BlockHeight,
    /// Last block of the batch (inclusive).
    pub last_block: BlockHeight,
    /// All token ids minted inside the batch's blocks, ascending.
    pub tokens: Vec<TokenId>,
    /// Whether the batch has reached λ tokens and is closed.
    pub closed: bool,
}

/// The batch list: a deterministic function of the block list and λ, so all
/// nodes reach consensus on it (§4).
#[derive(Debug, Clone)]
pub struct BatchList {
    lambda: usize,
    batches: Vec<Batch>,
}

impl BatchList {
    /// Build the batch list for a chain with the system parameter λ.
    ///
    /// Scans blocks in ascending order; a batch closes once its token count
    /// reaches λ *after* adding a block (blocks are never split).
    ///
    /// λ = 0 is clamped to 1 (the smallest meaningful batch size) so a
    /// misconfigured node degrades instead of panicking — the clamp is
    /// deterministic, so all nodes applying it still agree on the list.
    pub fn build(chain: &Chain, lambda: usize) -> Self {
        let lambda = lambda.max(1);
        let mut batches: Vec<Batch> = Vec::new();
        let mut current_tokens: Vec<TokenId> = Vec::new();
        let mut current_first: Option<BlockHeight> = None;

        for block in chain.blocks() {
            let height = block.header.height;
            let first = *current_first.get_or_insert(height);
            for tx in &block.transactions {
                current_tokens.extend(tx.output_ids.iter().copied());
            }
            if current_tokens.len() >= lambda {
                batches.push(Batch {
                    index: batches.len(),
                    first_block: first,
                    last_block: height,
                    tokens: std::mem::take(&mut current_tokens),
                    closed: true,
                });
                current_first = None;
            }
        }
        // Trailing open batch (possibly empty of tokens). On an empty block
        // list (corrupted state — construction always adds genesis) the
        // loop never ran and `current_first` is `None`, so no batch forms.
        if let Some(first) = current_first {
            let last = chain
                .blocks()
                .last()
                .map_or(first, |b| b.header.height);
            batches.push(Batch {
                index: batches.len(),
                first_block: first,
                last_block: last,
                tokens: current_tokens,
                closed: false,
            });
        }
        let metrics = crate::obs::ChainMetrics::global();
        metrics.lists_built.inc();
        for b in &batches {
            metrics.batch_size.record(b.tokens.len() as u64);
        }
        BatchList { lambda, batches }
    }

    pub fn lambda(&self) -> usize {
        self.lambda
    }

    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }

    /// The batch containing a given token (`None` for unknown tokens).
    pub fn batch_of(&self, token: TokenId) -> Option<&Batch> {
        self.batches
            .iter()
            .find(|b| b.tokens.binary_search(&token).is_ok())
    }

    /// The mixin universe of a token: all tokens in its batch.
    pub fn mixin_universe(&self, token: TokenId) -> Option<&[TokenId]> {
        self.batch_of(token).map(|b| b.tokens.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Chain;
    use crate::transaction::TokenOutput;
    use crate::types::Amount;
    use dams_crypto::{KeyPair, SchnorrGroup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Build a chain with `blocks` blocks of `per_block` tokens each.
    fn chain_with(blocks: usize, per_block: usize) -> Chain {
        let group = SchnorrGroup::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mut chain = Chain::new(group);
        for _ in 0..blocks {
            let outs: Vec<TokenOutput> = (0..per_block)
                .map(|_| TokenOutput {
                    owner: KeyPair::generate(chain.group(), &mut rng).public,
                    amount: Amount(1),
                })
                .collect();
            chain.submit_coinbase(outs);
            chain.seal_block().unwrap();
        }
        chain
    }

    #[test]
    fn batches_partition_all_tokens() {
        let chain = chain_with(10, 3);
        let bl = BatchList::build(&chain, 7);
        let mut all: Vec<TokenId> = bl
            .batches()
            .iter()
            .flat_map(|b| b.tokens.iter().copied())
            .collect();
        all.sort_unstable();
        let expect: Vec<TokenId> = (0..30).map(TokenId).collect();
        assert_eq!(all, expect, "every token in exactly one batch");
    }

    #[test]
    fn closed_batches_meet_lambda() {
        let chain = chain_with(10, 3);
        let bl = BatchList::build(&chain, 7);
        for b in bl.batches() {
            if b.closed {
                assert!(b.tokens.len() >= 7, "closed batch below λ: {b:?}");
                // and closing is tight: removing the last block would dip below λ
            }
        }
    }

    #[test]
    fn batches_are_sequential_and_disjoint_in_blocks() {
        let chain = chain_with(10, 3);
        let bl = BatchList::build(&chain, 7);
        for w in bl.batches().windows(2) {
            assert!(w[0].last_block < w[1].first_block);
        }
    }

    #[test]
    fn batch_of_and_universe() {
        let chain = chain_with(6, 2);
        let bl = BatchList::build(&chain, 4);
        let b = bl.batch_of(TokenId(0)).unwrap();
        assert!(b.tokens.contains(&TokenId(0)));
        let uni = bl.mixin_universe(TokenId(0)).unwrap();
        assert_eq!(uni, b.tokens.as_slice());
        assert!(bl.batch_of(TokenId(999)).is_none());
    }

    #[test]
    fn lambda_one_gives_per_block_batches() {
        let chain = chain_with(4, 2);
        let bl = BatchList::build(&chain, 1);
        // Genesis has no tokens so it joins the first token-bearing block.
        let closed: Vec<&Batch> = bl.batches().iter().filter(|b| b.closed).collect();
        assert_eq!(closed.len(), 4);
        for b in closed {
            assert_eq!(b.tokens.len(), 2);
        }
    }

    #[test]
    fn deterministic_consensus() {
        let chain = chain_with(8, 3);
        let a = BatchList::build(&chain, 5);
        let b = BatchList::build(&chain, 5);
        assert_eq!(a.batches(), b.batches(), "full and light nodes agree");
    }

    #[test]
    fn empty_chain_has_single_open_batch() {
        let chain = Chain::new(SchnorrGroup::default());
        let bl = BatchList::build(&chain, 5);
        assert_eq!(bl.batches().len(), 1);
        assert!(!bl.batches()[0].closed);
        assert!(bl.batches()[0].tokens.is_empty());
    }

    #[test]
    fn zero_lambda_clamped_to_one() {
        let chain = chain_with(3, 2);
        let zero = BatchList::build(&chain, 0);
        let one = BatchList::build(&chain, 1);
        assert_eq!(zero.batches(), one.batches());
        assert_eq!(zero.lambda(), 1);
    }
}
