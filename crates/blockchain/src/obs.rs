//! Ledger-layer metrics (`chain.*`).
//!
//! Counters and histograms for the hot paths of [`crate::chain::Chain`]
//! and [`crate::batch::BatchList`]: blocks appended (sealed locally or
//! adopted from peers), ring-signature transactions admitted to the
//! mempool, batch-list shape, and block-verification latency.
//!
//! All instrumented call sites record into [`ChainMetrics::global`], which
//! lives in [`dams_obs::global`]. Tests that need isolation can build a
//! [`ChainMetrics::in_registry`] over a private [`Registry`], but the
//! `Chain` methods themselves always use the global sink — the chain is a
//! consensus object and its metrics are process-wide by design.

use std::sync::OnceLock;

use dams_obs::{Counter, Histogram, Registry, Unit};

/// Handles to every `chain.*` metric.
#[derive(Clone)]
pub struct ChainMetrics {
    /// `chain.blocks.sealed_total` — blocks committed by [`Chain::seal_block`](crate::Chain::seal_block).
    pub blocks_sealed: Counter,
    /// `chain.blocks.adopted_total` — peer blocks applied by [`Chain::adopt_block`](crate::Chain::adopt_block).
    pub blocks_adopted: Counter,
    /// `chain.rs.appended_total` — ring-signature transactions admitted by
    /// [`Chain::submit`](crate::Chain::submit) (coinbase minting is not counted: it carries no RS).
    pub rs_appended: Counter,
    /// `chain.rs.rejected_total` — transactions refused by verification.
    pub rs_rejected: Counter,
    /// `chain.batch.size` — token count of each batch built by
    /// [`BatchList::build`](crate::BatchList::build).
    pub batch_size: Histogram,
    /// `chain.batch.lists_built_total` — batch-list constructions.
    pub lists_built: Counter,
    /// `chain.verify.block_ns` — wall time of [`Chain::verify_block`](crate::Chain::verify_block).
    pub verify_block: Histogram,
    /// `chain.verify.blocks_rejected_total` — blocks failing verification.
    pub blocks_rejected: Counter,
}

impl ChainMetrics {
    /// Build (or re-attach to) the `chain.*` metrics inside `registry`.
    pub fn in_registry(registry: &Registry) -> Self {
        ChainMetrics {
            blocks_sealed: registry.counter("chain.blocks.sealed_total"),
            blocks_adopted: registry.counter("chain.blocks.adopted_total"),
            rs_appended: registry.counter("chain.rs.appended_total"),
            rs_rejected: registry.counter("chain.rs.rejected_total"),
            batch_size: registry.histogram("chain.batch.size", Unit::Count),
            lists_built: registry.counter("chain.batch.lists_built_total"),
            verify_block: registry.histogram("chain.verify.block_ns", Unit::Nanos),
            blocks_rejected: registry.counter("chain.verify.blocks_rejected_total"),
        }
    }

    /// The process-wide instance, backed by [`dams_obs::global`].
    pub fn global() -> &'static ChainMetrics {
        static GLOBAL: OnceLock<ChainMetrics> = OnceLock::new();
        GLOBAL.get_or_init(|| ChainMetrics::in_registry(dams_obs::global()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_registry_reattaches_same_counters() {
        let r = Registry::new();
        let a = ChainMetrics::in_registry(&r);
        let b = ChainMetrics::in_registry(&r);
        a.blocks_sealed.inc();
        assert_eq!(b.blocks_sealed.get(), 1);
    }

    #[test]
    fn global_is_stable() {
        let a = ChainMetrics::global();
        let b = ChainMetrics::global();
        a.lists_built.inc();
        assert!(b.lists_built.get() >= 1);
    }
}
