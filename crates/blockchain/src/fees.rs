//! Transaction fees: "the transaction fee is proportional to the number of
//! mixins" (§1) — the economic force that makes minimum-size rings the
//! DA-MS objective. This module provides the fee schedule, per-transaction
//! fee computation, and a fee-rate-ordered mempool view miners use to fill
//! blocks.

use crate::transaction::Transaction;
use crate::types::Amount;

/// A linear fee schedule: `base + per_ring_member · Σ |ring_i|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeeSchedule {
    /// Flat per-transaction component.
    pub base: Amount,
    /// Cost per ring member across all inputs (the §1 proportionality).
    pub per_ring_member: Amount,
}

impl FeeSchedule {
    pub const fn new(base: Amount, per_ring_member: Amount) -> Self {
        FeeSchedule {
            base,
            per_ring_member,
        }
    }

    /// Total ring members across a transaction's inputs.
    pub fn ring_members(tx: &Transaction) -> usize {
        tx.inputs.iter().map(|i| i.ring.len()).sum()
    }

    /// The fee a transaction owes under this schedule.
    pub fn fee(&self, tx: &Transaction) -> Amount {
        let members = Self::ring_members(tx) as u64;
        Amount(self.base.0 + self.per_ring_member.0 * members)
    }

    /// The marginal fee of one extra mixin — what a user saves per token
    /// the DA-MS algorithms shave off the ring.
    pub fn marginal_mixin_cost(&self) -> Amount {
        self.per_ring_member
    }
}

/// A fee-ordered mempool view: miners take transactions in descending
/// fee-per-ring-member order until the block's member budget is filled
/// (ring members dominate verification cost, which is the §2.1 Step-3
/// throughput concern).
pub fn select_for_block<'a>(
    schedule: &FeeSchedule,
    pending: &'a [Transaction],
    member_budget: usize,
) -> Vec<&'a Transaction> {
    let mut order: Vec<(&Transaction, u64, usize)> = pending
        .iter()
        .map(|tx| {
            let members = FeeSchedule::ring_members(tx).max(1);
            (tx, schedule.fee(tx).0 / members as u64, members)
        })
        .collect();
    // Highest fee rate first; fee as tiebreak for determinism.
    order.sort_by(|a, b| b.1.cmp(&a.1).then(b.2.cmp(&a.2)));
    let mut out = Vec::new();
    let mut used = 0usize;
    for (tx, _rate, members) in order {
        if used + members <= member_budget {
            used += members;
            out.push(tx);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::RingInput;
    use dams_crypto::{KeyPair, SchnorrGroup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A transaction with one input of the given ring size (signature is
    /// structurally valid but unchecked here — fees look only at shape).
    fn tx_with_ring(members: usize) -> Transaction {
        let grp = SchnorrGroup::default();
        let mut rng = StdRng::seed_from_u64(members as u64);
        let kp = KeyPair::generate(&grp, &mut rng);
        let sig = dams_crypto::sign(&grp, b"m", &[kp.public], &kp, &mut rng).unwrap();
        Transaction {
            inputs: vec![RingInput {
                ring: (0..members as u64).map(crate::types::TokenId).collect(),
                signature: sig,
                claimed_c: 0.6,
                claimed_l: 2,
            }],
            outputs: vec![],
            memo: vec![],
        }
    }

    #[test]
    fn fee_is_linear_in_ring_size() {
        let s = FeeSchedule::new(Amount(10), Amount(3));
        assert_eq!(s.fee(&tx_with_ring(2)), Amount(16));
        assert_eq!(s.fee(&tx_with_ring(11)), Amount(43));
        assert_eq!(s.marginal_mixin_cost(), Amount(3));
    }

    #[test]
    fn smaller_rings_pay_less() {
        let s = FeeSchedule::new(Amount(5), Amount(2));
        let small = s.fee(&tx_with_ring(5));
        let large = s.fee(&tx_with_ring(50));
        assert!(small < large);
        assert_eq!(large.0 - small.0, 2 * 45);
    }

    #[test]
    fn block_selection_respects_budget() {
        let s = FeeSchedule::new(Amount(100), Amount(1));
        let pending = vec![tx_with_ring(8), tx_with_ring(4), tx_with_ring(6)];
        let chosen = select_for_block(&s, &pending, 10);
        let used: usize = chosen.iter().map(|t| FeeSchedule::ring_members(t)).sum();
        assert!(used <= 10);
        assert!(!chosen.is_empty());
    }

    #[test]
    fn block_selection_prefers_high_fee_rate() {
        // Same base, so smaller rings carry a higher fee *rate* —
        // DA-MS-minimised transactions also confirm faster.
        let s = FeeSchedule::new(Amount(100), Amount(1));
        let pending = vec![tx_with_ring(20), tx_with_ring(2)];
        let chosen = select_for_block(&s, &pending, 22);
        assert_eq!(FeeSchedule::ring_members(chosen[0]), 2, "small ring first");
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let s = FeeSchedule::new(Amount(1), Amount(1));
        let pending = vec![tx_with_ring(2)];
        assert!(select_for_block(&s, &pending, 0).is_empty());
    }
}
