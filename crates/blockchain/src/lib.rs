//! # dams-blockchain
//!
//! UTXO blockchain substrate for the DA-MS reproduction: tokens minted by
//! historical transactions, blocks hash-chained into a ledger, ring-input
//! transactions verified per Step 3 of the ring-signature scheme (§2.1),
//! a consumed-key-image registry for double-spend prevention, and the
//! TokenMagic batch list (§4) that bounds every token's mixin universe.

pub mod batch;
pub mod confidential;
pub mod obs;
pub mod fees;
pub mod block;
pub mod chain;
pub mod codec;
pub mod transaction;
pub mod types;

pub use batch::{Batch, BatchList};
pub use confidential::{ConfidentialError, ConfidentialLedger, ConfidentialOutput, ConfidentialSpend};
pub use block::{Block, BlockHeader};
pub use chain::{Chain, ChainError, NoConfiguration, RingConfiguration, TokenRecord, VerifyError};
pub use codec::{
    block_to_bytes, decode_block, signature_from_bytes, signature_to_bytes,
    transaction_to_bytes, CodecError,
};
pub use fees::{select_for_block, FeeSchedule};
pub use obs::ChainMetrics;
pub use transaction::{CommittedTransaction, RingInput, TokenOutput, Transaction};
pub use types::{Amount, BlockHeight, TokenId, Timestamp, TxId};
