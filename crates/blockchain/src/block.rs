//! Blocks: hash-chained containers of committed transactions.

use dams_crypto::sha256::{sha256_parts, Digest};

use crate::transaction::CommittedTransaction;
use crate::types::{BlockHeight, Timestamp};

/// A block header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    pub height: BlockHeight,
    pub prev_hash: Digest,
    /// Digest over the block's transaction ids and key images.
    pub content_hash: Digest,
    pub timestamp: Timestamp,
}

/// A block: header plus the transactions it commits.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub header: BlockHeader,
    pub transactions: Vec<CommittedTransaction>,
}

impl Block {
    /// Compute the content hash of a transaction list: each transaction's
    /// id, its full wire encoding (inputs, signatures, outputs, memo), and
    /// its minted token ids — so no committed byte is malleable.
    pub fn content_hash(transactions: &[CommittedTransaction]) -> Digest {
        let mut parts_owned: Vec<Vec<u8>> = Vec::new();
        for ct in transactions {
            parts_owned.push(ct.id.0.to_le_bytes().to_vec());
            let mut tx_bytes = Vec::new();
            crate::codec::encode_transaction(&ct.tx, &mut tx_bytes);
            parts_owned.push(tx_bytes);
            let mut ids = Vec::with_capacity(ct.output_ids.len() * 8);
            for out in &ct.output_ids {
                ids.extend_from_slice(&out.0.to_le_bytes());
            }
            parts_owned.push(ids);
        }
        let parts: Vec<&[u8]> = parts_owned.iter().map(|v| v.as_slice()).collect();
        sha256_parts(&parts)
    }

    /// The block's own hash (header fields chained together).
    pub fn hash(&self) -> Digest {
        sha256_parts(&[
            &self.header.height.0.to_le_bytes(),
            &self.header.prev_hash,
            &self.header.content_hash,
            &self.header.timestamp.to_le_bytes(),
        ])
    }

    /// Number of output tokens minted in this block (`t(b)` of §4's batch
    /// construction).
    pub fn token_count(&self) -> usize {
        self.transactions.iter().map(|t| t.output_ids.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;
    use crate::types::TxId;

    fn empty_block(height: u64, prev: Digest) -> Block {
        let transactions = vec![];
        Block {
            header: BlockHeader {
                height: BlockHeight(height),
                prev_hash: prev,
                content_hash: Block::content_hash(&transactions),
                timestamp: height,
            },
            transactions,
        }
    }

    #[test]
    fn hash_changes_with_height() {
        let a = empty_block(0, [0; 32]);
        let b = empty_block(1, [0; 32]);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn hash_chains_previous() {
        let a = empty_block(0, [0; 32]);
        let b = empty_block(1, a.hash());
        let b2 = empty_block(1, [7; 32]);
        assert_ne!(b.hash(), b2.hash());
    }

    #[test]
    fn token_count_sums_outputs() {
        let mut blk = empty_block(0, [0; 32]);
        blk.transactions.push(CommittedTransaction {
            id: TxId(0),
            tx: Transaction {
                inputs: vec![],
                outputs: vec![],
                memo: vec![],
            },
            output_ids: vec![crate::types::TokenId(0), crate::types::TokenId(1)],
        });
        assert_eq!(blk.token_count(), 2);
    }
}
