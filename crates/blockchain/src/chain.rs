//! The ledger: an append-only hash-chained block list with a token registry
//! and a consumed-key-image set (double-spend prevention), implementing the
//! verification of Step 3 of the ring-signature scheme (§2.1).

use std::collections::{HashMap, HashSet};

use dams_crypto::{verify as verify_ring_sig, KeyImage, PublicKey, SchnorrGroup};

use crate::block::{Block, BlockHeader};
use crate::transaction::{CommittedTransaction, Transaction};
use crate::types::{Amount, BlockHeight, TokenId, TxId};

/// Per-token ledger metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenRecord {
    pub id: TokenId,
    /// The historical transaction (HT) that minted this token.
    pub origin: TxId,
    /// The block that committed the minting transaction.
    pub block: BlockHeight,
    pub owner: PublicKey,
    pub amount: Amount,
}

/// Why a transaction was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// An input ring references an unknown token.
    UnknownToken(TokenId),
    /// The ring signature itself failed verification.
    BadSignature { input_index: usize },
    /// The key image was already used — the token is consumed.
    ImageReused(u64),
    /// Two inputs of the same transaction share a key image.
    DuplicateImageInTx(u64),
    /// The ring token list is unsorted or contains duplicates.
    MalformedRing { input_index: usize },
    /// A system-level configuration check rejected the ring (e.g. the
    /// TokenMagic practical configurations, or Monero-style recency rules).
    ConfigurationViolation { input_index: usize, reason: String },
    /// A transaction must consume at least one input.
    NoInputs,
    /// A peer block failed structural validation (linkage, height, or
    /// content hash).
    BadBlock,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::UnknownToken(t) => write!(f, "ring references unknown token {}", t.0),
            VerifyError::BadSignature { input_index } => {
                write!(f, "ring signature of input {input_index} is invalid")
            }
            VerifyError::ImageReused(i) => write!(f, "key image {i} already consumed"),
            VerifyError::DuplicateImageInTx(i) => {
                write!(f, "key image {i} appears twice in one transaction")
            }
            VerifyError::MalformedRing { input_index } => {
                write!(f, "ring of input {input_index} is unsorted or has duplicates")
            }
            VerifyError::ConfigurationViolation { input_index, reason } => {
                write!(f, "input {input_index} violates configuration: {reason}")
            }
            VerifyError::NoInputs => write!(f, "transaction has no inputs"),
            VerifyError::BadBlock => write!(f, "block failed structural validation"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Why a ledger-state operation (sealing, block adoption) failed — the
/// chain half of the typed error taxonomy (the node half is
/// `dams-node`'s `NodeError`). These replace the panics that used to sit
/// on the adoption path, so a Byzantine peer can never crash a replica.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainError {
    /// The block list lost its genesis — local state corruption, never a
    /// peer's fault.
    MissingGenesis,
    /// A peer block's `prev_hash` does not match the local tip.
    NotExtendingTip,
    /// A peer block's recorded content hash does not match its
    /// transactions.
    ContentHashMismatch,
    /// A peer block's recorded token ids do not continue the local
    /// numbering.
    TokenIdDiscontinuity { expected: u64, got: u64 },
    /// Transaction-level verification failed.
    Verify(VerifyError),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::MissingGenesis => write!(f, "chain state corrupted: no genesis block"),
            ChainError::NotExtendingTip => write!(f, "block does not extend the current tip"),
            ChainError::ContentHashMismatch => {
                write!(f, "block content hash does not cover its transactions")
            }
            ChainError::TokenIdDiscontinuity { expected, got } => {
                write!(f, "block token ids jump (expected {expected}, got {got})")
            }
            ChainError::Verify(e) => write!(f, "transaction verification failed: {e}"),
        }
    }
}

impl std::error::Error for ChainError {}

impl From<VerifyError> for ChainError {
    fn from(e: VerifyError) -> Self {
        ChainError::Verify(e)
    }
}

/// A pluggable ring-configuration check run by verifiers at Step 3
/// ("verifiers can check if r satisfies some extra configurations").
pub trait RingConfiguration {
    /// Return `Err(reason)` to reject the ring.
    fn check(&self, chain: &Chain, ring: &[TokenId]) -> Result<(), String>;
}

/// The trivial configuration that accepts everything.
pub struct NoConfiguration;

impl RingConfiguration for NoConfiguration {
    fn check(&self, _chain: &Chain, _ring: &[TokenId]) -> Result<(), String> {
        Ok(())
    }
}

/// The ledger. `Clone` is cheap enough for simulation use: adversarial
/// actors fork throwaway copies to craft candidate blocks without
/// touching the state they shadow.
#[derive(Clone)]
pub struct Chain {
    group: SchnorrGroup,
    blocks: Vec<Block>,
    tokens: Vec<TokenRecord>,
    consumed_images: HashSet<u64>,
    /// Pending transactions for the next block.
    mempool: Vec<Transaction>,
    next_tx: u64,
    /// owner public key -> token ids (convenience index for wallets).
    by_owner: HashMap<u64, Vec<TokenId>>,
}

impl Chain {
    /// A fresh chain with a genesis block and the given group parameters.
    pub fn new(group: SchnorrGroup) -> Self {
        let genesis = Block {
            header: BlockHeader {
                height: BlockHeight(0),
                prev_hash: [0; 32],
                content_hash: Block::content_hash(&[]),
                timestamp: 0,
            },
            transactions: vec![],
        };
        Chain {
            group,
            blocks: vec![genesis],
            tokens: Vec::new(),
            consumed_images: HashSet::new(),
            mempool: Vec::new(),
            next_tx: 0,
            by_owner: HashMap::new(),
        }
    }

    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// Number of blocks (including genesis).
    pub fn height(&self) -> usize {
        self.blocks.len()
    }

    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The current tip block. `Err(MissingGenesis)` only when local state
    /// is corrupted (construction guarantees a genesis block).
    pub fn tip(&self) -> Result<&Block, ChainError> {
        self.blocks.last().ok_or(ChainError::MissingGenesis)
    }

    /// Number of tokens ever minted.
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }

    /// Token metadata. `None` when the id was never minted.
    pub fn token(&self, id: TokenId) -> Option<&TokenRecord> {
        self.tokens.get(id.0 as usize)
    }

    /// All tokens owned by a public key (consumed or not — ownership is
    /// hidden by the ring scheme, so the chain cannot tell).
    pub fn tokens_of(&self, owner: PublicKey) -> &[TokenId] {
        self.by_owner
            .get(&owner.value())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Whether a key image has been consumed.
    pub fn image_consumed(&self, image: KeyImage) -> bool {
        self.consumed_images.contains(&image.value())
    }

    /// The consumed-key-image set in sorted order (stable across runs, for
    /// checkpoint attestation and recovery cross-checks).
    pub fn consumed_images_sorted(&self) -> Vec<u64> {
        let mut images: Vec<u64> = self.consumed_images.iter().copied().collect();
        images.sort_unstable();
        images
    }

    /// Step 3 verification of a transaction against the current state.
    pub fn verify_transaction(
        &self,
        tx: &Transaction,
        config: &dyn RingConfiguration,
    ) -> Result<(), VerifyError> {
        if tx.inputs.is_empty() {
            return Err(VerifyError::NoInputs);
        }
        let payload = tx.signing_payload();
        let mut images_in_tx: HashSet<u64> = HashSet::new();
        for (i, input) in tx.inputs.iter().enumerate() {
            // Ring well-formedness: sorted, unique, known tokens.
            if input.ring.windows(2).any(|w| w[0] >= w[1]) || input.ring.is_empty() {
                return Err(VerifyError::MalformedRing { input_index: i });
            }
            let mut ring_keys = Vec::with_capacity(input.ring.len());
            for &t in &input.ring {
                let rec = self.token(t).ok_or(VerifyError::UnknownToken(t))?;
                ring_keys.push(rec.owner);
            }
            // Double-spend: image unused globally and within this tx.
            let image = input.key_image().value();
            if self.consumed_images.contains(&image) {
                return Err(VerifyError::ImageReused(image));
            }
            if !images_in_tx.insert(image) {
                return Err(VerifyError::DuplicateImageInTx(image));
            }
            // Cryptographic verification.
            if !verify_ring_sig(&self.group, &payload, &ring_keys, &input.signature) {
                return Err(VerifyError::BadSignature { input_index: i });
            }
            // System configuration checks.
            if let Err(reason) = config.check(self, &input.ring) {
                return Err(VerifyError::ConfigurationViolation {
                    input_index: i,
                    reason,
                });
            }
        }
        Ok(())
    }

    /// Verify and enqueue a transaction for the next block.
    pub fn submit(
        &mut self,
        tx: Transaction,
        config: &dyn RingConfiguration,
    ) -> Result<(), VerifyError> {
        let metrics = crate::obs::ChainMetrics::global();
        if let Err(e) = self.verify_transaction(&tx, config) {
            metrics.rs_rejected.inc();
            return Err(e);
        }
        // Reserve the images immediately so the mempool itself cannot hold
        // two spends of one token.
        for input in &tx.inputs {
            let img = input.key_image().value();
            if !self.consumed_images.insert(img) {
                metrics.rs_rejected.inc();
                return Err(VerifyError::ImageReused(img));
            }
        }
        metrics.rs_appended.inc();
        self.mempool.push(tx);
        Ok(())
    }

    /// Mint tokens out of thin air via an inputless coinbase transaction
    /// (bootstraps the economy; exempt from the no-inputs rule).
    pub fn submit_coinbase(&mut self, outputs: Vec<crate::transaction::TokenOutput>) {
        self.mempool.push(Transaction {
            inputs: vec![],
            outputs,
            memo: b"coinbase".to_vec(),
        });
    }

    /// Commit the mempool into a new block; returns the block height.
    pub fn seal_block(&mut self) -> Result<BlockHeight, ChainError> {
        let prev_hash = self.tip()?.hash();
        let height = BlockHeight(self.blocks.len() as u64);
        let mut committed: Vec<CommittedTransaction> = Vec::with_capacity(self.mempool.len());
        for tx in self.mempool.drain(..) {
            let id = TxId(self.next_tx);
            self.next_tx += 1;
            let mut output_ids = Vec::with_capacity(tx.outputs.len());
            for out in &tx.outputs {
                let tid = TokenId(self.tokens.len() as u64);
                self.tokens.push(TokenRecord {
                    id: tid,
                    origin: id,
                    block: height,
                    owner: out.owner,
                    amount: out.amount,
                });
                self.by_owner.entry(out.owner.value()).or_default().push(tid);
                output_ids.push(tid);
            }
            committed.push(CommittedTransaction { id, tx, output_ids });
        }
        let content_hash = Block::content_hash(&committed);
        self.blocks.push(Block {
            header: BlockHeader {
                height,
                prev_hash,
                content_hash,
                timestamp: height.0,
            },
            transactions: committed,
        });
        crate::obs::ChainMetrics::global().blocks_sealed.inc();
        Ok(height)
    }

    /// Fully verify a peer block against the current state before
    /// adoption: hash linkage, height continuity, content hash, token-id
    /// continuity, and — for every non-coinbase transaction — ring
    /// signatures, fresh key images, and the ring configuration. The
    /// block's transactions are checked in order, so intra-block double
    /// spends are caught too.
    pub fn verify_block(
        &self,
        block: &Block,
        config: &dyn RingConfiguration,
    ) -> Result<(), ChainError> {
        let metrics = crate::obs::ChainMetrics::global();
        let _timer = metrics.verify_block.start_span();
        let result = self.verify_block_inner(block, config);
        if result.is_err() {
            metrics.blocks_rejected.inc();
        }
        result
    }

    fn verify_block_inner(
        &self,
        block: &Block,
        config: &dyn RingConfiguration,
    ) -> Result<(), ChainError> {
        let tip = self.tip()?;
        if block.header.prev_hash != tip.hash() || block.header.height.0 as usize != self.height()
        {
            return Err(ChainError::NotExtendingTip);
        }
        if Block::content_hash(&block.transactions) != block.header.content_hash {
            return Err(ChainError::ContentHashMismatch);
        }
        let mut images_in_block: HashSet<u64> = HashSet::new();
        let mut next_token = self.tokens.len() as u64;
        for ct in &block.transactions {
            if !ct.tx.inputs.is_empty() {
                self.verify_transaction(&ct.tx, config)?;
            }
            for input in &ct.tx.inputs {
                let img = input.key_image().value();
                if !images_in_block.insert(img) {
                    return Err(VerifyError::DuplicateImageInTx(img).into());
                }
            }
            for &tid in &ct.output_ids {
                if tid.0 != next_token {
                    return Err(ChainError::TokenIdDiscontinuity {
                        expected: next_token,
                        got: tid.0,
                    });
                }
                next_token += 1;
            }
        }
        Ok(())
    }

    /// Adopt a block received from a peer: the block must extend the
    /// current tip (`prev_hash` matches) and carry a consistent content
    /// hash. Replays its transactions into local state — minting outputs
    /// under the block's recorded ids and registering consumed key images.
    ///
    /// Does **not** verify ring signatures — call [`Self::verify_block`]
    /// first (the network layer does). Returns a [`ChainError`] (leaving
    /// local state untouched) when the block does not extend the tip, its
    /// content hash is inconsistent, or its recorded token ids collide
    /// with local state.
    pub fn adopt_block(&mut self, block: Block) -> Result<(), ChainError> {
        let tip = self.tip()?.hash();
        if block.header.prev_hash != tip {
            return Err(ChainError::NotExtendingTip);
        }
        if Block::content_hash(&block.transactions) != block.header.content_hash {
            return Err(ChainError::ContentHashMismatch);
        }
        // Pre-check token-id continuity across the whole block before
        // mutating any state, so a bad block cannot half-apply.
        let mut next_token = self.tokens.len() as u64;
        for ct in &block.transactions {
            for &tid in &ct.output_ids {
                if tid.0 != next_token {
                    return Err(ChainError::TokenIdDiscontinuity {
                        expected: next_token,
                        got: tid.0,
                    });
                }
                next_token += 1;
            }
        }
        for ct in &block.transactions {
            for input in &ct.tx.inputs {
                self.consumed_images.insert(input.key_image().value());
            }
            for (out, &tid) in ct.tx.outputs.iter().zip(&ct.output_ids) {
                self.tokens.push(TokenRecord {
                    id: tid,
                    origin: ct.id,
                    block: block.header.height,
                    owner: out.owner,
                    amount: out.amount,
                });
                self.by_owner.entry(out.owner.value()).or_default().push(tid);
            }
            self.next_tx = self.next_tx.max(ct.id.0 + 1);
        }
        self.blocks.push(block);
        crate::obs::ChainMetrics::global().blocks_adopted.inc();
        Ok(())
    }

    /// Validate the whole chain's hash links (full-node audit).
    pub fn audit(&self) -> bool {
        self.blocks.windows(2).all(|w| {
            w[1].header.prev_hash == w[0].hash()
                && w[1].header.content_hash == Block::content_hash(&w[1].transactions)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{RingInput, TokenOutput};
    use dams_crypto::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Harness {
        chain: Chain,
        keys: Vec<KeyPair>,
        rng: StdRng,
    }

    /// Mint `n` tokens to `n` fresh keys in one coinbase block.
    fn harness(n: usize) -> Harness {
        let group = SchnorrGroup::default();
        let mut rng = StdRng::seed_from_u64(42);
        let keys: Vec<KeyPair> = (0..n).map(|_| KeyPair::generate(&group, &mut rng)).collect();
        let mut chain = Chain::new(group);
        chain.submit_coinbase(
            keys.iter()
                .map(|k| TokenOutput {
                    owner: k.public,
                    amount: Amount(10),
                })
                .collect(),
        );
        chain.seal_block().unwrap();
        Harness { chain, keys, rng }
    }

    /// Build a valid spend of `spend_idx` over ring token ids `ring`.
    fn spend(h: &mut Harness, ring: Vec<TokenId>, spend_idx: usize) -> Transaction {
        let outputs = vec![TokenOutput {
            owner: h.keys[spend_idx].public,
            amount: Amount(10),
        }];
        let tx_shell = Transaction {
            inputs: vec![],
            outputs: outputs.clone(),
            memo: vec![],
        };
        let payload = tx_shell.signing_payload();
        let ring_keys: Vec<_> = ring
            .iter()
            .map(|t| h.chain.token(*t).unwrap().owner)
            .collect();
        let sig = dams_crypto::sign(
            h.chain.group(),
            &payload,
            &ring_keys,
            &h.keys[spend_idx],
            &mut h.rng,
        )
        .unwrap();
        Transaction {
            inputs: vec![RingInput {
                ring,
                signature: sig,
                claimed_c: 0.6,
                claimed_l: 2,
            }],
            outputs,
            memo: vec![],
        }
    }

    #[test]
    fn mint_and_spend_roundtrip() {
        let mut h = harness(4);
        assert_eq!(h.chain.token_count(), 4);
        let tx = spend(&mut h, vec![TokenId(0), TokenId(1), TokenId(2)], 1);
        h.chain.submit(tx, &NoConfiguration).unwrap();
        h.chain.seal_block().unwrap();
        assert_eq!(h.chain.token_count(), 5);
        assert!(h.chain.audit());
    }

    #[test]
    fn double_spend_rejected() {
        let mut h = harness(4);
        let tx1 = spend(&mut h, vec![TokenId(0), TokenId(1)], 0);
        let tx2 = spend(&mut h, vec![TokenId(0), TokenId(1), TokenId(2)], 0);
        h.chain.submit(tx1, &NoConfiguration).unwrap();
        let err = h.chain.submit(tx2, &NoConfiguration).unwrap_err();
        assert!(matches!(err, VerifyError::ImageReused(_)), "{err:?}");
    }

    #[test]
    fn signature_must_match_ring() {
        let mut h = harness(4);
        let mut tx = spend(&mut h, vec![TokenId(0), TokenId(1)], 0);
        // Swap the declared ring to one the signature does not cover.
        tx.inputs[0].ring = vec![TokenId(2), TokenId(3)];
        let err = h.chain.submit(tx, &NoConfiguration).unwrap_err();
        assert!(matches!(err, VerifyError::BadSignature { .. }), "{err:?}");
    }

    #[test]
    fn unsorted_ring_rejected() {
        let mut h = harness(3);
        let mut tx = spend(&mut h, vec![TokenId(0), TokenId(1)], 0);
        tx.inputs[0].ring = vec![TokenId(1), TokenId(0)];
        let err = h.chain.submit(tx, &NoConfiguration).unwrap_err();
        assert!(matches!(err, VerifyError::MalformedRing { .. }), "{err:?}");
    }

    #[test]
    fn unknown_token_rejected() {
        let mut h = harness(2);
        let mut tx = spend(&mut h, vec![TokenId(0), TokenId(1)], 0);
        tx.inputs[0].ring = vec![TokenId(0), TokenId(99)];
        let err = h.chain.submit(tx, &NoConfiguration).unwrap_err();
        assert!(matches!(err, VerifyError::UnknownToken(TokenId(99))), "{err:?}");
    }

    #[test]
    fn no_input_transaction_rejected() {
        let h = harness(1);
        let tx = Transaction {
            inputs: vec![],
            outputs: vec![],
            memo: vec![],
        };
        assert_eq!(
            h.chain.verify_transaction(&tx, &NoConfiguration),
            Err(VerifyError::NoInputs)
        );
    }

    #[test]
    fn configuration_hook_can_reject() {
        struct MinRing(usize);
        impl RingConfiguration for MinRing {
            fn check(&self, _c: &Chain, ring: &[TokenId]) -> Result<(), String> {
                if ring.len() < self.0 {
                    Err(format!("ring smaller than {}", self.0))
                } else {
                    Ok(())
                }
            }
        }
        let mut h = harness(4);
        let tx = spend(&mut h, vec![TokenId(0), TokenId(1)], 0);
        let err = h.chain.submit(tx, &MinRing(3)).unwrap_err();
        assert!(matches!(err, VerifyError::ConfigurationViolation { .. }));
    }

    #[test]
    fn audit_detects_tampering() {
        let mut h = harness(2);
        let tx = spend(&mut h, vec![TokenId(0), TokenId(1)], 0);
        h.chain.submit(tx, &NoConfiguration).unwrap();
        h.chain.seal_block().unwrap();
        assert!(h.chain.audit());
        // Tamper with a committed transaction.
        h.chain.blocks[2].transactions[0].output_ids.push(TokenId(77));
        assert!(!h.chain.audit());
    }

    #[test]
    fn owner_index_tracks_mints() {
        let h = harness(3);
        for (i, k) in h.keys.iter().enumerate() {
            assert_eq!(h.chain.tokens_of(k.public), &[TokenId(i as u64)]);
        }
    }

    #[test]
    fn origin_tx_recorded_as_ht() {
        let mut h = harness(2);
        let origin0 = h.chain.token(TokenId(0)).unwrap().origin;
        let origin1 = h.chain.token(TokenId(1)).unwrap().origin;
        assert_eq!(origin0, origin1, "same coinbase = same HT");
        let tx = spend(&mut h, vec![TokenId(0), TokenId(1)], 0);
        h.chain.submit(tx, &NoConfiguration).unwrap();
        h.chain.seal_block().unwrap();
        let origin2 = h.chain.token(TokenId(2)).unwrap().origin;
        assert_ne!(origin2, origin0);
    }
}
