//! Transactions in the UTXO model (Figure 1 of the paper): each transaction
//! carries one or more ring-signature inputs and mints fresh output tokens.

use dams_crypto::{KeyImage, PublicKey, RingSignature};

use crate::types::{Amount, TokenId, TxId};

/// A freshly minted output token: the receiver's one-time public key plus
/// an amount. The ledger assigns the global `TokenId` at commit time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenOutput {
    pub owner: PublicKey,
    pub amount: Amount,
}

/// One ring-signature input: the declared ring (sorted token ids), the
/// signature with its key image, and the claimed diversity requirement the
/// spender commits to maintain (§3.1: "a user can claim the anonymity
/// requirement when committing a RS to the blockchain").
#[derive(Debug, Clone, PartialEq)]
pub struct RingInput {
    /// Sorted, duplicate-free token ids forming the ring (consumed token +
    /// mixins; indistinguishable by design).
    pub ring: Vec<TokenId>,
    /// The linkable ring signature over the transaction payload.
    pub signature: RingSignature,
    /// The claimed recursive (c, ℓ)-diversity requirement.
    pub claimed_c: f64,
    pub claimed_l: usize,
}

impl RingInput {
    /// The key image (double-spend tag) of this input.
    pub fn key_image(&self) -> KeyImage {
        self.signature.key_image
    }
}

/// A transaction: ring inputs, outputs, and an opaque message (memo).
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    pub inputs: Vec<RingInput>,
    pub outputs: Vec<TokenOutput>,
    pub memo: Vec<u8>,
}

impl Transaction {
    /// The byte string that ring signatures of this transaction sign:
    /// outputs + memo (inputs cannot be part of their own signed payload).
    pub fn signing_payload(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.memo.len() + self.outputs.len() * 16);
        buf.extend_from_slice(&(self.outputs.len() as u64).to_le_bytes());
        for o in &self.outputs {
            buf.extend_from_slice(&o.owner.value().to_le_bytes());
            buf.extend_from_slice(&o.amount.0.to_le_bytes());
        }
        buf.extend_from_slice(&(self.memo.len() as u64).to_le_bytes());
        buf.extend_from_slice(&self.memo);
        buf
    }
}

/// A committed transaction: the transaction plus the ledger-assigned ids.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedTransaction {
    pub id: TxId,
    pub tx: Transaction,
    /// Global ids assigned to `tx.outputs`, in order.
    pub output_ids: Vec<TokenId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_crypto::{KeyPair, SchnorrGroup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn signing_payload_is_injective_in_outputs() {
        let grp = SchnorrGroup::default();
        let a = KeyPair::from_secret(&grp, 1).public;
        let b = KeyPair::from_secret(&grp, 2).public;
        let tx1 = Transaction {
            inputs: vec![],
            outputs: vec![TokenOutput {
                owner: a,
                amount: Amount(5),
            }],
            memo: vec![],
        };
        let mut tx2 = tx1.clone();
        tx2.outputs[0].owner = b;
        let mut tx3 = tx1.clone();
        tx3.outputs[0].amount = Amount(6);
        let mut tx4 = tx1.clone();
        tx4.memo = vec![1];
        assert_ne!(tx1.signing_payload(), tx2.signing_payload());
        assert_ne!(tx1.signing_payload(), tx3.signing_payload());
        assert_ne!(tx1.signing_payload(), tx4.signing_payload());
    }

    #[test]
    fn ring_input_exposes_key_image() {
        let grp = SchnorrGroup::default();
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(&grp, &mut rng);
        let sig = dams_crypto::sign(&grp, b"m", &[kp.public], &kp, &mut rng).unwrap();
        let input = RingInput {
            ring: vec![TokenId(0)],
            signature: sig,
            claimed_c: 0.6,
            claimed_l: 2,
        };
        assert_eq!(input.key_image(), kp.key_image(&grp));
    }
}
