//! 64-seed sweep: attack-aware mixin sampling versus the baseline, under
//! the full seeded adversary suite.
//!
//! Attack-aware sampling is a statistical defense — a single seed can go
//! either way, because avoiding the spent closure also concentrates the
//! decoy distribution the guess-newest adversary scores against. The
//! sweep therefore pins the distribution, not each draw: wins must
//! dominate losses, any per-seed regret stays small, and the aggregate
//! deanonymization count is strictly lower.

use dams_core::SamplingMode;
use dams_diversity::{run_attack, AttackConfig};
use dams_workload::{generate_attack_trace, AttackTraceConfig};

const SEEDS: u64 = 64;

/// A seed may lose at most this many rings to the defense (measured
/// worst regret is 4; the sweep is deterministic, so this is a cliff
/// guard, not a tolerance).
const MAX_REGRET: i64 = 8;

fn deanonymized(mode: SamplingMode, seed: u64) -> i64 {
    let cfg = AttackTraceConfig {
        ring_size: 4,
        mode,
        ..AttackTraceConfig::default()
    };
    let trace = generate_attack_trace(&cfg, seed);
    run_attack(&trace, AttackConfig { strength: 1, seed }).deanonymized as i64
}

#[test]
fn attack_aware_sampling_dominates_baseline_over_64_seeds() {
    let mut wins = 0u32;
    let mut losses = 0u32;
    let mut base_total = 0i64;
    let mut aware_total = 0i64;
    for seed in 0..SEEDS {
        let base = deanonymized(SamplingMode::Baseline, seed);
        let aware = deanonymized(SamplingMode::AttackAware, seed);
        assert!(
            aware - base <= MAX_REGRET,
            "seed {seed}: attack-aware lost {aware} rings vs baseline {base}"
        );
        if aware < base {
            wins += 1;
        } else if aware > base {
            losses += 1;
        }
        base_total += base;
        aware_total += aware;
    }
    assert!(
        wins > 2 * losses,
        "attack-aware must dominate: {wins} wins vs {losses} losses"
    );
    assert!(
        aware_total < base_total,
        "aggregate: attack-aware {aware_total} must beat baseline {base_total}"
    );
}
