//! Materialise a workload on the real blockchain substrate.
//!
//! The algorithmic layer treats tokens as dense `u32` ids with an HT label.
//! This module mints an equivalent economy on [`dams_blockchain::Chain`]
//! — one coinbase transaction per historical transaction, preserving the
//! token→HT structure — and spends tokens end-to-end: select mixins with a
//! DA-MS algorithm, sign with the linkable ring signature, verify and
//! commit on-chain.

use rand::Rng;

use dams_blockchain::{
    Amount, Chain, ChainError, NoConfiguration, RingInput, TokenOutput, Transaction, VerifyError,
};
use dams_crypto::{KeyPair, SchnorrGroup};
use dams_diversity::{HtId, RingSet, TokenUniverse};

/// A workload materialised on a chain: the ledger plus per-token key pairs
/// (the "wallets") and the algorithm-id → ledger-id mapping.
pub struct ChainWorkload {
    pub chain: Chain,
    /// Key pair owning algorithm-token `i`.
    keys: Vec<KeyPair>,
    /// `ledger[i]` is the on-chain id of algorithm token `i`.
    ledger: Vec<dams_blockchain::TokenId>,
    universe: TokenUniverse,
}

impl ChainWorkload {
    /// Mint a chain realising `universe`: tokens with the same HT are
    /// minted by the same coinbase transaction (one block per HT), so the
    /// ledger's origin structure mirrors the universe's HT partition.
    pub fn materialize<R: Rng + ?Sized>(universe: TokenUniverse, rng: &mut R) -> Self {
        let group = SchnorrGroup::default();
        let mut chain = Chain::new(group);
        let n = universe.len();
        let keys: Vec<KeyPair> = (0..n)
            .map(|_| KeyPair::generate(chain.group(), rng))
            .collect();

        // Group algorithm ids by HT (BTreeMap → deterministic mint order).
        let mut by_ht: std::collections::BTreeMap<HtId, Vec<u32>> =
            std::collections::BTreeMap::new();
        for t in universe.tokens() {
            by_ht.entry(universe.ht(t)).or_default().push(t.0);
        }

        let mut ledger = vec![dams_blockchain::TokenId(u64::MAX); n];
        for ids in by_ht.values() {
            let outs: Vec<TokenOutput> = ids
                .iter()
                .map(|&i| TokenOutput {
                    owner: keys[i as usize].public,
                    amount: Amount(1),
                })
                .collect();
            let first_ledger_id = chain.token_count() as u64;
            chain.submit_coinbase(outs);
            // A chain built by `Chain::new` always has a genesis block, so
            // sealing a coinbase block cannot fail here.
            let _ = chain.seal_block();
            for (k, &i) in ids.iter().enumerate() {
                ledger[i as usize] = dams_blockchain::TokenId(first_ledger_id + k as u64);
            }
        }
        debug_assert!(ledger.iter().all(|t| t.0 != u64::MAX));

        ChainWorkload {
            chain,
            keys,
            ledger,
            universe,
        }
    }

    /// The algorithm-layer universe this chain realises.
    pub fn universe(&self) -> &TokenUniverse {
        &self.universe
    }

    /// The on-chain id of an algorithm token.
    pub fn ledger_id(&self, token: dams_diversity::TokenId) -> dams_blockchain::TokenId {
        self.ledger[token.0 as usize]
    }

    /// The key pair owning an algorithm token.
    pub fn key_of(&self, token: dams_diversity::TokenId) -> &KeyPair {
        &self.keys[token.0 as usize]
    }

    /// Spend `consumed` with the mixin ring `ring` (which must contain it):
    /// sign, verify, and commit a 1-output transaction on-chain.
    ///
    /// A ring that does not contain `consumed` surfaces as
    /// `ChainError::Verify(BadSignature)` — the signer's key is absent
    /// from the declared ring, so no valid signature exists.
    pub fn spend<R: Rng + ?Sized>(
        &mut self,
        ring: &RingSet,
        consumed: dams_diversity::TokenId,
        claimed_c: f64,
        claimed_l: usize,
        rng: &mut R,
    ) -> Result<(), ChainError> {
        let receiver = KeyPair::generate(self.chain.group(), rng);
        let outputs = vec![TokenOutput {
            owner: receiver.public,
            amount: Amount(1),
        }];
        let shell = Transaction {
            inputs: vec![],
            outputs: outputs.clone(),
            memo: vec![],
        };
        let payload = shell.signing_payload();
        // The chain requires the declared ring sorted by ledger id; the
        // signature must cover the public keys in exactly that order.
        let mut members: Vec<(dams_blockchain::TokenId, dams_crypto::PublicKey)> = ring
            .tokens()
            .iter()
            .map(|t| (self.ledger_id(*t), self.keys[t.0 as usize].public))
            .collect();
        members.sort_by_key(|(id, _)| *id);
        let ring_ids: Vec<dams_blockchain::TokenId> = members.iter().map(|(id, _)| *id).collect();
        let ring_keys: Vec<dams_crypto::PublicKey> = members.iter().map(|(_, k)| *k).collect();
        let signer = self.keys[consumed.0 as usize];
        let sig = dams_crypto::sign(self.chain.group(), &payload, &ring_keys, &signer, rng)
            .map_err(|_| VerifyError::BadSignature { input_index: 0 })?;
        let tx = Transaction {
            inputs: vec![RingInput {
                ring: ring_ids,
                signature: sig,
                claimed_c,
                claimed_l,
            }],
            outputs,
            memo: vec![],
        };
        self.chain.submit(tx, &NoConfiguration)?;
        self.chain.seal_block()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_diversity::{ring, TokenId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn interleaved_universe() -> TokenUniverse {
        // HT groups deliberately non-contiguous: [0,1,0,2,1,0]
        TokenUniverse::new(vec![
            HtId(0),
            HtId(1),
            HtId(0),
            HtId(2),
            HtId(1),
            HtId(0),
        ])
    }

    #[test]
    fn materialize_preserves_ht_partition() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = ChainWorkload::materialize(interleaved_universe(), &mut rng);
        assert_eq!(w.chain.token_count(), 6);
        let origin =
            |t: u32| w.chain.token(w.ledger_id(TokenId(t))).unwrap().origin;
        // same algorithm HT ⇒ same ledger origin
        assert_eq!(origin(0), origin(2));
        assert_eq!(origin(0), origin(5));
        assert_eq!(origin(1), origin(4));
        // different HT ⇒ different origin
        assert_ne!(origin(0), origin(1));
        assert_ne!(origin(1), origin(3));
    }

    #[test]
    fn end_to_end_spend() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = ChainWorkload::materialize(interleaved_universe(), &mut rng);
        w.spend(&ring(&[0, 2, 5]), TokenId(2), 0.6, 2, &mut rng)
            .unwrap();
        assert_eq!(w.chain.token_count(), 7);
        assert!(w.chain.audit());
    }

    #[test]
    fn double_spend_caught_on_chain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = ChainWorkload::materialize(interleaved_universe(), &mut rng);
        w.spend(&ring(&[0, 2]), TokenId(0), 0.6, 2, &mut rng).unwrap();
        let err = w
            .spend(&ring(&[0, 3, 5]), TokenId(0), 0.6, 2, &mut rng)
            .unwrap_err();
        assert!(
            matches!(err, ChainError::Verify(VerifyError::ImageReused(_))),
            "{err:?}"
        );
    }

    #[test]
    fn spending_a_mixin_elsewhere_is_fine() {
        // Token 2 appears as a mixin in the first ring, then is spent for
        // real in a second ring — key images differ, both commit.
        let mut rng = StdRng::seed_from_u64(4);
        let mut w = ChainWorkload::materialize(interleaved_universe(), &mut rng);
        w.spend(&ring(&[0, 2]), TokenId(0), 0.6, 2, &mut rng).unwrap();
        w.spend(&ring(&[2, 3]), TokenId(2), 0.6, 2, &mut rng).unwrap();
        assert!(w.chain.audit());
    }
}
