//! Open-loop arrival generation for the selection service's overload
//! experiments.
//!
//! A *closed-loop* driver (like [`crate::sampler`]) waits for each
//! response before issuing the next request, so it can never overload the
//! system under test — the system's own latency throttles it. Overload
//! behaviour only shows under **open-loop** load: arrivals keep coming at
//! their own rate whether or not the service keeps up, exactly like
//! wallets broadcasting on their users' schedules. This module generates
//! such arrival schedules deterministically:
//!
//! * gaps are **integer ticks** drawn uniformly from
//!   `[1, 2·mean_gap − 1]` (mean `mean_gap`), so a schedule replays
//!   byte-identically from a seed on any host — no floating-point
//!   accumulation, no wall clock;
//! * an optional **burst** pattern drops `burst_size` extra arrivals on
//!   the same tick every `burst_every`-th arrival, modelling the
//!   synchronized spikes (exchange payouts, block boundaries) that
//!   stress admission control far more than a smooth ramp.

use rand::Rng;

/// Configuration for one open-loop arrival schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoop {
    /// Mean inter-arrival gap in virtual ticks (≥ 1). Offered rate is
    /// `1 / mean_gap` requests per tick.
    pub mean_gap: u64,
    /// Every `burst_every`-th arrival becomes a burst (`0` disables).
    pub burst_every: usize,
    /// Extra arrivals stacked on the same tick at each burst.
    pub burst_size: usize,
}

impl OpenLoop {
    /// A smooth schedule with the given mean gap and no bursts.
    pub fn smooth(mean_gap: u64) -> Self {
        OpenLoop {
            mean_gap: mean_gap.max(1),
            burst_every: 0,
            burst_size: 0,
        }
    }

    /// A bursty schedule: every `every`-th arrival brings `size` extras.
    pub fn bursty(mean_gap: u64, every: usize, size: usize) -> Self {
        OpenLoop {
            mean_gap: mean_gap.max(1),
            burst_every: every,
            burst_size: size,
        }
    }

    /// Generate `n` arrival ticks (sorted, possibly with duplicates on
    /// burst ticks). The schedule depends only on `self` and the stream
    /// drawn from `rng`.
    pub fn arrival_ticks<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<u64> {
        let mean = self.mean_gap.max(1);
        let mut out = Vec::with_capacity(n);
        let mut tick = 0u64;
        let mut primary = 0usize;
        while out.len() < n {
            // Uniform on [1, 2·mean − 1] keeps the mean at `mean` with
            // integer-only arithmetic (for mean 1 the gap is always 1).
            let gap = if mean == 1 {
                1
            } else {
                rng.gen_range(1..=2 * mean - 1)
            };
            tick = tick.saturating_add(gap);
            out.push(tick);
            primary += 1;
            if self.burst_every > 0 && self.burst_size > 0 && primary.is_multiple_of(self.burst_every) {
                for _ in 0..self.burst_size {
                    if out.len() >= n {
                        break;
                    }
                    out.push(tick);
                }
            }
        }
        out
    }
}

/// Deal one arrival schedule out across `shards` consumers, round-robin.
///
/// Sharding — not splitting into contiguous runs — is what holds the
/// *offered* load fixed while serving capacity scales: each shard keeps
/// the full time span of the original schedule at `1/shards` of its
/// rate, so an N-replica cluster sees the same open-loop client
/// population as a single node, just load-balanced. Order within each
/// shard is preserved.
pub fn shard_round_robin<T: Clone>(arrivals: &[T], shards: usize) -> Vec<Vec<T>> {
    let shards = shards.max(1);
    let mut out: Vec<Vec<T>> = (0..shards)
        .map(|_| Vec::with_capacity(arrivals.len() / shards + 1))
        .collect();
    for (i, arrival) in arrivals.iter().enumerate() {
        out[i % shards].push(arrival.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_robin_sharding_covers_everything_in_order() {
        let items: Vec<u64> = (0..10).collect();
        let shards = shard_round_robin(&items, 3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0], vec![0, 3, 6, 9]);
        assert_eq!(shards[1], vec![1, 4, 7]);
        assert_eq!(shards[2], vec![2, 5, 8]);
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, items.len());
        // Zero shards is clamped, not a panic.
        assert_eq!(shard_round_robin(&items, 0).len(), 1);
    }

    #[test]
    fn schedules_replay_from_a_seed() {
        let cfg = OpenLoop::bursty(7, 5, 3);
        let a = cfg.arrival_ticks(200, &mut StdRng::seed_from_u64(11));
        let b = cfg.arrival_ticks(200, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn arrivals_are_sorted_and_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let ticks = OpenLoop::smooth(4).arrival_ticks(500, &mut rng);
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]));
        assert!(ticks[0] >= 1);
    }

    #[test]
    fn mean_gap_is_respected_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 4000;
        let ticks = OpenLoop::smooth(10).arrival_ticks(n, &mut rng);
        let mean = ticks.last().unwrap() / n as u64;
        assert!((8..=12).contains(&mean), "observed mean gap {mean}");
    }

    #[test]
    fn bursts_stack_arrivals_on_one_tick() {
        let mut rng = StdRng::seed_from_u64(5);
        let ticks = OpenLoop::bursty(6, 4, 2).arrival_ticks(60, &mut rng);
        // Some tick must appear at least 3 times (primary + 2 extras).
        let max_run = ticks
            .chunk_by(|a, b| a == b)
            .map(<[u64]>::len)
            .max()
            .unwrap_or(0);
        assert!(max_run >= 3, "no burst found: {ticks:?}");
    }

    #[test]
    fn unit_mean_gap_is_back_to_back() {
        let mut rng = StdRng::seed_from_u64(1);
        let ticks = OpenLoop::smooth(1).arrival_ticks(10, &mut rng);
        assert_eq!(ticks, (1..=10).collect::<Vec<u64>>());
    }
}
