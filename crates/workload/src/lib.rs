//! # dams-workload
//!
//! Workload generation for the DA-MS experiments (§7.1):
//!
//! * [`synthetic`] — Table 3 instances (|S|, |s_i|, |F|, σ);
//! * [`real`] — the simulated Monero snapshot (285 txs / 633 tokens /
//!   57 super RSs / 6 fresh tokens, Figure 3 output distribution);
//! * [`sampler`] — the shared measure-1000-instances loop;
//! * [`chainload`] — materialise a workload on the actual blockchain
//!   substrate (mint tokens, commit ring transactions end-to-end);
//! * [`openloop`] — deterministic open-loop arrival schedules (smooth or
//!   bursty) for the selection service's overload experiments;
//! * [`arrivals`] — the arrival-trace artifact (export/replay) the
//!   sim-vs-real differential oracle feeds to both sides.

pub mod adversarial;
pub mod arrivals;
pub mod attack_trace;
pub mod chainload;
pub mod openloop;
pub mod simulation;
pub mod real;
pub mod sampler;
pub mod streaming;
pub mod synthetic;
pub mod trace;

pub use adversarial::BurstSchedule;
pub use arrivals::{parse_trace, render_trace, ArrivalEvent, TraceError};
pub use attack_trace::{generate_attack_trace, AttackTraceConfig};
pub use openloop::{shard_round_robin, OpenLoop};
pub use real::{monero_snapshot, output_histogram};
pub use sampler::{measure, measure_framework, MeasuredPoint};
pub use simulation::{simulate_batch, SimulationConfig, SimulationOutcome};
pub use streaming::{ChainStream, StreamConfig};
pub use synthetic::{small_universe, HtModel, SyntheticConfig};
pub use trace::{run_trace, TraceConfig, TraceOutcome};
