//! Arrival-trace export and replay.
//!
//! The overload harness generates seeded open-loop arrival schedules
//! ([`crate::openloop`]); the differential oracle replays *one* such
//! schedule through both the virtual-tick service model and the real
//! runtime and diffs the accounting. That only works if the trace is a
//! first-class artifact: exportable to a file, re-parsable without loss,
//! and independent of which side consumes it. This module defines that
//! artifact.
//!
//! The format is a line-oriented TSV with a versioned header:
//!
//! ```text
//! dams-trace v1
//! # tick  id  tenant  target  class  budget  require_exact
//! 17      0   0       0       I      4096    0
//! 17      1   1       1       B      4096    1
//! ```
//!
//! Lines starting with `#` are comments; fields are tab-separated.
//! Parsing is strict — a malformed field yields a typed
//! [`TraceError`], never a panic and never a silently skipped row —
//! because a trace that parses differently on the two sides of the
//! differential would invalidate the oracle.

/// One request arrival, transport- and service-neutral.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Virtual arrival tick (wall-clock replays scale this by the
    /// calibrated ns-per-tick).
    pub tick: u64,
    /// Caller-unique request id; terminal accounting is per id.
    pub id: u64,
    /// Wallet session the request belongs to.
    pub tenant: u64,
    /// Target token to build a ring for.
    pub target: u32,
    /// Interactive (wallet user waiting) vs batch traffic.
    pub interactive: bool,
    /// End-to-end deadline budget in virtual ticks.
    pub budget: u64,
    /// Refuse degraded answers (shed instead while the breaker is open).
    pub require_exact: bool,
}

/// Why a trace failed to parse (typed so the differential can report the
/// exact line instead of dying).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The first line was not the `dams-trace v1` header.
    BadHeader,
    /// A data line had the wrong number of fields.
    FieldCount { line: usize, got: usize },
    /// A field failed to parse.
    BadField {
        line: usize,
        field: &'static str,
        value: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadHeader => write!(f, "missing `dams-trace v1` header"),
            TraceError::FieldCount { line, got } => {
                write!(f, "line {line}: expected 7 fields, got {got}")
            }
            TraceError::BadField { line, field, value } => {
                write!(f, "line {line}: bad {field} {value:?}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

const HEADER: &str = "dams-trace v1";

/// Render a trace to its canonical text form. `parse_trace` inverts this
/// exactly (the round-trip property the tests pin down).
pub fn render_trace(events: &[ArrivalEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 24 + 64);
    out.push_str(HEADER);
    out.push('\n');
    out.push_str("# tick\tid\ttenant\ttarget\tclass\tbudget\trequire_exact\n");
    for e in events {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            e.tick,
            e.id,
            e.tenant,
            e.target,
            if e.interactive { "I" } else { "B" },
            e.budget,
            u8::from(e.require_exact),
        ));
    }
    out
}

/// Parse a trace rendered by [`render_trace`]. Strict: any malformed
/// line is a typed error.
pub fn parse_trace(text: &str) -> Result<Vec<ArrivalEvent>, TraceError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == HEADER => {}
        _ => return Err(TraceError::BadHeader),
    }
    let mut out = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('\t').collect();
        if fields.len() != 7 {
            return Err(TraceError::FieldCount {
                line: line_no,
                got: fields.len(),
            });
        }
        let num = |field: &'static str, v: &str| -> Result<u64, TraceError> {
            v.parse().map_err(|_| TraceError::BadField {
                line: line_no,
                field,
                value: v.into(),
            })
        };
        let interactive = match fields[4] {
            "I" => true,
            "B" => false,
            other => {
                return Err(TraceError::BadField {
                    line: line_no,
                    field: "class",
                    value: other.into(),
                })
            }
        };
        let require_exact = match fields[6] {
            "0" => false,
            "1" => true,
            other => {
                return Err(TraceError::BadField {
                    line: line_no,
                    field: "require_exact",
                    value: other.into(),
                })
            }
        };
        out.push(ArrivalEvent {
            tick: num("tick", fields[0])?,
            id: num("id", fields[1])?,
            tenant: num("tenant", fields[2])?,
            target: u32::try_from(num("target", fields[3])?).map_err(|_| {
                TraceError::BadField {
                    line: line_no,
                    field: "target",
                    value: fields[3].into(),
                }
            })?,
            interactive,
            budget: num("budget", fields[5])?,
            require_exact,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ArrivalEvent> {
        (0..5)
            .map(|i| ArrivalEvent {
                tick: 10 * i + 1,
                id: i,
                tenant: i % 3,
                target: (i % 4) as u32,
                interactive: i % 2 == 0,
                budget: 4096 + i,
                require_exact: i == 3,
            })
            .collect()
    }

    #[test]
    fn round_trips_exactly() {
        let events = sample();
        let text = render_trace(&events);
        assert_eq!(parse_trace(&text).expect("parses"), events);
        // Render → parse → render is a fixed point.
        assert_eq!(render_trace(&parse_trace(&text).unwrap()), text);
    }

    #[test]
    fn header_is_required() {
        assert_eq!(parse_trace("1\t2\t3"), Err(TraceError::BadHeader));
        assert_eq!(parse_trace(""), Err(TraceError::BadHeader));
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        let bad_count = "dams-trace v1\n1\t2\t3\n";
        assert!(matches!(
            parse_trace(bad_count),
            Err(TraceError::FieldCount { line: 2, got: 3 })
        ));
        let bad_class = "dams-trace v1\n1\t2\t0\t0\tX\t9\t0\n";
        assert!(matches!(
            parse_trace(bad_class),
            Err(TraceError::BadField { field: "class", .. })
        ));
        let bad_num = "dams-trace v1\n1\tnope\t0\t0\tI\t9\t0\n";
        assert!(matches!(
            parse_trace(bad_num),
            Err(TraceError::BadField { field: "id", .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "dams-trace v1\n# comment\n\n5\t0\t0\t1\tB\t64\t1\n";
        let events = parse_trace(text).expect("parses");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].tick, 5);
        assert!(!events[0].interactive);
        assert!(events[0].require_exact);
    }
}
