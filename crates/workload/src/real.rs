//! The simulated Monero snapshot matching §7.1's real data set.
//!
//! The paper retrieves Monero blocks 2,028,242–2,028,273 (one hour of
//! chain): **285 transactions, 633 tokens**. Figure 3 shows the
//! distribution of outputs per transaction — two-output transactions
//! dominate (Monero wallets always mint a change output). From those
//! tokens the paper derives **57 super RSs of 11 tokens each** (Monero's
//! standard ring size) and **6 fresh tokens**: 57 × 11 + 6 = 633.
//!
//! We cannot ship the proprietary-infrastructure-free but large Monero
//! chain, so this module reconstructs a snapshot with *exactly* those
//! published statistics (see DESIGN.md's substitution table). The DA-MS
//! algorithms consume only (a) token→HT assignment and (b) the module
//! decomposition, both of which are matched.

use rand::seq::SliceRandom;
use rand::Rng;

use dams_core::{ModularInstance, Module, ModuleId, ModuleKind};
use dams_diversity::{HtId, RingSet, RsId, TokenId, TokenUniverse};

/// Number of transactions in the paper's snapshot.
pub const NUM_TRANSACTIONS: usize = 285;
/// Number of output tokens in the paper's snapshot.
pub const NUM_TOKENS: usize = 633;
/// Number of super RSs derived in §7.1.
pub const NUM_SUPER_RS: usize = 57;
/// Monero's standard ring size at the snapshot height.
pub const SUPER_RS_SIZE: usize = 11;
/// Number of fresh tokens in §7.1.
pub const NUM_FRESH: usize = 6;

/// The outputs-per-transaction histogram of Figure 3 as `(outputs, #txs)`.
///
/// Reconstructed to the figure's qualitative content: 2-output
/// transactions dominate, a minority mint 1 or 3–16. Row sums: 285
/// transactions, 633 tokens.
pub const OUTPUT_HISTOGRAM: &[(usize, usize)] = &[
    (1, 28),
    (2, 222),
    (3, 20),
    (4, 6),
    (5, 3),
    (6, 2),
    (8, 1),
    (10, 1),
    (16, 2),
];

/// The Figure 3 histogram as a checked invariant.
pub fn output_histogram() -> Vec<(usize, usize)> {
    OUTPUT_HISTOGRAM.to_vec()
}

/// Generate the simulated snapshot: a modular instance with 633 tokens
/// from 285 HTs, 57 random 11-token super RSs and 6 fresh tokens.
///
/// The randomness shuffles which tokens land in which super RS (the paper:
/// "For each super RSs, it randomly selects 11 tokens"); the HT structure
/// is fixed by the histogram.
pub fn monero_snapshot<R: Rng + ?Sized>(rng: &mut R) -> ModularInstance {
    // Token → HT: transaction i mints `outputs` tokens, all with HT i.
    let mut ht_of: Vec<HtId> = Vec::with_capacity(NUM_TOKENS);
    let mut ht = 0u32;
    for &(outputs, tx_count) in OUTPUT_HISTOGRAM {
        for _ in 0..tx_count {
            for _ in 0..outputs {
                ht_of.push(HtId(ht));
            }
            ht += 1;
        }
    }
    debug_assert_eq!(ht_of.len(), NUM_TOKENS);
    debug_assert_eq!(ht as usize, NUM_TRANSACTIONS);
    let universe = TokenUniverse::new(ht_of);

    // Shuffle token ids, deal 57 super RSs of 11, leave 6 fresh.
    let mut ids: Vec<TokenId> = (0..NUM_TOKENS as u32).map(TokenId).collect();
    ids.shuffle(rng);
    let mut modules = Vec::with_capacity(NUM_SUPER_RS + NUM_FRESH);
    for s in 0..NUM_SUPER_RS {
        let tokens: RingSet = ids[s * SUPER_RS_SIZE..(s + 1) * SUPER_RS_SIZE]
            .iter()
            .copied()
            .collect();
        modules.push(Module {
            id: ModuleId(s),
            kind: ModuleKind::SuperRs(RsId(s as u32)),
            tokens,
        });
    }
    for (f, &t) in ids[NUM_SUPER_RS * SUPER_RS_SIZE..].iter().enumerate() {
        modules.push(Module {
            id: ModuleId(NUM_SUPER_RS + f),
            kind: ModuleKind::FreshToken,
            tokens: RingSet::new([t]),
        });
    }
    ModularInstance::from_modules(universe, modules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn histogram_sums_match_paper() {
        let txs: usize = OUTPUT_HISTOGRAM.iter().map(|(_, n)| n).sum();
        let tokens: usize = OUTPUT_HISTOGRAM.iter().map(|(o, n)| o * n).sum();
        assert_eq!(txs, NUM_TRANSACTIONS);
        assert_eq!(tokens, NUM_TOKENS);
    }

    #[test]
    fn two_output_transactions_dominate() {
        // Fig 3: "Most transactions output two tokens."
        let two = OUTPUT_HISTOGRAM
            .iter()
            .find(|(o, _)| *o == 2)
            .map(|(_, n)| *n)
            .unwrap();
        for &(o, n) in OUTPUT_HISTOGRAM {
            if o != 2 {
                assert!(n < two, "{o}-output txs ({n}) rival 2-output ({two})");
            }
        }
    }

    #[test]
    fn snapshot_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = monero_snapshot(&mut rng);
        assert_eq!(inst.universe.len(), NUM_TOKENS);
        assert_eq!(inst.super_count(), NUM_SUPER_RS);
        assert_eq!(inst.fresh_count(), NUM_FRESH);
        assert_eq!(inst.universe.distinct_hts(), NUM_TRANSACTIONS);
        for m in inst.modules() {
            match m.kind {
                ModuleKind::SuperRs(_) => assert_eq!(m.len(), SUPER_RS_SIZE),
                ModuleKind::FreshToken => assert_eq!(m.len(), 1),
            }
        }
    }

    #[test]
    fn ht_distribution_nearly_uniform() {
        // §7.1: "the distribution of HTs of tokens is almost uniform, and
        // in a RS most q_i does not exceed 2" — the global max is 16
        // (the two 16-output txs) but the median HT mints 2.
        let mut rng = StdRng::seed_from_u64(2);
        let inst = monero_snapshot(&mut rng);
        assert_eq!(inst.q_max(), 16);
        let hist = dams_diversity::HtHistogram::from_hts(
            (0..NUM_TOKENS as u32).map(|t| inst.universe.ht(TokenId(t))),
        );
        let freqs = hist.frequencies();
        let median = freqs[freqs.len() / 2];
        assert_eq!(median, 2);
    }

    #[test]
    fn snapshots_differ_by_seed_but_share_stats() {
        let a = monero_snapshot(&mut StdRng::seed_from_u64(3));
        let b = monero_snapshot(&mut StdRng::seed_from_u64(4));
        assert_eq!(a.universe.len(), b.universe.len());
        assert_eq!(a.q_max(), b.q_max());
        // Module contents differ (different shuffles).
        let ring_a = &a.modules()[0].tokens;
        let ring_b = &b.modules()[0].tokens;
        assert_ne!(ring_a, ring_b);
    }
}
