//! Multi-user batch simulation: drives a whole batch's lifetime to
//! measure how selection policy and the η feasibility guard (§4) affect
//! how many users can eventually spend.
//!
//! The paper's motivating dead-end: greedy early spenders can exhaust a
//! batch so that a later user "cannot find a RS satisfying \[the\]
//! non-eliminated constraint". The simulation spends tokens one at a time
//! under a given algorithm and guard, rebuilding the modular history after
//! each commit, and reports how far the batch got before stranding.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dams_core::{ModularHistory, PracticalAlgorithm, SelectionPolicy, TokenMagic};
use dams_diversity::{analyze, NeighborTracker, TokenId, TokenUniverse};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    pub algorithm: PracticalAlgorithm,
    pub policy: SelectionPolicy,
    /// η of the feasibility guard (0 disables).
    pub eta: f64,
    /// How many spends to attempt (each picks a random unspent token).
    pub spends: usize,
    pub seed: u64,
}

/// Outcome of one simulated batch lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationOutcome {
    /// Spends that committed successfully.
    pub committed: usize,
    /// Spends refused by the η guard.
    pub guard_refusals: usize,
    /// Spends that failed for other reasons (infeasible selection).
    pub failures: usize,
    /// Mean committed ring size.
    pub mean_ring_size: f64,
    /// Rings resolvable by chain-reaction analysis at the end.
    pub resolved_at_end: usize,
}

/// Run the simulation over `universe`.
pub fn simulate_batch(universe: &TokenUniverse, cfg: SimulationConfig) -> SimulationOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Incremental history: each commit merges the selected modules in
    // O(n) instead of re-decomposing the whole batch.
    let mut history = ModularHistory::fresh(universe.clone());
    let mut tracker = NeighborTracker::new();
    let tm = TokenMagic::new(cfg.algorithm, cfg.policy).with_eta(cfg.eta);

    // Spend order: random permutation of tokens.
    let mut order: Vec<u32> = (0..universe.len() as u32).collect();
    order.shuffle(&mut rng);

    let mut committed = 0usize;
    let mut guard_refusals = 0usize;
    let mut failures = 0usize;
    let mut total_ring = 0usize;

    for &token in order.iter().take(cfg.spends) {
        match tm.generate(history.instance(), TokenId(token), &tracker, &mut rng) {
            Ok(sel) => {
                total_ring += sel.size();
                tracker.push(sel.ring.clone());
                history.commit(&sel, cfg.policy.requirement);
                committed += 1;
            }
            Err(dams_core::SelectError::EtaGuardViolated) => guard_refusals += 1,
            Err(_) => failures += 1,
        }
    }

    let analysis = analyze(history.rings(), &[]);
    SimulationOutcome {
        committed,
        guard_refusals,
        failures,
        mean_ring_size: if committed > 0 {
            total_ring as f64 / committed as f64
        } else {
            0.0
        },
        resolved_at_end: analysis.resolved_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_diversity::{DiversityRequirement, HtId};

    fn universe() -> TokenUniverse {
        // 36 tokens over 12 HTs of 3.
        TokenUniverse::new((0..36u32).map(|i| HtId(i / 3)).collect())
    }

    fn cfg(eta: f64, spends: usize) -> SimulationConfig {
        SimulationConfig {
            algorithm: PracticalAlgorithm::Progressive,
            policy: SelectionPolicy::new(DiversityRequirement::new(1.0, 4)),
            eta,
            spends,
            seed: 5,
        }
    }

    #[test]
    fn simulation_commits_spends() {
        let out = simulate_batch(&universe(), cfg(0.0, 6));
        assert!(out.committed >= 1, "{out:?}");
        assert!(out.mean_ring_size >= 4.0, "{out:?}");
    }

    #[test]
    fn no_spend_is_linkable() {
        let out = simulate_batch(&universe(), cfg(0.0, 8));
        assert_eq!(out.resolved_at_end, 0, "{out:?}");
    }

    #[test]
    fn guard_only_ever_refuses_with_positive_eta() {
        let out = simulate_batch(&universe(), cfg(0.0, 10));
        assert_eq!(out.guard_refusals, 0);
    }

    #[test]
    fn harsh_guard_refuses_everything() {
        // η = 1000 demands far more slack than any batch can offer.
        let out = simulate_batch(&universe(), cfg(1000.0, 5));
        assert_eq!(out.committed, 0, "{out:?}");
        assert!(out.guard_refusals > 0, "{out:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_batch(&universe(), cfg(0.2, 6));
        let b = simulate_batch(&universe(), cfg(0.2, 6));
        assert_eq!(a, b);
    }
}
