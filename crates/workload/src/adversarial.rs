//! Seeded adversarial traffic shapes.
//!
//! The open-loop generators in [`crate::openloop`] model *honest* load.
//! This module models hostile load: a burst schedule a flooding peer
//! drives its frame cannon with. It lives in the workload crate (not the
//! node crate's adversary module) because it is pure traffic shape —
//! how many frames to emit per tick — with no knowledge of what the
//! frames contain, and the same shape is reusable against any service.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic flood profile: quiet baseline, periodic peaks, seeded
/// jitter. `intensity(tick)` is a pure function of the construction seed
/// and the tick, so a replayed attack emits byte-identical bursts.
#[derive(Debug, Clone)]
pub struct BurstSchedule {
    /// Frames per tick between bursts.
    base: u64,
    /// Frames per tick at a burst peak.
    peak: u64,
    /// Ticks between burst onsets.
    period: u64,
    /// Ticks a burst lasts.
    width: u64,
    rng: StdRng,
    /// Jitter drawn per tick, in `[0, jitter]` frames.
    jitter: u64,
}

impl BurstSchedule {
    /// A flood profile seeded from `seed`. `period` is clamped to ≥ 1;
    /// `width` to `< period` so bursts stay bursts.
    pub fn new(seed: u64, base: u64, peak: u64, period: u64, width: u64) -> Self {
        let period = period.max(1);
        BurstSchedule {
            base,
            peak: peak.max(base),
            period,
            width: width.min(period.saturating_sub(1)).max(1),
            rng: StdRng::seed_from_u64(seed),
            jitter: (peak.max(base) / 8).max(1),
        }
    }

    /// The stock spammer profile: a trickle that spikes hard every few
    /// ticks — enough to overrun any honest per-peer budget at the peaks
    /// while the average stays deceptively low.
    pub fn spammer(seed: u64) -> Self {
        BurstSchedule::new(seed, 2, 40, 6, 3)
    }

    /// Frames to emit this tick. Draws one jitter sample per call, so
    /// call it exactly once per tick to keep replays aligned.
    pub fn intensity(&mut self, tick: u64) -> u64 {
        let phase = tick % self.period;
        let level = if phase < self.width { self.peak } else { self.base };
        level + self.rng.gen_range(0..=self.jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_identically_from_one_seed() {
        let mut a = BurstSchedule::spammer(7);
        let mut b = BurstSchedule::spammer(7);
        let xs: Vec<u64> = (0..64).map(|t| a.intensity(t)).collect();
        let ys: Vec<u64> = (0..64).map(|t| b.intensity(t)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn bursts_exceed_baseline() {
        let mut s = BurstSchedule::spammer(3);
        let xs: Vec<u64> = (0..24).map(|t| s.intensity(t)).collect();
        let peak = *xs.iter().max().unwrap();
        let trough = *xs.iter().min().unwrap();
        assert!(peak >= 40, "{xs:?}");
        assert!(trough <= 8, "{xs:?}");
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let mut s = BurstSchedule::new(1, 5, 3, 0, 9);
        // peak < base is lifted to base; period 0 clamps to 1.
        for t in 0..8 {
            assert!(s.intensity(t) >= 5);
        }
    }
}
