//! Trace-driven multi-batch lifecycle simulation.
//!
//! §4's framework slices the chain into λ-token batches; a long-running
//! system interleaves minting (new blocks opening new batches) with
//! spending (rings confined to the spent token's batch). This module
//! drives that lifecycle from a synthetic arrival trace: mint and spend
//! events drawn from a geometric (discrete Poisson-like) process, spends
//! targeting random unspent tokens of closed batches.
//!
//! It exercises the cross-batch invariants end-to-end: rings never span
//! batches, per-batch histories stay laminar, and the final public record
//! resists chain-reaction analysis batch by batch.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dams_core::{ModularHistory, PracticalAlgorithm, SelectionPolicy, TokenMagic};
use dams_diversity::{analyze, HtId, NeighborTracker, TokenId, TokenUniverse};

/// Trace parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Tokens per batch (λ).
    pub lambda: usize,
    /// Probability that a step mints a new HT (of 1–4 tokens) rather than
    /// attempting a spend.
    pub mint_probability: f64,
    /// Total steps to simulate.
    pub steps: usize,
    pub algorithm: PracticalAlgorithm,
    pub policy: SelectionPolicy,
    /// η feasibility guard per batch (0 disables).
    pub eta: f64,
    pub seed: u64,
}

/// One batch's live state.
struct BatchState {
    /// Global ids of the batch's tokens.
    base: u32,
    history: ModularHistory,
    tracker: NeighborTracker,
    spent: Vec<bool>,
}

/// Outcome of a trace run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOutcome {
    pub minted_tokens: usize,
    pub closed_batches: usize,
    pub committed_spends: usize,
    pub failed_spends: usize,
    /// Rings resolvable by the adversary, summed over batches.
    pub resolved_total: usize,
    /// Whether any committed ring spanned two batches (must be false).
    pub cross_batch_ring: bool,
}

/// Run the lifecycle trace.
pub fn run_trace(cfg: TraceConfig) -> TraceOutcome {
    assert!(cfg.lambda >= 2, "λ < 2 cannot host a ring");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let tm = TokenMagic::new(cfg.algorithm, cfg.policy).with_eta(cfg.eta);

    // The open batch accumulates (token, ht) pairs until λ is reached.
    let mut open: Vec<HtId> = Vec::new();
    let mut open_base = 0u32;
    let mut next_ht = 0u32;
    let mut closed: Vec<BatchState> = Vec::new();

    let mut minted_tokens = 0usize;
    let mut committed = 0usize;
    let mut failed = 0usize;

    for _ in 0..cfg.steps {
        let minting = closed.is_empty() || rng.gen_bool(cfg.mint_probability);
        if minting {
            // One HT minting 1–4 tokens into the open batch.
            let outputs = rng.gen_range(1..=4usize);
            for _ in 0..outputs {
                open.push(HtId(next_ht));
                minted_tokens += 1;
            }
            next_ht += 1;
            if open.len() >= cfg.lambda {
                let universe = TokenUniverse::new(std::mem::take(&mut open));
                let n = universe.len();
                closed.push(BatchState {
                    base: open_base,
                    history: ModularHistory::fresh(universe),
                    tracker: NeighborTracker::new(),
                    spent: vec![false; n],
                });
                open_base += n as u32;
            }
        } else {
            // Spend a random unspent token of a random closed batch.
            let b = rng.gen_range(0..closed.len());
            let batch = &mut closed[b];
            let unspent: Vec<u32> = batch
                .spent
                .iter()
                .enumerate()
                .filter(|(_, s)| !**s)
                .map(|(i, _)| i as u32)
                .collect();
            let Some(&local) = unspent.first().map(|_| {
                &unspent[rng.gen_range(0..unspent.len())]
            }) else {
                failed += 1;
                continue;
            };
            match tm.generate(
                batch.history.instance(),
                TokenId(local),
                &batch.tracker,
                &mut rng,
            ) {
                Ok(sel) => {
                    batch.tracker.push(sel.ring.clone());
                    batch.history.commit(&sel, cfg.policy.requirement);
                    batch.spent[local as usize] = true;
                    committed += 1;
                }
                Err(_) => failed += 1,
            }
        }
    }

    // Audit every closed batch independently (their related sets are
    // disjoint by construction — the TokenMagic guarantee).
    let mut resolved_total = 0usize;
    let mut cross_batch = false;
    for batch in &closed {
        let analysis = analyze(batch.history.rings(), &[]);
        resolved_total += analysis.resolved_count();
        let n = batch.history.instance().universe.len() as u32;
        for (_, ring) in batch.history.rings().iter() {
            // Ring tokens are batch-local ids; anything >= n would mean a
            // cross-batch leak.
            if ring.tokens().iter().any(|t| t.0 >= n) {
                cross_batch = true;
            }
        }
        let _ = batch.base;
    }

    TraceOutcome {
        minted_tokens,
        closed_batches: closed.len(),
        committed_spends: committed,
        failed_spends: failed,
        resolved_total,
        cross_batch_ring: cross_batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_diversity::DiversityRequirement;

    fn cfg(steps: usize, seed: u64) -> TraceConfig {
        TraceConfig {
            lambda: 20,
            mint_probability: 0.5,
            steps,
            algorithm: PracticalAlgorithm::Progressive,
            policy: SelectionPolicy::new(DiversityRequirement::new(1.0, 4)),
            eta: 0.0,
            seed,
        }
    }

    #[test]
    fn trace_runs_and_stays_batch_local() {
        let out = run_trace(cfg(200, 1));
        assert!(out.closed_batches >= 1, "{out:?}");
        assert!(out.committed_spends >= 1, "{out:?}");
        assert!(!out.cross_batch_ring, "ring escaped its batch: {out:?}");
    }

    #[test]
    fn long_trace_resolvability_stays_marginal() {
        // §4's exhaustion phenomenon, reproduced: without the η guard,
        // draining a batch eventually leaves late rings resolvable (the
        // motivating dead-end for the guard). The damage stays marginal —
        // a handful of rings out of hundreds — and the guarded run below
        // trades commits for avoiding it.
        let out = run_trace(cfg(400, 2));
        assert!(out.committed_spends > 100, "{out:?}");
        assert!(
            out.resolved_total * 50 <= out.committed_spends,
            "resolvability above 2%: {out:?}"
        );
    }

    #[test]
    fn eta_guard_trades_commits_for_batch_health() {
        let mut unguarded = cfg(400, 2);
        unguarded.eta = 0.0;
        let mut guarded = cfg(400, 2);
        guarded.eta = 0.04; // ~1/λ for λ = 20
        let u = run_trace(unguarded);
        let g = run_trace(guarded);
        assert!(
            g.committed_spends <= u.committed_spends,
            "guard can only refuse: {g:?} vs {u:?}"
        );
        assert!(
            g.resolved_total <= u.resolved_total,
            "guard must not worsen resolvability: {g:?} vs {u:?}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(run_trace(cfg(150, 3)), run_trace(cfg(150, 3)));
    }

    #[test]
    fn all_mint_trace_closes_batches_only() {
        let mut c = cfg(100, 4);
        c.mint_probability = 1.0;
        let out = run_trace(c);
        assert_eq!(out.committed_spends, 0);
        assert!(out.closed_batches >= 2);
    }

    #[test]
    #[should_panic(expected = "cannot host a ring")]
    fn tiny_lambda_rejected() {
        let mut c = cfg(10, 5);
        c.lambda = 1;
        run_trace(c);
    }
}
