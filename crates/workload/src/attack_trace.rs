//! Real-trace-shaped chain generation for the attack replay harness.
//!
//! Empirical Monero traceability work (Möser et al.) exploits two facts
//! about real chains that the Table 3 instances do not model: users spend
//! *young* tokens (the exponential spend-age law behind the guess-newest
//! heuristic), and a fraction of users spend **carelessly** with zero
//! mixins, seeding taint cascades through everyone else's rings. This
//! module generates full chains with both properties — tokens minted
//! block by block, spends drawn age-biased from the unspent set, every
//! `careless_every`-th spend a singleton ring — and records the ground
//! truth (`dams_diversity::ChainTrace`) the adversaries are scored
//! against.
//!
//! Mixins for the non-careless spends come from
//! [`dams_core::attack_aware::sample_ring`], so the same generator
//! produces the vulnerable baseline and the hardened attack-aware chain
//! at identical ring size and (c, ℓ) — the comparison axis of
//! `BENCH_anonymity.json`.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dams_core::attack_aware::{sample_ring, MixinPool, SamplingMode};
use dams_diversity::{ChainTrace, DiversityRequirement, HtId, RingSet, TokenId, TokenUniverse};

/// Shape of a generated chain (defaults are the bench harness's).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackTraceConfig {
    /// Chain height (blocks of minting + spending).
    pub blocks: usize,
    /// Tokens minted per block.
    pub births_per_block: usize,
    /// Spends committed per block.
    pub spends_per_block: usize,
    /// Ring size of every non-careless spend.
    pub ring_size: usize,
    /// Every k-th spend is a zero-mixin singleton ring (0 = never) —
    /// the careless users seeding the taint cascade.
    pub careless_every: usize,
    /// Mean of the exponential spend-age law (blocks).
    pub age_rate: f64,
    /// Distinct HT buckets tokens are minted from.
    pub ht_buckets: usize,
    /// The (c, ℓ) requirement every sampled ring must satisfy.
    pub requirement: DiversityRequirement,
    /// Decoy sampling mode (the baseline/attack-aware comparison axis).
    pub mode: SamplingMode,
}

impl Default for AttackTraceConfig {
    fn default() -> Self {
        AttackTraceConfig {
            blocks: 24,
            births_per_block: 6,
            spends_per_block: 2,
            ring_size: 4,
            careless_every: 3,
            age_rate: 4.0,
            ht_buckets: 12,
            requirement: DiversityRequirement::new(1.0, 2),
            mode: SamplingMode::Baseline,
        }
    }
}

/// Generate a seeded chain trace (deterministic per `(config, seed)`).
pub fn generate_attack_trace(cfg: &AttackTraceConfig, seed: u64) -> ChainTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ht_of: Vec<HtId> = Vec::new();
    let mut birth_height: Vec<u64> = Vec::new();
    let mut spent: Vec<bool> = Vec::new();

    let mut rings: Vec<RingSet> = Vec::new();
    let mut truth: Vec<TokenId> = Vec::new();
    let mut spend_height: Vec<u64> = Vec::new();
    // The adversary-computable spent closure the attack-aware sampler
    // steers around: tokens burned in zero-mixin rings.
    let mut known_spent: BTreeSet<TokenId> = BTreeSet::new();
    let mut spend_counter = 0usize;

    for h in 0..cfg.blocks as u64 {
        for _ in 0..cfg.births_per_block {
            ht_of.push(HtId(rng.gen_range(0..cfg.ht_buckets.max(1) as u32)));
            birth_height.push(h);
            spent.push(false);
        }
        for _ in 0..cfg.spends_per_block {
            let Some(target) = pick_spender(&birth_height, &spent, h, cfg.age_rate, &mut rng)
            else {
                continue;
            };
            spent[target.0 as usize] = true;
            spend_counter += 1;
            let careless =
                cfg.careless_every > 0 && spend_counter.is_multiple_of(cfg.careless_every);
            let ring = if careless {
                known_spent.insert(target);
                RingSet::new([target])
            } else {
                let universe = TokenUniverse::new(ht_of.clone());
                let pool = MixinPool {
                    universe: &universe,
                    birth_height: &birth_height,
                    current_height: h,
                };
                sample_ring(
                    &pool,
                    target,
                    cfg.ring_size,
                    &cfg.requirement,
                    cfg.mode,
                    &known_spent,
                    cfg.age_rate,
                    &mut rng,
                )
            };
            rings.push(ring);
            truth.push(target);
            spend_height.push(h);
        }
    }

    ChainTrace {
        universe: TokenUniverse::new(ht_of),
        rings,
        truth,
        birth_height,
        spend_height,
    }
}

/// Draw the next spender: a desired age from the exponential law, then
/// the unspent token whose age is closest (ties to the younger token) —
/// real chains spend young.
fn pick_spender<R: Rng + ?Sized>(
    birth_height: &[u64],
    spent: &[bool],
    height: u64,
    age_rate: f64,
    rng: &mut R,
) -> Option<TokenId> {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let desired = (-u.ln() * age_rate.max(1e-9)).round() as u64;
    let mut best: Option<(u64, u32)> = None; // (err, token id)
    for (i, (&b, &s)) in birth_height.iter().zip(spent).enumerate() {
        if s {
            continue;
        }
        let err = height.saturating_sub(b).abs_diff(desired);
        match best {
            Some((e, id)) if (err, u32::MAX - i as u32) >= (e, u32::MAX - id) => {}
            _ => best = Some((err, i as u32)),
        }
    }
    best.map(|(_, id)| TokenId(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = AttackTraceConfig::default();
        let a = generate_attack_trace(&cfg, 11);
        let b = generate_attack_trace(&cfg, 11);
        assert_eq!(a, b);
        let c = generate_attack_trace(&cfg, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn ground_truth_is_consistent() {
        let cfg = AttackTraceConfig::default();
        let t = generate_attack_trace(&cfg, 3);
        assert_eq!(t.rings.len(), t.truth.len());
        assert_eq!(t.rings.len(), t.spend_height.len());
        assert_eq!(t.universe.len(), t.birth_height.len());
        // Every ring contains its true spend; no token is spent twice.
        let mut seen = BTreeSet::new();
        for (ring, &tok) in t.rings.iter().zip(&t.truth) {
            assert!(ring.contains(tok));
            assert!(seen.insert(tok), "double spend of {tok:?}");
        }
    }

    #[test]
    fn careless_spends_are_singletons_at_the_configured_cadence() {
        let cfg = AttackTraceConfig {
            careless_every: 3,
            ..Default::default()
        };
        let t = generate_attack_trace(&cfg, 7);
        let singletons = t.rings.iter().filter(|r| r.len() == 1).count();
        assert_eq!(singletons, t.rings.len() / 3);
        let full = AttackTraceConfig {
            careless_every: 0,
            ..Default::default()
        };
        let t = generate_attack_trace(&full, 7);
        assert!(t.rings.iter().all(|r| r.len() == cfg.ring_size));
    }

    #[test]
    fn non_careless_rings_satisfy_the_requirement() {
        let cfg = AttackTraceConfig::default();
        for mode in [SamplingMode::Baseline, SamplingMode::AttackAware] {
            let t = generate_attack_trace(
                &AttackTraceConfig {
                    mode,
                    ..cfg
                },
                21,
            );
            for ring in t.rings.iter().filter(|r| r.len() > 1) {
                assert!(
                    cfg.requirement.satisfied_by_ring(ring, &t.universe),
                    "{mode}: {ring:?}"
                );
            }
        }
    }

    #[test]
    fn attack_aware_avoids_the_singleton_closure() {
        let cfg = AttackTraceConfig {
            mode: SamplingMode::AttackAware,
            ..Default::default()
        };
        let t = generate_attack_trace(&cfg, 13);
        // Tokens burned in singleton rings before ring i must not appear
        // as decoys in later attack-aware rings.
        let mut burned: BTreeSet<TokenId> = BTreeSet::new();
        for (ring, &tok) in t.rings.iter().zip(&t.truth) {
            if ring.len() > 1 {
                for &m in ring.tokens() {
                    assert!(
                        m == tok || !burned.contains(&m),
                        "decoy {m:?} was provably spent"
                    );
                }
            } else {
                burned.insert(tok);
            }
        }
    }

    #[test]
    fn spends_skew_young() {
        let cfg = AttackTraceConfig {
            blocks: 40,
            ..Default::default()
        };
        let t = generate_attack_trace(&cfg, 5);
        let mean_age: f64 = t
            .truth
            .iter()
            .zip(&t.spend_height)
            .map(|(tok, &h)| (h - t.birth_height[tok.0 as usize]) as f64)
            .sum::<f64>()
            / t.truth.len() as f64;
        // The exponential law has mean age_rate; allow generous slack for
        // the closest-unspent snapping.
        assert!(mean_age < 3.0 * cfg.age_rate, "mean age {mean_age}");
    }
}
