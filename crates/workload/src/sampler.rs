//! Experiment-instance sampling: the paper samples 1000 problem instances
//! per configuration point and reports mean ring size and running time.
//! This module provides the shared sampling loop used by the figure
//! harness and the Criterion benches.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dams_core::{ModularInstance, PracticalAlgorithm, SelectionPolicy, TokenMagic};
use dams_diversity::{NeighborTracker, TokenId};

/// One measured point: mean ring size and mean per-selection time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPoint {
    /// Mean |r_τ| over successful selections.
    pub mean_size: f64,
    /// Mean wall time per selection in microseconds.
    pub mean_micros: f64,
    /// Number of successful selections (failures excluded, counted apart).
    pub successes: usize,
    /// Number of infeasible/failed selections.
    pub failures: usize,
}

/// Run `samples` selections of `algorithm` on instances produced by
/// `make_instance`, each time targeting a random token.
///
/// `make_instance` receives the sample index so callers can regenerate a
/// fresh instance per sample (the paper's methodology) or reuse one.
pub fn measure<F>(
    algorithm: PracticalAlgorithm,
    policy: SelectionPolicy,
    samples: usize,
    seed: u64,
    mut make_instance: F,
) -> MeasuredPoint
where
    F: FnMut(usize, &mut StdRng) -> ModularInstance,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total_size = 0usize;
    let mut total_nanos = 0u128;
    let mut successes = 0usize;
    let mut failures = 0usize;

    for sample in 0..samples {
        let instance = make_instance(sample, &mut rng);
        let target = TokenId(rng.gen_range(0..instance.universe.len() as u32));
        let tm = TokenMagic::new(algorithm, policy);
        let start = Instant::now();
        // Direct per-token selection: the figure experiments time the
        // selection algorithm itself (Algorithm 1's outer loop runs the
        // same algorithm |T| times and would only scale all curves by |T|).
        let result = tm.select_for(&instance, target, &mut rng);
        let elapsed = start.elapsed().as_nanos();
        match result {
            Ok(sel) => {
                total_size += sel.size();
                total_nanos += elapsed;
                successes += 1;
            }
            Err(_) => failures += 1,
        }
    }

    MeasuredPoint {
        mean_size: if successes > 0 {
            total_size as f64 / successes as f64
        } else {
            f64::NAN
        },
        mean_micros: if successes > 0 {
            total_nanos as f64 / successes as f64 / 1_000.0
        } else {
            f64::NAN
        },
        successes,
        failures,
    }
}

/// Run the full TokenMagic framework (Algorithm 1 outer loop) once and
/// time it; used by framework-overhead experiments.
pub fn measure_framework(
    algorithm: PracticalAlgorithm,
    policy: SelectionPolicy,
    instance: &ModularInstance,
    target: TokenId,
    seed: u64,
) -> (Option<usize>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let tm = TokenMagic::new(algorithm, policy);
    let tracker = NeighborTracker::new();
    let start = Instant::now();
    let result = tm.generate(instance, target, &tracker, &mut rng);
    let micros = start.elapsed().as_nanos() as f64 / 1_000.0;
    (result.ok().map(|s| s.size()), micros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;
    use dams_diversity::DiversityRequirement;

    fn policy() -> SelectionPolicy {
        SelectionPolicy::new(DiversityRequirement::new(0.6, 10))
    }

    #[test]
    fn measure_reports_successes() {
        let cfg = SyntheticConfig {
            num_super: 10,
            super_size: (3, 6),
            num_fresh: 5,
            sigma: 8.0,
            ht_model: None,
        };
        let p = measure(
            PracticalAlgorithm::Smallest,
            policy(),
            10,
            7,
            |_, rng| cfg.generate(rng),
        );
        assert_eq!(p.successes + p.failures, 10);
        if p.successes > 0 {
            assert!(p.mean_size >= 1.0);
            assert!(p.mean_micros > 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SyntheticConfig {
            num_super: 8,
            super_size: (2, 4),
            num_fresh: 2,
            sigma: 6.0,
            ht_model: None,
        };
        let a = measure(PracticalAlgorithm::Progressive, policy(), 5, 3, |_, rng| {
            cfg.generate(rng)
        });
        let b = measure(PracticalAlgorithm::Progressive, policy(), 5, 3, |_, rng| {
            cfg.generate(rng)
        });
        assert_eq!(a.mean_size.to_bits(), b.mean_size.to_bits());
        assert_eq!(a.successes, b.successes);
    }

    #[test]
    fn framework_measurement_runs() {
        let cfg = SyntheticConfig {
            num_super: 6,
            super_size: (2, 3),
            num_fresh: 2,
            sigma: 6.0,
            ht_model: None,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let inst = cfg.generate(&mut rng);
        let (size, micros) = measure_framework(
            PracticalAlgorithm::Smallest,
            SelectionPolicy::new(DiversityRequirement::new(1.0, 2)),
            &inst,
            TokenId(0),
            5,
        );
        assert!(micros > 0.0);
        if let Some(s) = size {
            assert!(s >= 1);
        }
    }
}
