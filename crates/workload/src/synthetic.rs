//! Synthetic instance generation per Table 3 of the paper.
//!
//! Parameters: number of super RSs `|S|` (10…90, default 50), super-RS size
//! range `|s_i|` (\[1,10\]…\[20,30\], default \[10,20\]), fresh-token count `|F|`
//! (0…20, default 10), and the variance σ of the normal distribution that
//! assigns each token its historical transaction (8…16, default 12).
//!
//! HT assignment follows the paper's construction: each token's HT index is
//! drawn from `N(0, σ²)` and rounded, so central HTs output many tokens and
//! the tail HTs few — with σ = 16 and ~800 tokens the busiest HT outputs
//! ≈ 16 tokens, matching Monero's observed maximum (§7.1).

use rand::Rng;

use dams_core::{Instance, ModularInstance, Module, ModuleId, ModuleKind};
use dams_diversity::{DiversityRequirement, HtId, RingIndex, RingSet, TokenId, TokenUniverse};

/// How tokens are assigned to historical transactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HtModel {
    /// The paper's model: HT index = round(N(0, σ²)).
    Normal { sigma: f64 },
    /// A Zipf-like skew: HT `k` drawn with probability ∝ `1/(k+1)^s` over
    /// `hts` buckets — an extension axis modelling the heavy-tailed
    /// transaction-output skew seen on real chains.
    Zipf { hts: usize, s: f64 },
}

/// Table 3 parameters (defaults are the paper's bold values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// `|S|` — number of super RSs.
    pub num_super: usize,
    /// `[s⁻, s⁺]` — inclusive size range of each super RS.
    pub super_size: (usize, usize),
    /// `|F|` — number of fresh tokens.
    pub num_fresh: usize,
    /// σ — the standard deviation of the HT assignment normal (used when
    /// [`Self::ht_model`] is `Normal`; kept as a top-level field because
    /// it is the Table 3 sweep axis).
    pub sigma: f64,
    /// The HT assignment model; `None` means `Normal { sigma }`.
    pub ht_model: Option<HtModel>,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_super: 50,
            super_size: (10, 20),
            num_fresh: 10,
            sigma: 12.0,
            ht_model: None,
        }
    }
}

impl SyntheticConfig {
    /// Generate a modular instance (the natural product: Table 3 speaks in
    /// super RSs and fresh tokens directly).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> ModularInstance {
        assert!(self.super_size.0 >= 1 && self.super_size.0 <= self.super_size.1);
        // Draw module sizes first to know the token count.
        let sizes: Vec<usize> = (0..self.num_super)
            .map(|_| rng.gen_range(self.super_size.0..=self.super_size.1))
            .collect();
        let total: usize = sizes.iter().sum::<usize>() + self.num_fresh;

        // HT per token from the configured model, shifted to dense ids.
        let model = self.ht_model.unwrap_or(HtModel::Normal { sigma: self.sigma });
        let raw: Vec<i64> = match model {
            HtModel::Normal { sigma } => (0..total)
                .map(|_| (normal_sample(rng) * sigma).round() as i64)
                .collect(),
            HtModel::Zipf { hts, s } => {
                // Inverse-CDF sampling over the truncated Zipf weights.
                let weights: Vec<f64> = (0..hts.max(1))
                    .map(|k| 1.0 / ((k + 1) as f64).powf(s))
                    .collect();
                let total_w: f64 = weights.iter().sum();
                (0..total)
                    .map(|_| {
                        let mut u = rng.gen_range(0.0..total_w);
                        let mut k = 0usize;
                        for (i, w) in weights.iter().enumerate() {
                            if u < *w {
                                k = i;
                                break;
                            }
                            u -= w;
                            k = i;
                        }
                        k as i64
                    })
                    .collect()
            }
        };
        let min = raw.iter().copied().min().unwrap_or(0);
        let universe = TokenUniverse::new(
            raw.into_iter()
                .map(|v| HtId((v - min) as u32))
                .collect(),
        );

        // Partition tokens into modules: contiguous id blocks are fine —
        // HT assignment is already random, so block membership is
        // independent of HT.
        let mut modules = Vec::with_capacity(self.num_super + self.num_fresh);
        let mut next = 0u32;
        for (i, &sz) in sizes.iter().enumerate() {
            let tokens: RingSet = (next..next + sz as u32).map(TokenId).collect();
            next += sz as u32;
            modules.push(Module {
                id: ModuleId(i),
                kind: ModuleKind::SuperRs(dams_diversity::RsId(i as u32)),
                tokens,
            });
        }
        for j in 0..self.num_fresh {
            modules.push(Module {
                id: ModuleId(self.num_super + j),
                kind: ModuleKind::FreshToken,
                tokens: RingSet::new([TokenId(next)]),
            });
            next += 1;
        }
        ModularInstance::from_modules(universe, modules)
    }

    /// Generate the equivalent raw [`Instance`] (for the exact BFS path):
    /// super RSs become committed rings with the given claimed requirement.
    pub fn generate_instance<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        claim: DiversityRequirement,
    ) -> Instance {
        let modular = self.generate(rng);
        let rings = RingIndex::from_rings(
            modular
                .modules()
                .iter()
                .filter(|m| matches!(m.kind, ModuleKind::SuperRs(_)))
                .map(|m| m.tokens.clone()),
        );
        let claims = vec![claim; rings.len()];
        Instance::new(modular.universe.clone(), rings, claims)
    }
}

/// A small-universe generator for exact-algorithm experiments (Fig. 4 uses
/// 20 tokens): `n` tokens, HTs via the same normal assignment, no
/// pre-existing rings.
pub fn small_universe<R: Rng + ?Sized>(n: usize, sigma: f64, rng: &mut R) -> TokenUniverse {
    let raw: Vec<i64> = (0..n)
        .map(|_| (normal_sample(rng) * sigma).round() as i64)
        .collect();
    let min = raw.iter().copied().min().unwrap_or(0);
    TokenUniverse::new(raw.into_iter().map(|v| HtId((v - min) as u32)).collect())
}

/// A standard-normal sample via Box–Muller (keeps the dependency footprint
/// to `rand` itself; `rand_distr` is not on the approved crate list).
fn normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_matches_table3_bold_values() {
        let c = SyntheticConfig::default();
        assert_eq!(c.num_super, 50);
        assert_eq!(c.super_size, (10, 20));
        assert_eq!(c.num_fresh, 10);
        assert_eq!(c.sigma, 12.0);
    }

    #[test]
    fn generated_structure_matches_config() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SyntheticConfig {
            num_super: 7,
            super_size: (3, 5),
            num_fresh: 4,
            sigma: 8.0,
            ht_model: None,
        };
        let inst = cfg.generate(&mut rng);
        assert_eq!(inst.super_count(), 7);
        assert_eq!(inst.fresh_count(), 4);
        for m in inst.modules() {
            match m.kind {
                ModuleKind::SuperRs(_) => {
                    assert!((3..=5).contains(&m.len()), "{m:?}");
                }
                ModuleKind::FreshToken => assert_eq!(m.len(), 1),
            }
        }
        let expect_tokens: usize = inst.modules().iter().map(Module::len).sum();
        assert_eq!(inst.universe.len(), expect_tokens);
    }

    #[test]
    fn sigma_controls_ht_concentration() {
        // Smaller σ → the most frequent HT appears more often.
        let mut rng = StdRng::seed_from_u64(2);
        let narrow = SyntheticConfig {
            sigma: 2.0,
            ..Default::default()
        }
        .generate(&mut rng);
        let wide = SyntheticConfig {
            sigma: 30.0,
            ..Default::default()
        }
        .generate(&mut rng);
        assert!(
            narrow.q_max() > wide.q_max(),
            "narrow {} vs wide {}",
            narrow.q_max(),
            wide.q_max()
        );
    }

    #[test]
    fn paper_scale_sanity() {
        // σ = 16, ~800 tokens → busiest HT ≈ 16 tokens (the Monero max).
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SyntheticConfig {
            num_super: 53,
            super_size: (15, 15),
            num_fresh: 5,
            sigma: 16.0,
            ht_model: None,
        };
        let inst = cfg.generate(&mut rng);
        assert_eq!(inst.universe.len(), 800);
        // Central bucket expectation: 800 · P(round(N(0,16)) = 0) ≈ 20,
        // Poisson-ish spread; the paper quotes "around 16" for Monero.
        let q = inst.q_max();
        assert!((8..=36).contains(&q), "q_max = {q} out of plausible band");
    }

    #[test]
    fn instance_view_matches_modular() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SyntheticConfig {
            num_super: 5,
            super_size: (2, 4),
            num_fresh: 3,
            sigma: 8.0,
            ht_model: None,
        };
        let claim = DiversityRequirement::new(1.0, 2);
        let inst = cfg.generate_instance(&mut rng, claim);
        assert_eq!(inst.rings.len(), 5);
        // decomposing the raw instance recovers a modular view with the
        // same super count
        let modular = ModularInstance::decompose(&inst).unwrap();
        assert_eq!(modular.super_count(), 5);
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = SyntheticConfig::default();
        let a = cfg.generate(&mut StdRng::seed_from_u64(9));
        let b = cfg.generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(a.universe.len(), b.universe.len());
        assert_eq!(a.q_max(), b.q_max());
    }

    #[test]
    fn zipf_model_skews_toward_low_hts() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = SyntheticConfig {
            num_super: 20,
            super_size: (10, 10),
            num_fresh: 0,
            sigma: 12.0,
            ht_model: Some(HtModel::Zipf { hts: 30, s: 1.2 }),
        };
        let inst = cfg.generate(&mut rng);
        assert_eq!(inst.universe.len(), 200);
        // Zipf head dominates: the busiest HT holds far more than uniform.
        let q = inst.q_max();
        assert!(q > 200 / 30 * 2, "q_max = {q} not Zipf-skewed");
        // All HT ids stay within the configured bucket count.
        assert!(inst.universe.distinct_hts() <= 30);
    }

    #[test]
    fn zipf_is_deterministic_per_seed() {
        let cfg = SyntheticConfig {
            ht_model: Some(HtModel::Zipf { hts: 10, s: 1.0 }),
            ..Default::default()
        };
        let a = cfg.generate(&mut StdRng::seed_from_u64(8));
        let b = cfg.generate(&mut StdRng::seed_from_u64(8));
        assert_eq!(a.q_max(), b.q_max());
    }

    #[test]
    fn small_universe_size() {
        let mut rng = StdRng::seed_from_u64(5);
        let u = small_universe(20, 3.0, &mut rng);
        assert_eq!(u.len(), 20);
        assert!(u.distinct_hts() >= 2);
    }
}
