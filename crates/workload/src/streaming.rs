//! A constant-memory streaming chain generator for million-token scale.
//!
//! The substrate-backed generators ([`crate::chainload`]) pay real
//! cryptography per token, which caps experiments near 10⁴ tokens. The
//! streaming generator emits the *index-level* view of a growing chain —
//! a [`BlockDelta`] per block, with minted tokens, HT keys, and committed
//! rings — directly, so a soak run can grow a chain to 10⁶ tokens while
//! the generator itself holds only O(λ) state: the open batch's unused
//! tokens.
//!
//! Rings are drawn from tokens of the open batch that no earlier ring of
//! that batch used, so the committed history is laminar by construction
//! (disjoint-or-nested — here disjoint), exactly the shape honest
//! TokenMagic wallets produce. Every stream is a pure function of its
//! seed: two iterators with the same [`StreamConfig`] yield byte-identical
//! block sequences.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dams_core::{BlockDelta, DeltaRing};

/// Shape of a streamed chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// PRNG seed; the whole stream is a deterministic function of it.
    pub seed: u64,
    /// TokenMagic batch parameter λ (a batch closes at ≥ λ tokens).
    pub lambda: usize,
    /// Inclusive range of transactions minted per block.
    pub txs_per_block: (usize, usize),
    /// Inclusive range of tokens minted per transaction (one HT each).
    pub tokens_per_tx: (usize, usize),
    /// Probability that a block commits ring signatures.
    pub ring_rate: f64,
    /// Inclusive range of ring sizes (clamped to the unused pool).
    pub ring_size: (usize, usize),
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            seed: 0,
            lambda: 64,
            txs_per_block: (1, 3),
            tokens_per_tx: (1, 4),
            ring_rate: 0.6,
            ring_size: (2, 5),
        }
    }
}

/// The streaming generator: an infinite iterator of [`BlockDelta`]s.
///
/// Memory is O(λ) regardless of how many blocks have been emitted — the
/// only retained chain state is the open batch's pool of ring-unused
/// tokens, which closing a batch clears.
pub struct ChainStream {
    cfg: StreamConfig,
    rng: StdRng,
    next_height: u64,
    next_token: u64,
    next_ht: u64,
    /// Tokens of the open batch not yet used by any of its rings.
    unused: Vec<u64>,
    /// Tokens minted into the open batch so far (count only).
    open_batch_tokens: usize,
}

impl ChainStream {
    pub fn new(cfg: StreamConfig) -> Self {
        ChainStream {
            rng: StdRng::seed_from_u64(cfg.seed ^ STREAM_DOMAIN),
            cfg,
            next_height: 0,
            next_token: 0,
            next_ht: 0,
            unused: Vec::new(),
            open_batch_tokens: 0,
        }
    }

    /// Tokens emitted so far (== the id the next minted token will get).
    pub fn tokens_emitted(&self) -> u64 {
        self.next_token
    }

    /// Blocks emitted so far (== the next block's height).
    pub fn blocks_emitted(&self) -> u64 {
        self.next_height
    }

    /// Emit blocks until at least `target` tokens exist, collecting them.
    pub fn take_until_tokens(&mut self, target: u64) -> Vec<BlockDelta> {
        let mut out = Vec::new();
        while self.next_token < target {
            out.push(self.next_block());
        }
        out
    }

    /// Generate the next block.
    pub fn next_block(&mut self) -> BlockDelta {
        let cfg = self.cfg;
        let mut minted = Vec::new();
        let txs = self.rng.gen_range(cfg.txs_per_block.0..=cfg.txs_per_block.1.max(1));
        for _ in 0..txs.max(1) {
            let ht = self.next_ht;
            self.next_ht += 1;
            let count = self
                .rng
                .gen_range(cfg.tokens_per_tx.0.max(1)..=cfg.tokens_per_tx.1.max(1));
            for _ in 0..count {
                minted.push((self.next_token, ht));
                self.unused.push(self.next_token);
                self.next_token += 1;
            }
        }
        self.open_batch_tokens += minted.len();

        // Rings reference tokens already on chain (strictly: minted in an
        // earlier block of the open batch and unused by its other rings),
        // so drawing happens before this block's mints joined the pool —
        // except they just did; exclude them by only drawing from the
        // pool's prefix predating this block.
        let prior = self.unused.len() - minted.len();
        let mut rings = Vec::new();
        if prior >= cfg.ring_size.0.max(2) && self.rng.gen_bool(cfg.ring_rate.clamp(0.0, 1.0)) {
            let want = self
                .rng
                .gen_range(cfg.ring_size.0.max(2)..=cfg.ring_size.1.max(2))
                .min(prior);
            let mut tokens = Vec::with_capacity(want);
            for _ in 0..want {
                let pick = self.rng.gen_range(0..prior - tokens.len());
                // Swap the pick to the back of the prior region, then take
                // it out; O(1) per draw, keeps `unused` a set.
                let limit = prior - tokens.len();
                self.unused.swap(pick, limit - 1);
                tokens.push(self.unused.remove(limit - 1));
            }
            tokens.sort_unstable();
            let claimed_c = if self.rng.gen_bool(0.5) { 0.5 } else { 1.0 };
            let claimed_l = self.rng.gen_range(1..=2usize);
            rings.push(DeltaRing {
                tokens,
                claimed_c,
                claimed_l,
            });
        }

        // Batch closure mirrors `BatchList::build`: close after adding the
        // whole block once the count reaches λ, then start a fresh pool.
        if self.open_batch_tokens >= cfg.lambda.max(1) {
            self.open_batch_tokens = 0;
            self.unused.clear();
        }

        let height = self.next_height;
        self.next_height += 1;
        BlockDelta {
            height,
            minted,
            rings,
        }
    }
}

impl Iterator for ChainStream {
    type Item = BlockDelta;

    fn next(&mut self) -> Option<BlockDelta> {
        Some(self.next_block())
    }
}

/// Domain-separation constant for the stream's PRNG (so a seed shared
/// with other harness components still draws an independent stream).
const STREAM_DOMAIN: u64 = 0x057e_aa11_ed05_c4a1;

#[cfg(test)]
mod tests {
    use super::*;
    use dams_core::{recompute_equivalence, DiversityIndex};

    #[test]
    fn stream_is_deterministic_in_its_seed() {
        let cfg = StreamConfig {
            seed: 9,
            lambda: 16,
            ..StreamConfig::default()
        };
        let a: Vec<BlockDelta> = ChainStream::new(cfg).take(200).collect();
        let b: Vec<BlockDelta> = ChainStream::new(cfg).take(200).collect();
        assert_eq!(a, b);
        let c: Vec<BlockDelta> = ChainStream::new(StreamConfig { seed: 10, ..cfg })
            .take(200)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn stream_feeds_the_index_and_matches_recompute() {
        for seed in 0..8u64 {
            let cfg = StreamConfig {
                seed,
                lambda: 12,
                ..StreamConfig::default()
            };
            let mut stream = ChainStream::new(cfg);
            let deltas = stream.take_until_tokens(300);
            let mut index = DiversityIndex::new(cfg.lambda);
            for d in &deltas {
                index.apply_block(d).unwrap();
            }
            assert_eq!(index.token_count(), stream.tokens_emitted());
            assert!(index.token_count() >= 300);
            recompute_equivalence(&index, &deltas).unwrap();
        }
    }

    #[test]
    fn generator_state_stays_bounded() {
        let cfg = StreamConfig {
            seed: 3,
            lambda: 32,
            ..StreamConfig::default()
        };
        let mut stream = ChainStream::new(cfg);
        for _ in 0..5_000 {
            stream.next_block();
            // Pool ≤ open batch ≤ λ + one block's worth of mints.
            assert!(stream.unused.len() <= 32 + 3 * 4);
        }
        assert!(stream.tokens_emitted() > 5_000);
    }

    #[test]
    fn rings_are_committed_and_laminar() {
        let cfg = StreamConfig {
            seed: 4,
            lambda: 24,
            ring_rate: 1.0,
            ..StreamConfig::default()
        };
        let deltas: Vec<BlockDelta> = ChainStream::new(cfg).take(400).collect();
        let ring_count: usize = deltas.iter().map(|d| d.rings.len()).sum();
        assert!(ring_count > 50, "only {ring_count} rings in 400 blocks");
        // Laminarity: the index accepts every block without breaking any
        // batch (a straddling ring would mark its batch broken).
        let mut index = DiversityIndex::new(cfg.lambda);
        for d in &deltas {
            index.apply_block(d).unwrap();
        }
        for b in 0..index.batch_count() {
            if index.batch_closed(b) {
                let snap = index.snapshot(b).expect("closed batch has a snapshot");
                assert!(
                    snap.modular.is_some(),
                    "batch {b} broken — generator emitted a non-laminar ring"
                );
            }
        }
    }
}
