//! Property tests for the degrading selector, asserted through
//! deterministic metrics snapshots.
//!
//! Each property sweeps 64 seeds of small random instances (the scale
//! where the exact BFS is affordable) and records every run into a fresh
//! [`dams_obs::Registry`], so the snapshot counters double as the test
//! oracle: "the exact tier answered every time" is
//! `core.degrade.answered.exact_bfs_total == runs`, not an inference from
//! return values alone. The registry-per-test pattern is what keeps the
//! counters exact under the parallel test runner.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dams_core::{
    bfs, select_with_ladder_observed, BfsBudget, CoreMetrics, DegradeBudget, SelectError,
    SelectionPolicy, Tier,
};
use dams_diversity::{DiversityRequirement, HtHistogram, HtId, TokenId, TokenUniverse};
use dams_obs::{Mode, Registry};

const SEEDS: u64 = 64;

/// A generous budget: no deadline, default (huge) counter limits.
fn generous() -> DegradeBudget {
    DegradeBudget {
        exact_timeout: None,
        bfs: BfsBudget::default(),
    }
}

/// A starved exact budget: the BFS exhausts before examining anything.
fn starved() -> DegradeBudget {
    DegradeBudget {
        exact_timeout: None,
        bfs: BfsBudget {
            max_candidates: 0,
            max_worlds: 4,
            deadline: None,
        },
    }
}

/// A small random fresh instance plus a policy and an in-universe target.
fn random_case(seed: u64) -> (dams_core::Instance, SelectionPolicy, TokenId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n: u32 = rng.gen_range(4u32..=8);
    let hts: u32 = rng.gen_range(2u32..=4);
    let universe = TokenUniverse::new((0..n).map(|_| HtId(rng.gen_range(0..hts))).collect());
    let instance = dams_core::Instance::fresh(universe);
    let c = [1.0, 1.5, 2.0][rng.gen_range(0..3usize)];
    let l = rng.gen_range(1..=3usize);
    let policy = SelectionPolicy::new(DiversityRequirement::new(c, l));
    let target = TokenId(rng.gen_range(0..n));
    (instance, policy, target)
}

/// Run the default ladder for one seed into `metrics`.
fn run_ladder(
    seed: u64,
    budget: DegradeBudget,
    metrics: &CoreMetrics,
) -> Result<dams_core::DegradedSelection, SelectError> {
    let (instance, policy, target) = random_case(seed);
    select_with_ladder_observed(
        &instance,
        target,
        policy,
        budget,
        &Tier::DEFAULT_LADDER,
        metrics,
    )
}

/// Whatever tier answers, its guarantee must be consistent with the exact
/// optimum: `|ring| <= bound * |optimal ring|`, and the ring must satisfy
/// the (c, l) requirement. Checked against an independently computed BFS
/// answer on instances small enough that the exact search always finishes.
#[test]
fn tier_guarantee_is_consistent_with_exact_answer() {
    let registry = Registry::new();
    let metrics = CoreMetrics::in_registry(&registry);
    let mut answered = 0u64;
    for seed in 0..SEEDS {
        let (instance, policy, target) = random_case(seed);
        let exact = bfs(&instance, target, policy.effective(), BfsBudget::default());
        let got = select_with_ladder_observed(
            &instance,
            target,
            policy,
            generous(),
            &Tier::DEFAULT_LADDER,
            &metrics,
        );
        match (exact, got) {
            (Ok(optimal), Ok(sel)) => {
                answered += 1;
                let hist = HtHistogram::from_ring(&sel.selection.ring, &instance.universe);
                assert!(
                    policy.effective().satisfied_by(&hist),
                    "seed {seed}: degraded ring violates the requirement"
                );
                assert!(
                    sel.selection.ring.contains(target),
                    "seed {seed}: ring omits the target"
                );
                let bound = sel.guarantee.ratio_bound();
                assert!(
                    sel.selection.size() as f64 <= bound * optimal.size() as f64 + 1e-9,
                    "seed {seed}: ring {} exceeds {bound:.3}x of optimal {}",
                    sel.selection.size(),
                    optimal.size()
                );
            }
            (Err(_), Err(_)) => {} // consistently infeasible
            (Ok(optimal), Err(e)) => {
                panic!("seed {seed}: exact found a {}-ring but ladder failed: {e}", optimal.size())
            }
            (Err(e), Ok(sel)) => panic!(
                "seed {seed}: exact failed ({e}) but ladder answered at {:?}",
                sel.tier
            ),
        }
    }
    // Snapshot oracle: every answer was recorded, sizes included.
    let snap = registry.snapshot();
    let by_tier = snap
        .counter("core.degrade.answered.exact_bfs_total")
        .unwrap()
        + snap
            .counter("core.degrade.answered.progressive_total")
            .unwrap()
        + snap
            .counter("core.degrade.answered.game_theoretic_total")
            .unwrap();
    assert_eq!(by_tier, answered);
    assert_eq!(snap.histogram_count("core.degrade.ring_size"), Some(answered));
    assert!(answered > 0, "sweep produced no feasible instances at all");
}

/// With a generous deadline the exact tier answers every feasible case:
/// no fallbacks, every answer optimal — asserted from the snapshot.
#[test]
fn generous_deadline_always_answers_exact() {
    let registry = Registry::new();
    let metrics = CoreMetrics::in_registry(&registry);
    let mut ok = 0u64;
    for seed in 0..SEEDS {
        if let Ok(sel) = run_ladder(seed, generous(), &metrics) {
            ok += 1;
            assert_eq!(sel.tier, Tier::ExactBfs, "seed {seed} degraded: {sel:?}");
            assert_eq!(sel.guarantee, dams_core::Guarantee::Exact);
            assert!(!sel.degraded());
        }
    }
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("core.degrade.answered.exact_bfs_total"),
        Some(ok)
    );
    assert_eq!(
        snap.counter("core.degrade.answered.progressive_total"),
        Some(0)
    );
    assert_eq!(
        snap.counter("core.degrade.answered.game_theoretic_total"),
        Some(0)
    );
    assert_eq!(snap.counter("core.degrade.fallbacks_total"), Some(0));
}

/// A starved exact budget falls through: nothing is answered by the exact
/// tier, and the fallback counter matches the attempts the selector
/// itself reported.
#[test]
fn starved_budget_falls_back_and_counts_fallbacks() {
    let registry = Registry::new();
    let metrics = CoreMetrics::in_registry(&registry);
    let mut expected_fallbacks = 0u64;
    let mut ok = 0u64;
    for seed in 0..SEEDS {
        if let Ok(sel) = run_ladder(seed, starved(), &metrics) {
            ok += 1;
            assert_ne!(sel.tier, Tier::ExactBfs, "seed {seed}: starved BFS answered");
            assert!(sel.degraded());
            expected_fallbacks += sel.attempts.len() as u64;
        }
    }
    assert!(ok > 0, "sweep produced no feasible instances at all");
    let snap = registry.snapshot();
    assert_eq!(snap.counter("core.degrade.answered.exact_bfs_total"), Some(0));
    assert_eq!(
        snap.counter("core.degrade.fallbacks_total"),
        Some(expected_fallbacks)
    );
}

/// The same seeded sweep recorded into two fresh registries renders
/// byte-identical deterministic snapshots — the contract `dams-cli
/// --metrics` relies on. Timers still count observations in both.
#[test]
fn deterministic_snapshots_are_byte_identical() {
    let sweep = |registry: &Registry| {
        let metrics = CoreMetrics::in_registry(registry);
        for seed in 0..SEEDS {
            let _ = run_ladder(seed, generous(), &metrics);
            let _ = run_ladder(seed, starved(), &metrics);
        }
        registry.snapshot()
    };
    let (a, b) = (sweep(&Registry::new()), sweep(&Registry::new()));
    assert_eq!(
        a.render_text(Mode::Deterministic),
        b.render_text(Mode::Deterministic)
    );
    assert_eq!(
        a.render_json(Mode::Deterministic),
        b.render_json(Mode::Deterministic)
    );
    // Timer counts are part of the deterministic surface.
    assert!(a
        .render_text(Mode::Deterministic)
        .contains("core.degrade.tier.exact_bfs_ns\ttimer\tcount="));
}
