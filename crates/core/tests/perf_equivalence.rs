//! Equivalence sweep for the PR-3 performance work.
//!
//! The optimized selection engines (incremental histograms, evaluation
//! caches, parallel frontier) must return the *same* `Result<Selection,
//! SelectError>` — ring, stats, and error alike — as the seed reference
//! implementations on every instance. This file sweeps 64 seeded random
//! instances through every engine configuration and also pins the cache
//! accounting exported through `dams-obs`.

use dams_core::{
    bfs, bfs_batch, bfs_reference, bfs_with, game_theoretic_from, game_theoretic_reference,
    game_theoretic_with, BfsBudget, BfsOptions, EvalCache, InitStrategy, Instance, ModularInstance,
    Module, ModuleId, ModuleKind, ProfileCache, SelectionPolicy,
};
use dams_diversity::{DiversityRequirement, HtId, RingIndex, RingSet, RsId, TokenId, TokenUniverse};
use dams_obs::Registry;

/// Deterministic xorshift64* — no RNG dependency, stable across platforms.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A small random instance: ≤ 10 tokens over 2–4 HTs, up to 4 committed
/// rings of ≤ 3 tokens with modest claims — sized so the exact reference
/// BFS finishes instantly while still exercising related sets, world
/// enumeration, and DTRS checks.
fn random_instance(rng: &mut XorShift) -> (Instance, DiversityRequirement, TokenId) {
    let n_tokens = 4 + rng.below(7) as usize; // 4..=10
    let n_hts = 2 + rng.below(3) as usize; // 2..=4
    let hts: Vec<HtId> = (0..n_tokens)
        .map(|_| HtId(rng.below(n_hts as u64) as u32))
        .collect();
    let universe = TokenUniverse::new(hts);

    let mut rings = RingIndex::new();
    let mut claims = Vec::new();
    let n_rings = rng.below(4) as usize;
    for _ in 0..n_rings {
        let len = 1 + rng.below(3) as usize;
        let mut members: Vec<TokenId> = Vec::new();
        for _ in 0..len {
            let t = TokenId(rng.below(n_tokens as u64) as u32);
            if !members.contains(&t) {
                members.push(t);
            }
        }
        rings.push(RingSet::new(members));
        // Mostly trivial claims, occasionally a real one, so some sweeps
        // exercise the preserved-diversity rejection path.
        let l = 1 + rng.below(2) as usize;
        claims.push(DiversityRequirement::new(1.0, l));
    }

    let c = [0.5, 1.0, 2.0][rng.below(3) as usize];
    let l = 1 + rng.below(3) as usize;
    let target = TokenId(rng.below(n_tokens as u64) as u32);
    (
        Instance::new(universe, rings, claims),
        DiversityRequirement::new(c, l),
        target,
    )
}

/// A small random *modular* instance: tokens partitioned into 2–4 modules.
fn random_modular(rng: &mut XorShift) -> (ModularInstance, TokenId) {
    let n_tokens = 4 + rng.below(7) as usize;
    let n_hts = 2 + rng.below(3) as usize;
    let hts: Vec<HtId> = (0..n_tokens)
        .map(|_| HtId(rng.below(n_hts as u64) as u32))
        .collect();
    let universe = TokenUniverse::new(hts);

    let n_modules = 2 + rng.below(3) as usize;
    let mut members: Vec<Vec<TokenId>> = vec![Vec::new(); n_modules];
    for t in 0..n_tokens {
        members[rng.below(n_modules as u64) as usize].push(TokenId(t as u32));
    }
    let modules: Vec<Module> = members
        .into_iter()
        .filter(|m| !m.is_empty())
        .enumerate()
        .map(|(i, tokens)| Module {
            id: ModuleId(i),
            kind: if tokens.len() == 1 {
                ModuleKind::FreshToken
            } else {
                ModuleKind::SuperRs(RsId(i as u32))
            },
            tokens: RingSet::new(tokens),
        })
        .collect();
    let target = TokenId(rng.below(n_tokens as u64) as u32);
    (ModularInstance::from_modules(universe, modules), target)
}

#[test]
fn bfs_engines_agree_across_64_seeds() {
    let budget = BfsBudget::default();
    for seed in 0..64u64 {
        let mut rng = XorShift::new(seed);
        let (instance, req, target) = random_instance(&mut rng);

        let reference = bfs_reference(&instance, target, req, budget);
        let optimized = bfs(&instance, target, req, budget);
        assert_eq!(reference, optimized, "seed {seed}: sequential optimized");

        for workers in [2usize, 3] {
            let options = BfsOptions { budget, workers };
            let parallel = bfs_with(&instance, target, req, &options, None);
            assert_eq!(reference, parallel, "seed {seed}: workers={workers}");
        }

        let cache = EvalCache::new();
        let options = BfsOptions { budget, workers: 1 };
        let cold = bfs_with(&instance, target, req, &options, Some(&cache));
        let warm = bfs_with(&instance, target, req, &options, Some(&cache));
        assert_eq!(reference, cold, "seed {seed}: cached cold");
        assert_eq!(reference, warm, "seed {seed}: cached warm");

        // Parallel + warm cache together, the full production configuration.
        let options = BfsOptions { budget, workers: 2 };
        let both = bfs_with(&instance, target, req, &options, Some(&cache));
        assert_eq!(reference, both, "seed {seed}: parallel cached");
    }
}

#[test]
fn game_engines_agree_across_64_seeds() {
    for seed in 0..64u64 {
        let mut rng = XorShift::new(seed ^ 0xA5A5_A5A5);
        let (instance, target) = random_modular(&mut rng);
        let c = [0.5, 1.0, 2.0][rng.below(3) as usize];
        let l = 1 + rng.below(3) as usize;
        let policy = SelectionPolicy::new(DiversityRequirement::new(c, l));

        for init in [InitStrategy::CoverageGreedy, InitStrategy::AllSelected] {
            let reference = game_theoretic_reference(&instance, target, policy, init);
            let optimized = game_theoretic_from(&instance, target, policy, init);
            assert_eq!(reference, optimized, "seed {seed} {init:?}: incremental");

            let cache = ProfileCache::new();
            let cold = game_theoretic_with(&instance, target, policy, init, Some(&cache));
            let warm = game_theoretic_with(&instance, target, policy, init, Some(&cache));
            assert_eq!(reference, cold, "seed {seed} {init:?}: cached cold");
            assert_eq!(reference, warm, "seed {seed} {init:?}: cached warm");
        }
    }
}

#[test]
fn bfs_cache_accounting_is_exact() {
    // On a cold sequential run every expensive-check lookup misses and the
    // outcome is stored; an identical warm run hits on every lookup. The
    // exported counters must account for every evaluation:
    // hits + misses == total lookups, and misses == stored outcomes.
    let mut rng = XorShift::new(7);
    let (instance, req, target) = random_instance(&mut rng);
    let budget = BfsBudget::default();
    let options = BfsOptions { budget, workers: 1 };

    let registry = Registry::new();
    let cache = EvalCache::in_registry(1 << 16, &registry);

    let cold = bfs_with(&instance, target, req, &options, Some(&cache));
    let snap = registry.snapshot();
    let cold_hits = snap.counter("core.cache.hits_total").unwrap();
    let cold_misses = snap.counter("core.cache.misses_total").unwrap();
    assert_eq!(cold_hits, 0, "distinct candidates cannot hit a cold cache");
    assert_eq!(
        cold_misses,
        cache.len() as u64,
        "every miss stores exactly one outcome (no errors, no evictions)"
    );
    assert_eq!(snap.counter("core.cache.evictions_total"), Some(0));

    let warm = bfs_with(&instance, target, req, &options, Some(&cache));
    assert_eq!(cold, warm);
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("core.cache.hits_total").unwrap(),
        cold_misses,
        "the warm run replays exactly the cold run's lookups as hits"
    );
    assert_eq!(
        snap.counter("core.cache.misses_total").unwrap(),
        cold_misses,
        "the warm run adds no misses"
    );
}

#[test]
fn bfs_batch_shares_cache_across_targets() {
    // A TokenMagic-style batch over one frozen instance: a candidate ring
    // whose content recurs for a later target reuses the stored outcome,
    // and every target's result equals its standalone reference run. Not
    // every instance produces recurring rings (the key is the full ring
    // content, target included), so sweep a few seeds and require reuse in
    // aggregate.
    let budget = BfsBudget::default();
    let options = BfsOptions { budget, workers: 1 };
    let mut total_hits = 0u64;
    for seed in 0..8u64 {
        let mut rng = XorShift::new(seed.wrapping_mul(101) + 11);
        let (instance, req, _) = random_instance(&mut rng);
        let n = instance.universe.len() as u32;
        let targets: Vec<TokenId> = (0..n.min(4)).map(TokenId).collect();

        let registry = Registry::new();
        let cache = EvalCache::in_registry(1 << 16, &registry);
        let batch = bfs_batch(&instance, &targets, req, &options, Some(&cache));
        for (i, (&t, got)) in targets.iter().zip(&batch).enumerate() {
            let reference = bfs_reference(&instance, t, req, budget);
            assert_eq!(&reference, got, "seed {seed} target {i}");
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("core.cache.misses_total").unwrap(),
            cache.len() as u64,
            "seed {seed}: each distinct candidate ring is computed exactly once"
        );
        total_hits += snap.counter("core.cache.hits_total").unwrap();
    }
    assert!(
        total_hits > 0,
        "across the sweep, some candidate outcomes must be reused (hits={total_hits})"
    );
}

#[test]
fn game_cache_accounting_is_exact() {
    let mut rng = XorShift::new(13);
    let (instance, target) = random_modular(&mut rng);
    let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 2));

    let registry = Registry::new();
    let cache = ProfileCache::in_registry(1 << 16, &registry);

    let cold = game_theoretic_with(
        &instance,
        target,
        policy,
        InitStrategy::CoverageGreedy,
        Some(&cache),
    );
    let snap = registry.snapshot();
    let cold_hits = snap.counter("core.cache.hits_total").unwrap();
    let cold_misses = snap.counter("core.cache.misses_total").unwrap();
    assert_eq!(
        cold_misses,
        cache.len() as u64,
        "every profile miss stores exactly one evaluation"
    );

    let warm = game_theoretic_with(
        &instance,
        target,
        policy,
        InitStrategy::CoverageGreedy,
        Some(&cache),
    );
    assert_eq!(cold, warm);
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("core.cache.misses_total").unwrap(),
        cold_misses,
        "the warm run adds no misses"
    );
    assert_eq!(
        snap.counter("core.cache.hits_total").unwrap(),
        2 * cold_hits + cold_misses,
        "the warm run repeats the cold run's lookups and all of them hit"
    );
}
