//! Incremental modular-history maintenance.
//!
//! Under the first practical configuration, every committed ring is a
//! union of whole modules, so committing merges those modules into one new
//! super RS. Rebuilding the view from scratch
//! ([`crate::ModularInstance::decompose`]) costs O(n²) per commit; this
//! incremental structure applies the merge directly in O(n) — what a
//! long-running wallet or node keeps between spends.

use dams_diversity::{DiversityRequirement, HtId, RingIndex, RingSet, RsId, TokenId, TokenUniverse};

use crate::instance::{ModularInstance, Module, ModuleId, ModuleKind};
use crate::selection::Selection;

/// Why an externally committed ring could not be folded into the history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsorbError {
    /// The ring references a token outside the tracked universe — extend
    /// the universe first ([`ModularHistory::extend_universe`]).
    UnknownToken(TokenId),
    /// The ring is neither nested in one module nor a union of whole
    /// modules: it violates the first practical configuration against this
    /// history, so the incremental merge does not exist.
    NotModuleAligned,
}

impl std::fmt::Display for AbsorbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbsorbError::UnknownToken(t) => {
                write!(f, "ring references token {} outside the universe", t.0)
            }
            AbsorbError::NotModuleAligned => write!(
                f,
                "ring is not a union of whole modules (first practical configuration violated)"
            ),
        }
    }
}

impl std::error::Error for AbsorbError {}

/// A batch's evolving modular view plus its committed-ring history.
#[derive(Debug, Clone)]
pub struct ModularHistory {
    instance: ModularInstance,
    rings: RingIndex,
    claims: Vec<DiversityRequirement>,
    /// Per current module: how many committed rings it contains (its `v`).
    subset_counts: Vec<usize>,
}

impl ModularHistory {
    /// A fresh batch: every token is a fresh-token module.
    pub fn fresh(universe: TokenUniverse) -> Self {
        let modules: Vec<Module> = universe
            .tokens()
            .enumerate()
            .map(|(i, t)| Module {
                id: ModuleId(i),
                kind: ModuleKind::FreshToken,
                tokens: RingSet::new([t]),
            })
            .collect();
        let n = modules.len();
        ModularHistory {
            instance: ModularInstance::from_modules(universe, modules),
            rings: RingIndex::new(),
            claims: Vec::new(),
            subset_counts: vec![0; n],
        }
    }

    /// Start from an existing modular instance (e.g. a workload generator's
    /// output, whose super RSs count as one committed ring each).
    pub fn from_instance(instance: ModularInstance, claim: DiversityRequirement) -> Self {
        let mut rings = RingIndex::new();
        let mut claims = Vec::new();
        let mut subset_counts = Vec::with_capacity(instance.modules().len());
        for m in instance.modules() {
            match m.kind {
                ModuleKind::SuperRs(_) => {
                    rings.push(m.tokens.clone());
                    claims.push(claim);
                    subset_counts.push(1);
                }
                ModuleKind::FreshToken => subset_counts.push(0),
            }
        }
        ModularHistory {
            instance,
            rings,
            claims,
            subset_counts,
        }
    }

    /// The current modular view (what the selection algorithms take).
    pub fn instance(&self) -> &ModularInstance {
        &self.instance
    }

    /// The committed rings so far.
    pub fn rings(&self) -> &RingIndex {
        &self.rings
    }

    /// The committed rings' claims, aligned with [`Self::rings`].
    pub fn claims(&self) -> &[DiversityRequirement] {
        &self.claims
    }

    /// Commit a selection produced against the *current* instance: the
    /// selected modules merge into one super RS. O(n) in the module count.
    ///
    /// Panics when the selection's modules are stale (not ids of the
    /// current view) — commit selections in the order they were produced.
    pub fn commit(&mut self, selection: &Selection, claim: DiversityRequirement) {
        let merged: std::collections::BTreeSet<ModuleId> =
            selection.modules.iter().copied().collect();
        assert!(
            !merged.is_empty(),
            "selection carries no module decomposition (BFS results need the modular path)"
        );
        for id in &merged {
            assert!(
                id.0 < self.instance.modules().len(),
                "stale module id {id:?}"
            );
        }
        self.merge(&merged, selection.ring.clone(), claim);
    }

    /// The tracked token universe.
    pub fn universe(&self) -> &TokenUniverse {
        &self.instance.universe
    }

    /// Append newly minted tokens as fresh-token modules. O(n) in the new
    /// universe size — how a long-running wallet tracks a growing chain
    /// without re-decomposing it.
    pub fn extend_universe<I: IntoIterator<Item = HtId>>(&mut self, hts: I) {
        let mut ht_of: Vec<HtId> = (0..self.instance.universe.len() as u32)
            .map(|t| self.instance.universe.ht(TokenId(t)))
            .collect();
        let start = ht_of.len();
        ht_of.extend(hts);
        if ht_of.len() == start {
            return;
        }
        let mut modules: Vec<Module> = self.instance.modules().to_vec();
        for t in start..ht_of.len() {
            let id = ModuleId(modules.len());
            self.subset_counts.push(0);
            modules.push(Module {
                id,
                kind: ModuleKind::FreshToken,
                tokens: RingSet::new([TokenId(t as u32)]),
            });
        }
        self.instance = ModularInstance::from_modules(TokenUniverse::new(ht_of), modules);
    }

    /// Fold in a ring committed by someone else (observed on-chain rather
    /// than produced by [`Self::commit`]): nested rings bump the containing
    /// module's subset count; module-aligned rings merge, exactly as a
    /// commit would. O(n). Fails — without mutating — when the ring is not
    /// aligned with the current partition (the history would need a full
    /// re-decomposition, and may be non-laminar outright).
    pub fn absorb_ring(
        &mut self,
        ring: &RingSet,
        claim: DiversityRequirement,
    ) -> Result<(), AbsorbError> {
        let n = self.instance.universe.len() as u32;
        if let Some(&t) = ring.tokens().iter().find(|t| t.0 >= n) {
            return Err(AbsorbError::UnknownToken(t));
        }
        let touched: std::collections::BTreeSet<ModuleId> =
            ring.tokens().iter().map(|&t| self.instance.module_of(t)).collect();
        if touched.len() == 1 {
            let id = *touched.iter().next().expect("nonempty ring");
            if self.instance.module(id).tokens != *ring {
                // Strict subset of one module: a nested ring. The partition
                // stands; the module swallows one more committed ring.
                self.rings.push(ring.clone());
                self.claims.push(claim);
                self.subset_counts[id.0] += 1;
                return Ok(());
            }
        }
        let union_len: usize = touched.iter().map(|&m| self.instance.module(m).len()).sum();
        if union_len != ring.len() {
            return Err(AbsorbError::NotModuleAligned);
        }
        self.merge(&touched, ring.clone(), claim);
        Ok(())
    }

    /// Merge `merged` modules into one super RS defined by `ring` (their
    /// exact union). Shared by [`Self::commit`] and [`Self::absorb_ring`].
    fn merge(
        &mut self,
        merged: &std::collections::BTreeSet<ModuleId>,
        ring: RingSet,
        claim: DiversityRequirement,
    ) {
        let rs_id = RsId(self.rings.len() as u32);
        self.rings.push(ring.clone());
        self.claims.push(claim);

        // Rebuild the module list with the merged module appended last.
        let mut new_modules: Vec<Module> = Vec::with_capacity(
            self.instance.modules().len() + 1 - merged.len(),
        );
        let mut new_counts: Vec<usize> = Vec::with_capacity(new_modules.capacity());
        let mut merged_v = 1usize; // the new ring itself
        for m in self.instance.modules() {
            if merged.contains(&m.id) {
                merged_v += self.subset_counts[m.id.0];
            } else {
                let id = ModuleId(new_modules.len());
                new_counts.push(self.subset_counts[m.id.0]);
                new_modules.push(Module {
                    id,
                    kind: m.kind,
                    tokens: m.tokens.clone(),
                });
            }
        }
        new_counts.push(merged_v);
        new_modules.push(Module {
            id: ModuleId(new_modules.len()),
            kind: ModuleKind::SuperRs(rs_id),
            tokens: ring,
        });
        self.instance =
            ModularInstance::from_modules(self.instance.universe.clone(), new_modules);
        self.subset_counts = new_counts;
    }

    /// The subset count `v` of a current module (Theorem 6.1's input).
    pub fn subset_count(&self, id: ModuleId) -> usize {
        self.subset_counts[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectionPolicy;
    use crate::instance::Instance;
    use crate::progressive::progressive;
    use dams_diversity::{HtId, TokenId};

    fn universe() -> TokenUniverse {
        TokenUniverse::new((0..24u32).map(|i| HtId(i / 3)).collect())
    }

    #[test]
    fn fresh_history_is_all_fresh_tokens() {
        let h = ModularHistory::fresh(universe());
        assert_eq!(h.instance().fresh_count(), 24);
        assert_eq!(h.instance().super_count(), 0);
        assert_eq!(h.rings().len(), 0);
    }

    #[test]
    fn commit_merges_modules() {
        let req = DiversityRequirement::new(1.0, 3);
        let mut h = ModularHistory::fresh(universe());
        let sel = progressive(h.instance(), TokenId(0), SelectionPolicy::new(req)).unwrap();
        let picked = sel.modules.len();
        h.commit(&sel, req);
        assert_eq!(h.rings().len(), 1);
        assert_eq!(h.instance().super_count(), 1);
        assert_eq!(h.instance().fresh_count(), 24 - picked);
        // the merged module's v counts the new ring only (fresh had v=0)
        let merged_id = ModuleId(h.instance().modules().len() - 1);
        assert_eq!(h.subset_count(merged_id), 1);
    }

    #[test]
    fn incremental_matches_full_decomposition() {
        // After several commits, the incremental view and the from-scratch
        // decomposition agree on the module partition.
        let req = DiversityRequirement::new(1.0, 3);
        let mut h = ModularHistory::fresh(universe());
        for t in [0u32, 9, 15] {
            let sel = progressive(h.instance(), TokenId(t), SelectionPolicy::new(req)).unwrap();
            h.commit(&sel, req);
        }
        let raw = Instance::new(
            universe(),
            h.rings().clone(),
            h.claims().to_vec(),
        );
        let full = ModularInstance::decompose(&raw).unwrap();
        assert_eq!(full.super_count(), h.instance().super_count());
        assert_eq!(full.fresh_count(), h.instance().fresh_count());
        // Same partition: compare the sorted token sets of all modules.
        let canon = |inst: &ModularInstance| {
            let mut v: Vec<Vec<u32>> = inst
                .modules()
                .iter()
                .map(|m| m.tokens.tokens().iter().map(|t| t.0).collect())
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&full), canon(h.instance()));
    }

    #[test]
    fn nested_commits_accumulate_subset_counts() {
        // Commit ring A, then a superset ring B containing A's module:
        // B's v must count both.
        let req = DiversityRequirement::new(2.0, 2);
        let mut h = ModularHistory::fresh(universe());
        let a = progressive(h.instance(), TokenId(0), SelectionPolicy::new(req)).unwrap();
        h.commit(&a, req);
        // Target a token inside A's merged module: the next selection
        // must include the whole module.
        let inside = a.ring.tokens()[0];
        let b = progressive(h.instance(), inside, SelectionPolicy::new(req)).unwrap();
        let grew = b.ring.len() > a.ring.len();
        h.commit(&b, req);
        let merged_id = ModuleId(h.instance().modules().len() - 1);
        if grew {
            assert!(h.subset_count(merged_id) >= 2, "B contains A and itself");
        } else {
            assert_eq!(h.subset_count(merged_id), 2);
        }
    }

    #[test]
    fn from_instance_counts_generator_supers() {
        let universe = TokenUniverse::new((0..6u32).map(HtId).collect());
        let modules = vec![
            Module {
                id: ModuleId(0),
                kind: ModuleKind::SuperRs(RsId(0)),
                tokens: RingSet::new([TokenId(0), TokenId(1)]),
            },
            Module {
                id: ModuleId(1),
                kind: ModuleKind::SuperRs(RsId(1)),
                tokens: RingSet::new([TokenId(2), TokenId(3)]),
            },
            Module {
                id: ModuleId(2),
                kind: ModuleKind::FreshToken,
                tokens: RingSet::new([TokenId(4)]),
            },
            Module {
                id: ModuleId(3),
                kind: ModuleKind::FreshToken,
                tokens: RingSet::new([TokenId(5)]),
            },
        ];
        let inst = ModularInstance::from_modules(universe, modules);
        let req = DiversityRequirement::new(1.0, 2);
        let h = ModularHistory::from_instance(inst, req);
        assert_eq!(h.rings().len(), 2);
        assert_eq!(h.subset_count(ModuleId(0)), 1);
        assert_eq!(h.subset_count(ModuleId(2)), 0);
    }

    #[test]
    fn extend_universe_appends_fresh_modules() {
        let mut h = ModularHistory::fresh(universe());
        let req = DiversityRequirement::new(1.0, 3);
        let sel = progressive(h.instance(), TokenId(0), SelectionPolicy::new(req)).unwrap();
        h.commit(&sel, req);
        let before = h.instance().modules().len();
        h.extend_universe([HtId(50), HtId(50), HtId(51)]);
        assert_eq!(h.universe().len(), 27);
        assert_eq!(h.instance().modules().len(), before + 3);
        assert_eq!(h.instance().fresh_count(), 24 - sel.ring.len() + 3);
        // New tokens are selectable immediately.
        let sel2 = progressive(h.instance(), TokenId(24), SelectionPolicy::new(req)).unwrap();
        assert!(sel2.ring.contains(TokenId(24)));
        // No-op extension leaves everything untouched.
        h.extend_universe(std::iter::empty());
        assert_eq!(h.universe().len(), 27);
    }

    #[test]
    fn absorb_ring_matches_commit_and_decompose() {
        let req = DiversityRequirement::new(1.0, 3);
        // Mirror a chain observer: selections are committed by the wallet
        // (h1) and absorbed as raw rings by a follower (h2).
        let mut h1 = ModularHistory::fresh(universe());
        let mut h2 = ModularHistory::fresh(universe());
        for t in [0u32, 9, 15] {
            let sel = progressive(h1.instance(), TokenId(t), SelectionPolicy::new(req)).unwrap();
            h1.commit(&sel, req);
            h2.absorb_ring(&sel.ring, req).unwrap();
        }
        let canon = |inst: &ModularInstance| {
            let mut v: Vec<Vec<u32>> = inst
                .modules()
                .iter()
                .map(|m| m.tokens.tokens().iter().map(|t| t.0).collect())
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(h1.instance()), canon(h2.instance()));
        assert_eq!(h1.rings().len(), h2.rings().len());
        // And both agree with the from-scratch decomposition.
        let raw = Instance::new(universe(), h2.rings().clone(), h2.claims().to_vec());
        let full = ModularInstance::decompose(&raw).unwrap();
        assert_eq!(canon(&full), canon(h2.instance()));
    }

    #[test]
    fn absorb_nested_ring_bumps_subset_count() {
        let req = DiversityRequirement::new(1.0, 2);
        let mut h = ModularHistory::fresh(universe());
        let sel = progressive(h.instance(), TokenId(0), SelectionPolicy::new(req)).unwrap();
        h.commit(&sel, req);
        let merged_id = ModuleId(h.instance().modules().len() - 1);
        assert_eq!(h.subset_count(merged_id), 1);
        // A strict-subset ring nests without changing the partition.
        let nested = RingSet::new(sel.ring.tokens().iter().copied().take(sel.ring.len() - 1));
        if !nested.is_empty() && nested.len() < sel.ring.len() {
            let modules_before = h.instance().modules().len();
            h.absorb_ring(&nested, req).unwrap();
            assert_eq!(h.instance().modules().len(), modules_before);
            assert_eq!(h.subset_count(merged_id), 2);
        }
    }

    #[test]
    fn absorb_rejects_misaligned_and_unknown_rings() {
        let req = DiversityRequirement::new(1.0, 2);
        let mut h = ModularHistory::fresh(universe());
        let sel = progressive(h.instance(), TokenId(0), SelectionPolicy::new(req)).unwrap();
        h.commit(&sel, req);
        let rings_before = h.rings().len();
        // Straddles the merged module's boundary: not module-aligned.
        let mut straddle = vec![sel.ring.tokens()[0]];
        straddle.extend(
            (0..24u32)
                .map(TokenId)
                .filter(|t| !sel.ring.contains(*t))
                .take(1),
        );
        assert_eq!(
            h.absorb_ring(&RingSet::new(straddle), req),
            Err(AbsorbError::NotModuleAligned)
        );
        assert_eq!(
            h.absorb_ring(&RingSet::new([TokenId(999)]), req),
            Err(AbsorbError::UnknownToken(TokenId(999)))
        );
        assert_eq!(h.rings().len(), rings_before, "failed absorbs must not mutate");
    }

    #[test]
    #[should_panic(expected = "stale module id")]
    fn stale_selection_rejected() {
        let req = DiversityRequirement::new(1.0, 3);
        let mut h = ModularHistory::fresh(universe());
        let sel = progressive(h.instance(), TokenId(0), SelectionPolicy::new(req)).unwrap();
        h.commit(&sel, req);
        // Forge a selection with an out-of-range module id.
        let mut stale = sel.clone();
        stale.modules = vec![ModuleId(9999)];
        h.commit(&stale, req);
    }
}
