//! Incremental modular-history maintenance.
//!
//! Under the first practical configuration, every committed ring is a
//! union of whole modules, so committing merges those modules into one new
//! super RS. Rebuilding the view from scratch
//! ([`crate::ModularInstance::decompose`]) costs O(n²) per commit; this
//! incremental structure applies the merge directly in O(n) — what a
//! long-running wallet or node keeps between spends.

use dams_diversity::{DiversityRequirement, RingIndex, RingSet, RsId, TokenUniverse};

use crate::instance::{ModularInstance, Module, ModuleId, ModuleKind};
use crate::selection::Selection;

/// A batch's evolving modular view plus its committed-ring history.
#[derive(Debug, Clone)]
pub struct ModularHistory {
    instance: ModularInstance,
    rings: RingIndex,
    claims: Vec<DiversityRequirement>,
    /// Per current module: how many committed rings it contains (its `v`).
    subset_counts: Vec<usize>,
}

impl ModularHistory {
    /// A fresh batch: every token is a fresh-token module.
    pub fn fresh(universe: TokenUniverse) -> Self {
        let modules: Vec<Module> = universe
            .tokens()
            .enumerate()
            .map(|(i, t)| Module {
                id: ModuleId(i),
                kind: ModuleKind::FreshToken,
                tokens: RingSet::new([t]),
            })
            .collect();
        let n = modules.len();
        ModularHistory {
            instance: ModularInstance::from_modules(universe, modules),
            rings: RingIndex::new(),
            claims: Vec::new(),
            subset_counts: vec![0; n],
        }
    }

    /// Start from an existing modular instance (e.g. a workload generator's
    /// output, whose super RSs count as one committed ring each).
    pub fn from_instance(instance: ModularInstance, claim: DiversityRequirement) -> Self {
        let mut rings = RingIndex::new();
        let mut claims = Vec::new();
        let mut subset_counts = Vec::with_capacity(instance.modules().len());
        for m in instance.modules() {
            match m.kind {
                ModuleKind::SuperRs(_) => {
                    rings.push(m.tokens.clone());
                    claims.push(claim);
                    subset_counts.push(1);
                }
                ModuleKind::FreshToken => subset_counts.push(0),
            }
        }
        ModularHistory {
            instance,
            rings,
            claims,
            subset_counts,
        }
    }

    /// The current modular view (what the selection algorithms take).
    pub fn instance(&self) -> &ModularInstance {
        &self.instance
    }

    /// The committed rings so far.
    pub fn rings(&self) -> &RingIndex {
        &self.rings
    }

    /// The committed rings' claims, aligned with [`Self::rings`].
    pub fn claims(&self) -> &[DiversityRequirement] {
        &self.claims
    }

    /// Commit a selection produced against the *current* instance: the
    /// selected modules merge into one super RS. O(n) in the module count.
    ///
    /// Panics when the selection's modules are stale (not ids of the
    /// current view) — commit selections in the order they were produced.
    pub fn commit(&mut self, selection: &Selection, claim: DiversityRequirement) {
        let merged: std::collections::BTreeSet<ModuleId> =
            selection.modules.iter().copied().collect();
        assert!(
            !merged.is_empty(),
            "selection carries no module decomposition (BFS results need the modular path)"
        );
        for id in &merged {
            assert!(
                id.0 < self.instance.modules().len(),
                "stale module id {id:?}"
            );
        }
        let rs_id = RsId(self.rings.len() as u32);
        self.rings.push(selection.ring.clone());
        self.claims.push(claim);

        // Rebuild the module list with the merged module appended last.
        let mut new_modules: Vec<Module> = Vec::with_capacity(
            self.instance.modules().len() + 1 - merged.len(),
        );
        let mut new_counts: Vec<usize> = Vec::with_capacity(new_modules.capacity());
        let mut merged_v = 1usize; // the new ring itself
        for m in self.instance.modules() {
            if merged.contains(&m.id) {
                merged_v += self.subset_counts[m.id.0];
            } else {
                let id = ModuleId(new_modules.len());
                new_counts.push(self.subset_counts[m.id.0]);
                new_modules.push(Module {
                    id,
                    kind: m.kind,
                    tokens: m.tokens.clone(),
                });
            }
        }
        new_counts.push(merged_v);
        new_modules.push(Module {
            id: ModuleId(new_modules.len()),
            kind: ModuleKind::SuperRs(rs_id),
            tokens: selection.ring.clone(),
        });
        self.instance =
            ModularInstance::from_modules(self.instance.universe.clone(), new_modules);
        self.subset_counts = new_counts;
    }

    /// The subset count `v` of a current module (Theorem 6.1's input).
    pub fn subset_count(&self, id: ModuleId) -> usize {
        self.subset_counts[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectionPolicy;
    use crate::instance::Instance;
    use crate::progressive::progressive;
    use dams_diversity::{HtId, TokenId};

    fn universe() -> TokenUniverse {
        TokenUniverse::new((0..24u32).map(|i| HtId(i / 3)).collect())
    }

    #[test]
    fn fresh_history_is_all_fresh_tokens() {
        let h = ModularHistory::fresh(universe());
        assert_eq!(h.instance().fresh_count(), 24);
        assert_eq!(h.instance().super_count(), 0);
        assert_eq!(h.rings().len(), 0);
    }

    #[test]
    fn commit_merges_modules() {
        let req = DiversityRequirement::new(1.0, 3);
        let mut h = ModularHistory::fresh(universe());
        let sel = progressive(h.instance(), TokenId(0), SelectionPolicy::new(req)).unwrap();
        let picked = sel.modules.len();
        h.commit(&sel, req);
        assert_eq!(h.rings().len(), 1);
        assert_eq!(h.instance().super_count(), 1);
        assert_eq!(h.instance().fresh_count(), 24 - picked);
        // the merged module's v counts the new ring only (fresh had v=0)
        let merged_id = ModuleId(h.instance().modules().len() - 1);
        assert_eq!(h.subset_count(merged_id), 1);
    }

    #[test]
    fn incremental_matches_full_decomposition() {
        // After several commits, the incremental view and the from-scratch
        // decomposition agree on the module partition.
        let req = DiversityRequirement::new(1.0, 3);
        let mut h = ModularHistory::fresh(universe());
        for t in [0u32, 9, 15] {
            let sel = progressive(h.instance(), TokenId(t), SelectionPolicy::new(req)).unwrap();
            h.commit(&sel, req);
        }
        let raw = Instance::new(
            universe(),
            h.rings().clone(),
            h.claims().to_vec(),
        );
        let full = ModularInstance::decompose(&raw).unwrap();
        assert_eq!(full.super_count(), h.instance().super_count());
        assert_eq!(full.fresh_count(), h.instance().fresh_count());
        // Same partition: compare the sorted token sets of all modules.
        let canon = |inst: &ModularInstance| {
            let mut v: Vec<Vec<u32>> = inst
                .modules()
                .iter()
                .map(|m| m.tokens.tokens().iter().map(|t| t.0).collect())
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&full), canon(h.instance()));
    }

    #[test]
    fn nested_commits_accumulate_subset_counts() {
        // Commit ring A, then a superset ring B containing A's module:
        // B's v must count both.
        let req = DiversityRequirement::new(2.0, 2);
        let mut h = ModularHistory::fresh(universe());
        let a = progressive(h.instance(), TokenId(0), SelectionPolicy::new(req)).unwrap();
        h.commit(&a, req);
        // Target a token inside A's merged module: the next selection
        // must include the whole module.
        let inside = a.ring.tokens()[0];
        let b = progressive(h.instance(), inside, SelectionPolicy::new(req)).unwrap();
        let grew = b.ring.len() > a.ring.len();
        h.commit(&b, req);
        let merged_id = ModuleId(h.instance().modules().len() - 1);
        if grew {
            assert!(h.subset_count(merged_id) >= 2, "B contains A and itself");
        } else {
            assert_eq!(h.subset_count(merged_id), 2);
        }
    }

    #[test]
    fn from_instance_counts_generator_supers() {
        let universe = TokenUniverse::new((0..6u32).map(HtId).collect());
        let modules = vec![
            Module {
                id: ModuleId(0),
                kind: ModuleKind::SuperRs(RsId(0)),
                tokens: RingSet::new([TokenId(0), TokenId(1)]),
            },
            Module {
                id: ModuleId(1),
                kind: ModuleKind::SuperRs(RsId(1)),
                tokens: RingSet::new([TokenId(2), TokenId(3)]),
            },
            Module {
                id: ModuleId(2),
                kind: ModuleKind::FreshToken,
                tokens: RingSet::new([TokenId(4)]),
            },
            Module {
                id: ModuleId(3),
                kind: ModuleKind::FreshToken,
                tokens: RingSet::new([TokenId(5)]),
            },
        ];
        let inst = ModularInstance::from_modules(universe, modules);
        let req = DiversityRequirement::new(1.0, 2);
        let h = ModularHistory::from_instance(inst, req);
        assert_eq!(h.rings().len(), 2);
        assert_eq!(h.subset_count(ModuleId(0)), 1);
        assert_eq!(h.subset_count(ModuleId(2)), 0);
    }

    #[test]
    #[should_panic(expected = "stale module id")]
    fn stale_selection_rejected() {
        let req = DiversityRequirement::new(1.0, 3);
        let mut h = ModularHistory::fresh(universe());
        let sel = progressive(h.instance(), TokenId(0), SelectionPolicy::new(req)).unwrap();
        h.commit(&sel, req);
        // Forge a selection with an out-of-range module id.
        let mut stale = sel.clone();
        stale.modules = vec![ModuleId(9999)];
        h.commit(&stale, req);
    }
}
