//! Memoization for the selection hot paths.
//!
//! Two caches share one design — a bounded, FIFO-evicting hash map behind a
//! `Mutex`, with hit/miss/eviction counters exported through `dams-obs` as
//! `core.cache.hits_total` / `core.cache.misses_total` /
//! `core.cache.evictions_total`:
//!
//! * [`EvalCache`] memoizes the *expensive* half of an exact-BFS candidate
//!   check (possible-world enumeration + non-eliminated constraint + DTRS
//!   diversity) keyed by the canonical ring content — the sorted token list
//!   of the candidate ring. Because a candidate's verdict depends only on
//!   its token set, the committed rings, the claims, and the requirement
//!   under evaluation, a cache is sound exactly as long as those stay fixed:
//!   one `bfs()` call trivially qualifies, and so does a whole TokenMagic
//!   batch over one frozen instance (the batch commits nothing until all
//!   selections are made). The stored outcome carries the DTRS-check count
//!   alongside the verdict so replaying a hit updates `SelectionStats`
//!   exactly like recomputing would — cached and uncached runs return
//!   byte-identical selections, differing only in the cache counters.
//! * [`ProfileCache`] memoizes game-theoretic profile evaluations
//!   (satisfied?, ring size) keyed by the module-selection bitset, shared
//!   across the best-response passes of one call and across a TokenMagic
//!   batch on the same instance.
//!
//! Eviction is deterministic (insertion order), so two runs over the same
//! work see the same hit/miss/eviction sequence — the determinism gate
//! stays byte-identical with caching enabled.

use std::borrow::Borrow;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Mutex, PoisonError};

use dams_diversity::TokenId;
use dams_obs::Registry;

use crate::obs::CoreMetrics;

/// Default entry capacity for both caches. An entry is a short key vector
/// plus a copy-sized outcome; 64Ki entries is a few MiB at worst.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 16;

/// Bounded FIFO map: the shared mechanism behind both caches.
struct FifoMap<K: Eq + Hash + Clone, V: Copy> {
    map: HashMap<K, V>,
    fifo: VecDeque<K>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V: Copy> FifoMap<K, V> {
    fn new(capacity: usize) -> Self {
        FifoMap {
            map: HashMap::new(),
            fifo: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: ?Sized + Eq + Hash,
    {
        self.map.get(key).copied()
    }

    /// Insert, returning how many entries were evicted to make room.
    /// Re-inserting an existing key overwrites in place (no FIFO churn —
    /// relevant only under parallel races recomputing the same candidate).
    fn insert(&mut self, key: K, value: V) -> u64 {
        if self.map.insert(key.clone(), value).is_some() {
            return 0;
        }
        self.fifo.push_back(key);
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            if let Some(old) = self.fifo.pop_front() {
                self.map.remove(&old);
                evicted += 1;
            } else {
                break;
            }
        }
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// The memoized outcome of one exact-BFS candidate's expensive check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedOutcome {
    /// Did the candidate pass world enumeration, the non-eliminated
    /// constraint, and every DTRS diversity check?
    pub eligible: bool,
    /// How many DTRS diversity-histogram checks the computation performed —
    /// replayed into `SelectionStats.diversity_checks` on a hit so stats
    /// match the uncached run exactly.
    pub dtrs_checks: u64,
}

/// Candidate-ring outcome cache for the exact BFS (see module docs for the
/// soundness contract). Thread-safe; share one instance across the workers
/// of a parallel `bfs()` call or the selections of a TokenMagic batch.
pub struct EvalCache {
    inner: Mutex<FifoMap<Vec<TokenId>, CachedOutcome>>,
    metrics: CoreMetrics,
}

impl EvalCache {
    /// A cache with [`DEFAULT_CACHE_CAPACITY`], counting into the global
    /// registry.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// A cache with an explicit entry capacity (global registry counters).
    pub fn with_capacity(capacity: usize) -> Self {
        EvalCache {
            inner: Mutex::new(FifoMap::new(capacity)),
            metrics: CoreMetrics::global().clone(),
        }
    }

    /// A cache whose counters live in `registry` — for tests asserting
    /// exact hit/miss accounting without cross-test interference.
    pub fn in_registry(capacity: usize, registry: &Registry) -> Self {
        EvalCache {
            inner: Mutex::new(FifoMap::new(capacity)),
            metrics: CoreMetrics::in_registry(registry),
        }
    }

    /// Look up a candidate by its canonical (sorted) token content.
    pub fn lookup(&self, tokens: &[TokenId]) -> Option<CachedOutcome> {
        let out = self.inner.lock().unwrap_or_else(PoisonError::into_inner).get(tokens);
        match out {
            Some(v) => {
                self.metrics.cache_hits.inc();
                Some(v)
            }
            None => {
                self.metrics.cache_misses.inc();
                None
            }
        }
    }

    /// Store a computed outcome. Budget-limited verdicts (errors) must NOT
    /// be inserted — only definite eligible/ineligible results.
    pub fn insert(&self, tokens: &[TokenId], outcome: CachedOutcome) {
        let evicted = self
            .inner
            .lock()
            // A panic inside FifoMap cannot leave it mid-mutation (all its
            // updates complete or never start), so a poisoned lock is safe
            // to recover: keep serving rather than cascading the panic.
            .unwrap_or_else(PoisonError::into_inner)
            .insert(tokens.to_vec(), outcome);
        if evicted > 0 {
            self.metrics.cache_evictions.add(evicted);
        }
    }

    /// Current number of stored outcomes.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new()
    }
}

/// A memoized profile verdict: (diversity satisfied?, ring token count).
type ProfileVerdict = (bool, u32);

/// Game-theoretic profile evaluation cache: module-selection bitset →
/// (diversity satisfied?, ring token count). Sound for one frozen
/// [`crate::ModularInstance`] + requirement, i.e. one call or one batch.
pub struct ProfileCache {
    inner: Mutex<FifoMap<Box<[u64]>, ProfileVerdict>>,
    metrics: CoreMetrics,
}

impl ProfileCache {
    /// A cache with [`DEFAULT_CACHE_CAPACITY`] (global registry counters).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// A cache with an explicit entry capacity (global registry counters).
    pub fn with_capacity(capacity: usize) -> Self {
        ProfileCache {
            inner: Mutex::new(FifoMap::new(capacity)),
            metrics: CoreMetrics::global().clone(),
        }
    }

    /// A cache whose counters live in `registry`.
    pub fn in_registry(capacity: usize, registry: &Registry) -> Self {
        ProfileCache {
            inner: Mutex::new(FifoMap::new(capacity)),
            metrics: CoreMetrics::in_registry(registry),
        }
    }

    /// Look up a profile by its selection bitset words.
    pub fn lookup(&self, profile: &[u64]) -> Option<(bool, u32)> {
        let out = self.inner.lock().unwrap_or_else(PoisonError::into_inner).get(profile);
        match out {
            Some(v) => {
                self.metrics.cache_hits.inc();
                Some(v)
            }
            None => {
                self.metrics.cache_misses.inc();
                None
            }
        }
    }

    /// Store a profile evaluation.
    pub fn insert(&self, profile: &[u64], value: (bool, u32)) {
        let evicted = self
            .inner
            .lock()
            // A panic inside FifoMap cannot leave it mid-mutation (all its
            // updates complete or never start), so a poisoned lock is safe
            // to recover: keep serving rather than cascading the panic.
            .unwrap_or_else(PoisonError::into_inner)
            .insert(profile.to_vec().into_boxed_slice(), value);
        if evicted > 0 {
            self.metrics.cache_evictions.add(evicted);
        }
    }

    /// Current number of stored profiles.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ProfileCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(ids: &[u32]) -> Vec<TokenId> {
        ids.iter().map(|&i| TokenId(i)).collect()
    }

    #[test]
    fn lookup_miss_then_hit_counts() {
        let registry = Registry::new();
        let cache = EvalCache::in_registry(8, &registry);
        let key = toks(&[1, 2, 3]);
        assert_eq!(cache.lookup(&key), None);
        cache.insert(
            &key,
            CachedOutcome {
                eligible: true,
                dtrs_checks: 7,
            },
        );
        assert_eq!(
            cache.lookup(&key),
            Some(CachedOutcome {
                eligible: true,
                dtrs_checks: 7
            })
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.cache.hits_total"), Some(1));
        assert_eq!(snap.counter("core.cache.misses_total"), Some(1));
        assert_eq!(snap.counter("core.cache.evictions_total"), Some(0));
    }

    #[test]
    fn fifo_eviction_is_insertion_ordered() {
        let registry = Registry::new();
        let cache = EvalCache::in_registry(2, &registry);
        let out = CachedOutcome {
            eligible: false,
            dtrs_checks: 0,
        };
        cache.insert(&toks(&[1]), out);
        cache.insert(&toks(&[2]), out);
        cache.insert(&toks(&[3]), out); // evicts [1]
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(&toks(&[1])), None); // miss
        assert!(cache.lookup(&toks(&[2])).is_some());
        assert!(cache.lookup(&toks(&[3])).is_some());
        assert_eq!(
            registry.snapshot().counter("core.cache.evictions_total"),
            Some(1)
        );
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let registry = Registry::new();
        let cache = EvalCache::in_registry(2, &registry);
        let out = CachedOutcome {
            eligible: true,
            dtrs_checks: 1,
        };
        cache.insert(&toks(&[1]), out);
        cache.insert(&toks(&[2]), out);
        cache.insert(&toks(&[1]), out);
        assert_eq!(cache.len(), 2);
        assert_eq!(
            registry.snapshot().counter("core.cache.evictions_total"),
            Some(0)
        );
    }

    #[test]
    fn profile_cache_round_trip() {
        let registry = Registry::new();
        let cache = ProfileCache::in_registry(8, &registry);
        let words = [0b1011u64, 0x4];
        assert_eq!(cache.lookup(&words), None);
        cache.insert(&words, (true, 12));
        assert_eq!(cache.lookup(&words), Some((true, 12)));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.cache.hits_total"), Some(1));
        assert_eq!(snap.counter("core.cache.misses_total"), Some(1));
    }
}
