//! # Table 1 — symbol glossary
//!
//! The paper's notation mapped to this crate family's types and functions.
//!
//! | Paper symbol | Meaning | Here |
//! |---|---|---|
//! | `T` | the universe of tokens `t_i` | [`dams_diversity::TokenUniverse`] |
//! | `t_i` | a token | [`dams_diversity::TokenId`] |
//! | `h_i` | the HT (historical transaction) that output `t_i` | [`dams_diversity::HtId`], resolved by [`dams_diversity::TokenUniverse::ht`] |
//! | `r_k` | a ring signature as a token set | [`dams_diversity::RingSet`] |
//! | `R_π^{r_k}` | the related RS set of `r_k` at time `π` | [`dams_diversity::RingIndex::related_set`] |
//! | `(c_k, ℓ_k)` | the diversity requirement of `r_k` | [`dams_diversity::DiversityRequirement`] |
//! | `p_k = ⟨t_k, r_k⟩` | a token–RS pair ("`t_k` is consumed in `r_k`") | [`dams_diversity::TokenRsPair`] |
//! | `d^{π,k}` | a DTRS of `r_k` at time `π` | [`dams_diversity::Dtrs`], via [`dams_diversity::enumerate_dtrs`] or the Theorem 6.1 fast path [`crate::dtrs_token_sets_fast`] |
//! | `SI`, `SI#`, `SI*` | adversary side information and its closure | [`dams_diversity::SideInformation`] |
//! | `u` (token–RS combination) | one possible world | [`dams_diversity::Combination`] |
//! | `q_i` | count of the i-th most frequent HT | [`dams_diversity::HtHistogram::q`] |
//! | `θ` | number of distinct HTs | [`dams_diversity::HtHistogram::theta`] |
//! | `s_i` (super RS) | a ring not contained in any later ring | [`crate::ModuleKind::SuperRs`] |
//! | `f_i` (fresh token) | a token in no existing ring | [`crate::ModuleKind::FreshToken`] |
//! | `v_i` | subset count of a super RS | [`crate::ModularInstance::subset_count`] |
//! | `x_i` / `a_i` | a module / a player | [`crate::Module`] |
//! | `α_i`, `γ_i` | coverage-phase greedy score | computed inside [`fn@crate::progressive`] / [`crate::game_theoretic`] |
//! | `β_i` | slack-reduction score | computed inside [`fn@crate::progressive`] 
//! | `δ` | diversity slack `q_1 − c·(q_ℓ+…+q_θ)` | [`dams_diversity::DiversityRequirement::slack`] |
//! | `λ` | tokens per TokenMagic batch | `dams_blockchain::BatchList::build`'s parameter |
//! | `η` | feasibility-guard parameter | [`dams_diversity::EtaGuard`] |
//! | `q_M`, `z_M` | most-frequent HT count, largest module size | [`crate::RatioParams`] |
//! | `ε = Σ 1/i` | harmonic bound term (Thm 6.5) | [`crate::RatioParams::harmonic`] |
//! | `I` (token image) | the double-spend tag | `dams_crypto::KeyImage` |
//! | `ω` | the zero-knowledge proof of Step 2 | `dams_crypto::RingSignature` |
//!
//! This module holds documentation only.

// Intentionally empty: the glossary lives in the module docs above.
