//! Parallel TokenMagic generation.
//!
//! Algorithm 1 runs the selection algorithm once per token of the batch —
//! the runs are independent, so they parallelise perfectly across threads.
//! The framework is an *offline, client-side* step (§4's overhead
//! discussion), but a wallet covering a Monero-sized batch (hundreds of
//! tokens) still appreciates using its cores.
//!
//! Scoped threads come from `std::thread::scope` (no external runtime);
//! each worker owns a seeded RNG derived from the caller's master seed so
//! the parallel run is deterministic per seed.

use std::thread;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dams_diversity::{EtaGuard, NeighborTracker, TokenId};

use crate::instance::ModularInstance;
use crate::selection::{SelectError, Selection};
use crate::tokenmagic::TokenMagic;

/// Parallel version of [`TokenMagic::generate`]: runs the per-token
/// candidate generation across `workers` threads, then draws uniformly
/// from the candidates containing `target` (same semantics, same η guard).
///
/// Deterministic given `seed` and `workers`.
pub fn generate_parallel(
    tm: &TokenMagic,
    instance: &ModularInstance,
    target: TokenId,
    tracker: &NeighborTracker,
    seed: u64,
    workers: usize,
) -> Result<Selection, SelectError> {
    if (target.0 as usize) >= instance.universe.len() {
        return Err(SelectError::UnknownToken);
    }
    let workers = workers.max(1);
    let n = instance.universe.len();
    let chunk = n.div_ceil(workers);

    // Each worker covers a contiguous token range with its own RNG stream.
    let results: Vec<Vec<Selection>> = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            let tm = *tm;
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (w as u64).wrapping_mul(0x9E37_79B9));
                let mut cands = Vec::new();
                for t in lo..hi {
                    if let Ok(sel) = tm.select_for(instance, TokenId(t as u32), &mut rng) {
                        if sel.ring.contains(target) {
                            cands.push(sel);
                        }
                    }
                }
                cands
            }));
        }
        handles
            .into_iter()
            // A worker panic (impossible in the closure above, which only
            // calls panic-free selection paths) degrades to "no candidates
            // from that shard" instead of poisoning the run.
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });

    let mut cand_tau: Vec<Selection> = results.into_iter().flatten().collect();
    if cand_tau.is_empty() {
        return Err(SelectError::Infeasible);
    }
    // η guard, as in the sequential path.
    let guard = EtaGuard::new(tm.eta);
    if tm.eta > 0.0 {
        cand_tau.retain(|s| guard.admits_push(tracker, &s.ring, instance.universe.len()));
        if cand_tau.is_empty() {
            return Err(SelectError::EtaGuardViolated);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    let pick = rng.gen_range(0..cand_tau.len());
    Ok(cand_tau.swap_remove(pick))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectionPolicy;
    use crate::progressive::tests::example3;
    use crate::tokenmagic::PracticalAlgorithm;
    use dams_diversity::DiversityRequirement;

    fn tm(l: usize) -> TokenMagic {
        TokenMagic::new(
            PracticalAlgorithm::Smallest,
            SelectionPolicy::new(DiversityRequirement::new(1.0, l)),
        )
    }

    #[test]
    fn parallel_contains_target_and_is_diverse() {
        let inst = example3();
        let tracker = NeighborTracker::new();
        for workers in [1, 2, 4] {
            let sel =
                generate_parallel(&tm(3), &inst, TokenId(10), &tracker, 9, workers).unwrap();
            assert!(sel.ring.contains(TokenId(10)), "workers={workers}");
        }
    }

    #[test]
    fn deterministic_per_seed_and_worker_count() {
        let inst = example3();
        let tracker = NeighborTracker::new();
        let a = generate_parallel(&tm(3), &inst, TokenId(10), &tracker, 4, 3).unwrap();
        let b = generate_parallel(&tm(3), &inst, TokenId(10), &tracker, 4, 3).unwrap();
        assert_eq!(a.ring, b.ring);
    }

    #[test]
    fn infeasible_propagates() {
        let inst = example3();
        let tracker = NeighborTracker::new();
        assert_eq!(
            generate_parallel(&tm(10), &inst, TokenId(10), &tracker, 1, 4).unwrap_err(),
            SelectError::Infeasible
        );
    }

    #[test]
    fn unknown_token_rejected() {
        let inst = example3();
        let tracker = NeighborTracker::new();
        assert_eq!(
            generate_parallel(&tm(2), &inst, TokenId(999), &tracker, 1, 2).unwrap_err(),
            SelectError::UnknownToken
        );
    }

    #[test]
    fn matches_sequential_candidate_semantics() {
        // Every ring the parallel path returns is one a sequential
        // deterministic algorithm (Smallest) could produce for some token:
        // verify it contains the target and satisfies the policy.
        let inst = example3();
        let tracker = NeighborTracker::new();
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 4));
        let sel = generate_parallel(
            &TokenMagic::new(PracticalAlgorithm::Smallest, policy),
            &inst,
            TokenId(10),
            &tracker,
            11,
            4,
        )
        .unwrap();
        assert!(policy.effective().satisfied_by(&inst.histogram_of(&sel.modules)));
    }
}
