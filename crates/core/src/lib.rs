//! # dams-core
//!
//! The paper's primary contribution: **diversity-aware mixin selection**
//! (DA-MS). Given a batch of tokens with their historical transactions and
//! the ring signatures already committed, select a minimum set of mixins
//! for a consuming token such that the resulting ring
//!
//! 1. is a recursive (c, ℓ)-diversity RS (Definition 4),
//! 2. leaves no token eliminable by chain-reaction analysis, and
//! 3. preserves every existing ring's claimed diversity (Definition 5).
//!
//! Solvers:
//!
//! * [`mod@bfs`] — the exact breadth-first search (Algorithm 2), exponential;
//! * [`mod@progressive`] — the O(n²) greedy approximation (Algorithm 4);
//! * [`game`] — the O(n³) potential-game approximation (Algorithm 5);
//! * [`baselines`] — the Smallest (TM_S) and Random (TM_R) baselines;
//! * [`tokenmagic`] — the framework (Algorithm 1) wrapping any of the
//!   practical algorithms with target-hiding and the η guard;
//! * [`config`] — the two practical configurations of §6.1 with the
//!   Theorem 6.1 polynomial DTRS check and Theorem 6.4 margin;
//! * [`ratio`] — Theorem 6.5 / 6.7 bound computation plus a small-instance
//!   exact optimum for validating them;
//! * [`degrade`] — deadline-budgeted graceful degradation chaining
//!   exact BFS → Progressive → Game-theoretic, reporting which tier
//!   answered and its approximation guarantee.
//!
//! # Example
//!
//! ```
//! use dams_core::{progressive, SelectionPolicy, ModularInstance, Module, ModuleId, ModuleKind};
//! use dams_diversity::{ring, DiversityRequirement, HtId, RsId, TokenId, TokenUniverse};
//!
//! // Four tokens from three historical transactions; one committed ring
//! // {0, 1} (a super RS) and two fresh tokens.
//! let universe = TokenUniverse::new(vec![HtId(0), HtId(0), HtId(1), HtId(2)]);
//! let instance = ModularInstance::from_modules(universe, vec![
//!     Module { id: ModuleId(0), kind: ModuleKind::SuperRs(RsId(0)), tokens: ring(&[0, 1]) },
//!     Module { id: ModuleId(1), kind: ModuleKind::FreshToken, tokens: ring(&[2]) },
//!     Module { id: ModuleId(2), kind: ModuleKind::FreshToken, tokens: ring(&[3]) },
//! ]);
//!
//! // Spend token 2 under recursive (2, 2)-diversity.
//! let policy = SelectionPolicy::new(DiversityRequirement::new(2.0, 2));
//! let selection = progressive(&instance, TokenId(2), policy).unwrap();
//! assert!(selection.ring.contains(TokenId(2)));
//! ```

pub mod attack_aware;
pub mod baselines;
pub mod bfs;
pub mod cache;
pub mod config;
pub mod degrade;
pub mod game;
pub mod glossary;
pub mod history;
pub mod index;
pub mod instance;
pub mod obs;
pub mod parallel;
pub mod progressive;
pub mod ratio;
pub mod selection;
pub mod tokenmagic;

pub use attack_aware::{sample_ring, MixinPool, SamplingMode};
pub use baselines::{random, smallest};
pub use bfs::{bfs, bfs_batch, bfs_reference, bfs_with, BfsBudget, BfsOptions};
pub use cache::{CachedOutcome, EvalCache, ProfileCache, DEFAULT_CACHE_CAPACITY};
pub use config::{
    dtrs_diverse_fast, dtrs_token_sets_fast, psi, satisfies_first_configuration, SelectionPolicy,
};
pub use dams_diversity::Deadline;
pub use degrade::{
    select_with_fallback, select_with_ladder, select_with_ladder_exec,
    select_with_ladder_observed, DegradeBudget, DegradedSelection, Guarantee, LadderExec, Tier,
};
pub use game::{
    game_theoretic, game_theoretic_from, game_theoretic_reference, game_theoretic_with,
    InitStrategy,
};
pub use history::{AbsorbError, ModularHistory};
pub use index::{
    recompute_equivalence, BatchSnapshot, BlockDelta, DeltaRing, DiversityIndex, IndexError,
    IndexStats, IndexedSelection,
};
pub use instance::{DecomposeError, Instance, ModularInstance, Module, ModuleId, ModuleKind};
pub use obs::CoreMetrics;
pub use parallel::generate_parallel;
pub use progressive::progressive;
pub use ratio::{optimal_modular, RatioParams};
pub use selection::{Algorithm, SelectError, Selection, SelectionStats};
pub use tokenmagic::{commit_ring, generate_with_relaxation, PracticalAlgorithm, TokenMagic};
