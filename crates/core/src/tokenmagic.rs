//! The TokenMagic framework (Algorithm 1, §4).
//!
//! Ties everything together for one batch: for a consuming token `t_τ`, run
//! the chosen selection algorithm for *every* token of the universe,
//! collect the candidate rings that happen to contain `t_τ`, and return one
//! uniformly at random. Because the random draw happens client-side, an
//! observer cannot invert the framework to learn which token was the real
//! target (§4's anonymity argument). The η feasibility guard is applied
//! before a ring is accepted.

use rand::Rng;

use dams_diversity::{EtaGuard, NeighborTracker, RingSet, TokenId};

use crate::baselines::{random as random_alg, smallest};
use crate::config::SelectionPolicy;
use crate::game::game_theoretic;
use crate::instance::ModularInstance;
use crate::progressive::progressive;
use crate::selection::{Algorithm, SelectError, Selection};

/// Which practical algorithm TokenMagic drives (BFS is driven separately
/// through the raw [`crate::instance::Instance`] because it does not use
/// the modular view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PracticalAlgorithm {
    Progressive,
    GameTheoretic,
    Smallest,
    Random,
}

impl PracticalAlgorithm {
    pub fn label(self) -> &'static str {
        match self {
            PracticalAlgorithm::Progressive => Algorithm::Progressive.label(),
            PracticalAlgorithm::GameTheoretic => Algorithm::GameTheoretic.label(),
            PracticalAlgorithm::Smallest => Algorithm::Smallest.label(),
            PracticalAlgorithm::Random => Algorithm::Random.label(),
        }
    }
}

/// TokenMagic configuration for one batch.
#[derive(Debug, Clone, Copy)]
pub struct TokenMagic {
    pub algorithm: PracticalAlgorithm,
    pub policy: SelectionPolicy,
    /// η of the feasibility guard; 0 disables it.
    pub eta: f64,
}

impl TokenMagic {
    pub fn new(algorithm: PracticalAlgorithm, policy: SelectionPolicy) -> Self {
        TokenMagic {
            algorithm,
            policy,
            eta: 0.0,
        }
    }

    pub fn with_eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Run the underlying algorithm once for a specific token.
    pub fn select_for<R: Rng + ?Sized>(
        &self,
        instance: &ModularInstance,
        token: TokenId,
        rng: &mut R,
    ) -> Result<Selection, SelectError> {
        let metrics = crate::obs::CoreMetrics::global();
        let algorithm = match self.algorithm {
            PracticalAlgorithm::Progressive => Algorithm::Progressive,
            PracticalAlgorithm::GameTheoretic => Algorithm::GameTheoretic,
            PracticalAlgorithm::Smallest => Algorithm::Smallest,
            PracticalAlgorithm::Random => Algorithm::Random,
        };
        let _span = metrics.select_span(algorithm);
        let outcome = match self.algorithm {
            PracticalAlgorithm::Progressive => progressive(instance, token, self.policy),
            PracticalAlgorithm::GameTheoretic => game_theoretic(instance, token, self.policy),
            PracticalAlgorithm::Smallest => smallest(instance, token, self.policy),
            PracticalAlgorithm::Random => random_alg(instance, token, self.policy, rng),
        };
        if let Ok(selection) = &outcome {
            metrics.record_selection(algorithm, selection);
        }
        outcome
    }

    /// Algorithm 1: generate a ring for `target`, hiding the target among
    /// the candidate rings of every token in the batch.
    ///
    /// `tracker` holds the rings already committed in this batch (for the η
    /// guard); pass a fresh tracker when the guard is disabled.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        instance: &ModularInstance,
        target: TokenId,
        tracker: &NeighborTracker,
        rng: &mut R,
    ) -> Result<Selection, SelectError> {
        if (target.0 as usize) >= instance.universe.len() {
            return Err(SelectError::UnknownToken);
        }
        // Lines 2-6: candidate rings per token; Cand_τ collects the rings
        // containing the target.
        let mut cand_tau: Vec<Selection> = Vec::new();
        for token in instance.universe.tokens() {
            let Ok(sel) = self.select_for(instance, token, rng) else {
                continue;
            };
            if sel.ring.contains(target) {
                cand_tau.push(sel);
            }
        }
        if cand_tau.is_empty() {
            return Err(SelectError::Infeasible);
        }
        // η guard: drop candidates whose commitment would exhaust the batch.
        let guard = EtaGuard::new(self.eta);
        let admissible: Vec<Selection> = cand_tau
            .into_iter()
            .filter(|s| {
                self.eta == 0.0
                    || guard.admits_push(tracker, &s.ring, instance.universe.len())
            })
            .collect();
        if admissible.is_empty() {
            return Err(SelectError::EtaGuardViolated);
        }
        // Line 7: uniform random pick.
        let pick = rng.gen_range(0..admissible.len());
        admissible.into_iter().nth(pick).ok_or(SelectError::Infeasible)
    }
}

/// Convenience: commit a generated ring into a tracker (the caller's batch
/// state) and return it.
pub fn commit_ring(tracker: &mut NeighborTracker, ring: RingSet) {
    tracker.push(ring);
}

/// §4's relaxation loop: "if the framework cannot return an eligible RS,
/// they can relax the diversity requirement by increasing c or decreasing
/// ℓ." Retries the framework with progressively relaxed requirements
/// (halving ℓ, then doubling c) up to `max_steps` times; returns the first
/// success together with the requirement that produced it.
pub fn generate_with_relaxation<R: Rng + ?Sized>(
    tm: &TokenMagic,
    instance: &ModularInstance,
    target: TokenId,
    tracker: &NeighborTracker,
    max_steps: usize,
    rng: &mut R,
) -> Result<(Selection, crate::config::SelectionPolicy), SelectError> {
    let mut policy = tm.policy;
    let mut last_err = SelectError::Infeasible;
    for _ in 0..=max_steps {
        let attempt = TokenMagic {
            policy,
            ..*tm
        };
        match attempt.generate(instance, target, tracker, rng) {
            Ok(sel) => return Ok((sel, policy)),
            Err(e @ SelectError::UnknownToken) => return Err(e),
            Err(e) => last_err = e,
        }
        // Relax: first shrink ℓ toward 1, then grow c.
        let req = policy.requirement;
        let relaxed = if req.l > 1 {
            dams_diversity::DiversityRequirement::new(req.c, req.l.div_ceil(2))
        } else {
            dams_diversity::DiversityRequirement::new(req.c * 2.0, 1)
        };
        policy = if policy.dtrs_margin {
            crate::config::SelectionPolicy::with_margin(relaxed)
        } else {
            crate::config::SelectionPolicy::new(relaxed)
        };
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progressive::tests::example3;
    use dams_diversity::DiversityRequirement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn policy(l: usize) -> SelectionPolicy {
        SelectionPolicy::new(DiversityRequirement::new(1.0, l))
    }

    #[test]
    fn generated_ring_contains_target() {
        let inst = example3();
        let mut rng = StdRng::seed_from_u64(1);
        let tracker = NeighborTracker::new();
        for alg in [
            PracticalAlgorithm::Progressive,
            PracticalAlgorithm::GameTheoretic,
            PracticalAlgorithm::Smallest,
            PracticalAlgorithm::Random,
        ] {
            let tm = TokenMagic::new(alg, policy(3));
            let sel = tm.generate(&inst, TokenId(10), &tracker, &mut rng).unwrap();
            assert!(sel.ring.contains(TokenId(10)), "{alg:?}");
        }
    }

    #[test]
    fn generated_ring_is_diverse() {
        let inst = example3();
        let mut rng = StdRng::seed_from_u64(2);
        let tracker = NeighborTracker::new();
        let tm = TokenMagic::new(PracticalAlgorithm::Progressive, policy(4));
        let sel = tm.generate(&inst, TokenId(6), &tracker, &mut rng).unwrap();
        assert!(policy(4)
            .effective()
            .satisfied_by(&inst.histogram_of(&sel.modules)));
    }

    #[test]
    fn infeasible_requirement_propagates() {
        let inst = example3();
        let mut rng = StdRng::seed_from_u64(3);
        let tracker = NeighborTracker::new();
        let tm = TokenMagic::new(PracticalAlgorithm::Smallest, policy(10));
        assert_eq!(
            tm.generate(&inst, TokenId(10), &tracker, &mut rng)
                .unwrap_err(),
            SelectError::Infeasible
        );
    }

    #[test]
    fn eta_guard_rejects_batch_exhaustion() {
        // A tiny 2-token universe where committing any ring would violate a
        // harsh η: with i = 1 ring and μ likely 0, need 1 − μ ≥ η (2 − 1).
        use crate::instance::{Module, ModuleId, ModuleKind};
        use dams_diversity::{ring, HtId, TokenUniverse};
        let inst = ModularInstance::from_modules(
            TokenUniverse::new(vec![HtId(0), HtId(1)]),
            vec![
                Module {
                    id: ModuleId(0),
                    kind: ModuleKind::FreshToken,
                    tokens: ring(&[0]),
                },
                Module {
                    id: ModuleId(1),
                    kind: ModuleKind::FreshToken,
                    tokens: ring(&[1]),
                },
            ],
        );
        let mut rng = StdRng::seed_from_u64(4);
        let tracker = NeighborTracker::new();
        // (2.0, 1): any ring with >= 1 token where q1 < 2*total — a single
        // 2-token ring {0,1} qualifies on diversity.
        let tm = TokenMagic::new(
            PracticalAlgorithm::Smallest,
            SelectionPolicy::new(DiversityRequirement::new(2.0, 1)),
        )
        .with_eta(10.0);
        // Committing {0,1} makes μ = 2 eventually... the guard computes
        // i=1, μ=0 (no tight family yet for a 2-token ring), |T|−i = 1:
        // 1 − 0 ≥ 10 → false → rejected.
        assert_eq!(
            tm.generate(&inst, TokenId(0), &tracker, &mut rng)
                .unwrap_err(),
            SelectError::EtaGuardViolated
        );
    }

    #[test]
    fn relaxation_recovers_from_infeasible_l() {
        let inst = example3();
        let mut rng = StdRng::seed_from_u64(5);
        let tracker = NeighborTracker::new();
        // ℓ = 10 is infeasible (only 7 HTs); relaxation halves ℓ until the
        // batch can serve it.
        let tm = TokenMagic::new(PracticalAlgorithm::Smallest, policy(10));
        let (sel, used) =
            super::generate_with_relaxation(&tm, &inst, TokenId(10), &tracker, 5, &mut rng)
                .unwrap();
        assert!(sel.ring.contains(TokenId(10)));
        assert!(used.requirement.l < 10);
    }

    #[test]
    fn relaxation_gives_up_after_budget() {
        use crate::instance::{Module, ModuleId, ModuleKind};
        use dams_diversity::{ring, HtId, TokenUniverse};
        // Single-token universe: nothing can ever satisfy q1 < c * tail.
        let inst = ModularInstance::from_modules(
            TokenUniverse::new(vec![HtId(0)]),
            vec![Module {
                id: ModuleId(0),
                kind: ModuleKind::FreshToken,
                tokens: ring(&[0]),
            }],
        );
        let mut rng = StdRng::seed_from_u64(6);
        let tracker = NeighborTracker::new();
        let tm = TokenMagic::new(
            PracticalAlgorithm::Smallest,
            SelectionPolicy::new(DiversityRequirement::new(0.5, 4)),
        );
        assert!(
            super::generate_with_relaxation(&tm, &inst, TokenId(0), &tracker, 2, &mut rng)
                .is_err()
        );
    }

    #[test]
    fn random_pick_varies_with_seed() {
        let inst = example3();
        let tracker = NeighborTracker::new();
        let tm = TokenMagic::new(PracticalAlgorithm::Random, policy(2));
        let mut seen = std::collections::HashSet::new();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            if let Ok(sel) = tm.generate(&inst, TokenId(1), &tracker, &mut rng) {
                seen.insert(sel.ring.tokens().to_vec());
            }
        }
        assert!(!seen.is_empty());
    }
}
