//! Problem instances for DA-MS.
//!
//! Two views exist:
//!
//! * [`Instance`] — the raw Definition 5 input: a token universe with HT
//!   labels, the existing ring signatures of the batch (with their claimed
//!   requirements), and a token to consume. Used by the exact BFS solver.
//! * [`ModularInstance`] — the practical-configuration view (§6.1): the
//!   universe decomposed into disjoint *modules*, each either a super RS
//!   (Definition 7) or a fresh token (Definition 8). Used by the
//!   Progressive, Game-theoretic and baseline algorithms.

use dams_diversity::{
    DiversityRequirement, HtHistogram, RingIndex, RingSet, RsId, TokenId, TokenUniverse,
};

/// The raw DA-MS instance (Definition 5).
#[derive(Debug, Clone)]
pub struct Instance {
    /// The mixin universe `T` with its token→HT assignment.
    pub universe: TokenUniverse,
    /// Existing ring signatures in proposal order.
    pub rings: RingIndex,
    /// The claimed diversity requirement of each existing ring, aligned
    /// with `rings` ids.
    pub claims: Vec<DiversityRequirement>,
}

impl Instance {
    /// Build an instance; `claims[i]` belongs to ring `i`.
    ///
    /// Panics when the claim list is misaligned — that is a construction
    /// bug, not a runtime condition.
    pub fn new(
        universe: TokenUniverse,
        rings: RingIndex,
        claims: Vec<DiversityRequirement>,
    ) -> Self {
        assert_eq!(
            rings.len(),
            claims.len(),
            "one claimed requirement per existing ring"
        );
        Instance {
            universe,
            rings,
            claims,
        }
    }

    /// An instance with no pre-existing rings.
    pub fn fresh(universe: TokenUniverse) -> Self {
        Instance {
            universe,
            rings: RingIndex::new(),
            claims: Vec::new(),
        }
    }

    /// The claimed requirement of ring `id`.
    pub fn claim(&self, id: RsId) -> DiversityRequirement {
        self.claims[id.0 as usize]
    }
}

/// A module identifier within a [`ModularInstance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub usize);

/// What a module is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleKind {
    /// A super RS (Definition 7): a ring not contained in any later ring.
    SuperRs(RsId),
    /// A fresh token (Definition 8): a token in no existing ring.
    FreshToken,
}

/// One selectable unit under the first practical configuration: the new
/// ring must be a union of whole modules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    pub id: ModuleId,
    pub kind: ModuleKind,
    /// The module's token set.
    pub tokens: RingSet,
}

impl Module {
    /// `|x_i|` — the number of tokens the module contributes.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Why a decomposition failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecomposeError {
    /// Two super RSs overlap without nesting — the history violated the
    /// first practical configuration, so the modular view does not exist.
    NonLaminarRings { a: RsId, b: RsId },
}

impl std::fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecomposeError::NonLaminarRings { a, b } => write!(
                f,
                "rings {} and {} overlap without nesting; history violates the first practical configuration",
                a.0, b.0
            ),
        }
    }
}

impl std::error::Error for DecomposeError {}

/// The practical-configuration view of an instance.
#[derive(Debug, Clone)]
pub struct ModularInstance {
    pub universe: TokenUniverse,
    modules: Vec<Module>,
    /// token index → module id.
    module_of: Vec<ModuleId>,
    /// Per super-RS module: the subset count `v_i` (rings of the history
    /// contained in it, including itself). Fresh tokens carry 0.
    subset_counts: Vec<usize>,
}

impl ModularInstance {
    /// Decompose a raw instance into super RSs and fresh tokens.
    ///
    /// Fails when existing rings are not laminar (overlap without nesting),
    /// which cannot arise when every historical ring respected the first
    /// practical configuration.
    pub fn decompose(instance: &Instance) -> Result<Self, DecomposeError> {
        let universe = instance.universe.clone();
        let n = universe.len();

        // Super RSs: rings with no *later* superset (Definition 7).
        let ids: Vec<RsId> = instance.rings.ids().collect();
        let mut is_super = vec![true; ids.len()];
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                if instance.rings.ring(b).is_superset(instance.rings.ring(a)) {
                    is_super[i] = false;
                    break;
                }
            }
        }

        // Laminarity check + subset counts among super RSs.
        let supers: Vec<RsId> = ids
            .iter()
            .zip(&is_super)
            .filter(|(_, s)| **s)
            .map(|(id, _)| *id)
            .collect();
        for (i, &a) in supers.iter().enumerate() {
            for &b in supers[i + 1..].iter() {
                let ra = instance.rings.ring(a);
                let rb = instance.rings.ring(b);
                if ra.intersects(rb) && !ra.is_superset(rb) && !rb.is_superset(ra) {
                    return Err(DecomposeError::NonLaminarRings { a, b });
                }
                // Two *super* rings can still nest when the earlier one is
                // a superset of the later one (supersets only disqualify
                // earlier rings). Treat the contained one as non-super for
                // module purposes: it will be swallowed below.
            }
        }
        // Keep only maximal super rings as modules.
        let mut maximal: Vec<RsId> = Vec::new();
        'outer: for &a in &supers {
            for &b in &supers {
                if a != b
                    && instance.rings.ring(b).is_superset(instance.rings.ring(a))
                    && (instance.rings.ring(b).len() > instance.rings.ring(a).len() || b < a)
                {
                    continue 'outer;
                }
            }
            maximal.push(a);
        }

        let mut modules: Vec<Module> = Vec::new();
        let mut module_of: Vec<Option<ModuleId>> = vec![None; n];
        let mut subset_counts: Vec<usize> = Vec::new();

        for rs in maximal {
            let ring = instance.rings.ring(rs).clone();
            let id = ModuleId(modules.len());
            for &t in ring.tokens() {
                // Laminarity guarantees no token is claimed twice.
                debug_assert!(module_of[t.0 as usize].is_none());
                module_of[t.0 as usize] = Some(id);
            }
            // v_i: number of history rings contained in this super RS.
            let v = instance
                .rings
                .iter()
                .filter(|(_, r)| ring.is_superset(r))
                .count();
            subset_counts.push(v);
            modules.push(Module {
                id,
                kind: ModuleKind::SuperRs(rs),
                tokens: ring,
            });
        }
        // Remaining tokens are fresh. Resolving the assignment in the same
        // pass keeps the mapping total by construction — no unwrap needed.
        let mut assigned = Vec::with_capacity(n);
        for t in 0..n as u32 {
            match module_of[t as usize] {
                Some(id) => assigned.push(id),
                None => {
                    let id = ModuleId(modules.len());
                    assigned.push(id);
                    subset_counts.push(0);
                    modules.push(Module {
                        id,
                        kind: ModuleKind::FreshToken,
                        tokens: RingSet::new([TokenId(t)]),
                    });
                }
            }
        }

        Ok(ModularInstance {
            universe,
            modules,
            module_of: assigned,
            subset_counts,
        })
    }

    /// Build a modular instance directly (used by the synthetic workload
    /// generator, which produces super RSs and fresh tokens natively).
    ///
    /// Panics when modules overlap or do not cover the universe — workload
    /// construction bugs, not runtime conditions.
    pub fn from_modules(universe: TokenUniverse, modules: Vec<Module>) -> Self {
        let subset_counts = modules
            .iter()
            .map(|m| match m.kind {
                ModuleKind::SuperRs(_) => 1,
                ModuleKind::FreshToken => 0,
            })
            .collect();
        Self::from_modules_with_counts(universe, modules, subset_counts)
    }

    /// [`Self::from_modules`] with explicit subset counts `v_i`, for callers
    /// (the streaming index, incremental histories) that track how many
    /// committed rings each super RS swallowed. [`Self::decompose`] derives
    /// the same counts from the raw ring history; supplying them here keeps
    /// an incrementally maintained view bit-identical to a decomposition.
    ///
    /// Panics when modules overlap, do not cover the universe, or the count
    /// list is misaligned — construction bugs, not runtime conditions.
    pub fn from_modules_with_counts(
        universe: TokenUniverse,
        modules: Vec<Module>,
        subset_counts: Vec<usize>,
    ) -> Self {
        let n = universe.len();
        assert_eq!(
            modules.len(),
            subset_counts.len(),
            "one subset count per module"
        );
        let mut module_of: Vec<Option<ModuleId>> = vec![None; n];
        for m in &modules {
            for &t in m.tokens.tokens() {
                assert!(
                    module_of[t.0 as usize].replace(m.id).is_none(),
                    "token {} in two modules",
                    t.0
                );
            }
        }
        ModularInstance {
            universe,
            module_of: module_of
                .into_iter()
                .enumerate()
                .map(|(t, m)| m.unwrap_or_else(|| panic!("token {t} in no module")))
                .collect(),
            modules,
            subset_counts,
        }
    }

    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.0]
    }

    /// The module containing a token (`x_τ` when the token is the target).
    pub fn module_of(&self, token: TokenId) -> ModuleId {
        self.module_of[token.0 as usize]
    }

    /// The subset count `v_i` of a module (Definition 7).
    pub fn subset_count(&self, id: ModuleId) -> usize {
        self.subset_counts[id.0]
    }

    /// Number of super-RS modules.
    pub fn super_count(&self) -> usize {
        self.modules
            .iter()
            .filter(|m| matches!(m.kind, ModuleKind::SuperRs(_)))
            .count()
    }

    /// Number of fresh-token modules.
    pub fn fresh_count(&self) -> usize {
        self.modules.len() - self.super_count()
    }

    /// HT histogram of a module union (the candidate ring).
    pub fn histogram_of(&self, module_ids: &[ModuleId]) -> HtHistogram {
        let hts = module_ids.iter().flat_map(|id| {
            self.modules[id.0]
                .tokens
                .tokens()
                .iter()
                .map(|t| self.universe.ht(*t))
        });
        HtHistogram::from_hts(hts)
    }

    /// Materialise the ring of a module selection.
    pub fn ring_of(&self, module_ids: &[ModuleId]) -> RingSet {
        RingSet::new(
            module_ids
                .iter()
                .flat_map(|id| self.modules[id.0].tokens.tokens().iter().copied()),
        )
    }

    /// Total ring size of a selection (modules are disjoint, so additive).
    pub fn size_of(&self, module_ids: &[ModuleId]) -> usize {
        module_ids.iter().map(|id| self.modules[id.0].len()).sum()
    }

    /// `q_M` — count of the most frequent HT across the whole universe
    /// (Theorems 6.5 / 6.7).
    pub fn q_max(&self) -> usize {
        HtHistogram::from_hts((0..self.universe.len() as u32).map(|t| self.universe.ht(TokenId(t))))
            .q1()
    }

    /// `z_M` — the largest module size (Theorems 6.5 / 6.7).
    pub fn z_max(&self) -> usize {
        self.modules.iter().map(Module::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_diversity::{ring, HtId};

    fn uni(n: usize) -> TokenUniverse {
        TokenUniverse::new((0..n as u32).map(HtId).collect())
    }

    fn req() -> DiversityRequirement {
        DiversityRequirement::new(1.0, 2)
    }

    #[test]
    fn decompose_paper_super_rs_example() {
        // §6.1: r1={t1,t2} then r2={t1,t2,t3} then r3={t4,t5};
        // T = {t1..t6}. Super RSs: r2 (v=2) and r3 (v=1); t6 fresh.
        // (token 0 exists as filler with its own HT)
        let rings = RingIndex::from_rings([ring(&[1, 2]), ring(&[1, 2, 3]), ring(&[4, 5])]);
        let inst = Instance::new(uni(7), rings, vec![req(); 3]);
        let m = ModularInstance::decompose(&inst).unwrap();
        let supers: Vec<&Module> = m
            .modules()
            .iter()
            .filter(|x| matches!(x.kind, ModuleKind::SuperRs(_)))
            .collect();
        assert_eq!(supers.len(), 2);
        let r2 = supers
            .iter()
            .find(|x| x.kind == ModuleKind::SuperRs(RsId(1)))
            .unwrap();
        assert_eq!(m.subset_count(r2.id), 2, "r1 and r2 are subsets of r2");
        let r3 = supers
            .iter()
            .find(|x| x.kind == ModuleKind::SuperRs(RsId(2)))
            .unwrap();
        assert_eq!(m.subset_count(r3.id), 1);
        // fresh tokens: t0 and t6
        assert_eq!(m.fresh_count(), 2);
    }

    #[test]
    fn non_laminar_history_rejected() {
        let rings = RingIndex::from_rings([ring(&[1, 2]), ring(&[2, 3])]);
        let inst = Instance::new(uni(4), rings, vec![req(); 2]);
        assert!(matches!(
            ModularInstance::decompose(&inst),
            Err(DecomposeError::NonLaminarRings { .. })
        ));
    }

    #[test]
    fn every_token_has_exactly_one_module() {
        let rings = RingIndex::from_rings([ring(&[0, 1]), ring(&[0, 1, 2]), ring(&[4, 5])]);
        let inst = Instance::new(uni(6), rings, vec![req(); 3]);
        let m = ModularInstance::decompose(&inst).unwrap();
        let mut coverage = vec![0usize; 6];
        for module in m.modules() {
            for t in module.tokens.tokens() {
                coverage[t.0 as usize] += 1;
            }
        }
        assert!(coverage.iter().all(|&c| c == 1), "{coverage:?}");
        for t in 0..6u32 {
            let mid = m.module_of(TokenId(t));
            assert!(m.module(mid).tokens.contains(TokenId(t)));
        }
    }

    #[test]
    fn from_modules_roundtrip() {
        let universe = uni(4);
        let modules = vec![
            Module {
                id: ModuleId(0),
                kind: ModuleKind::SuperRs(RsId(0)),
                tokens: ring(&[0, 1]),
            },
            Module {
                id: ModuleId(1),
                kind: ModuleKind::FreshToken,
                tokens: ring(&[2]),
            },
            Module {
                id: ModuleId(2),
                kind: ModuleKind::FreshToken,
                tokens: ring(&[3]),
            },
        ];
        let m = ModularInstance::from_modules(universe, modules);
        assert_eq!(m.super_count(), 1);
        assert_eq!(m.fresh_count(), 2);
        assert_eq!(m.size_of(&[ModuleId(0), ModuleId(1)]), 3);
        assert_eq!(m.ring_of(&[ModuleId(0), ModuleId(2)]), ring(&[0, 1, 3]));
    }

    #[test]
    #[should_panic(expected = "in two modules")]
    fn overlapping_modules_panic() {
        ModularInstance::from_modules(
            uni(2),
            vec![
                Module {
                    id: ModuleId(0),
                    kind: ModuleKind::FreshToken,
                    tokens: ring(&[0, 1]),
                },
                Module {
                    id: ModuleId(1),
                    kind: ModuleKind::FreshToken,
                    tokens: ring(&[1]),
                },
            ],
        );
    }

    #[test]
    fn q_max_and_z_max() {
        let universe = TokenUniverse::new(vec![HtId(0), HtId(0), HtId(0), HtId(1)]);
        let m = ModularInstance::from_modules(
            universe,
            vec![
                Module {
                    id: ModuleId(0),
                    kind: ModuleKind::SuperRs(RsId(0)),
                    tokens: ring(&[0, 1, 2]),
                },
                Module {
                    id: ModuleId(1),
                    kind: ModuleKind::FreshToken,
                    tokens: ring(&[3]),
                },
            ],
        );
        assert_eq!(m.q_max(), 3);
        assert_eq!(m.z_max(), 3);
    }

    #[test]
    fn later_duplicate_ring_disqualifies_earlier() {
        // r0 = {1,2}, r1 = {1,2}: r1 is a (non-strict) superset proposed
        // later, so r0 is not super; r1 is.
        let rings = RingIndex::from_rings([ring(&[1, 2]), ring(&[1, 2])]);
        let inst = Instance::new(uni(3), rings, vec![req(); 2]);
        let m = ModularInstance::decompose(&inst).unwrap();
        let supers: Vec<&Module> = m
            .modules()
            .iter()
            .filter(|x| matches!(x.kind, ModuleKind::SuperRs(_)))
            .collect();
        assert_eq!(supers.len(), 1);
        assert_eq!(supers[0].kind, ModuleKind::SuperRs(RsId(1)));
        assert_eq!(m.subset_count(supers[0].id), 2);
    }
}
