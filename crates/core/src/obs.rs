//! Observability handles for the selection hot paths.
//!
//! [`CoreMetrics`] bundles every `core.*` metric the crate records:
//! exact-search work counters (candidates expanded, prunes, DTRS
//! evaluations), per-algorithm selection counts/sizes/latency, and the
//! degrading selector's per-tier answered counts, fallbacks, and wall
//! time. Instrumented entry points default to the process-wide registry
//! ([`CoreMetrics::global`]); tests that assert exact values build a
//! fresh [`Registry`] and use [`CoreMetrics::in_registry`] so parallel
//! test threads cannot interfere.
//!
//! Naming follows the workspace scheme (see `dams-obs`):
//!
//! * `core.bfs.candidates_total` / `core.bfs.pruned_total` — rings the
//!   exact search expanded / rejected before world enumeration;
//! * `core.dtrs.evaluations_total` — diversity-histogram evaluations
//!   (the DTRS checks dominating every algorithm's inner loop);
//! * `core.cache.hits_total` / `core.cache.misses_total` /
//!   `core.cache.evictions_total` — evaluation-cache accounting (see
//!   [`crate::cache`]);
//! * `core.select.<alg>.rings_total`, `core.select.<alg>.ring_size`,
//!   `core.select.<alg>.time_ns` — per-algorithm selection outcomes;
//! * `core.degrade.answered.<tier>_total`, `core.degrade.fallbacks_total`,
//!   `core.degrade.tier.<tier>_ns`, `core.degrade.ring_size` — the
//!   fallback ladder's behaviour.

use std::sync::OnceLock;

use dams_obs::{Counter, Histogram, Registry, Unit};

use crate::degrade::Tier;
use crate::selection::Algorithm;

/// All five algorithm labels, index-aligned with [`algo_index`].
const ALGOS: [Algorithm; 5] = [
    Algorithm::Bfs,
    Algorithm::Progressive,
    Algorithm::GameTheoretic,
    Algorithm::Smallest,
    Algorithm::Random,
];

/// Stable index of an algorithm into the per-algorithm metric arrays
/// (total by construction — must stay index-aligned with [`ALGOS`]).
fn algo_index(algorithm: Algorithm) -> usize {
    match algorithm {
        Algorithm::Bfs => 0,
        Algorithm::Progressive => 1,
        Algorithm::GameTheoretic => 2,
        Algorithm::Smallest => 3,
        Algorithm::Random => 4,
    }
}

/// Stable index of a tier into the per-tier metric arrays.
fn tier_index(tier: Tier) -> usize {
    match tier {
        Tier::ExactBfs => 0,
        Tier::Progressive => 1,
        Tier::GameTheoretic => 2,
    }
}

/// Metric segment for an algorithm (lower-cased paper label).
fn algo_segment(algorithm: Algorithm) -> &'static str {
    match algorithm {
        Algorithm::Bfs => "tm_b",
        Algorithm::Progressive => "tm_p",
        Algorithm::GameTheoretic => "tm_g",
        Algorithm::Smallest => "tm_s",
        Algorithm::Random => "tm_r",
    }
}

/// Metric segment for a tier.
fn tier_segment(index: usize) -> &'static str {
    match index {
        0 => "exact_bfs",
        1 => "progressive",
        _ => "game_theoretic",
    }
}

/// Handles onto every `core.*` metric (see the module docs).
#[derive(Debug, Clone)]
pub struct CoreMetrics {
    /// Candidate rings the exact BFS expanded.
    pub bfs_candidates: Counter,
    /// Candidates the BFS rejected before world enumeration.
    pub bfs_pruned: Counter,
    /// Diversity-histogram (DTRS) evaluations across all algorithms.
    pub dtrs_evaluations: Counter,
    /// Evaluation-cache lookups that found a stored outcome.
    pub cache_hits: Counter,
    /// Evaluation-cache lookups that missed (outcome computed fresh).
    pub cache_misses: Counter,
    /// Entries dropped from a full evaluation cache (FIFO order).
    pub cache_evictions: Counter,
    /// Successful selections per algorithm (`ALGOS` order).
    pub select_total: [Counter; 5],
    /// Ring-size distribution per algorithm.
    pub select_size: [Histogram; 5],
    /// Selection wall time per algorithm (nanoseconds).
    pub select_time: [Histogram; 5],
    /// Answers per tier of the degrading selector.
    pub degrade_answered: [Counter; 3],
    /// Tier hand-overs (budget exhaustions and approximation dead-ends).
    pub degrade_fallbacks: Counter,
    /// Exact-tier attempts skipped because the deadline was already
    /// elapsed on entry (no BFS probe was burned).
    pub degrade_deadline_infeasible: Counter,
    /// Per-tier attempt wall time (nanoseconds), success or not.
    pub degrade_tier_time: [Histogram; 3],
    /// Ring sizes the degrading selector returned.
    pub degrade_ring_size: Histogram,
}

impl CoreMetrics {
    /// Register (or re-acquire) every core metric in `registry`.
    pub fn in_registry(registry: &Registry) -> Self {
        CoreMetrics {
            bfs_candidates: registry.counter("core.bfs.candidates_total"),
            bfs_pruned: registry.counter("core.bfs.pruned_total"),
            dtrs_evaluations: registry.counter("core.dtrs.evaluations_total"),
            cache_hits: registry.counter("core.cache.hits_total"),
            cache_misses: registry.counter("core.cache.misses_total"),
            cache_evictions: registry.counter("core.cache.evictions_total"),
            select_total: ALGOS.map(|a| {
                registry.counter(&format!("core.select.{}.rings_total", algo_segment(a)))
            }),
            select_size: ALGOS.map(|a| {
                registry.histogram(
                    &format!("core.select.{}.ring_size", algo_segment(a)),
                    Unit::Count,
                )
            }),
            select_time: ALGOS.map(|a| {
                registry.histogram(
                    &format!("core.select.{}.time_ns", algo_segment(a)),
                    Unit::Nanos,
                )
            }),
            degrade_answered: std::array::from_fn(|i| {
                registry.counter(&format!("core.degrade.answered.{}_total", tier_segment(i)))
            }),
            degrade_fallbacks: registry.counter("core.degrade.fallbacks_total"),
            degrade_deadline_infeasible: registry
                .counter("core.degrade.deadline_infeasible_total"),
            degrade_tier_time: std::array::from_fn(|i| {
                registry.histogram(
                    &format!("core.degrade.tier.{}_ns", tier_segment(i)),
                    Unit::Nanos,
                )
            }),
            degrade_ring_size: registry.histogram("core.degrade.ring_size", Unit::Count),
        }
    }

    /// The handles bound to the process-wide registry — what the default
    /// entry points record into.
    pub fn global() -> &'static CoreMetrics {
        static GLOBAL: OnceLock<CoreMetrics> = OnceLock::new();
        GLOBAL.get_or_init(|| CoreMetrics::in_registry(dams_obs::global()))
    }

    /// Record one successful selection by `algorithm`: its count, ring
    /// size, and the work counters carried in [`crate::SelectionStats`].
    pub fn record_selection(&self, algorithm: Algorithm, selection: &crate::Selection) {
        let i = algo_index(algorithm);
        self.select_total[i].inc();
        self.select_size[i].record(selection.size() as u64);
        self.record_stats(algorithm, &selection.stats);
    }

    /// Fold a run's work counters into the registry (also called on the
    /// success path by [`Self::record_selection`]).
    pub fn record_stats(&self, algorithm: Algorithm, stats: &crate::SelectionStats) {
        self.dtrs_evaluations.add(stats.diversity_checks);
        if algorithm == Algorithm::Bfs {
            self.bfs_candidates.add(stats.candidates_examined);
            self.bfs_pruned.add(stats.pruned);
        }
    }

    /// The counter handles for a tier (answered count, attempt timer).
    pub(crate) fn tier(&self, tier: Tier) -> (&Counter, &Histogram) {
        let i = tier_index(tier);
        (&self.degrade_answered[i], &self.degrade_tier_time[i])
    }

    /// Span timer for one `algorithm` selection call.
    pub fn select_span(&self, algorithm: Algorithm) -> dams_obs::Span {
        self.select_time[algo_index(algorithm)].start_span()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_indices_cover_all_variants() {
        for (i, a) in ALGOS.iter().enumerate() {
            assert_eq!(algo_index(*a), i);
        }
    }

    #[test]
    fn in_registry_registers_expected_names() {
        let registry = Registry::new();
        let m = CoreMetrics::in_registry(&registry);
        m.bfs_candidates.add(3);
        m.degrade_answered[0].inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.bfs.candidates_total"), Some(3));
        assert_eq!(snap.counter("core.degrade.answered.exact_bfs_total"), Some(1));
        assert_eq!(snap.counter("core.select.tm_p.rings_total"), Some(0));
    }

    #[test]
    fn reacquiring_shares_the_atomics() {
        let registry = Registry::new();
        let a = CoreMetrics::in_registry(&registry);
        let b = CoreMetrics::in_registry(&registry);
        a.dtrs_evaluations.add(2);
        b.dtrs_evaluations.add(5);
        assert_eq!(registry.snapshot().counter("core.dtrs.evaluations_total"), Some(7));
    }
}
