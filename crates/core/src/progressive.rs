//! The Progressive Algorithm (Algorithm 4, §6.2).
//!
//! A two-phase greedy over modules (super RSs and fresh tokens):
//!
//! 1. **Coverage phase** — while the selection spans fewer than ℓ distinct
//!    HTs, add the module with minimal
//!    `α_i = |x_i| / min(ℓ − |H|, |H_i \ H|)` (cheapest new-HT coverage —
//!    the classic partial-cover greedy, giving the `Σ 1/i` term of the
//!    Theorem 6.5 approximation ratio).
//! 2. **Diversity phase** — while the recursive (c, ℓ) condition fails,
//!    add the module with maximal `β_i = (δ − δ_i) / |x_i|` where
//!    `δ = q_1 − c·(q_ℓ + … + q_θ)` is the current slack (best slack
//!    reduction per token).

use std::collections::BTreeSet;

use dams_diversity::{HtId, TokenId};

use crate::config::SelectionPolicy;
use crate::instance::{ModularInstance, ModuleId};
use crate::selection::{Algorithm, SelectError, Selection, SelectionStats};

/// Run the Progressive Algorithm for `target` under `policy`.
pub fn progressive(
    instance: &ModularInstance,
    target: TokenId,
    policy: SelectionPolicy,
) -> Result<Selection, SelectError> {
    if (target.0 as usize) >= instance.universe.len() {
        return Err(SelectError::UnknownToken);
    }
    let req = policy.effective();
    let mut stats = SelectionStats::default();

    let x_tau = instance.module_of(target);
    let mut selected: Vec<ModuleId> = vec![x_tau];
    let mut remaining: Vec<ModuleId> = instance
        .modules()
        .iter()
        .map(|m| m.id)
        .filter(|&id| id != x_tau)
        .collect();

    let mut covered: BTreeSet<HtId> = module_hts(instance, x_tau);

    // Phase 1: reach ℓ distinct HTs.
    while covered.len() < req.l {
        stats.iterations += 1;
        let mut best: Option<(f64, usize)> = None; // (alpha, idx into remaining)
        for (idx, &id) in remaining.iter().enumerate() {
            let hts = module_hts(instance, id);
            let new_hts = hts.difference(&covered).count();
            if new_hts == 0 {
                continue;
            }
            let need = req.l - covered.len();
            let denom = need.min(new_hts) as f64;
            let alpha = instance.module(id).len() as f64 / denom;
            stats.candidates_examined += 1;
            let better = match best {
                None => true,
                Some((b, bidx)) => {
                    alpha < b
                        || (alpha == b
                            && instance.module(id).len() < instance.module(remaining[bidx]).len())
                }
            };
            if better {
                best = Some((alpha, idx));
            }
        }
        let Some((_, idx)) = best else {
            // No module adds a new HT: the batch lacks ℓ distinct HTs.
            return Err(SelectError::Infeasible);
        };
        let id = remaining.swap_remove(idx);
        covered.extend(module_hts(instance, id));
        selected.push(id);
    }

    // Phase 2: satisfy the recursive (c, ℓ) condition.
    loop {
        stats.diversity_checks += 1;
        let hist = instance.histogram_of(&selected);
        let delta = req.slack(&hist);
        if delta < 0.0 {
            break;
        }
        stats.iterations += 1;
        let mut best: Option<(f64, usize)> = None; // (beta, idx)
        for (idx, &id) in remaining.iter().enumerate() {
            let mut probe = selected.clone();
            probe.push(id);
            let delta_i = req.slack(&instance.histogram_of(&probe));
            stats.diversity_checks += 1;
            stats.candidates_examined += 1;
            let beta = (delta - delta_i) / instance.module(id).len() as f64;
            let better = match best {
                None => true,
                Some((b, bidx)) => {
                    beta > b
                        || (beta == b
                            && instance.module(id).len() < instance.module(remaining[bidx]).len())
                }
            };
            if better {
                best = Some((beta, idx));
            }
        }
        let Some((beta, idx)) = best else {
            return Err(SelectError::Infeasible);
        };
        if beta <= 0.0 {
            // No module reduces the slack: with every remaining module the
            // condition cannot be met — adding them all is the only
            // remaining option and it has non-positive gain per token. Try
            // the full union once before declaring infeasibility.
            let mut all = selected.clone();
            all.extend(remaining.iter().copied());
            stats.diversity_checks += 1;
            if req.slack(&instance.histogram_of(&all)) < 0.0 {
                // Fall through: keep greedy-adding; β ordering still picks
                // the best direction.
            } else {
                return Err(SelectError::Infeasible);
            }
        }
        let id = remaining.swap_remove(idx);
        selected.push(id);
    }

    selected.sort_unstable();
    Ok(Selection {
        ring: instance.ring_of(&selected),
        modules: selected,
        algorithm: Algorithm::Progressive,
        stats,
    })
}

fn module_hts(instance: &ModularInstance, id: ModuleId) -> BTreeSet<HtId> {
    instance
        .module(id)
        .tokens
        .tokens()
        .iter()
        .map(|t| instance.universe.ht(*t))
        .collect()
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::instance::{Module, ModuleKind};
    use dams_diversity::{ring, DiversityRequirement, RsId, TokenUniverse};

    /// Example 3 of §6.2, exactly the paper's instance: four super RSs,
    /// no fresh tokens. Paper token t_k is id k−1.
    /// h1: t1,t2,t7,t8; h2: t3,t4,t9; h3: t5,t13,t14; h6: t6,t10;
    /// h4: t11,t15; h5: t12.
    pub(crate) fn example3() -> ModularInstance {
        let hts = vec![
            1, 1, 2, 2, 3, 6, // t1..t6  = ids 0..5
            1, 1, 2, 6, // t7..t10 = ids 6..9
            4, 5, // t11, t12 = ids 10, 11
            3, 3, 4, // t13..t15 = ids 12..14
        ];
        let universe = TokenUniverse::new(hts.into_iter().map(HtId).collect());
        let modules = vec![
            Module {
                id: ModuleId(0),
                kind: ModuleKind::SuperRs(RsId(0)),
                tokens: ring(&[0, 1, 2, 3, 4, 5]),
            },
            Module {
                id: ModuleId(1),
                kind: ModuleKind::SuperRs(RsId(1)),
                tokens: ring(&[6, 7, 8, 9]),
            },
            Module {
                id: ModuleId(2),
                kind: ModuleKind::SuperRs(RsId(2)),
                tokens: ring(&[10, 11]),
            },
            Module {
                id: ModuleId(3),
                kind: ModuleKind::SuperRs(RsId(3)),
                tokens: ring(&[12, 13, 14]),
            },
        ];
        ModularInstance::from_modules(universe, modules)
    }

    /// The paper's target in Example 3: t11 = id 10.
    pub(crate) const T11: TokenId = TokenId(10);

    #[test]
    fn example3_first_phase_picks_s2() {
        // Consuming t11 with (1, 4): x_τ = s3 ({t11,t12}: HTs {4,5}).
        // Phase 1 needs 2 more HTs. α(s1) = 6/2, α(s2) = 4/2, α(s4) = 3/1
        // (s4 adds only h3). min α = s2 → "In the first iteration of the
        // first while-loop, we get r_τ = s3 ∪ s2".
        let inst = example3();
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 4));
        let sel = progressive(&inst, T11, policy).unwrap();
        assert!(sel.modules.contains(&ModuleId(2)), "{sel:?}");
        assert!(sel.modules.contains(&ModuleId(1)), "phase 1 adds s2");
    }

    #[test]
    fn example3_second_phase_adds_s4() {
        // After s3 ∪ s2 the multiset is {h4,h5,h1,h1,h2,h6}: q = [2,1,1,1,1],
        // θ = 5; (1,4): δ = 2 − (q4+q5) = 0 → violated. The paper: "In the
        // first iteration of the second while-loop, we add s4 to r_τ, since
        // β4 = 1/3 and β1 = −1/6." Result: s2 ∪ s3 ∪ s4, size 9.
        let inst = example3();
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 4));
        let sel = progressive(&inst, T11, policy).unwrap();
        assert!(sel.modules.contains(&ModuleId(3)), "phase 2 adds s4: {sel:?}");
        assert_eq!(sel.size(), 9, "s2 + s3 + s4 = 4 + 2 + 3: {sel:?}");
    }

    #[test]
    fn result_satisfies_requirement() {
        let inst = example3();
        for l in 1..=5 {
            let req = DiversityRequirement::new(1.0, l);
            let policy = SelectionPolicy::new(req);
            if let Ok(sel) = progressive(&inst, T11, policy) {
                assert!(
                    req.satisfied_by(&inst.histogram_of(&sel.modules)),
                    "l={l}: {sel:?}"
                );
                assert!(sel.ring.contains(T11));
            }
        }
    }

    #[test]
    fn infeasible_when_l_exceeds_distinct_hts() {
        let inst = example3();
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 10));
        assert_eq!(
            progressive(&inst, T11, policy).unwrap_err(),
            SelectError::Infeasible
        );
    }

    #[test]
    fn unknown_token_rejected() {
        let inst = example3();
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 2));
        assert_eq!(
            progressive(&inst, TokenId(999), policy).unwrap_err(),
            SelectError::UnknownToken
        );
    }

    #[test]
    fn target_module_always_included() {
        let inst = example3();
        let policy = SelectionPolicy::new(DiversityRequirement::new(2.0, 2));
        for t in [0u32, 6, 10, 12, 14] {
            if let Ok(sel) = progressive(&inst, TokenId(t), policy) {
                assert!(sel.modules.contains(&inst.module_of(TokenId(t))));
            }
        }
    }

    #[test]
    fn margin_policy_yields_larger_or_equal_rings() {
        let inst = example3();
        let req = DiversityRequirement::new(1.0, 3);
        let plain = progressive(&inst, T11, SelectionPolicy::new(req)).unwrap();
        let margin = progressive(&inst, T11, SelectionPolicy::with_margin(req)).unwrap();
        assert!(margin.size() >= plain.size());
    }
}
