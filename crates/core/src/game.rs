//! The Game-theoretic Algorithm (Algorithm 5, §6.3).
//!
//! Modules are *players* with two strategies — selected (φ) or not (φ̄).
//! After the same coverage phase as the Progressive Algorithm, each player
//! repeatedly best-responds to the others: its cost is `|r̃|/|A|` when the
//! resulting ring satisfies the recursive (c, ℓ) condition and ∞ otherwise
//! (ties resolve to φ, per line 7 of the pseudocode). The cost differences
//! equal the differences of a potential function, so the dynamics converge
//! to a Nash equilibrium in polynomial time (Theorem 6.6) with
//! price-of-stability 1 and a bounded price of anarchy (Theorem 6.7).

use std::collections::BTreeSet;

use dams_diversity::{DeltaHistogram, DiversityRequirement, HtId, TokenId};

use crate::cache::ProfileCache;
use crate::config::SelectionPolicy;
use crate::instance::{ModularInstance, ModuleId};
use crate::selection::{Algorithm, SelectError, Selection, SelectionStats};

/// Run the Game-theoretic Algorithm for `target` under `policy`.
pub fn game_theoretic(
    instance: &ModularInstance,
    target: TokenId,
    policy: SelectionPolicy,
) -> Result<Selection, SelectError> {
    game_theoretic_from(instance, target, policy, InitStrategy::CoverageGreedy)
}

/// A profile evaluated incrementally: the [`DeltaHistogram`] and ring size
/// are flipped by one *module* at a time instead of rebuilding an
/// [`dams_diversity::HtHistogram`] over every selected token per cost
/// evaluation. Verdicts route through
/// [`DiversityRequirement::satisfied_by_parts`] and sizes are the same
/// integers `ModularInstance::size_of` sums, so decisions are identical to
/// the reference path.
struct ProfileEval<'a> {
    instance: &'a ModularInstance,
    req: DiversityRequirement,
    hist: DeltaHistogram,
    size: usize,
    selected: Vec<bool>,
    /// Bitset mirror of `selected` — the [`ProfileCache`] key.
    words: Vec<u64>,
}

impl<'a> ProfileEval<'a> {
    fn new(instance: &'a ModularInstance, req: DiversityRequirement, selected: &[bool]) -> Self {
        let mut eval = ProfileEval {
            instance,
            req,
            hist: DeltaHistogram::for_universe(&instance.universe),
            size: 0,
            selected: vec![false; selected.len()],
            words: vec![0u64; selected.len().div_ceil(64)],
        };
        for (i, &on) in selected.iter().enumerate() {
            if on {
                eval.set(ModuleId(i), true);
            }
        }
        eval
    }

    /// Flip one player's strategy (no-op when already there).
    fn set(&mut self, m: ModuleId, v: bool) {
        if self.selected[m.0] == v {
            return;
        }
        self.selected[m.0] = v;
        self.words[m.0 / 64] ^= 1u64 << (m.0 % 64);
        let module = self.instance.module(m);
        for &t in module.tokens.tokens() {
            if v {
                self.hist.add_token(&self.instance.universe, t);
            } else {
                self.hist.remove_token(&self.instance.universe, t);
            }
        }
        if v {
            self.size += module.len();
        } else {
            self.size -= module.len();
        }
    }

    /// Evaluate the current profile: (diverse?, ring size). Counts one
    /// diversity check — exactly like the reference `profile_cost` — and
    /// consults/fills the cache when one is provided.
    fn eval(&self, stats: &mut SelectionStats, cache: Option<&ProfileCache>) -> (bool, usize) {
        stats.diversity_checks += 1;
        if let Some(cache) = cache {
            if let Some((ok, size)) = cache.lookup(&self.words) {
                return (ok, size as usize);
            }
        }
        let ok = self.hist.satisfies(&self.req);
        if let Some(cache) = cache {
            cache.insert(&self.words, (ok, self.size as u32));
        }
        (ok, self.size)
    }

    /// Uncounted, uncached verdict on the current profile.
    fn satisfied(&self) -> bool {
        self.hist.satisfies(&self.req)
    }
}

/// How the best-response dynamics are initialised (ablation hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// Algorithm 5's phase 1: greedy coverage to ℓ distinct HTs.
    CoverageGreedy,
    /// Start from *all* modules selected (always diversity-feasible when
    /// the instance is feasible at all).
    AllSelected,
}

/// Run with an explicit initialisation strategy.
pub fn game_theoretic_from(
    instance: &ModularInstance,
    target: TokenId,
    policy: SelectionPolicy,
    init: InitStrategy,
) -> Result<Selection, SelectError> {
    game_theoretic_with(instance, target, policy, init, None)
}

/// Run with an explicit initialisation strategy and an optional profile
/// cache (sound to share across a TokenMagic batch over one frozen
/// instance + policy — profile verdicts do not depend on the target).
pub fn game_theoretic_with(
    instance: &ModularInstance,
    target: TokenId,
    policy: SelectionPolicy,
    init: InitStrategy,
    cache: Option<&ProfileCache>,
) -> Result<Selection, SelectError> {
    if (target.0 as usize) >= instance.universe.len() {
        return Err(SelectError::UnknownToken);
    }
    let req = policy.effective();
    let mut stats = SelectionStats::default();

    let x_tau = instance.module_of(target);
    let n_modules = instance.modules().len();
    let mut selected = vec![false; n_modules];
    selected[x_tau.0] = true;

    match init {
        InitStrategy::AllSelected => {
            selected.iter_mut().for_each(|s| *s = true);
        }
        InitStrategy::CoverageGreedy => {
            // Phase 1 (identical shape to Progressive's): γ_i = α_i.
            let mut covered: BTreeSet<HtId> = module_hts(instance, x_tau);
            while covered.len() < req.l {
                stats.iterations += 1;
                let mut best: Option<(f64, ModuleId)> = None;
                for m in instance.modules() {
                    if selected[m.id.0] {
                        continue;
                    }
                    let hts = module_hts(instance, m.id);
                    let new_hts = hts.difference(&covered).count();
                    if new_hts == 0 {
                        continue;
                    }
                    let need = req.l - covered.len();
                    let gamma = m.len() as f64 / need.min(new_hts) as f64;
                    stats.candidates_examined += 1;
                    let better = match best {
                        None => true,
                        Some((b, bid)) => {
                            gamma < b
                                || (gamma == b && m.len() < instance.module(bid).len())
                        }
                    };
                    if better {
                        best = Some((gamma, m.id));
                    }
                }
                let Some((_, id)) = best else {
                    return Err(SelectError::Infeasible);
                };
                selected[id.0] = true;
                covered.extend(module_hts(instance, id));
            }
        }
    }

    // Best-response dynamics. The potential decreases by >= 1/|A| per
    // strategy change while finite, so changes are bounded; the caps are
    // defensive backstops, not expected exits.
    //
    // Equilibrium selection: the paper leaves "foreach player a_i ∈ A"
    // unordered, and different response orders converge to different Nash
    // equilibria (all within the Theorem 6.7 PoA bound). Index order
    // matches the paper's Example 3 walkthrough; smallest-module-first
    // lets fresh tokens pre-empt large super RSs when the profile is
    // infeasible (without it, a TM_G > TM_P inversion appears in the
    // Figure 10 sweep). We run both orders and keep the smaller ring —
    // each result is a genuine equilibrium, so this is pure equilibrium
    // selection, not a change to the game.
    let index_order: Vec<ModuleId> = instance.modules().iter().map(|m| m.id).collect();
    let mut size_order = index_order.clone();
    size_order.sort_by_key(|&id| (instance.module(id).len(), id));

    let mut best: Option<Vec<bool>> = None;
    for order in [&index_order, &size_order] {
        let mut profile = selected.clone();
        if !best_response(instance, order, x_tau, req, &mut profile, &mut stats, cache) {
            continue;
        }
        let size: usize = (0..n_modules)
            .filter(|&i| profile[i])
            .map(|i| instance.module(ModuleId(i)).len())
            .sum();
        let better = match &best {
            None => true,
            Some(b) => {
                let b_size: usize = (0..n_modules)
                    .filter(|&i| b[i])
                    .map(|i| instance.module(ModuleId(i)).len())
                    .sum();
                size < b_size
            }
        };
        if better {
            best = Some(profile);
        }
    }
    let Some(selected) = best else {
        return Err(SelectError::Infeasible);
    };

    let modules: Vec<ModuleId> = (0..n_modules)
        .filter(|&i| selected[i])
        .map(ModuleId)
        .collect();
    stats.diversity_checks += 1;
    if !req.satisfied_by(&instance.histogram_of(&modules)) {
        return Err(SelectError::Infeasible);
    }
    Ok(Selection {
        ring: instance.ring_of(&modules),
        modules,
        algorithm: Algorithm::GameTheoretic,
        stats,
    })
}

/// Run sequential best-response to a Nash equilibrium under the given
/// player order; returns whether the final profile satisfies `req`.
///
/// Costs are evaluated incrementally through [`ProfileEval`]: flipping one
/// player touches only that module's tokens instead of rebuilding the
/// whole ring histogram. Decisions are identical to the reference
/// `profile_cost` formulation — the verdict comes from the same integers
/// via [`DiversityRequirement::satisfied_by_parts`], and comparing integer
/// sizes equals comparing `size / |A|` as `f64` (division by a positive
/// constant is monotone and the sizes are far below 2^53, with `∞` for
/// non-diverse profiles and ties resolving to φ).
fn best_response(
    instance: &ModularInstance,
    order: &[ModuleId],
    x_tau: ModuleId,
    req: DiversityRequirement,
    selected: &mut [bool],
    stats: &mut SelectionStats,
    cache: Option<&ProfileCache>,
) -> bool {
    let mut eval = ProfileEval::new(instance, req, selected);
    let max_passes = 4 * order.len() + 16;
    let mut converged = false;
    for _pass in 0..max_passes {
        let mut changed = false;
        for &mid in order {
            if mid == x_tau {
                continue; // a_τ is fixed to φ
            }
            stats.iterations += 1;
            eval.set(mid, true);
            let (ok_selected, size_selected) = eval.eval(stats, cache);
            eval.set(mid, false);
            let (ok_unselected, size_unselected) = eval.eval(stats, cache);
            // Choose the cheaper strategy; ties resolve to φ (selected).
            let want = if ok_selected {
                !ok_unselected || size_selected <= size_unselected
            } else {
                !ok_unselected
            };
            eval.set(mid, want);
            if selected[mid.0] != want {
                selected[mid.0] = want;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    debug_assert!(converged, "best response exceeded its potential bound");
    stats.diversity_checks += 1;
    eval.satisfied()
}

/// The seed implementation, kept verbatim: equivalence oracle for the
/// incremental engine and the baseline side of the selection bench figure.
/// Every cost evaluation rebuilds the module list and the full ring
/// histogram from scratch.
pub fn game_theoretic_reference(
    instance: &ModularInstance,
    target: TokenId,
    policy: SelectionPolicy,
    init: InitStrategy,
) -> Result<Selection, SelectError> {
    if (target.0 as usize) >= instance.universe.len() {
        return Err(SelectError::UnknownToken);
    }
    let req = policy.effective();
    let mut stats = SelectionStats::default();

    let x_tau = instance.module_of(target);
    let n_modules = instance.modules().len();
    let mut selected = vec![false; n_modules];
    selected[x_tau.0] = true;

    match init {
        InitStrategy::AllSelected => {
            selected.iter_mut().for_each(|s| *s = true);
        }
        InitStrategy::CoverageGreedy => {
            let mut covered: BTreeSet<HtId> = module_hts(instance, x_tau);
            while covered.len() < req.l {
                stats.iterations += 1;
                let mut best: Option<(f64, ModuleId)> = None;
                for m in instance.modules() {
                    if selected[m.id.0] {
                        continue;
                    }
                    let hts = module_hts(instance, m.id);
                    let new_hts = hts.difference(&covered).count();
                    if new_hts == 0 {
                        continue;
                    }
                    let need = req.l - covered.len();
                    let gamma = m.len() as f64 / need.min(new_hts) as f64;
                    stats.candidates_examined += 1;
                    let better = match best {
                        None => true,
                        Some((b, bid)) => {
                            gamma < b || (gamma == b && m.len() < instance.module(bid).len())
                        }
                    };
                    if better {
                        best = Some((gamma, m.id));
                    }
                }
                let Some((_, id)) = best else {
                    return Err(SelectError::Infeasible);
                };
                selected[id.0] = true;
                covered.extend(module_hts(instance, id));
            }
        }
    }

    let index_order: Vec<ModuleId> = instance.modules().iter().map(|m| m.id).collect();
    let mut size_order = index_order.clone();
    size_order.sort_by_key(|&id| (instance.module(id).len(), id));

    let mut best: Option<Vec<bool>> = None;
    for order in [&index_order, &size_order] {
        let mut profile = selected.clone();
        if !best_response_reference(instance, order, x_tau, req, &mut profile, &mut stats) {
            continue;
        }
        let size: usize = (0..n_modules)
            .filter(|&i| profile[i])
            .map(|i| instance.module(ModuleId(i)).len())
            .sum();
        let better = match &best {
            None => true,
            Some(b) => {
                let b_size: usize = (0..n_modules)
                    .filter(|&i| b[i])
                    .map(|i| instance.module(ModuleId(i)).len())
                    .sum();
                size < b_size
            }
        };
        if better {
            best = Some(profile);
        }
    }
    let Some(selected) = best else {
        return Err(SelectError::Infeasible);
    };

    let modules: Vec<ModuleId> = (0..n_modules)
        .filter(|&i| selected[i])
        .map(ModuleId)
        .collect();
    stats.diversity_checks += 1;
    if !req.satisfied_by(&instance.histogram_of(&modules)) {
        return Err(SelectError::Infeasible);
    }
    Ok(Selection {
        ring: instance.ring_of(&modules),
        modules,
        algorithm: Algorithm::GameTheoretic,
        stats,
    })
}

/// Reference best-response: full histogram rebuild per cost evaluation.
fn best_response_reference(
    instance: &ModularInstance,
    order: &[ModuleId],
    x_tau: ModuleId,
    req: DiversityRequirement,
    selected: &mut [bool],
    stats: &mut SelectionStats,
) -> bool {
    let max_passes = 4 * order.len() + 16;
    let mut converged = false;
    for _pass in 0..max_passes {
        let mut changed = false;
        for &mid in order {
            if mid == x_tau {
                continue; // a_τ is fixed to φ
            }
            stats.iterations += 1;
            let cost_selected = profile_cost(instance, selected, mid, true, req, stats);
            let cost_unselected = profile_cost(instance, selected, mid, false, req, stats);
            // Choose the cheaper strategy; ties resolve to φ (selected).
            let want = cost_selected <= cost_unselected;
            if selected[mid.0] != want {
                selected[mid.0] = want;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    debug_assert!(converged, "best response exceeded its potential bound");
    let modules: Vec<ModuleId> = (0..selected.len())
        .filter(|&i| selected[i])
        .map(ModuleId)
        .collect();
    stats.diversity_checks += 1;
    req.satisfied_by(&instance.histogram_of(&modules))
}

/// The cost of player `player` playing `strategy` given the other players'
/// current strategies: `|r̃| / |A|` when diverse, ∞ otherwise.
fn profile_cost(
    instance: &ModularInstance,
    selected: &[bool],
    player: ModuleId,
    strategy: bool,
    req: dams_diversity::DiversityRequirement,
    stats: &mut SelectionStats,
) -> f64 {
    let modules: Vec<ModuleId> = (0..selected.len())
        .filter(|&i| if i == player.0 { strategy } else { selected[i] })
        .map(ModuleId)
        .collect();
    stats.diversity_checks += 1;
    let hist = instance.histogram_of(&modules);
    if req.satisfied_by(&hist) {
        instance.size_of(&modules) as f64 / selected.len() as f64
    } else {
        f64::INFINITY
    }
}

fn module_hts(instance: &ModularInstance, id: ModuleId) -> BTreeSet<HtId> {
    instance
        .module(id)
        .tokens
        .tokens()
        .iter()
        .map(|t| instance.universe.ht(*t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progressive::tests::example3;
    use crate::progressive::progressive;
    use dams_diversity::DiversityRequirement;

    #[test]
    fn example3_converges_to_s1_s3() {
        // §6.3 walks Example 3 to r_τ = s1 ∪ s3 of size 8: after phase 1
        // (s3 ∪ s2), s1 must join (both strategies cost ∞ → φ), then s2
        // leaves (finite < ∞).
        let inst = example3();
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 4));
        let sel = game_theoretic(&inst, TokenId(10), policy).unwrap();
        assert!(sel.modules.contains(&ModuleId(0)), "s1 selected: {sel:?}");
        assert!(sel.modules.contains(&ModuleId(2)), "s3 (x_τ) selected");
        assert_eq!(sel.size(), 8, "paper's r_τ = s1 ∪ s3: {sel:?}");
    }

    #[test]
    fn game_never_larger_than_progressive_on_example3() {
        let inst = example3();
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 4));
        let g = game_theoretic(&inst, TokenId(10), policy).unwrap();
        let p = progressive(&inst, TokenId(10), policy).unwrap();
        assert!(g.size() <= p.size(), "game {g:?} vs progressive {p:?}");
    }

    #[test]
    fn result_satisfies_requirement_and_contains_target() {
        let inst = example3();
        for l in 1..=5 {
            let req = DiversityRequirement::new(1.0, l);
            if let Ok(sel) = game_theoretic(&inst, TokenId(6), SelectionPolicy::new(req)) {
                assert!(req.satisfied_by(&inst.histogram_of(&sel.modules)));
                assert!(sel.ring.contains(TokenId(6)));
            }
        }
    }

    #[test]
    fn all_selected_init_reaches_equilibrium_too() {
        let inst = example3();
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 4));
        let sel =
            game_theoretic_from(&inst, TokenId(10), policy, InitStrategy::AllSelected).unwrap();
        let req = policy.effective();
        assert!(req.satisfied_by(&inst.histogram_of(&sel.modules)));
    }

    #[test]
    fn infeasible_requirement_reported() {
        let inst = example3();
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 10));
        assert_eq!(
            game_theoretic(&inst, TokenId(10), policy).unwrap_err(),
            SelectError::Infeasible
        );
    }

    #[test]
    fn unknown_token_rejected() {
        let inst = example3();
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 2));
        assert_eq!(
            game_theoretic(&inst, TokenId(999), policy).unwrap_err(),
            SelectError::UnknownToken
        );
    }

    #[test]
    fn incremental_engine_matches_reference_on_example3() {
        let inst = example3();
        for l in 1..=5 {
            let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, l));
            for target in [TokenId(0), TokenId(6), TokenId(10)] {
                for init in [InitStrategy::CoverageGreedy, InitStrategy::AllSelected] {
                    let reference = game_theoretic_reference(&inst, target, policy, init);
                    let optimized = game_theoretic_from(&inst, target, policy, init);
                    assert_eq!(reference, optimized, "l={l} target={target:?} init={init:?}");
                    // A shared profile cache must not change results either.
                    let cache = ProfileCache::with_capacity(1024);
                    let cached =
                        game_theoretic_with(&inst, target, policy, init, Some(&cache));
                    let cached_again =
                        game_theoretic_with(&inst, target, policy, init, Some(&cache));
                    assert_eq!(reference, cached, "cached l={l} target={target:?}");
                    assert_eq!(reference, cached_again, "warm l={l} target={target:?}");
                }
            }
        }
    }

    #[test]
    fn equilibrium_is_stable() {
        // No single player can improve: flipping any module's membership
        // either breaks diversity or increases |r|.
        let inst = example3();
        let req = DiversityRequirement::new(1.0, 4);
        let sel = game_theoretic(&inst, TokenId(10), SelectionPolicy::new(req)).unwrap();
        let in_sel: Vec<bool> = (0..inst.modules().len())
            .map(|i| sel.modules.contains(&ModuleId(i)))
            .collect();
        let x_tau = inst.module_of(TokenId(10));
        for m in inst.modules() {
            if m.id == x_tau {
                continue;
            }
            let mut flipped: Vec<ModuleId> = sel.modules.clone();
            if in_sel[m.id.0] {
                flipped.retain(|&id| id != m.id);
            } else {
                flipped.push(m.id);
            }
            let flipped_ok = req.satisfied_by(&inst.histogram_of(&flipped));
            let current_ok = req.satisfied_by(&inst.histogram_of(&sel.modules));
            assert!(current_ok);
            if flipped_ok {
                assert!(
                    inst.size_of(&flipped) >= sel.size(),
                    "player {:?} could improve: {} < {}",
                    m.id,
                    inst.size_of(&flipped),
                    sel.size()
                );
            }
        }
    }
}
