//! Attack-aware mixin sampling — biasing decoy choice against the
//! measured attack heuristics of `dams_diversity::attacks`.
//!
//! The replay harness shows two dominant deanonymization channels on
//! realistic traces:
//!
//! 1. **taint cascades** — decoys drawn uniformly from the whole chain
//!    pick up provably-spent tokens (careless zero-mixin spends and their
//!    closure), so rings collapse by iterative elimination;
//! 2. **the guess-newest age bias** — real spends skew young, so when
//!    decoys are drawn uniformly over history the youngest ring member is
//!    usually the true spend.
//!
//! [`SamplingMode::Baseline`] reproduces the vulnerable behaviour
//! (uniform decoys over every minted token — Monero's historical
//! sampler). [`SamplingMode::AttackAware`] counters both channels at the
//! same ring size and the same (c, ℓ) requirement: decoys never come
//! from the adversary-computable spent closure, and their ages are drawn
//! from the *same* age law real spends follow, so the newest member is
//! no longer informative. The `attack-aware strictly reduces the
//! deanonymized fraction` property sweep and the `BENCH_anonymity.json`
//! gate pin the improvement down.

use std::collections::BTreeSet;

use rand::Rng;

use dams_diversity::{DiversityRequirement, RingSet, TokenId, TokenUniverse};

/// How mixins are sampled for a new ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Uniform decoys over every minted token (the vulnerable baseline).
    Baseline,
    /// Spent-closure-avoiding, age-matched decoys (see module docs).
    AttackAware,
}

impl std::fmt::Display for SamplingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplingMode::Baseline => write!(f, "baseline"),
            SamplingMode::AttackAware => write!(f, "attack-aware"),
        }
    }
}

/// The minted-token population a sampler draws decoys from.
#[derive(Debug, Clone, Copy)]
pub struct MixinPool<'a> {
    /// Token → HT assignment (the sampler respects (c, ℓ) against it).
    pub universe: &'a TokenUniverse,
    /// Mint height of every token (`birth_height[t.0]`).
    pub birth_height: &'a [u64],
    /// Current chain height (ages are measured against it).
    pub current_height: u64,
}

impl MixinPool<'_> {
    fn age_of(&self, t: TokenId) -> u64 {
        self.current_height
            .saturating_sub(self.birth_height.get(t.0 as usize).copied().unwrap_or(0))
    }
}

/// How many decoy candidates are tried before the sampler accepts a
/// (c, ℓ)-violating ring as a last resort (never hit on the bench
/// workloads — the HT assignment is diverse enough).
const MAX_TRIES: usize = 64;

/// Sample a ring of `ring_size` members spending `target`.
///
/// Both modes enforce the same `requirement` at the same ring size, so
/// comparisons between them hold (c, ℓ) equal; they differ only in which
/// decoys they consider:
///
/// * [`SamplingMode::Baseline`] — decoys uniform over every minted token;
/// * [`SamplingMode::AttackAware`] — decoys outside `avoid` (the
///   adversary-computable spent closure) with ages drawn from the
///   exponential spend-age law of rate `age_rate` (the same law the
///   workload's spenders follow), so the ring's age profile matches a
///   real spend's.
#[allow(clippy::too_many_arguments)]
pub fn sample_ring<R: Rng + ?Sized>(
    pool: &MixinPool<'_>,
    target: TokenId,
    ring_size: usize,
    requirement: &DiversityRequirement,
    mode: SamplingMode,
    avoid: &BTreeSet<TokenId>,
    age_rate: f64,
    rng: &mut R,
) -> RingSet {
    let n = pool.universe.len();
    if n == 0 || ring_size <= 1 {
        return RingSet::new([target]);
    }
    let mut best: Option<RingSet> = None;
    for _ in 0..MAX_TRIES {
        let mut ring = RingSet::new([target]);
        let mut guard = 0usize;
        while ring.len() < ring_size && guard < 32 * ring_size {
            guard += 1;
            let decoy = match mode {
                SamplingMode::Baseline => TokenId(rng.gen_range(0..n as u32)),
                SamplingMode::AttackAware => {
                    let t = age_matched_decoy(pool, age_rate, rng);
                    if avoid.contains(&t) {
                        continue;
                    }
                    t
                }
            };
            if decoy != target {
                ring.insert(decoy);
            }
        }
        if requirement.satisfied_by_ring(&ring, pool.universe) {
            return ring;
        }
        if best.is_none() {
            best = Some(ring);
        }
    }
    // Last resort: an unsatisfiable requirement (degenerate universe)
    // returns the first full-size attempt rather than spinning forever.
    best.unwrap_or_else(|| RingSet::new([target]))
}

/// Draw a decoy whose age follows the exponential spend-age law: sample
/// a desired age, then pick the minted token closest to that age
/// (deterministic scan, ties to the younger token).
fn age_matched_decoy<R: Rng + ?Sized>(pool: &MixinPool<'_>, age_rate: f64, rng: &mut R) -> TokenId {
    let n = pool.universe.len() as u32;
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let desired = (-u.ln() * age_rate.max(1e-9)).round() as u64;
    // A handful of uniform probes, keeping the closest-aged hit: O(probes)
    // without a by-age index, and close enough that the ring's age profile
    // is indistinguishable from the spend-age law.
    let mut best = TokenId(rng.gen_range(0..n));
    let mut best_err = pool.age_of(best).abs_diff(desired);
    for _ in 0..8 {
        let probe = TokenId(rng.gen_range(0..n));
        let err = pool.age_of(probe).abs_diff(desired);
        if err < best_err || (err == best_err && probe.0 > best.0) {
            best = probe;
            best_err = err;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_diversity::HtId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool_of(heights: &'static [u64]) -> (TokenUniverse, &'static [u64]) {
        let universe = TokenUniverse::new((0..heights.len() as u32).map(HtId).collect());
        (universe, heights)
    }

    #[test]
    fn both_modes_hit_the_requested_size_and_requirement() {
        static HEIGHTS: [u64; 64] = {
            let mut h = [0u64; 64];
            let mut i = 0;
            while i < 64 {
                h[i] = (i / 4) as u64;
                i += 1;
            }
            h
        };
        let (universe, heights) = pool_of(&HEIGHTS);
        let pool = MixinPool {
            universe: &universe,
            birth_height: heights,
            current_height: 16,
        };
        let req = DiversityRequirement::new(1.0, 2);
        let mut rng = StdRng::seed_from_u64(5);
        for mode in [SamplingMode::Baseline, SamplingMode::AttackAware] {
            let ring = sample_ring(
                &pool,
                TokenId(7),
                5,
                &req,
                mode,
                &BTreeSet::new(),
                4.0,
                &mut rng,
            );
            assert_eq!(ring.len(), 5, "{mode}");
            assert!(ring.contains(TokenId(7)));
            assert!(req.satisfied_by_ring(&ring, &universe), "{mode}");
        }
    }

    #[test]
    fn attack_aware_never_picks_avoided_tokens() {
        static HEIGHTS: [u64; 32] = [0; 32];
        let (universe, heights) = pool_of(&HEIGHTS);
        let pool = MixinPool {
            universe: &universe,
            birth_height: heights,
            current_height: 10,
        };
        let avoid: BTreeSet<TokenId> = (0..16u32).map(TokenId).collect();
        let req = DiversityRequirement::new(1.0, 1);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..32 {
            let ring = sample_ring(
                &pool,
                TokenId(20),
                4,
                &req,
                SamplingMode::AttackAware,
                &avoid,
                4.0,
                &mut rng,
            );
            for &t in ring.tokens() {
                assert!(t == TokenId(20) || !avoid.contains(&t), "picked avoided {t:?}");
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        static HEIGHTS: [u64; 48] = {
            let mut h = [0u64; 48];
            let mut i = 0;
            while i < 48 {
                h[i] = i as u64 / 2;
                i += 1;
            }
            h
        };
        let (universe, heights) = pool_of(&HEIGHTS);
        let pool = MixinPool {
            universe: &universe,
            birth_height: heights,
            current_height: 24,
        };
        let req = DiversityRequirement::new(1.0, 2);
        let sample = || {
            let mut rng = StdRng::seed_from_u64(77);
            sample_ring(
                &pool,
                TokenId(3),
                6,
                &req,
                SamplingMode::AttackAware,
                &BTreeSet::new(),
                6.0,
                &mut rng,
            )
        };
        assert_eq!(sample(), sample());
    }

    #[test]
    fn degenerate_pool_returns_singleton() {
        let universe = TokenUniverse::new(vec![]);
        let pool = MixinPool {
            universe: &universe,
            birth_height: &[],
            current_height: 0,
        };
        let req = DiversityRequirement::new(1.0, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let ring = sample_ring(
            &pool,
            TokenId(0),
            4,
            &req,
            SamplingMode::Baseline,
            &BTreeSet::new(),
            4.0,
            &mut rng,
        );
        assert_eq!(ring.len(), 1);
    }
}
