//! Graceful degradation for mixin selection under a deadline.
//!
//! The exact BFS (Algorithm 2) is exponential by Theorem 3.1, so a node
//! serving live traffic cannot always afford it. This module wraps the
//! three selection algorithms in a **tiered fallback chain**:
//!
//! 1. [`Tier::ExactBfs`] — the exact search, bounded by a wall-clock
//!    deadline and candidate/world counters ([`BfsBudget`]);
//! 2. [`Tier::Progressive`] — the O(n²) greedy (Algorithm 4), with the
//!    Theorem 6.5 approximation ratio;
//! 3. [`Tier::GameTheoretic`] — the O(n³) potential game (Algorithm 5),
//!    with the Theorem 6.7 price-of-anarchy bound.
//!
//! When a tier exhausts its budget the next one answers; the result
//! records **which tier produced the ring and what guarantee it carries**,
//! so callers can report degraded service instead of stalling or lying
//! about optimality. Errors that fallback cannot fix — an unknown target,
//! or the exact search *proving* infeasibility — propagate immediately:
//! an approximation can never find a ring where the exact search showed
//! none exists.

use dams_diversity::{Deadline, TokenId};

use crate::bfs::{bfs_with, BfsBudget, BfsOptions};
use crate::cache::EvalCache;
use crate::config::SelectionPolicy;
use crate::game::game_theoretic;
use crate::instance::{Instance, ModularInstance};
use crate::obs::CoreMetrics;
use crate::progressive::progressive;
use crate::ratio::RatioParams;
use crate::selection::{Algorithm, SelectError, Selection};

/// One rung of the fallback ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The exact breadth-first search (Algorithm 2).
    ExactBfs,
    /// The Progressive approximation (Algorithm 4).
    Progressive,
    /// The Game-theoretic approximation (Algorithm 5).
    GameTheoretic,
}

impl Tier {
    /// The default ladder, best guarantee first.
    pub const DEFAULT_LADDER: [Tier; 3] = [Tier::ExactBfs, Tier::Progressive, Tier::GameTheoretic];

    /// The selection algorithm backing this tier (for metric attribution).
    fn algorithm(self) -> Algorithm {
        match self {
            Tier::ExactBfs => Algorithm::Bfs,
            Tier::Progressive => Algorithm::Progressive,
            Tier::GameTheoretic => Algorithm::GameTheoretic,
        }
    }

    /// Measured effective-anonymity score of the rings this tier produces:
    /// the mean surviving candidate count under the strength-1 reference
    /// adversary of `dams_diversity::attacks` (cascade taint + graph
    /// matching + guess-newest over an attack-aware-sampled trace),
    /// rounded *down* so every score is a conservative floor.
    ///
    /// The numbers come from `dams-cli bench --anonymity`
    /// (`BENCH_anonymity.json`, gated in CI to stay consistent with
    /// these constants): the exact search minimises ring size — fee- and
    /// verification-optimal, but the *smallest* anonymity set — while the
    /// approximations over-provision mixins and land higher. Requests
    /// declare a floor against this scale; the admission path sheds
    /// (`ShedReason::AnonymityFloor`) rather than answering below it.
    pub fn anonymity_score(self) -> u32 {
        match self {
            Tier::ExactBfs => 2,
            Tier::Progressive => 4,
            Tier::GameTheoretic => 3,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tier::ExactBfs => write!(f, "exact-bfs"),
            Tier::Progressive => write!(f, "progressive"),
            Tier::GameTheoretic => write!(f, "game-theoretic"),
        }
    }
}

/// The quality guarantee attached to a degraded answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Guarantee {
    /// Minimum ring size (the Definition 5 optimum).
    Exact,
    /// Ring size within the Theorem 6.5 Progressive ratio of optimal.
    ProgressiveRatio(f64),
    /// Ring size within the Theorem 6.7 price-of-anarchy bound of optimal.
    PriceOfAnarchy(f64),
}

impl Guarantee {
    /// The multiplicative bound on `|ring| / |optimal ring|` (1.0 when
    /// exact).
    pub fn ratio_bound(&self) -> f64 {
        match self {
            Guarantee::Exact => 1.0,
            Guarantee::ProgressiveRatio(b) | Guarantee::PriceOfAnarchy(b) => *b,
        }
    }
}

impl std::fmt::Display for Guarantee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Guarantee::Exact => write!(f, "exact optimum"),
            Guarantee::ProgressiveRatio(b) => write!(f, "within {b:.3}x of optimal (Thm 6.5)"),
            Guarantee::PriceOfAnarchy(b) => write!(f, "within {b:.3}x of optimal (Thm 6.7 PoA)"),
        }
    }
}

/// Budget for the degrading selector. Only the exact tier consumes it:
/// the approximation tiers are polynomial and always run to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeBudget {
    /// Wall-clock time granted to the exact search before falling back.
    /// `None` leaves only the counter limits.
    pub exact_timeout: Option<std::time::Duration>,
    /// Counter limits forwarded to the exact search.
    pub bfs: BfsBudget,
}

impl Default for DegradeBudget {
    fn default() -> Self {
        DegradeBudget {
            exact_timeout: Some(std::time::Duration::from_millis(50)),
            bfs: BfsBudget::default(),
        }
    }
}

/// A selection annotated with the tier that produced it, its guarantee,
/// and the budget failures that forced the degradation.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedSelection {
    pub selection: Selection,
    /// The tier that answered.
    pub tier: Tier,
    /// The approximation guarantee the answer carries.
    pub guarantee: Guarantee,
    /// Tiers tried before the answering one, with why each gave up.
    pub attempts: Vec<(Tier, SelectError)>,
}

impl DegradedSelection {
    /// Whether any fallback happened (i.e. the answer is not exact).
    pub fn degraded(&self) -> bool {
        !self.attempts.is_empty()
    }
}

/// Run the default ladder: exact BFS, then Progressive, then
/// Game-theoretic, degrading whenever a tier's budget is exhausted.
pub fn select_with_fallback(
    instance: &Instance,
    target: TokenId,
    policy: SelectionPolicy,
    budget: DegradeBudget,
) -> Result<DegradedSelection, SelectError> {
    select_with_ladder(instance, target, policy, budget, &Tier::DEFAULT_LADDER)
}

/// Run an explicit ladder of tiers in order.
///
/// A tier failing with [`SelectError::BudgetExhausted`] hands over to the
/// next; [`SelectError::UnknownToken`] always propagates; any other error
/// from the **exact** tier propagates too (a proof of infeasibility is
/// final), while approximation-tier failures hand over — greedy and
/// best-response dynamics can dead-end on instances another heuristic
/// still solves. When every tier fails, the last error propagates.
pub fn select_with_ladder(
    instance: &Instance,
    target: TokenId,
    policy: SelectionPolicy,
    budget: DegradeBudget,
    ladder: &[Tier],
) -> Result<DegradedSelection, SelectError> {
    select_with_ladder_observed(instance, target, policy, budget, ladder, CoreMetrics::global())
}

/// [`select_with_ladder`] recording into an explicit metric set instead of
/// the process-wide registry. Tests build a fresh `dams_obs::Registry`,
/// bind [`CoreMetrics::in_registry`] to it, and then assert exact tier
/// counts from its snapshot ("fell back to Progressive exactly k times")
/// without interference from parallel test threads.
pub fn select_with_ladder_observed(
    instance: &Instance,
    target: TokenId,
    policy: SelectionPolicy,
    budget: DegradeBudget,
    ladder: &[Tier],
    metrics: &CoreMetrics,
) -> Result<DegradedSelection, SelectError> {
    select_with_ladder_exec(
        instance,
        target,
        policy,
        budget,
        ladder,
        metrics,
        &LadderExec::default(),
    )
}

/// Execution knobs for the ladder that do not change *what* is selected,
/// only how the exact tier computes it: worker threads for candidate
/// evaluation (byte-identical results for any count, as in
/// [`crate::bfs::BfsOptions`]) and an optional shared evaluation cache.
/// The selection service threads its pool configuration through here.
#[derive(Clone, Copy, Default)]
pub struct LadderExec<'a> {
    /// Worker threads for exact-tier candidate evaluation (`0`/`1` mean
    /// sequential).
    pub workers: usize,
    /// Shared candidate-outcome cache consulted by the exact tier.
    pub cache: Option<&'a EvalCache>,
    /// A precomputed modular view of the instance being served. When set,
    /// the approximation tiers use it directly instead of running the
    /// O(n²) [`ModularInstance::decompose`] per call. The caller promises
    /// it equals `ModularInstance::decompose(instance)` — the streaming
    /// index maintains exactly that invariant (checked by its
    /// recompute-equivalence oracle), so verdicts stay bit-identical.
    pub modular: Option<&'a ModularInstance>,
}

/// [`select_with_ladder_observed`] with explicit execution knobs.
///
/// Deadline semantics: when `budget.bfs.deadline` is already set (the
/// selection service propagates its remaining virtual budget there), it is
/// used as-is and `budget.exact_timeout` is ignored; otherwise
/// `exact_timeout` is converted to a wall-clock [`Deadline::At`] on entry.
/// A deadline that is **already elapsed** skips the exact tier without
/// burning a BFS probe: the attempt is recorded as
/// [`SelectError::DeadlineInfeasible`] (counted in
/// `core.degrade.deadline_infeasible_total`) and the ladder moves straight
/// to the cheapest tier that can still answer.
#[allow(clippy::too_many_arguments)]
pub fn select_with_ladder_exec(
    instance: &Instance,
    target: TokenId,
    policy: SelectionPolicy,
    budget: DegradeBudget,
    ladder: &[Tier],
    metrics: &CoreMetrics,
    exec: &LadderExec<'_>,
) -> Result<DegradedSelection, SelectError> {
    assert!(!ladder.is_empty(), "empty tier ladder");

    // Resolve the exact tier's deadline once, so a wall-clock timeout is
    // anchored at entry rather than at the (possibly later) exact rung.
    let exact_deadline: Option<Deadline> = budget.bfs.deadline.or_else(|| {
        budget
            .exact_timeout
            .map(|t| Deadline::At(std::time::Instant::now() + t))
    });

    // The approximation tiers need the modular view; decompose lazily so a
    // non-laminar history can still be served by the exact tier.
    let mut modular: Option<Result<ModularInstance, SelectError>> = None;
    let mut attempts: Vec<(Tier, SelectError)> = Vec::new();

    for (rung, &tier) in ladder.iter().enumerate() {
        let last = rung == ladder.len() - 1;
        let (answered, tier_timer) = metrics.tier(tier);
        let _attempt_span = tier_timer.start_span();
        let outcome = match tier {
            Tier::ExactBfs => {
                if exact_deadline.is_some_and(|d| d.already_elapsed()) {
                    // No budget left at all: skip the probe entirely so an
                    // overloaded caller pays nothing for the exact rung.
                    metrics.degrade_deadline_infeasible.inc();
                    Err(SelectError::DeadlineInfeasible)
                } else {
                    let options = BfsOptions {
                        budget: BfsBudget {
                            deadline: exact_deadline,
                            ..budget.bfs
                        },
                        workers: exec.workers,
                    };
                    bfs_with(instance, target, policy.effective(), &options, exec.cache)
                        .map(|selection| (selection, Guarantee::Exact))
                }
            }
            Tier::Progressive | Tier::GameTheoretic => {
                let mi: Result<&ModularInstance, SelectError> = match exec.modular {
                    Some(prepared) => Ok(prepared),
                    None => modular
                        .get_or_insert_with(|| {
                            ModularInstance::decompose(instance)
                                // A non-laminar history violates the first
                                // practical configuration, so no modular ring
                                // can be built for it: infeasible at this tier.
                                .map_err(|_| SelectError::Infeasible)
                        })
                        .as_ref()
                        .map_err(Clone::clone),
                };
                match mi {
                    Err(e) => Err(e),
                    Ok(mi) => {
                        let params = RatioParams::of(mi);
                        let req = policy.effective();
                        if tier == Tier::Progressive {
                            progressive(mi, target, policy).map(|selection| {
                                (
                                    selection,
                                    Guarantee::ProgressiveRatio(
                                        params.progressive_bound(req.c, req.l),
                                    ),
                                )
                            })
                        } else {
                            game_theoretic(mi, target, policy).map(|selection| {
                                (
                                    selection,
                                    Guarantee::PriceOfAnarchy(params.poa_bound(req.c, req.l)),
                                )
                            })
                        }
                    }
                }
            }
        };

        match outcome {
            Ok((selection, guarantee)) => {
                answered.inc();
                metrics.degrade_fallbacks.add(attempts.len() as u64);
                metrics.degrade_ring_size.record(selection.size() as u64);
                metrics.record_stats(tier.algorithm(), &selection.stats);
                return Ok(DegradedSelection {
                    selection,
                    tier,
                    guarantee,
                    attempts,
                });
            }
            Err(SelectError::UnknownToken) => return Err(SelectError::UnknownToken),
            Err(e) => {
                let hand_over = match tier {
                    // The exact tier only hands over when it ran out of
                    // budget (or never had any); its Infeasible is a proof.
                    Tier::ExactBfs => matches!(
                        e,
                        SelectError::BudgetExhausted | SelectError::DeadlineInfeasible
                    ),
                    Tier::Progressive | Tier::GameTheoretic => true,
                };
                if last || !hand_over {
                    return Err(e);
                }
                attempts.push((tier, e));
            }
        }
    }
    unreachable!("loop returns on the last rung");
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_diversity::{DiversityRequirement, HtHistogram, HtId, TokenUniverse};

    /// A fresh universe big enough that a starved BFS budget exhausts
    /// before finding the (easy) answer.
    fn fresh_instance(n: usize) -> Instance {
        let universe = TokenUniverse::new((0..n as u32).map(HtId).collect());
        Instance::fresh(universe)
    }

    fn starved() -> DegradeBudget {
        DegradeBudget {
            exact_timeout: None,
            bfs: BfsBudget {
                max_candidates: 0,
                max_worlds: 4,
                deadline: None,
            },
        }
    }

    #[test]
    fn exact_tier_answers_within_budget() {
        let inst = fresh_instance(6);
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 2));
        let sel = select_with_fallback(&inst, TokenId(0), policy, DegradeBudget::default())
            .unwrap();
        assert_eq!(sel.tier, Tier::ExactBfs);
        assert_eq!(sel.guarantee, Guarantee::Exact);
        assert!(!sel.degraded());
        assert_eq!(sel.guarantee.ratio_bound(), 1.0);
    }

    #[test]
    fn starved_bfs_degrades_to_progressive_with_valid_ring() {
        let inst = fresh_instance(8);
        let req = DiversityRequirement::new(1.0, 3);
        let policy = SelectionPolicy::new(req);
        let sel = select_with_fallback(&inst, TokenId(0), policy, starved()).unwrap();
        assert_eq!(sel.tier, Tier::Progressive);
        assert_eq!(sel.attempts, vec![(Tier::ExactBfs, SelectError::BudgetExhausted)]);
        assert!(sel.degraded());
        // The degraded answer still satisfies the (c, ℓ) requirement.
        assert!(sel.selection.ring.contains(TokenId(0)));
        let hist = HtHistogram::from_ring(&sel.selection.ring, &inst.universe);
        assert!(req.satisfied_by(&hist));
        // And carries a finite, ≥1 approximation bound.
        match sel.guarantee {
            Guarantee::ProgressiveRatio(b) => assert!(b.is_finite() && b >= 1.0, "{b}"),
            g => panic!("wrong guarantee {g:?}"),
        }
    }

    #[test]
    fn expired_deadline_degrades() {
        let inst = fresh_instance(8);
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 2));
        let budget = DegradeBudget {
            exact_timeout: Some(std::time::Duration::ZERO),
            bfs: BfsBudget::default(),
        };
        let sel = select_with_fallback(&inst, TokenId(0), policy, budget).unwrap();
        assert_ne!(sel.tier, Tier::ExactBfs);
        assert!(sel.degraded());
    }

    #[test]
    fn game_tier_reports_poa_guarantee() {
        let inst = fresh_instance(6);
        let req = DiversityRequirement::new(1.0, 2);
        let policy = SelectionPolicy::new(req);
        let sel = select_with_ladder(
            &inst,
            TokenId(0),
            policy,
            DegradeBudget::default(),
            &[Tier::GameTheoretic],
        )
        .unwrap();
        assert_eq!(sel.tier, Tier::GameTheoretic);
        match sel.guarantee {
            Guarantee::PriceOfAnarchy(b) => assert!(b.is_finite() && b >= 1.0),
            g => panic!("wrong guarantee {g:?}"),
        }
        let hist = HtHistogram::from_ring(&sel.selection.ring, &inst.universe);
        assert!(req.satisfied_by(&hist));
    }

    #[test]
    fn unknown_token_propagates_without_fallback() {
        let inst = fresh_instance(4);
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 1));
        assert_eq!(
            select_with_fallback(&inst, TokenId(99), policy, starved()).unwrap_err(),
            SelectError::UnknownToken
        );
    }

    #[test]
    fn exact_infeasibility_proof_is_final() {
        // All tokens share one HT: ℓ = 2 is impossible; the exact tier
        // proves it and no approximation is consulted.
        let universe = TokenUniverse::new(vec![HtId(0); 4]);
        let inst = Instance::fresh(universe);
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 2));
        assert_eq!(
            select_with_fallback(&inst, TokenId(0), policy, DegradeBudget::default())
                .unwrap_err(),
            SelectError::Infeasible
        );
    }

    #[test]
    fn every_tier_exhausted_returns_last_error() {
        // Infeasible instance with a starved exact budget: BFS exhausts,
        // both approximations report infeasibility, the last error wins.
        let universe = TokenUniverse::new(vec![HtId(0); 8]);
        let inst = Instance::fresh(universe);
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 2));
        let err = select_with_fallback(&inst, TokenId(0), policy, starved()).unwrap_err();
        assert_eq!(err, SelectError::Infeasible);
    }

    #[test]
    fn zero_tick_deadline_skips_exact_without_a_probe() {
        // Regression for BfsBudget.deadline == Some(Deadline::Ticks(0)):
        // the exact rung must be skipped deterministically — no BFS
        // candidate is expanded — and the cheapest tier answers with a
        // DeadlineInfeasible accounting entry.
        let inst = fresh_instance(8);
        let req = DiversityRequirement::new(1.0, 3);
        let policy = SelectionPolicy::new(req);
        let budget = DegradeBudget {
            exact_timeout: None,
            bfs: BfsBudget {
                deadline: Some(dams_diversity::Deadline::Ticks(0)),
                ..BfsBudget::default()
            },
        };
        let registry = dams_obs::Registry::new();
        let metrics = CoreMetrics::in_registry(&registry);
        let sel = select_with_ladder_observed(
            &inst,
            TokenId(0),
            policy,
            budget,
            &Tier::DEFAULT_LADDER,
            &metrics,
        )
        .unwrap();
        assert_eq!(sel.tier, Tier::Progressive);
        assert_eq!(
            sel.attempts,
            vec![(Tier::ExactBfs, SelectError::DeadlineInfeasible)]
        );
        let hist = HtHistogram::from_ring(&sel.selection.ring, &inst.universe);
        assert!(req.satisfied_by(&hist));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.bfs.candidates_total"), Some(0));
        assert_eq!(snap.counter("core.degrade.deadline_infeasible_total"), Some(1));
    }

    #[test]
    fn elapsed_deadline_on_exact_only_ladder_is_an_error() {
        let inst = fresh_instance(6);
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 2));
        let budget = DegradeBudget {
            exact_timeout: None,
            bfs: BfsBudget {
                deadline: Some(dams_diversity::Deadline::Ticks(0)),
                ..BfsBudget::default()
            },
        };
        assert_eq!(
            select_with_ladder(&inst, TokenId(0), policy, budget, &[Tier::ExactBfs])
                .unwrap_err(),
            SelectError::DeadlineInfeasible
        );
    }

    #[test]
    fn elapsed_wall_clock_deadline_also_skips_the_probe() {
        let inst = fresh_instance(8);
        let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 2));
        let budget = DegradeBudget {
            exact_timeout: Some(std::time::Duration::ZERO),
            bfs: BfsBudget::default(),
        };
        let registry = dams_obs::Registry::new();
        let metrics = CoreMetrics::in_registry(&registry);
        let sel = select_with_ladder_observed(
            &inst,
            TokenId(0),
            policy,
            budget,
            &Tier::DEFAULT_LADDER,
            &metrics,
        )
        .unwrap();
        assert_eq!(
            sel.attempts,
            vec![(Tier::ExactBfs, SelectError::DeadlineInfeasible)]
        );
        assert_eq!(
            registry.snapshot().counter("core.bfs.candidates_total"),
            Some(0)
        );
    }

    #[test]
    fn tick_budget_steers_the_ladder_deterministically() {
        // A generous tick budget lets the exact tier answer; a starved one
        // degrades — and both outcomes are identical across worker counts.
        let inst = fresh_instance(8);
        let req = DiversityRequirement::new(1.0, 3);
        let policy = SelectionPolicy::new(req);
        for (ticks, expect_exact) in [(1u64 << 30, true), (2, false)] {
            let mut tiers = Vec::new();
            for workers in [1usize, 2, 4] {
                let budget = DegradeBudget {
                    exact_timeout: None,
                    bfs: BfsBudget {
                        deadline: Some(dams_diversity::Deadline::Ticks(ticks)),
                        ..BfsBudget::default()
                    },
                };
                let registry = dams_obs::Registry::new();
                let metrics = CoreMetrics::in_registry(&registry);
                let sel = select_with_ladder_exec(
                    &inst,
                    TokenId(0),
                    policy,
                    budget,
                    &Tier::DEFAULT_LADDER,
                    &metrics,
                    &LadderExec { workers, ..LadderExec::default() },
                )
                .unwrap();
                assert_eq!(sel.tier == Tier::ExactBfs, expect_exact, "ticks={ticks}");
                tiers.push((sel.tier, sel.selection.ring.clone()));
            }
            assert!(
                tiers.windows(2).all(|w| w[0] == w[1]),
                "worker count changed the answer: {tiers:?}"
            );
        }
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(Tier::ExactBfs.to_string(), "exact-bfs");
        assert!(Guarantee::Exact.to_string().contains("exact"));
        assert!(Guarantee::ProgressiveRatio(2.5).to_string().contains("2.500"));
        assert!(Guarantee::PriceOfAnarchy(3.0).to_string().contains("PoA"));
    }
}
