//! The two baselines of §7.1: the Smallest Algorithm (TM_S) and the Random
//! Algorithm (TM_R). Both repeatedly add a module (smallest-first or
//! uniformly at random) until the new ring is eligible.

use rand::Rng;

use dams_diversity::TokenId;

use crate::config::SelectionPolicy;
use crate::instance::{ModularInstance, ModuleId};
use crate::selection::{Algorithm, SelectError, Selection, SelectionStats};

/// TM_S: repeatedly add the smallest remaining module until eligible.
pub fn smallest(
    instance: &ModularInstance,
    target: TokenId,
    policy: SelectionPolicy,
) -> Result<Selection, SelectError> {
    if (target.0 as usize) >= instance.universe.len() {
        return Err(SelectError::UnknownToken);
    }
    let req = policy.effective();
    let mut stats = SelectionStats::default();

    let x_tau = instance.module_of(target);
    let mut selected: Vec<ModuleId> = vec![x_tau];
    let mut remaining: Vec<ModuleId> = instance
        .modules()
        .iter()
        .map(|m| m.id)
        .filter(|&id| id != x_tau)
        .collect();
    // Smallest-first, id as tiebreak for determinism.
    remaining.sort_by_key(|&id| (instance.module(id).len(), id));

    let mut next = 0usize;
    loop {
        stats.diversity_checks += 1;
        if req.satisfied_by(&instance.histogram_of(&selected)) {
            break;
        }
        if next >= remaining.len() {
            return Err(SelectError::Infeasible);
        }
        stats.iterations += 1;
        selected.push(remaining[next]);
        next += 1;
    }

    selected.sort_unstable();
    Ok(Selection {
        ring: instance.ring_of(&selected),
        modules: selected,
        algorithm: Algorithm::Smallest,
        stats,
    })
}

/// TM_R: repeatedly add a uniformly random remaining module until eligible.
pub fn random<R: Rng + ?Sized>(
    instance: &ModularInstance,
    target: TokenId,
    policy: SelectionPolicy,
    rng: &mut R,
) -> Result<Selection, SelectError> {
    if (target.0 as usize) >= instance.universe.len() {
        return Err(SelectError::UnknownToken);
    }
    let req = policy.effective();
    let mut stats = SelectionStats::default();

    let x_tau = instance.module_of(target);
    let mut selected: Vec<ModuleId> = vec![x_tau];
    let mut remaining: Vec<ModuleId> = instance
        .modules()
        .iter()
        .map(|m| m.id)
        .filter(|&id| id != x_tau)
        .collect();

    loop {
        stats.diversity_checks += 1;
        if req.satisfied_by(&instance.histogram_of(&selected)) {
            break;
        }
        if remaining.is_empty() {
            return Err(SelectError::Infeasible);
        }
        stats.iterations += 1;
        let pick = rng.gen_range(0..remaining.len());
        selected.push(remaining.swap_remove(pick));
    }

    selected.sort_unstable();
    Ok(Selection {
        ring: instance.ring_of(&selected),
        modules: selected,
        algorithm: Algorithm::Random,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progressive::tests::example3;
    use dams_diversity::DiversityRequirement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn smallest_satisfies_requirement() {
        let inst = example3();
        let req = DiversityRequirement::new(1.0, 4);
        let sel = smallest(&inst, TokenId(10), SelectionPolicy::new(req)).unwrap();
        assert!(req.satisfied_by(&inst.histogram_of(&sel.modules)));
        assert!(sel.ring.contains(TokenId(10)));
    }

    #[test]
    fn random_satisfies_requirement() {
        let inst = example3();
        let req = DiversityRequirement::new(1.0, 4);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let sel = random(&inst, TokenId(10), SelectionPolicy::new(req), &mut rng).unwrap();
            assert!(req.satisfied_by(&inst.histogram_of(&sel.modules)));
            assert!(sel.ring.contains(TokenId(10)));
        }
    }

    #[test]
    fn smallest_is_deterministic() {
        let inst = example3();
        let req = DiversityRequirement::new(1.0, 3);
        let a = smallest(&inst, TokenId(6), SelectionPolicy::new(req)).unwrap();
        let b = smallest(&inst, TokenId(6), SelectionPolicy::new(req)).unwrap();
        assert_eq!(a.modules, b.modules);
    }

    #[test]
    fn both_fail_on_infeasible() {
        let inst = example3();
        let req = DiversityRequirement::new(1.0, 10);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            smallest(&inst, TokenId(10), SelectionPolicy::new(req)).unwrap_err(),
            SelectError::Infeasible
        );
        assert_eq!(
            random(&inst, TokenId(10), SelectionPolicy::new(req), &mut rng).unwrap_err(),
            SelectError::Infeasible
        );
    }

    #[test]
    fn unknown_token_rejected() {
        let inst = example3();
        let req = DiversityRequirement::new(1.0, 2);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            smallest(&inst, TokenId(999), SelectionPolicy::new(req)).unwrap_err(),
            SelectError::UnknownToken
        );
        assert_eq!(
            random(&inst, TokenId(999), SelectionPolicy::new(req), &mut rng).unwrap_err(),
            SelectError::UnknownToken
        );
    }
}
