//! Selection results and errors shared by all DA-MS algorithms.

use dams_diversity::RingSet;

use crate::instance::ModuleId;

/// Which algorithm produced a selection (for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Exact breadth-first search (Algorithm 2).
    Bfs,
    /// The Progressive approximation (Algorithm 4).
    Progressive,
    /// The Game-theoretic approximation (Algorithm 5).
    GameTheoretic,
    /// Baseline: repeatedly add the smallest module.
    Smallest,
    /// Baseline: repeatedly add a random module.
    Random,
}

impl Algorithm {
    /// The paper's label for the TokenMagic variant using this algorithm.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Bfs => "TM_B",
            Algorithm::Progressive => "TM_P",
            Algorithm::GameTheoretic => "TM_G",
            Algorithm::Smallest => "TM_S",
            Algorithm::Random => "TM_R",
        }
    }
}

/// A successful mixin selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The produced ring (consuming token + mixins).
    pub ring: RingSet,
    /// The modules composing it (empty for the BFS path, which does not use
    /// the modular view).
    pub modules: Vec<ModuleId>,
    /// Which algorithm produced it.
    pub algorithm: Algorithm,
    /// Work counters for complexity-shape experiments.
    pub stats: SelectionStats,
}

impl Selection {
    /// Ring size |r_τ| — the optimisation objective of Definition 5.
    pub fn size(&self) -> usize {
        self.ring.len()
    }
}

/// Cheap work counters recorded by every algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Candidate rings / strategy profiles examined.
    pub candidates_examined: u64,
    /// Diversity-histogram evaluations performed.
    pub diversity_checks: u64,
    /// Best-response or greedy iterations executed.
    pub iterations: u64,
    /// Candidates rejected before world enumeration (the BFS's cheap
    /// diversity pre-check; approximation algorithms leave this at 0).
    pub pruned: u64,
}

/// Why a selection failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// The target token is not in the instance universe.
    UnknownToken,
    /// No module subset satisfies the requirement (e.g. too few distinct
    /// HTs in the batch for the requested ℓ).
    Infeasible,
    /// The exact search exceeded its configured budget.
    BudgetExhausted,
    /// The request's deadline was already elapsed before any search work
    /// could start, so the attempt was skipped rather than probed. Emitted
    /// by the degrade ladder (and surfaced by the selection service as a
    /// typed shed) when a request arrives with zero remaining budget.
    DeadlineInfeasible,
    /// Appending the ring would violate the η feasibility guard (§4).
    EtaGuardViolated,
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::UnknownToken => write!(f, "target token outside the mixin universe"),
            SelectError::Infeasible => {
                write!(f, "no eligible ring exists; relax the diversity requirement")
            }
            SelectError::BudgetExhausted => write!(f, "exact search budget exhausted"),
            SelectError::DeadlineInfeasible => {
                write!(f, "deadline already elapsed before selection could start")
            }
            SelectError::EtaGuardViolated => {
                write!(f, "ring would exhaust the batch (η feasibility guard)")
            }
        }
    }
}

impl std::error::Error for SelectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Algorithm::Bfs.label(), "TM_B");
        assert_eq!(Algorithm::Progressive.label(), "TM_P");
        assert_eq!(Algorithm::GameTheoretic.label(), "TM_G");
        assert_eq!(Algorithm::Smallest.label(), "TM_S");
        assert_eq!(Algorithm::Random.label(), "TM_R");
    }

    #[test]
    fn selection_size_is_ring_len() {
        let s = Selection {
            ring: dams_diversity::ring(&[1, 2, 3]),
            modules: vec![],
            algorithm: Algorithm::Bfs,
            stats: SelectionStats::default(),
        };
        assert_eq!(s.size(), 3);
    }

    #[test]
    fn errors_display() {
        for e in [
            SelectError::UnknownToken,
            SelectError::Infeasible,
            SelectError::BudgetExhausted,
            SelectError::DeadlineInfeasible,
            SelectError::EtaGuardViolated,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
