//! The exact breadth-first search algorithm (Algorithm 2, §5).
//!
//! Enumerates candidate rings in ascending size, checks the three
//! constraints of Definition 5 against the full possible-world
//! (token–RS combination) model, and returns the first — hence smallest —
//! eligible ring. Exponential, as Theorem 3.1 demands; used on small
//! instances and to validate the approximation algorithms.
//!
//! # Performance architecture
//!
//! Two implementations share the same semantics:
//!
//! * [`bfs_reference`] — the seed implementation: per candidate it rebuilds
//!   an [`HtHistogram`] for the cheap diversity pre-check and *clones the
//!   entire [`dams_diversity::RingIndex`]* to append the candidate before
//!   world enumeration. Kept verbatim as the oracle for the equivalence
//!   sweep and as the baseline side of the `BENCH_selection.json` figure.
//! * [`bfs`] / [`bfs_with`] — the optimized engine:
//!   - the subset enumerator maintains a [`DeltaHistogram`] by ±1 token as
//!     it walks candidates in lexicographic order, so the cheap recursive
//!     (c, ℓ) pre-check is allocation-free;
//!   - the expensive check runs [`dams_diversity::enumerate_worlds`] with
//!     the candidate as an out-of-index *extra* ring (no index clone) and
//!     forwards `BfsBudget.deadline` into the recursion;
//!   - outcomes are memoizable in an [`EvalCache`] keyed by canonical ring
//!     content (sound across one `bfs()` call and across a whole batch on
//!     a frozen instance — the verdict never depends on the target);
//!   - with `workers > 1`, passing candidates are evaluated in blocks by a
//!     pool of `std::thread::scope` workers spawned once per call and fed
//!     over channels (round-robin by slot, so distribution is
//!     deterministic). Determinism: candidates are *recorded* in
//!     lexicographic order at enumeration time and outcomes are folded
//!     back in that order, so the winner is always the lexicographically
//!     smallest eligible ring of the smallest size and `SelectionStats`
//!     fold exactly as the sequential walk would have — results are
//!     byte-identical to `workers == 1` and to [`bfs_reference`].
//!     Parallelism pays when per-candidate world enumeration is heavy;
//!     on small instances (or a single-CPU host) prefer `workers == 1`.

use dams_diversity::{
    enumerate_dtrs, Deadline, DeltaHistogram, DiversityRequirement, HtHistogram, RingSet, RsId,
    TokenId, WorldOptions,
};

use crate::cache::{CachedOutcome, EvalCache};
use crate::instance::Instance;
use crate::selection::{Algorithm, SelectError, Selection, SelectionStats};

/// Budget limits for the exact search (the BFS explores `O(2^n)` rings and
/// `O(n^m)` worlds per ring — callers cap the blast radius).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsBudget {
    /// Maximum candidate rings to examine before giving up.
    pub max_candidates: u64,
    /// Maximum possible worlds per candidate before giving up.
    pub max_worlds: usize,
    /// Optional deadline, checked between candidates *and* inside world
    /// enumeration. Expiry surfaces as [`SelectError::BudgetExhausted`],
    /// same as the counters. A [`Deadline::At`] instant bounds wall time
    /// (host-dependent); a [`Deadline::Ticks`] budget is charged one unit
    /// per candidate examined (and per world-enumeration step within a
    /// candidate), so expiry — and therefore which tier of the degrade
    /// ladder answers — is bit-reproducible across hosts and worker
    /// counts. `Some(Deadline::Ticks(0))` is treated as already elapsed
    /// before any work.
    pub deadline: Option<Deadline>,
}

impl Default for BfsBudget {
    fn default() -> Self {
        BfsBudget {
            max_candidates: 5_000_000,
            max_worlds: 2_000_000,
            deadline: None,
        }
    }
}

/// Execution options for [`bfs_with`]: the budget plus the degree of
/// frontier parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsOptions {
    /// Work limits (see [`BfsBudget`]).
    pub budget: BfsBudget,
    /// Worker threads for candidate evaluation; `0` and `1` both mean
    /// sequential. Results are identical for every value.
    pub workers: usize,
}

impl Default for BfsOptions {
    fn default() -> Self {
        BfsOptions {
            budget: BfsBudget::default(),
            workers: 1,
        }
    }
}

impl From<BfsBudget> for BfsOptions {
    fn from(budget: BfsBudget) -> Self {
        BfsOptions { budget, workers: 1 }
    }
}

/// Run the exact BFS for `target` with requirement `req`.
///
/// `instance.rings` must already hold every ring of the batch; the related
/// set of each candidate is computed per Definition 1. This is the
/// sequential optimized engine; see [`bfs_with`] for parallelism and
/// caching.
pub fn bfs(
    instance: &Instance,
    target: TokenId,
    req: DiversityRequirement,
    budget: BfsBudget,
) -> Result<Selection, SelectError> {
    bfs_with(instance, target, req, &BfsOptions { budget, workers: 1 }, None)
}

/// Run several targets through [`bfs_with`] sharing one evaluation cache —
/// the TokenMagic-batch usage: candidate verdicts do not depend on the
/// target, so later targets hit outcomes computed for earlier ones.
pub fn bfs_batch(
    instance: &Instance,
    targets: &[TokenId],
    req: DiversityRequirement,
    options: &BfsOptions,
    cache: Option<&EvalCache>,
) -> Vec<Result<Selection, SelectError>> {
    targets
        .iter()
        .map(|&t| bfs_with(instance, t, req, options, cache))
        .collect()
}

/// Fold more than this many enumeration records eagerly, so all-pruned
/// frontiers do not accumulate unbounded bookkeeping.
const RECORD_FLUSH: usize = 4096;

/// Per-worker block multiplier: a block of `workers * 4` passing candidates
/// is dispatched to the pool per flush, balancing channel round-trips
/// against wasted evaluation past the winner (discarded, so results stay
/// byte-identical).
const BLOCK_PER_WORKER: usize = 4;

/// One enumerated candidate, recorded in lexicographic order.
enum Record {
    /// Failed the cheap incremental diversity pre-check.
    Pruned,
    /// Passed the pre-check; outcome pending at the given block index.
    Eval(usize),
    /// `max_candidates` or the deadline tripped at this ordinal.
    Stop,
}

/// An expensive-evaluation outcome tagged with its block slot:
/// `(eligible, dtrs_checks)` or the error that aborted the search.
type SlotOutcome = (usize, Result<(bool, u64), SelectError>);

/// Channel ends of the per-call worker pool: jobs are `(slot, candidate)`
/// pairs distributed round-robin; results come back tagged with the slot.
/// The workers themselves are scoped threads owned by [`bfs_with`] —
/// spawned once per call, not per block.
struct PoolHandles {
    job_txs: Vec<std::sync::mpsc::Sender<(usize, RingSet)>>,
    result_rx: std::sync::mpsc::Receiver<SlotOutcome>,
}

struct Engine<'a> {
    instance: &'a Instance,
    target: TokenId,
    req: DiversityRequirement,
    budget: BfsBudget,
    pool: Option<&'a PoolHandles>,
    cache: Option<&'a EvalCache>,
    block_size: usize,
    /// Stats folded so far (candidates up to the last flush).
    stats: SelectionStats,
    /// Enumeration records since the last flush, lexicographic order.
    records: Vec<Record>,
    /// Candidate rings awaiting the expensive check, indexed by `Eval`.
    pending: Vec<RingSet>,
    /// Set once a winner or an error is known; stops the enumeration.
    result: Option<Result<Selection, SelectError>>,
}

impl<'a> Engine<'a> {
    /// Handle one enumerated candidate; returns `false` to stop.
    fn on_candidate(&mut self, mixins: &[TokenId], delta: &DeltaHistogram) -> bool {
        // Ordinal of this candidate among all examined so far: everything
        // folded plus every record since the last flush folds to exactly
        // one `candidates_examined` increment.
        let ordinal = self.stats.candidates_examined + self.records.len() as u64 + 1;
        if ordinal > self.budget.max_candidates {
            self.records.push(Record::Stop);
            self.flush();
            return false;
        }
        if let Some(deadline) = self.budget.deadline {
            // Work charged so far at candidate granularity: every fully
            // examined candidate is one unit, so `ordinal - 1` units have
            // been spent when this candidate is considered. Ticks expiry
            // is therefore deterministic and identical for any worker
            // count (the ordinal is fixed by lexicographic enumeration).
            if deadline.expired(ordinal - 1) {
                self.records.push(Record::Stop);
                self.flush();
                return false;
            }
        }
        // Cheap diversity pre-check from the incrementally-maintained
        // histogram (`delta` already includes the target's HT).
        if !delta.satisfies(&self.req) {
            self.records.push(Record::Pruned);
            if self.records.len() >= RECORD_FLUSH {
                self.flush();
                return self.result.is_none();
            }
            return true;
        }
        let mut tokens = mixins.to_vec();
        tokens.push(self.target);
        self.records.push(Record::Eval(self.pending.len()));
        self.pending.push(RingSet::new(tokens));
        if self.pending.len() >= self.block_size {
            self.flush();
            return self.result.is_none();
        }
        true
    }

    /// Evaluate the pending block and fold all records, in lexicographic
    /// order, into `stats` — stopping at the first winner or error exactly
    /// like the sequential walk.
    fn flush(&mut self) {
        if self.records.is_empty() {
            return;
        }
        let outcomes = self.evaluate_pending();
        for rec in self.records.drain(..) {
            match rec {
                Record::Stop => {
                    self.stats.candidates_examined += 1;
                    self.result = Some(Err(SelectError::BudgetExhausted));
                    break;
                }
                Record::Pruned => {
                    self.stats.candidates_examined += 1;
                    self.stats.diversity_checks += 1;
                    self.stats.pruned += 1;
                }
                Record::Eval(j) => {
                    self.stats.candidates_examined += 1;
                    self.stats.diversity_checks += 1;
                    match &outcomes[j] {
                        Err(e) => {
                            self.result = Some(Err(e.clone()));
                            break;
                        }
                        Ok((false, checks)) => {
                            self.stats.diversity_checks += checks;
                        }
                        Ok((true, checks)) => {
                            self.stats.diversity_checks += checks;
                            self.result = Some(Ok(Selection {
                                ring: self.pending[j].clone(),
                                modules: Vec::new(),
                                algorithm: Algorithm::Bfs,
                                stats: self.stats,
                            }));
                            break;
                        }
                    }
                }
            }
        }
        self.records.clear();
        self.pending.clear();
    }

    /// Run the expensive check for every pending candidate, dispatched to
    /// the worker pool when one exists and the block is worth it.
    fn evaluate_pending(&self) -> Vec<Result<(bool, u64), SelectError>> {
        let pending = &self.pending;
        let pool = match self.pool {
            Some(pool) if pending.len() > 1 => pool,
            _ => {
                return pending
                    .iter()
                    .map(|rs| eval_expensive(self.instance, rs, self.req, self.budget, self.cache))
                    .collect();
            }
        };
        // A worker can only disappear if its thread died; rather than
        // panicking the whole search, fall back to evaluating the affected
        // candidates inline. `eval_expensive` is deterministic, so the
        // degraded path stays byte-identical to the pooled one.
        let workers = pool.job_txs.len();
        let mut dispatched = 0usize;
        for (i, rs) in pending.iter().enumerate() {
            if pool.job_txs[i % workers].send((i, rs.clone())).is_ok() {
                dispatched += 1;
            }
        }
        let mut outcomes: Vec<Option<Result<(bool, u64), SelectError>>> =
            vec![None; pending.len()];
        for _ in 0..dispatched {
            match pool.result_rx.recv() {
                Ok((i, o)) => outcomes[i] = Some(o),
                Err(_) => break,
            }
        }
        outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| {
                o.unwrap_or_else(|| {
                    eval_expensive(self.instance, &pending[i], self.req, self.budget, self.cache)
                })
            })
            .collect()
    }
}

/// The optimized exact BFS: incremental pre-check, clone-free world
/// enumeration, optional memoization and frontier parallelism. See the
/// module docs for the determinism argument.
pub fn bfs_with(
    instance: &Instance,
    target: TokenId,
    req: DiversityRequirement,
    options: &BfsOptions,
    cache: Option<&EvalCache>,
) -> Result<Selection, SelectError> {
    let n = instance.universe.len();
    if (target.0 as usize) >= n {
        return Err(SelectError::UnknownToken);
    }

    // σ = T \ t_τ (line 1).
    let sigma: Vec<TokenId> = (0..n as u32)
        .map(TokenId)
        .filter(|t| *t != target)
        .collect();

    let workers = options.workers.max(1);
    if workers <= 1 {
        return run_search(instance, target, req, options.budget, cache, None, 1, &sigma);
    }

    // Spawn the pool once for the whole call; workers drain their job
    // channel until it closes (when `pool` drops after the search returns).
    let budget = options.budget;
    std::thread::scope(|s| {
        let (result_tx, result_rx) = std::sync::mpsc::channel();
        let mut job_txs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel::<(usize, RingSet)>();
            job_txs.push(tx);
            let result_tx = result_tx.clone();
            s.spawn(move || {
                while let Ok((i, rs)) = rx.recv() {
                    let outcome = eval_expensive(instance, &rs, req, budget, cache);
                    if result_tx.send((i, outcome)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(result_tx);
        let pool = PoolHandles { job_txs, result_rx };
        run_search(instance, target, req, budget, cache, Some(&pool), workers, &sigma)
    })
}

/// The enumeration loop shared by the sequential and pooled paths.
#[allow(clippy::too_many_arguments)]
fn run_search(
    instance: &Instance,
    target: TokenId,
    req: DiversityRequirement,
    budget: BfsBudget,
    cache: Option<&EvalCache>,
    pool: Option<&PoolHandles>,
    workers: usize,
    sigma: &[TokenId],
) -> Result<Selection, SelectError> {
    let mut engine = Engine {
        instance,
        target,
        req,
        budget,
        pool,
        cache,
        block_size: if pool.is_some() {
            workers * BLOCK_PER_WORKER
        } else {
            1
        },
        stats: SelectionStats::default(),
        records: Vec::new(),
        pending: Vec::new(),
        result: None,
    };

    // The incremental histogram over {target} ∪ mixins; the enumerator
    // keeps it in sync by ±1 token per lexicographic step.
    let mut delta = DeltaHistogram::for_universe(&instance.universe);
    delta.add_token(&instance.universe, target);

    // Ascending mixin count i (line 2). A ring needs at least ℓ distinct
    // HTs, so sizes below ℓ can never satisfy the diversity constraint —
    // mirroring the paper's `i = ℓ_τ − 1` start.
    let min_mixins = req.l.saturating_sub(1);
    for i in min_mixins..=sigma.len() {
        for_each_subset_tracked(sigma, i, instance, &mut delta, &mut |mixins, d| {
            engine.on_candidate(mixins, d)
        });
        engine.flush();
        if let Some(result) = engine.result.take() {
            return result;
        }
    }
    Err(SelectError::Infeasible)
}

/// Cache-aware wrapper around [`check_candidate_worlds`]. Only definite
/// verdicts are stored; budget errors are recomputed every time.
fn eval_expensive(
    instance: &Instance,
    rs: &RingSet,
    req: DiversityRequirement,
    budget: BfsBudget,
    cache: Option<&EvalCache>,
) -> Result<(bool, u64), SelectError> {
    if let Some(cache) = cache {
        if let Some(hit) = cache.lookup(rs.tokens()) {
            return Ok((hit.eligible, hit.dtrs_checks));
        }
    }
    let res = check_candidate_worlds(instance, rs, req, budget);
    if let (Some(cache), Ok((eligible, dtrs_checks))) = (cache, &res) {
        cache.insert(
            rs.tokens(),
            CachedOutcome {
                eligible: *eligible,
                dtrs_checks: *dtrs_checks,
            },
        );
    }
    res
}

/// The expensive half of a candidate check — world enumeration, the
/// non-eliminated constraint, and per-ring DTRS diversity — without
/// cloning the ring index: the candidate participates as an *extra* ring
/// under the phantom id a push would have assigned. Returns the verdict
/// plus the number of DTRS diversity checks performed.
fn check_candidate_worlds(
    instance: &Instance,
    rs: &RingSet,
    req: DiversityRequirement,
    budget: BfsBudget,
) -> Result<(bool, u64), SelectError> {
    // Related set + possible worlds (line 9).
    let mut ring_ids: Vec<RsId> = instance.rings.related_set(rs, None);
    let rs_id = RsId(instance.rings.len() as u32);
    ring_ids.push(rs_id);

    let combos = dams_diversity::enumerate_worlds(
        &instance.rings,
        &ring_ids,
        &WorldOptions {
            limit: budget.max_worlds,
            extra: Some((rs_id, rs)),
            deadline: budget.deadline,
        },
    )
    .map_err(|_| SelectError::BudgetExhausted)?;
    if combos.len() >= budget.max_worlds {
        return Err(SelectError::BudgetExhausted);
    }
    if combos.is_empty() {
        // The candidate creates a world with no consistent assignment —
        // impossible in a real chain, but a candidate that contradicts the
        // existing spend structure is simply ineligible.
        return Ok((false, 0));
    }

    // Non-eliminated constraint (lines 10-16): every token of every ring in
    // the analysis set must appear as its consumed token in some world.
    for (slot, &rid) in ring_ids.iter().enumerate() {
        let ring_len = if rid == rs_id {
            rs.len()
        } else {
            instance.rings.ring(rid).len()
        };
        let possible = dams_diversity::combination::possible_consumed(&combos, slot);
        if possible.len() != ring_len {
            return Ok((false, 0));
        }
    }

    // Immutability + DTRS diversity (lines 17-22): every ring's DTRSs must
    // satisfy that ring's claimed requirement; the new ring's DTRSs must
    // satisfy (c_τ, ℓ_τ).
    let mut checks = 0u64;
    for (slot, &rid) in ring_ids.iter().enumerate() {
        let claim = if rid == rs_id {
            req
        } else {
            instance.claim(rid)
        };
        let dtrs = enumerate_dtrs(&combos, &ring_ids, slot, &instance.universe);
        for d in dtrs {
            checks += 1;
            let hist = HtHistogram::from_tokens(&d.tokens(), &instance.universe);
            if !claim.satisfied_by(&hist) {
                return Ok((false, checks));
            }
        }
    }
    Ok((true, checks))
}

/// The seed implementation, kept verbatim: equivalence oracle for the
/// optimized engine and the baseline side of the selection bench figure.
/// Per candidate it rebuilds the HT histogram and clones the ring index.
pub fn bfs_reference(
    instance: &Instance,
    target: TokenId,
    req: DiversityRequirement,
    budget: BfsBudget,
) -> Result<Selection, SelectError> {
    let n = instance.universe.len();
    if (target.0 as usize) >= n {
        return Err(SelectError::UnknownToken);
    }
    let mut stats = SelectionStats::default();

    // σ = T \ t_τ (line 1).
    let sigma: Vec<TokenId> = (0..n as u32)
        .map(TokenId)
        .filter(|t| *t != target)
        .collect();

    let min_mixins = req.l.saturating_sub(1);
    for i in min_mixins..=sigma.len() {
        let mut found: Option<Selection> = None;
        let mut err: Option<SelectError> = None;
        for_each_subset(&sigma, i, &mut |mixins| {
            if found.is_some() || err.is_some() {
                return false;
            }
            stats.candidates_examined += 1;
            if stats.candidates_examined > budget.max_candidates {
                err = Some(SelectError::BudgetExhausted);
                return false;
            }
            if let Some(deadline) = budget.deadline {
                if deadline.expired(stats.candidates_examined - 1) {
                    err = Some(SelectError::BudgetExhausted);
                    return false;
                }
            }
            let mut tokens = mixins.to_vec();
            tokens.push(target);
            let rs = RingSet::new(tokens);

            match check_candidate_reference(instance, &rs, req, budget, &mut stats) {
                Ok(true) => {
                    found = Some(Selection {
                        ring: rs,
                        modules: Vec::new(),
                        algorithm: Algorithm::Bfs,
                        stats,
                    });
                    false
                }
                Ok(false) => true,
                Err(e) => {
                    err = Some(e);
                    false
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        if let Some(sel) = found {
            return Ok(sel);
        }
    }
    Err(SelectError::Infeasible)
}

/// Check the three constraints of Definition 5 for one candidate ring
/// (reference path: histogram rebuild + index clone per candidate).
fn check_candidate_reference(
    instance: &Instance,
    rs: &RingSet,
    req: DiversityRequirement,
    budget: BfsBudget,
    stats: &mut SelectionStats,
) -> Result<bool, SelectError> {
    // Diversity constraint, first half (lines 6-8): the ring's own HT set.
    stats.diversity_checks += 1;
    if !req.satisfied_by(&HtHistogram::from_ring(rs, &instance.universe)) {
        stats.pruned += 1;
        return Ok(false);
    }

    // Related set + possible worlds (line 9).
    let related = instance.rings.related_set(rs, None);
    let mut ring_ids: Vec<RsId> = related.clone();
    // Index the candidate as a temporary ring: clone the index and append.
    let mut index = instance.rings.clone();
    let rs_id = index.push(rs.clone());
    ring_ids.push(rs_id);

    let combos =
        dams_diversity::combination::enumerate_with_limit(&index, &ring_ids, budget.max_worlds);
    if combos.len() >= budget.max_worlds {
        return Err(SelectError::BudgetExhausted);
    }
    if combos.is_empty() {
        return Ok(false);
    }

    // Non-eliminated constraint (lines 10-16).
    for (slot, &rid) in ring_ids.iter().enumerate() {
        let possible = dams_diversity::combination::possible_consumed(&combos, slot);
        if possible.len() != index.ring(rid).len() {
            return Ok(false);
        }
    }

    // Immutability + DTRS diversity (lines 17-22).
    for (slot, &rid) in ring_ids.iter().enumerate() {
        let claim = if rid == rs_id {
            req
        } else {
            instance.claim(rid)
        };
        let dtrs = enumerate_dtrs(&combos, &ring_ids, slot, &instance.universe);
        for d in dtrs {
            stats.diversity_checks += 1;
            let hist = HtHistogram::from_tokens(&d.tokens(), &instance.universe);
            if !claim.satisfied_by(&hist) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Visit all `k`-subsets of `pool` in lexicographic order; the callback
/// returns `false` to stop the enumeration.
fn for_each_subset<F: FnMut(&[TokenId]) -> bool>(pool: &[TokenId], k: usize, f: &mut F) {
    fn rec<F: FnMut(&[TokenId]) -> bool>(
        pool: &[TokenId],
        k: usize,
        start: usize,
        acc: &mut Vec<TokenId>,
        f: &mut F,
    ) -> bool {
        if acc.len() == k {
            return f(acc);
        }
        let need = k - acc.len();
        let mut i = start;
        while i + need <= pool.len() {
            acc.push(pool[i]);
            if !rec(pool, k, i + 1, acc, f) {
                acc.pop();
                return false;
            }
            acc.pop();
            i += 1;
        }
        true
    }
    if k <= pool.len() {
        rec(pool, k, 0, &mut Vec::with_capacity(k), f);
    }
}

/// [`for_each_subset`] with a [`DeltaHistogram`] kept in sync by ±1 token
/// per step — the incremental-histogram invariant: on entry to the callback
/// `delta` holds exactly the HTs of `acc ∪ {target}` (the target was seeded
/// by the caller and is never touched here).
fn for_each_subset_tracked<F>(
    pool: &[TokenId],
    k: usize,
    instance: &Instance,
    delta: &mut DeltaHistogram,
    f: &mut F,
) where
    F: FnMut(&[TokenId], &DeltaHistogram) -> bool,
{
    fn rec<F>(
        pool: &[TokenId],
        k: usize,
        start: usize,
        acc: &mut Vec<TokenId>,
        instance: &Instance,
        delta: &mut DeltaHistogram,
        f: &mut F,
    ) -> bool
    where
        F: FnMut(&[TokenId], &DeltaHistogram) -> bool,
    {
        if acc.len() == k {
            return f(acc, delta);
        }
        let need = k - acc.len();
        let mut i = start;
        while i + need <= pool.len() {
            let t = pool[i];
            acc.push(t);
            delta.add_token(&instance.universe, t);
            let keep_going = rec(pool, k, i + 1, acc, instance, delta, f);
            delta.remove_token(&instance.universe, t);
            acc.pop();
            if !keep_going {
                return false;
            }
            i += 1;
        }
        true
    }
    if k <= pool.len() {
        rec(pool, k, 0, &mut Vec::with_capacity(k), instance, delta, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_diversity::{ring, HtId, RingIndex, TokenUniverse};

    /// Example 1 of the paper as an instance. Token numbering: paper's
    /// t1..t4 are ids 0..3. HTs: t1, t3 from h1; t2 from h2; t4 from h3.
    /// Existing rings: r1 = r2 = {t1, t2} = {0, 1}.
    fn example1() -> Instance {
        let universe = TokenUniverse::new(vec![HtId(1), HtId(2), HtId(1), HtId(3)]);
        let rings = RingIndex::from_rings([ring(&[0, 1]), ring(&[0, 1])]);
        let claims = vec![DiversityRequirement::new(2.0, 1); 2];
        Instance::new(universe, rings, claims)
    }

    #[test]
    fn example1_finds_the_good_solution() {
        // The paper's "good solution" for consuming t3 (id 2) is
        // r3 = {t3, t4} = {2, 3}: diverse (h1, h3), resists chain reaction,
        // size 2.
        let inst = example1();
        let req = DiversityRequirement::new(2.0, 1);
        let sel = bfs(&inst, TokenId(2), req, BfsBudget::default()).unwrap();
        assert_eq!(sel.size(), 2, "{sel:?}");
        assert!(sel.ring.contains(TokenId(2)));
        // {t1, t3} = {0, 2} fails non-eliminated (t1 provably consumed by
        // r1 = r2); {t2, t3} = {1, 2} fails the same way. {t3, t4} is the
        // smallest clean ring.
        assert_eq!(sel.ring, ring(&[2, 3]));
    }

    #[test]
    fn example1_solution_two_is_rejected() {
        // {t2, t3} = {1, 2}: chain reaction pins t3 (r1 = r2 consume t1, t2).
        let inst = example1();
        let req = DiversityRequirement::new(2.0, 1);
        let sel = bfs(&inst, TokenId(2), req, BfsBudget::default()).unwrap();
        assert_ne!(sel.ring, ring(&[1, 2]));
    }

    #[test]
    fn minimality_no_smaller_ring_is_eligible() {
        // Size-1 ring {t3} is trivially chain-reaction-determined; BFS must
        // return size >= 2.
        let inst = example1();
        let req = DiversityRequirement::new(2.0, 1);
        let sel = bfs(&inst, TokenId(2), req, BfsBudget::default()).unwrap();
        assert!(sel.size() >= 2);
    }

    #[test]
    fn tight_l_requirement_grows_ring() {
        let inst = example1();
        // Require 3 distinct HTs: only {t2, t3, t4} or supersets qualify on
        // diversity; chain reaction rules out t1/t2 contamination.
        let req = DiversityRequirement::new(2.0, 3);
        match bfs(&inst, TokenId(2), req, BfsBudget::default()) {
            Ok(sel) => {
                assert!(sel.size() >= 3);
                let hist = HtHistogram::from_ring(&sel.ring, &inst.universe);
                assert!(req.satisfied_by(&hist));
            }
            Err(SelectError::Infeasible) => {
                // acceptable: the t2-contamination may make it impossible
            }
            Err(e) => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn infeasible_when_universe_lacks_hts() {
        // All tokens share one HT: no ring ever satisfies ℓ = 2.
        let universe = TokenUniverse::new(vec![HtId(0); 4]);
        let inst = Instance::fresh(universe);
        let req = DiversityRequirement::new(1.0, 2);
        assert_eq!(
            bfs(&inst, TokenId(0), req, BfsBudget::default()).unwrap_err(),
            SelectError::Infeasible
        );
    }

    #[test]
    fn fresh_universe_small_ring() {
        // No existing rings, 4 tokens with distinct HTs: {t0, t?} suffices
        // for (1, 2)? q=[1,1]: 1 < 1*1 = false (strict). Needs 3 tokens:
        // q=[1,1,1]: 1 < 1*2 ✓.
        let universe = TokenUniverse::new(vec![HtId(0), HtId(1), HtId(2), HtId(3)]);
        let inst = Instance::fresh(universe);
        let req = DiversityRequirement::new(1.0, 2);
        let sel = bfs(&inst, TokenId(0), req, BfsBudget::default()).unwrap();
        assert_eq!(sel.size(), 3);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let universe = TokenUniverse::new((0..20).map(HtId).collect());
        let inst = Instance::fresh(universe);
        let req = DiversityRequirement::new(0.1, 12);
        let tiny = BfsBudget {
            max_candidates: 10,
            max_worlds: 10,
            deadline: None,
        };
        assert_eq!(
            bfs(&inst, TokenId(0), req, tiny).unwrap_err(),
            SelectError::BudgetExhausted
        );
    }

    #[test]
    fn unknown_token_rejected() {
        let inst = example1();
        let req = DiversityRequirement::new(1.0, 1);
        assert_eq!(
            bfs(&inst, TokenId(99), req, BfsBudget::default()).unwrap_err(),
            SelectError::UnknownToken
        );
    }

    #[test]
    fn subset_enumeration_counts() {
        let pool: Vec<TokenId> = (0..5).map(TokenId).collect();
        let mut count = 0;
        for_each_subset(&pool, 3, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 10);
        // early stop
        let mut seen = 0;
        for_each_subset(&pool, 2, &mut |_| {
            seen += 1;
            seen < 4
        });
        assert_eq!(seen, 4);
    }

    #[test]
    fn reference_and_optimized_agree_on_example1() {
        let inst = example1();
        for req in [
            DiversityRequirement::new(2.0, 1),
            DiversityRequirement::new(2.0, 2),
            DiversityRequirement::new(2.0, 3),
            DiversityRequirement::new(0.5, 1),
        ] {
            for t in 0..4u32 {
                let reference = bfs_reference(&inst, TokenId(t), req, BfsBudget::default());
                let optimized = bfs(&inst, TokenId(t), req, BfsBudget::default());
                assert_eq!(reference, optimized, "req={req:?} t={t}");
            }
        }
    }

    #[test]
    fn parallel_and_cached_match_sequential_on_example1() {
        let inst = example1();
        let req = DiversityRequirement::new(2.0, 1);
        let sequential = bfs(&inst, TokenId(2), req, BfsBudget::default()).unwrap();
        for workers in [2, 4] {
            let opts = BfsOptions {
                budget: BfsBudget::default(),
                workers,
            };
            let cache = EvalCache::with_capacity(64);
            let cold = bfs_with(&inst, TokenId(2), req, &opts, Some(&cache)).unwrap();
            let warm = bfs_with(&inst, TokenId(2), req, &opts, Some(&cache)).unwrap();
            assert_eq!(sequential, cold, "workers={workers} (cold cache)");
            assert_eq!(sequential, warm, "workers={workers} (warm cache)");
        }
    }

    #[test]
    fn expired_deadline_reports_budget_exhausted() {
        // An already-expired deadline must error promptly. (The abort
        // *inside* a single candidate's world enumeration is unit-tested
        // deterministically in dams-diversity::combination; here the
        // between-candidates check fires first.)
        let universe = TokenUniverse::new((0..12).map(|i| HtId(i % 6)).collect());
        let big = ring(&(0..8).collect::<Vec<u32>>());
        let rings = RingIndex::from_rings([big.clone(), big.clone(), big.clone(), big]);
        let claims = vec![DiversityRequirement::new(2.0, 1); 4];
        let inst = Instance::new(universe, rings, claims);
        let expired = BfsBudget {
            deadline: Some(Deadline::At(std::time::Instant::now())),
            ..BfsBudget::default()
        };
        assert_eq!(
            bfs(&inst, TokenId(9), DiversityRequirement::new(2.0, 1), expired).unwrap_err(),
            SelectError::BudgetExhausted
        );
    }

    #[test]
    fn tick_deadline_bounds_candidates_deterministically() {
        let universe = TokenUniverse::new((0..14).map(HtId).collect());
        let inst = Instance::fresh(universe);
        let req = DiversityRequirement::new(1.0, 4);
        // Zero ticks: expired before the first candidate, no work at all.
        let zero = BfsBudget {
            deadline: Some(Deadline::Ticks(0)),
            ..BfsBudget::default()
        };
        assert_eq!(
            bfs(&inst, TokenId(0), req, zero).unwrap_err(),
            SelectError::BudgetExhausted
        );
        // A starved budget expires identically run after run, and for any
        // worker count — the property the selection service's virtual
        // deadline propagation depends on.
        let starved = BfsBudget {
            deadline: Some(Deadline::Ticks(3)),
            ..BfsBudget::default()
        };
        for workers in [1, 2, 4] {
            let opts = BfsOptions {
                budget: starved,
                workers,
            };
            assert_eq!(
                bfs_with(&inst, TokenId(0), req, &opts, None).unwrap_err(),
                SelectError::BudgetExhausted,
                "workers={workers}"
            );
        }
        // A generous tick budget matches the unbudgeted answer exactly.
        let generous = BfsBudget {
            deadline: Some(Deadline::Ticks(1 << 30)),
            ..BfsBudget::default()
        };
        assert_eq!(
            bfs(&inst, TokenId(0), req, generous).unwrap(),
            bfs(&inst, TokenId(0), req, BfsBudget::default()).unwrap()
        );
    }
}
