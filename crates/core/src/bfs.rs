//! The exact breadth-first search algorithm (Algorithm 2, §5).
//!
//! Enumerates candidate rings in ascending size, checks the three
//! constraints of Definition 5 against the full possible-world
//! (token–RS combination) model, and returns the first — hence smallest —
//! eligible ring. Exponential, as Theorem 3.1 demands; used on small
//! instances and to validate the approximation algorithms.

use dams_diversity::{
    enumerate_dtrs, DiversityRequirement, HtHistogram, RingSet, RsId,
    TokenId,
};

use crate::instance::Instance;
use crate::selection::{Algorithm, SelectError, Selection, SelectionStats};

/// Budget limits for the exact search (the BFS explores `O(2^n)` rings and
/// `O(n^m)` worlds per ring — callers cap the blast radius).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsBudget {
    /// Maximum candidate rings to examine before giving up.
    pub max_candidates: u64,
    /// Maximum possible worlds per candidate before giving up.
    pub max_worlds: usize,
    /// Optional wall-clock deadline, checked between candidates. Expiry
    /// surfaces as [`SelectError::BudgetExhausted`], same as the counters.
    pub deadline: Option<std::time::Instant>,
}

impl Default for BfsBudget {
    fn default() -> Self {
        BfsBudget {
            max_candidates: 5_000_000,
            max_worlds: 2_000_000,
            deadline: None,
        }
    }
}

/// Run the exact BFS for `target` with requirement `req`.
///
/// `instance.rings` must already hold every ring of the batch; the related
/// set of each candidate is computed per Definition 1.
pub fn bfs(
    instance: &Instance,
    target: TokenId,
    req: DiversityRequirement,
    budget: BfsBudget,
) -> Result<Selection, SelectError> {
    let n = instance.universe.len();
    if (target.0 as usize) >= n {
        return Err(SelectError::UnknownToken);
    }
    let mut stats = SelectionStats::default();

    // σ = T \ t_τ (line 1).
    let sigma: Vec<TokenId> = (0..n as u32)
        .map(TokenId)
        .filter(|t| *t != target)
        .collect();

    // Ascending mixin count i (line 2). A ring needs at least ℓ distinct
    // HTs, so sizes below ℓ can never satisfy the diversity constraint —
    // mirroring the paper's `i = ℓ_τ − 1` start.
    let min_mixins = req.l.saturating_sub(1);
    for i in min_mixins..=sigma.len() {
        let mut found: Option<Selection> = None;
        let mut err: Option<SelectError> = None;
        for_each_subset(&sigma, i, &mut |mixins| {
            if found.is_some() || err.is_some() {
                return false;
            }
            stats.candidates_examined += 1;
            if stats.candidates_examined > budget.max_candidates {
                err = Some(SelectError::BudgetExhausted);
                return false;
            }
            if let Some(deadline) = budget.deadline {
                if std::time::Instant::now() >= deadline {
                    err = Some(SelectError::BudgetExhausted);
                    return false;
                }
            }
            let mut tokens = mixins.to_vec();
            tokens.push(target);
            let rs = RingSet::new(tokens);

            match check_candidate(instance, &rs, req, budget, &mut stats) {
                Ok(true) => {
                    found = Some(Selection {
                        ring: rs,
                        modules: Vec::new(),
                        algorithm: Algorithm::Bfs,
                        stats,
                    });
                    false
                }
                Ok(false) => true,
                Err(e) => {
                    err = Some(e);
                    false
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        if let Some(sel) = found {
            return Ok(sel);
        }
    }
    Err(SelectError::Infeasible)
}

/// Check the three constraints of Definition 5 for one candidate ring.
fn check_candidate(
    instance: &Instance,
    rs: &RingSet,
    req: DiversityRequirement,
    budget: BfsBudget,
    stats: &mut SelectionStats,
) -> Result<bool, SelectError> {
    // Diversity constraint, first half (lines 6-8): the ring's own HT set.
    stats.diversity_checks += 1;
    if !req.satisfied_by(&HtHistogram::from_ring(rs, &instance.universe)) {
        stats.pruned += 1;
        return Ok(false);
    }

    // Related set + possible worlds (line 9).
    let related = instance.rings.related_set(rs, None);
    let mut ring_ids: Vec<RsId> = related.clone();
    // Index the candidate as a temporary ring: clone the index and append.
    let mut index = instance.rings.clone();
    let rs_id = index.push(rs.clone());
    ring_ids.push(rs_id);

    let combos =
        dams_diversity::combination::enumerate_with_limit(&index, &ring_ids, budget.max_worlds);
    if combos.len() >= budget.max_worlds {
        return Err(SelectError::BudgetExhausted);
    }
    if combos.is_empty() {
        // The candidate creates a world with no consistent assignment —
        // impossible in a real chain, but a candidate that contradicts the
        // existing spend structure is simply ineligible.
        return Ok(false);
    }

    // Non-eliminated constraint (lines 10-16): every token of every ring in
    // the analysis set must appear as its consumed token in some world.
    for (slot, &rid) in ring_ids.iter().enumerate() {
        let possible = dams_diversity::combination::possible_consumed(&combos, slot);
        if possible.len() != index.ring(rid).len() {
            return Ok(false);
        }
    }

    // Immutability + DTRS diversity (lines 17-22): every ring's DTRSs must
    // satisfy that ring's claimed requirement; the new ring's DTRSs must
    // satisfy (c_τ, ℓ_τ).
    for (slot, &rid) in ring_ids.iter().enumerate() {
        let claim = if rid == rs_id {
            req
        } else {
            instance.claim(rid)
        };
        let dtrs = enumerate_dtrs(&combos, &ring_ids, slot, &instance.universe);
        for d in dtrs {
            stats.diversity_checks += 1;
            let hist = HtHistogram::from_tokens(&d.tokens(), &instance.universe);
            if !claim.satisfied_by(&hist) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Visit all `k`-subsets of `pool` in lexicographic order; the callback
/// returns `false` to stop the enumeration.
fn for_each_subset<F: FnMut(&[TokenId]) -> bool>(pool: &[TokenId], k: usize, f: &mut F) {
    fn rec<F: FnMut(&[TokenId]) -> bool>(
        pool: &[TokenId],
        k: usize,
        start: usize,
        acc: &mut Vec<TokenId>,
        f: &mut F,
    ) -> bool {
        if acc.len() == k {
            return f(acc);
        }
        let need = k - acc.len();
        let mut i = start;
        while i + need <= pool.len() {
            acc.push(pool[i]);
            if !rec(pool, k, i + 1, acc, f) {
                acc.pop();
                return false;
            }
            acc.pop();
            i += 1;
        }
        true
    }
    if k <= pool.len() {
        rec(pool, k, 0, &mut Vec::with_capacity(k), f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_diversity::{ring, HtId, RingIndex, TokenUniverse};

    /// Example 1 of the paper as an instance. Token numbering: paper's
    /// t1..t4 are ids 0..3. HTs: t1, t3 from h1; t2 from h2; t4 from h3.
    /// Existing rings: r1 = r2 = {t1, t2} = {0, 1}.
    fn example1() -> Instance {
        let universe = TokenUniverse::new(vec![HtId(1), HtId(2), HtId(1), HtId(3)]);
        let rings = RingIndex::from_rings([ring(&[0, 1]), ring(&[0, 1])]);
        let claims = vec![DiversityRequirement::new(2.0, 1); 2];
        Instance::new(universe, rings, claims)
    }

    #[test]
    fn example1_finds_the_good_solution() {
        // The paper's "good solution" for consuming t3 (id 2) is
        // r3 = {t3, t4} = {2, 3}: diverse (h1, h3), resists chain reaction,
        // size 2.
        let inst = example1();
        let req = DiversityRequirement::new(2.0, 1);
        let sel = bfs(&inst, TokenId(2), req, BfsBudget::default()).unwrap();
        assert_eq!(sel.size(), 2, "{sel:?}");
        assert!(sel.ring.contains(TokenId(2)));
        // {t1, t3} = {0, 2} fails non-eliminated (t1 provably consumed by
        // r1 = r2); {t2, t3} = {1, 2} fails the same way. {t3, t4} is the
        // smallest clean ring.
        assert_eq!(sel.ring, ring(&[2, 3]));
    }

    #[test]
    fn example1_solution_two_is_rejected() {
        // {t2, t3} = {1, 2}: chain reaction pins t3 (r1 = r2 consume t1, t2).
        let inst = example1();
        let req = DiversityRequirement::new(2.0, 1);
        let sel = bfs(&inst, TokenId(2), req, BfsBudget::default()).unwrap();
        assert_ne!(sel.ring, ring(&[1, 2]));
    }

    #[test]
    fn minimality_no_smaller_ring_is_eligible() {
        // Size-1 ring {t3} is trivially chain-reaction-determined; BFS must
        // return size >= 2.
        let inst = example1();
        let req = DiversityRequirement::new(2.0, 1);
        let sel = bfs(&inst, TokenId(2), req, BfsBudget::default()).unwrap();
        assert!(sel.size() >= 2);
    }

    #[test]
    fn tight_l_requirement_grows_ring() {
        let inst = example1();
        // Require 3 distinct HTs: only {t2, t3, t4} or supersets qualify on
        // diversity; chain reaction rules out t1/t2 contamination.
        let req = DiversityRequirement::new(2.0, 3);
        match bfs(&inst, TokenId(2), req, BfsBudget::default()) {
            Ok(sel) => {
                assert!(sel.size() >= 3);
                let hist = HtHistogram::from_ring(&sel.ring, &inst.universe);
                assert!(req.satisfied_by(&hist));
            }
            Err(SelectError::Infeasible) => {
                // acceptable: the t2-contamination may make it impossible
            }
            Err(e) => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn infeasible_when_universe_lacks_hts() {
        // All tokens share one HT: no ring ever satisfies ℓ = 2.
        let universe = TokenUniverse::new(vec![HtId(0); 4]);
        let inst = Instance::fresh(universe);
        let req = DiversityRequirement::new(1.0, 2);
        assert_eq!(
            bfs(&inst, TokenId(0), req, BfsBudget::default()).unwrap_err(),
            SelectError::Infeasible
        );
    }

    #[test]
    fn fresh_universe_small_ring() {
        // No existing rings, 4 tokens with distinct HTs: {t0, t?} suffices
        // for (1, 2)? q=[1,1]: 1 < 1*1 = false (strict). Needs 3 tokens:
        // q=[1,1,1]: 1 < 1*2 ✓.
        let universe = TokenUniverse::new(vec![HtId(0), HtId(1), HtId(2), HtId(3)]);
        let inst = Instance::fresh(universe);
        let req = DiversityRequirement::new(1.0, 2);
        let sel = bfs(&inst, TokenId(0), req, BfsBudget::default()).unwrap();
        assert_eq!(sel.size(), 3);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let universe = TokenUniverse::new((0..20).map(HtId).collect());
        let inst = Instance::fresh(universe);
        let req = DiversityRequirement::new(0.1, 12);
        let tiny = BfsBudget {
            max_candidates: 10,
            max_worlds: 10,
            deadline: None,
        };
        assert_eq!(
            bfs(&inst, TokenId(0), req, tiny).unwrap_err(),
            SelectError::BudgetExhausted
        );
    }

    #[test]
    fn unknown_token_rejected() {
        let inst = example1();
        let req = DiversityRequirement::new(1.0, 1);
        assert_eq!(
            bfs(&inst, TokenId(99), req, BfsBudget::default()).unwrap_err(),
            SelectError::UnknownToken
        );
    }

    #[test]
    fn subset_enumeration_counts() {
        let pool: Vec<TokenId> = (0..5).map(TokenId).collect();
        let mut count = 0;
        for_each_subset(&pool, 3, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 10);
        // early stop
        let mut seen = 0;
        for_each_subset(&pool, 2, &mut |_| {
            seen += 1;
            seen < 4
        });
        assert_eq!(seen, 4);
    }
}
