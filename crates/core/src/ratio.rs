//! Approximation-ratio bookkeeping (Theorems 6.5 and 6.7) and a
//! module-level exact optimum for validating them on small instances.

use dams_diversity::TokenId;

use crate::config::SelectionPolicy;
use crate::instance::{ModularInstance, ModuleId};
use crate::selection::SelectError;

/// The instance parameters entering both ratio bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioParams {
    /// `q_M` — count of the most frequent HT in the universe.
    pub q_max: usize,
    /// `z_M` — the largest module size.
    pub z_max: usize,
    /// `q_min` — count of the least frequent HT in the universe.
    pub q_min: usize,
}

impl RatioParams {
    pub fn of(instance: &ModularInstance) -> Self {
        let hist = dams_diversity::HtHistogram::from_hts(
            (0..instance.universe.len() as u32).map(|t| instance.universe.ht(TokenId(t))),
        );
        RatioParams {
            q_max: hist.q1(),
            z_max: instance.z_max(),
            q_min: hist.frequencies().last().copied().unwrap_or(0),
        }
    }

    /// The harmonic number `ε = Σ_{i=1..ℓ} 1/i` of Theorem 6.5.
    pub fn harmonic(l: usize) -> f64 {
        (1..=l).map(|i| 1.0 / i as f64).sum()
    }

    /// Theorem 6.5's Progressive ratio bound `ε + q_M · z_M / 10^{−γ}` with
    /// γ the smallest integer making `10^γ · c` integral (γ = 0 for
    /// integral c). The bound is loose by design; tests only verify it is
    /// an upper bound.
    pub fn progressive_bound(&self, c: f64, l: usize) -> f64 {
        let gamma = smallest_gamma(c);
        Self::harmonic(l) + (self.q_max * self.z_max) as f64 * 10f64.powi(gamma as i32)
    }

    /// Theorem 6.7's price-of-anarchy bound
    /// `q_M · (1 + 1/(c·ℓ)) + z_M / ℓ` for the Game-theoretic algorithm.
    pub fn poa_bound(&self, c: f64, l: usize) -> f64 {
        self.q_max as f64 * (1.0 + 1.0 / (c * l as f64)) + self.z_max as f64 / l as f64
    }
}

/// The smallest γ ≥ 0 such that `10^γ · c` is an integer (capped at 9 for
/// irrational-ish floats).
fn smallest_gamma(c: f64) -> u32 {
    for gamma in 0..=9u32 {
        let scaled = c * 10f64.powi(gamma as i32);
        if (scaled - scaled.round()).abs() < 1e-9 {
            return gamma;
        }
    }
    9
}

/// Exact module-level optimum: the smallest module union containing the
/// target's module that satisfies the policy. Exponential in the module
/// count — validation only.
pub fn optimal_modular(
    instance: &ModularInstance,
    target: TokenId,
    policy: SelectionPolicy,
) -> Result<Vec<ModuleId>, SelectError> {
    if (target.0 as usize) >= instance.universe.len() {
        return Err(SelectError::UnknownToken);
    }
    let x_tau = instance.module_of(target);
    let others: Vec<ModuleId> = instance
        .modules()
        .iter()
        .map(|m| m.id)
        .filter(|&id| id != x_tau)
        .collect();
    assert!(others.len() <= 24, "optimal_modular is for small instances");

    let mut best: Option<(usize, Vec<ModuleId>)> = None;
    for mask in 0u32..(1u32 << others.len()) {
        let mut sel = vec![x_tau];
        for (i, &id) in others.iter().enumerate() {
            if mask & (1 << i) != 0 {
                sel.push(id);
            }
        }
        let size = instance.size_of(&sel);
        if let Some((b, _)) = best {
            if size >= b {
                continue;
            }
        }
        if policy.admits(instance, &sel) {
            sel.sort_unstable();
            best = Some((size, sel));
        }
    }
    best.map(|(_, sel)| sel).ok_or(SelectError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::game_theoretic;
    use crate::progressive::{progressive, tests::example3};
    use dams_diversity::DiversityRequirement;

    #[test]
    fn harmonic_numbers() {
        assert!((RatioParams::harmonic(1) - 1.0).abs() < 1e-12);
        assert!((RatioParams::harmonic(2) - 1.5).abs() < 1e-12);
        assert!((RatioParams::harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn gamma_detection() {
        assert_eq!(smallest_gamma(1.0), 0);
        assert_eq!(smallest_gamma(2.0), 0);
        assert_eq!(smallest_gamma(0.6), 1);
        assert_eq!(smallest_gamma(0.25), 2);
    }

    #[test]
    fn params_of_example3() {
        let inst = example3();
        let p = RatioParams::of(&inst);
        assert_eq!(p.q_max, 4, "h1 appears 4 times");
        assert_eq!(p.z_max, 6, "s1 has 6 tokens");
        assert_eq!(p.q_min, 1);
    }

    #[test]
    fn optimal_is_lower_bound_for_all_algorithms() {
        let inst = example3();
        for l in 1..=5 {
            for c in [0.5, 1.0, 2.0] {
                let req = DiversityRequirement::new(c, l);
                let policy = SelectionPolicy::new(req);
                let opt = optimal_modular(&inst, TokenId(10), policy);
                let prog = progressive(&inst, TokenId(10), policy);
                let game = game_theoretic(&inst, TokenId(10), policy);
                match opt {
                    Ok(opt_sel) => {
                        let opt_size = inst.size_of(&opt_sel);
                        if let Ok(p) = &prog {
                            assert!(p.size() >= opt_size, "c={c} l={l}");
                        }
                        if let Ok(g) = &game {
                            assert!(g.size() >= opt_size, "c={c} l={l}");
                        }
                    }
                    Err(_) => {
                        assert!(prog.is_err(), "c={c} l={l}: prog found {prog:?}");
                        assert!(game.is_err(), "c={c} l={l}: game found {game:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn bounds_hold_on_example3() {
        let inst = example3();
        let p = RatioParams::of(&inst);
        for l in [3usize, 4] {
            let c = 1.0;
            let req = DiversityRequirement::new(c, l);
            let policy = SelectionPolicy::new(req);
            let Ok(opt_sel) = optimal_modular(&inst, TokenId(10), policy) else {
                continue;
            };
            let opt = inst.size_of(&opt_sel) as f64;
            if let Ok(g) = game_theoretic(&inst, TokenId(10), policy) {
                assert!(
                    g.size() as f64 / opt <= p.poa_bound(c, l) + 1e-9,
                    "PoA violated at l={l}"
                );
            }
            if let Ok(pr) = progressive(&inst, TokenId(10), policy) {
                assert!(
                    pr.size() as f64 / opt <= p.progressive_bound(c, l) + 1e-9,
                    "Progressive ratio violated at l={l}"
                );
            }
        }
    }

    #[test]
    fn game_theoretic_example3_matches_optimum() {
        // PoS = 1: on Example 3 the converged equilibrium is the optimum.
        let inst = example3();
        let req = DiversityRequirement::new(1.0, 4);
        let policy = SelectionPolicy::new(req);
        let opt = optimal_modular(&inst, TokenId(10), policy).unwrap();
        let g = game_theoretic(&inst, TokenId(10), policy).unwrap();
        assert_eq!(inst.size_of(&opt), g.size());
    }
}
