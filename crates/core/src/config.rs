//! The practical configurations of §6.1 and their theorem-backed checks.
//!
//! * **First configuration:** every new RS must be the union of whole
//!   modules (super RSs + fresh tokens) — i.e. a superset of each ring it
//!   intersects. With it, Theorem 6.1 gives a polynomial-time DTRS test.
//! * **Second configuration:** to guarantee all DTRSs satisfy `(c, ℓ)`, the
//!   ring itself must satisfy `(c, ℓ+1)` (Theorem 6.4).

use dams_diversity::{
    DiversityRequirement, HtHistogram, HtId, RingIndex, RingSet, TokenUniverse,
};

use crate::instance::{ModularInstance, ModuleId};

/// Check the first practical configuration for a candidate ring against a
/// history: the ring must be a superset of every existing ring it
/// intersects.
pub fn satisfies_first_configuration(candidate: &RingSet, history: &RingIndex) -> bool {
    history
        .iter()
        .all(|(_, r)| !candidate.intersects(r) || candidate.is_superset(r))
}

/// The token set `ψ_{i,j} = r_i \ T̃_{i,j}` of Theorem 6.1: the tokens of
/// ring `r` whose HT is **not** `h`.
pub fn psi(ring: &RingSet, universe: &TokenUniverse, h: HtId) -> RingSet {
    RingSet::new(
        ring.tokens()
            .iter()
            .copied()
            .filter(|t| universe.ht(*t) != h),
    )
}

/// Theorem 6.1 DTRS existence test: given ring `r` whose super RS has
/// subset count `v`, a DTRS pinning HT `h` exists iff
/// `v >= |r| - |T̃_{r,h}| + 1`; its token set is then `ψ_{r,h}`.
///
/// Returns the DTRS token sets (one per determinable HT) — the polynomial
/// replacement for exact DTRS enumeration under the first configuration.
pub fn dtrs_token_sets_fast(
    ring: &RingSet,
    universe: &TokenUniverse,
    subset_count: usize,
) -> Vec<(HtId, RingSet)> {
    let mut hts: Vec<HtId> = ring.tokens().iter().map(|t| universe.ht(*t)).collect();
    hts.sort_unstable();
    hts.dedup();
    let mut out = Vec::new();
    for h in hts {
        let same_ht = ring
            .tokens()
            .iter()
            .filter(|t| universe.ht(**t) == h)
            .count();
        // v_{i*} >= |r_i| - |T̃_{i,j}| + 1 ⇔ a DTRS for h exists.
        if subset_count > ring.len() - same_ht {
            out.push((h, psi(ring, universe, h)));
        }
    }
    out
}

/// Verify, in polynomial time, that every DTRS of `ring` satisfies `req`
/// (the first-configuration fast path replacing Algorithm 3).
pub fn dtrs_diverse_fast(
    ring: &RingSet,
    universe: &TokenUniverse,
    subset_count: usize,
    req: DiversityRequirement,
) -> bool {
    dtrs_token_sets_fast(ring, universe, subset_count)
        .iter()
        .all(|(_, tokens)| req.satisfied_by(&HtHistogram::from_ring(tokens, universe)))
}

/// How a candidate module selection is validated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionPolicy {
    /// The user's requirement `(c_τ, ℓ_τ)`.
    pub requirement: DiversityRequirement,
    /// Apply the second practical configuration: target `(c, ℓ+1)` so every
    /// DTRS is guaranteed `(c, ℓ)`-diverse (Theorem 6.4).
    pub dtrs_margin: bool,
}

impl SelectionPolicy {
    pub fn new(requirement: DiversityRequirement) -> Self {
        SelectionPolicy {
            requirement,
            dtrs_margin: false,
        }
    }

    pub fn with_margin(requirement: DiversityRequirement) -> Self {
        SelectionPolicy {
            requirement,
            dtrs_margin: true,
        }
    }

    /// The requirement the *selection target* must meet (with or without
    /// the ℓ+1 margin).
    pub fn effective(&self) -> DiversityRequirement {
        if self.dtrs_margin {
            self.requirement.with_margin()
        } else {
            self.requirement
        }
    }

    /// Whether a module selection meets the effective requirement.
    pub fn admits(&self, instance: &ModularInstance, selection: &[ModuleId]) -> bool {
        self.effective()
            .satisfied_by(&instance.histogram_of(selection))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dams_diversity::ring;

    fn uni(hts: &[u32]) -> TokenUniverse {
        TokenUniverse::new(hts.iter().map(|&h| HtId(h)).collect())
    }

    #[test]
    fn first_configuration_accepts_superset_or_disjoint() {
        let history = RingIndex::from_rings([ring(&[1, 2]), ring(&[5, 6])]);
        assert!(satisfies_first_configuration(&ring(&[1, 2, 3]), &history));
        assert!(satisfies_first_configuration(&ring(&[7, 8]), &history));
        assert!(satisfies_first_configuration(
            &ring(&[1, 2, 5, 6, 9]),
            &history
        ));
        assert!(!satisfies_first_configuration(&ring(&[2, 3]), &history));
        assert!(!satisfies_first_configuration(&ring(&[1, 5]), &history));
    }

    #[test]
    fn psi_removes_one_ht() {
        let u = uni(&[0, 0, 1, 2]);
        let r = ring(&[0, 1, 2, 3]);
        assert_eq!(psi(&r, &u, HtId(0)), ring(&[2, 3]));
        assert_eq!(psi(&r, &u, HtId(2)), ring(&[0, 1, 2]));
        assert_eq!(psi(&r, &u, HtId(9)), r);
    }

    #[test]
    fn theorem_6_1_threshold() {
        // r = {0,1,2,3}, HTs [0,0,1,2]. For h=0: |T̃| = 2, need v >= 3.
        let u = uni(&[0, 0, 1, 2]);
        let r = ring(&[0, 1, 2, 3]);
        let none = dtrs_token_sets_fast(&r, &u, 2);
        assert!(none.iter().all(|(h, _)| *h != HtId(0)));
        let some = dtrs_token_sets_fast(&r, &u, 3);
        let d0 = some.iter().find(|(h, _)| *h == HtId(0)).unwrap();
        assert_eq!(d0.1, ring(&[2, 3]));
    }

    #[test]
    fn theorem_6_1_is_conservative_vs_exact_dtrs() {
        // Cross-validate the fast path against exact enumeration on the
        // nested-ring motif: r0={1,2} (earlier), super ring r1={1,2,3}.
        // v(r1) = 2. HTs: t1,t2 from h1; t3 from h2.
        //
        // Fast path: for h1, |T̃| = 2, v >= |r| - |T̃| + 1 = 2 → claims the
        // DTRS ψ = {t3} exists. The *exact* enumerator knows more: t3
        // appears in no other ring, so no realizable token-RS pair set can
        // reveal "t3 spent elsewhere" — h1 is not actually determinable
        // here. Theorem 6.1's test is therefore a sound over-approximation
        // (it never misses a DTRS; it may report unrealizable ones), which
        // is the safe direction for a privacy check.
        use dams_diversity::{enumerate_combinations, enumerate_dtrs, RsId};
        let u = uni(&[9, 1, 1, 2]);
        let idx = RingIndex::from_rings([ring(&[1, 2]), ring(&[1, 2, 3])]);
        let rings: Vec<RsId> = idx.ids().collect();
        let combos = enumerate_combinations(&idx, &rings);
        let exact = enumerate_dtrs(&combos, &rings, 1, &u);
        let fast = dtrs_token_sets_fast(idx.ring(RsId(1)), &u, 2);
        let fast_hts: std::collections::BTreeSet<HtId> =
            fast.iter().map(|(h, _)| *h).collect();
        let exact_hts: std::collections::BTreeSet<HtId> =
            exact.iter().map(|d| d.determined_ht).collect();
        assert!(
            exact_hts.is_subset(&fast_hts),
            "fast must cover every exact DTRS HT: exact {exact_hts:?} fast {fast_hts:?}"
        );
        assert_eq!(fast_hts, std::collections::BTreeSet::from([HtId(1)]));
    }

    #[test]
    fn theorem_6_4_margin_protects_dtrs() {
        // If a ring satisfies (c, ℓ+1), every ψ (drop one HT entirely)
        // satisfies (c, ℓ). Spot-check on a concrete histogram.
        let u = uni(&[0, 0, 1, 2, 3, 4]);
        let r = ring(&[0, 1, 2, 3, 4, 5]); // q = [2,1,1,1,1]
        let req = DiversityRequirement::new(1.0, 2);
        let margin = req.with_margin(); // (1, 3)
        assert!(margin.satisfied_by(&HtHistogram::from_ring(&r, &u))); // 2 < 3
        for (_, d) in dtrs_token_sets_fast(&r, &u, r.len()) {
            assert!(
                req.satisfied_by(&HtHistogram::from_ring(&d, &u)),
                "DTRS {d:?} violated (c, l)"
            );
        }
    }

    #[test]
    fn policy_margin_toggles_effective_l() {
        let req = DiversityRequirement::new(0.6, 4);
        assert_eq!(SelectionPolicy::new(req).effective().l, 4);
        assert_eq!(SelectionPolicy::with_margin(req).effective().l, 5);
    }
}
