//! The streaming diversity index: per-batch diversity state maintained
//! **O(Δ) per adopted block** instead of recomputed from the full chain
//! snapshot per request.
//!
//! Every selection request used to rebuild the batch view from genesis:
//! dense HT renumbering, ring collection, and an O(n²)
//! [`ModularInstance::decompose`] whenever an approximation tier ran. All
//! of that work grows with chain history, while the *answer* only depends
//! on one λ-batch (§4: a token's mixin universe is its batch). This module
//! keeps that per-batch state resident and mutates it as blocks arrive:
//!
//! * **per-batch token histograms** — dense batch-local HT labels plus an
//!   HT frequency vector, extended as tokens are minted;
//! * **committed-ring fingerprints** — a chained 64-bit digest per batch
//!   covering every token and ring applied to it, used for cache
//!   invalidation and cheap cross-replica comparison;
//! * **DTRS frontiers** — the module partition of the batch (super RSs and
//!   fresh tokens, Definitions 7/8) maintained by direct merge when a ring
//!   commits, so the degrade ladder's approximation tiers never pay the
//!   O(n²) decomposition.
//!
//! A per-block undo journal makes reorgs O(Δ) too: [`DiversityIndex::
//! rollback_block`] restores the exact prior state (fingerprints
//! included), and the journal can be pruned to the crash-checkpoint depth
//! since the store refuses deeper rollbacks anyway.
//!
//! Equivalence is not assumed: [`recompute_equivalence`] replays the raw
//! block deltas through an independent snapshot pipeline (batch partition
//! → per-batch instance → `decompose`) and demands byte-level agreement
//! with the incremental state, and [`DiversityIndex::select`] feeds the
//! maintained partition through the same ladder entry point as the
//! snapshot path, so verdicts are bit-identical by construction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dams_diversity::{DiversityRequirement, HtId, RingIndex, RingSet, TokenId, TokenUniverse};

use crate::config::SelectionPolicy;
use crate::degrade::{
    select_with_ladder_exec, DegradeBudget, DegradedSelection, LadderExec, Tier,
};
use crate::instance::{Instance, ModularInstance, Module, ModuleId, ModuleKind};
use crate::obs::CoreMetrics;
use crate::selection::SelectError;

/// One committed ring as it appears in an adopted block: global ledger
/// token ids plus the claimed requirement from the transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRing {
    /// Global token ids of the ring members (any order; deduplicated on
    /// application).
    pub tokens: Vec<u64>,
    /// Claimed diversity multiplier `c` (sanitised to > 0 on application).
    pub claimed_c: f64,
    /// Claimed tail index `ℓ` (sanitised to ≥ 1 on application).
    pub claimed_l: usize,
}

/// Everything one adopted block contributes to diversity state. The node
/// derives this from a chain block; the streaming workload generator emits
/// it directly so million-token chains never materialise full blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDelta {
    /// Chain height of the block (must be the successor of the previously
    /// applied height).
    pub height: u64,
    /// Tokens minted by the block in ledger order: `(global token id,
    /// historical-transaction key)`. Global ids must be dense and
    /// contiguous with what the index has already seen.
    pub minted: Vec<(u64, u64)>,
    /// Rings committed by the block, in commit order.
    pub rings: Vec<DeltaRing>,
}

/// Why the index rejected an update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// Minted token ids must be dense: the next id is always the current
    /// token count.
    NonContiguousToken { expected: u64, got: u64 },
    /// Blocks must apply in height order with no gaps.
    NonSequentialHeight { expected: Option<u64>, got: u64 },
    /// A ring referenced a token the index has never seen minted.
    UnknownRingToken(u64),
    /// Rollback requested but the undo journal is empty (either nothing
    /// was ever applied or the entries were pruned past this depth).
    NothingToRollBack,
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::NonContiguousToken { expected, got } => {
                write!(f, "minted token {got} is not the next dense id {expected}")
            }
            IndexError::NonSequentialHeight { expected, got } => match expected {
                Some(e) => write!(f, "block height {got} applied after {e}"),
                None => write!(f, "block height {got} applied out of order"),
            },
            IndexError::UnknownRingToken(t) => write!(f, "ring references unknown token {t}"),
            IndexError::NothingToRollBack => {
                write!(f, "undo journal empty (pruned or never written)")
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// A module of the incremental partition. `rs == None` is a fresh token;
/// `rs == Some(k)` is the super RS whose defining ring is the batch-local
/// ring `k`. Dead modules stay in place as tombstones so rollback can
/// resurrect them in O(their size).
#[derive(Debug, Clone)]
struct IxModule {
    rs: Option<u32>,
    /// Batch-local token ids, sorted.
    tokens: Vec<u32>,
    /// Subset count `v`: committed rings contained in this module.
    v: u32,
    alive: bool,
}

/// The resident state of one λ-batch.
#[derive(Debug, Clone)]
struct BatchState {
    first_block: u64,
    /// Global ids of the batch's tokens in mint order (ascending).
    tokens: Vec<u64>,
    /// Dense batch-local HT label per token (first-seen order).
    ht_label: Vec<u32>,
    /// HT key → batch-local label.
    ht_keys: HashMap<u64, u32>,
    /// Token count per HT label — the per-batch token histogram.
    histogram: Vec<u32>,
    /// Committed rings fully inside the batch (local ids, sorted), in
    /// chain commit order.
    rings: Vec<Vec<u32>>,
    /// Claimed requirement per ring, aligned with `rings`.
    claims: Vec<DiversityRequirement>,
    /// Module slots (tombstoned, see [`IxModule`]).
    modules: Vec<IxModule>,
    /// Local token → module slot.
    module_of: Vec<u32>,
    closed: bool,
    /// The in-batch ring history became non-laminar: no modular view
    /// exists (a snapshot `decompose` fails identically).
    broken: bool,
    /// Chained digest over every token and ring applied to this batch.
    fingerprint: u64,
    /// Bumped on every mutation (rollbacks included) — never reused, so a
    /// cached materialisation can always detect staleness.
    version: u64,
}

impl BatchState {
    fn new(first_block: u64) -> Self {
        BatchState {
            first_block,
            tokens: Vec::new(),
            ht_label: Vec::new(),
            ht_keys: HashMap::new(),
            histogram: Vec::new(),
            rings: Vec::new(),
            claims: Vec::new(),
            modules: Vec::new(),
            module_of: Vec::new(),
            closed: false,
            broken: false,
            fingerprint: 0,
            version: 0,
        }
    }
}

/// How one applied ring is undone.
#[derive(Debug, Clone)]
enum RingUndo {
    /// The ring spanned batches: only the global counter moved.
    CrossBatch,
    /// The ring nested inside module `slot` of `batch`: pop it, decrement
    /// the module's subset count.
    Nested { batch: usize, slot: u32 },
    /// The ring merged `old` slots of `batch` into a new trailing slot:
    /// pop the slot, resurrect the tombstones.
    Merged { batch: usize, old: Vec<u32> },
    /// The ring forced a partition rebuild (non-laminar arrival that may
    /// have healed): restore the saved module state wholesale.
    Rebuilt {
        batch: usize,
        modules: Vec<IxModule>,
        module_of: Vec<u32>,
        broken: bool,
    },
}

/// Undo journal entry for one applied block.
#[derive(Debug, Clone)]
struct BlockJournal {
    height: u64,
    prev_height: Option<u64>,
    /// HT keys of the block's minted tokens (ids are implied: they are the
    /// locator tail).
    minted_hts: Vec<u64>,
    /// The block opened a new batch.
    opened: bool,
    /// The block closed the open batch.
    closed: Option<usize>,
    rings: Vec<RingUndo>,
    /// Fingerprint of every touched batch before this block.
    fp_before: Vec<(usize, u64)>,
}

/// Maintenance-cost accounting. `*_ops` count elementary index operations
/// (token appends, ring-token touches, module-token moves) — a
/// deterministic, wall-clock-free measure of per-block work that the O(Δ)
/// gate asserts against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    pub blocks_applied: u64,
    pub blocks_rolled_back: u64,
    pub total_ops: u64,
    pub last_block_ops: u64,
    pub max_block_ops: u64,
    /// Batch materialisations served from the cache / built fresh.
    pub snapshot_hits: u64,
    pub snapshot_misses: u64,
}

/// A materialised batch view: everything a selection request needs,
/// shared read-only between callers and cached until the batch mutates.
#[derive(Debug)]
pub struct BatchSnapshot {
    pub batch: usize,
    pub fingerprint: u64,
    version: u64,
    /// Batch-local token id → global ledger id.
    pub tokens: Vec<u64>,
    /// The raw per-batch instance (local ids), as the snapshot pipeline
    /// would have built it.
    pub instance: Instance,
    /// The maintained module partition, ordered exactly as
    /// [`ModularInstance::decompose`] orders it. `None` when the batch's
    /// ring history is non-laminar (decompose fails identically).
    pub modular: Option<ModularInstance>,
}

/// A ladder verdict produced through the index, with the ring mapped back
/// to global ledger ids.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedSelection {
    pub batch: usize,
    /// Fingerprint of the batch state the verdict was computed against.
    pub fingerprint: u64,
    /// The raw ladder result in batch-local token ids.
    pub degraded: DegradedSelection,
    /// The selected ring as sorted global ledger ids.
    pub ring: Vec<u64>,
}

/// The persistent incremental diversity index (see the module docs).
#[derive(Debug)]
pub struct DiversityIndex {
    lambda: usize,
    batches: Vec<BatchState>,
    /// Global token id → (batch, local id).
    locator: Vec<(u32, u32)>,
    journal: Vec<BlockJournal>,
    /// Rings spanning more than one batch (excluded from every per-batch
    /// view; the snapshot oracle applies the same rule).
    cross_batch_rings: u64,
    last_height: Option<u64>,
    stats: IndexStats,
    snapshots: Mutex<HashMap<usize, Arc<BatchSnapshot>>>,
    snapshot_hits: AtomicU64,
    snapshot_misses: AtomicU64,
}

impl Clone for DiversityIndex {
    fn clone(&self) -> Self {
        DiversityIndex {
            lambda: self.lambda,
            batches: self.batches.clone(),
            locator: self.locator.clone(),
            journal: self.journal.clone(),
            cross_batch_rings: self.cross_batch_rings,
            last_height: self.last_height,
            stats: self.stats,
            snapshots: Mutex::new(HashMap::new()),
            snapshot_hits: AtomicU64::new(0),
            snapshot_misses: AtomicU64::new(0),
        }
    }
}

/// Chained 64-bit mix (splitmix-style) for the per-batch fingerprints.
fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl DiversityIndex {
    /// An empty index for λ-batches of (at least) `lambda` tokens —
    /// `lambda` follows the consensus batch rule, so `0` means `1`.
    pub fn new(lambda: usize) -> Self {
        DiversityIndex {
            lambda: lambda.max(1),
            batches: Vec::new(),
            locator: Vec::new(),
            journal: Vec::new(),
            cross_batch_rings: 0,
            last_height: None,
            stats: IndexStats::default(),
            snapshots: Mutex::new(HashMap::new()),
            snapshot_hits: AtomicU64::new(0),
            snapshot_misses: AtomicU64::new(0),
        }
    }

    pub fn lambda(&self) -> usize {
        self.lambda
    }

    /// Total tokens indexed so far.
    pub fn token_count(&self) -> u64 {
        self.locator.len() as u64
    }

    /// Number of batches (closed plus at most one open).
    pub fn batch_count(&self) -> usize {
        self.batches.len()
    }

    /// The batch holding a global token id.
    pub fn batch_of(&self, token: u64) -> Option<usize> {
        self.locator.get(token as usize).map(|&(b, _)| b as usize)
    }

    /// Whether a batch is closed (reached λ tokens at a block boundary).
    pub fn batch_closed(&self, batch: usize) -> bool {
        self.batches[batch].closed
    }

    /// Global token ids of a batch, in mint order.
    pub fn batch_tokens(&self, batch: usize) -> &[u64] {
        &self.batches[batch].tokens
    }

    /// Committed-ring fingerprint of a batch.
    pub fn batch_fingerprint(&self, batch: usize) -> u64 {
        self.batches[batch].fingerprint
    }

    /// Height of the first block contributing to a batch.
    pub fn batch_first_block(&self, batch: usize) -> u64 {
        self.batches[batch].first_block
    }

    /// Rings that spanned more than one batch (violating the §4 batch
    /// universe; tracked but excluded from every per-batch view).
    pub fn cross_batch_rings(&self) -> u64 {
        self.cross_batch_rings
    }

    /// Height of the last applied block.
    pub fn last_height(&self) -> Option<u64> {
        self.last_height
    }

    /// Undo journal depth (blocks that can still be rolled back).
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Maintenance-cost counters (snapshot-cache counters folded in).
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            snapshot_hits: self.snapshot_hits.load(Ordering::Relaxed),
            snapshot_misses: self.snapshot_misses.load(Ordering::Relaxed),
            ..self.stats
        }
    }

    /// Apply one adopted block in O(Δ): Δ = minted tokens + ring sizes
    /// (plus, rarely, one bounded in-batch rebuild when a non-laminar ring
    /// arrives). Rejects out-of-order heights, non-dense token ids and
    /// rings over unknown tokens without mutating anything.
    pub fn apply_block(&mut self, delta: &BlockDelta) -> Result<(), IndexError> {
        // Validate before touching state: the index must stay consistent
        // when the caller feeds it a malformed delta.
        if let Some(last) = self.last_height {
            if delta.height != last.wrapping_add(1) {
                return Err(IndexError::NonSequentialHeight {
                    expected: Some(last),
                    got: delta.height,
                });
            }
        }
        for (i, &(tok, _)) in delta.minted.iter().enumerate() {
            let expected = self.locator.len() as u64 + i as u64;
            if tok != expected {
                return Err(IndexError::NonContiguousToken { expected, got: tok });
            }
        }
        let minted_high = self.locator.len() as u64 + delta.minted.len() as u64;
        for ring in &delta.rings {
            for &t in &ring.tokens {
                if t >= minted_high {
                    return Err(IndexError::UnknownRingToken(t));
                }
            }
        }

        let mut ops: u64 = 0;
        let mut entry = BlockJournal {
            height: delta.height,
            prev_height: self.last_height,
            minted_hts: Vec::with_capacity(delta.minted.len()),
            opened: false,
            closed: None,
            rings: Vec::with_capacity(delta.rings.len()),
            fp_before: Vec::new(),
        };

        // Every block belongs to a batch, so a block with no open batch
        // opens one even when it mints nothing (mirrors `BatchList::build`).
        if self.batches.last().is_none_or(|b| b.closed) {
            self.batches.push(BatchState::new(delta.height));
            entry.opened = true;
        }
        let open = self.batches.len() - 1;
        entry.fp_before.push((open, self.batches[open].fingerprint));

        for &(tok, ht) in &delta.minted {
            let b = &mut self.batches[open];
            let local = b.tokens.len() as u32;
            let next_label = b.histogram.len() as u32;
            let label = *b.ht_keys.entry(ht).or_insert(next_label);
            if label == next_label {
                b.histogram.push(0);
            }
            b.histogram[label as usize] += 1;
            b.tokens.push(tok);
            b.ht_label.push(label);
            let slot = b.modules.len() as u32;
            b.modules.push(IxModule {
                rs: None,
                tokens: vec![local],
                v: 0,
                alive: true,
            });
            b.module_of.push(slot);
            b.fingerprint = mix(mix(b.fingerprint, 1 ^ tok), ht);
            b.version += 1;
            self.locator.push((open as u32, local));
            entry.minted_hts.push(ht);
            ops += 1;
        }

        for ring in &delta.rings {
            ops += ring.tokens.len() as u64;
            // Resolve to (batch, local) and detect spans.
            let mut batch: Option<usize> = None;
            let mut spans = false;
            for &t in &ring.tokens {
                let (b, _) = self.locator[t as usize];
                match batch {
                    None => batch = Some(b as usize),
                    Some(prev) if prev != b as usize => spans = true,
                    Some(_) => {}
                }
            }
            let Some(batch) = batch else { continue }; // empty ring: no-op
            if spans {
                self.cross_batch_rings += 1;
                entry.rings.push(RingUndo::CrossBatch);
                continue;
            }
            if !entry.fp_before.iter().any(|&(b, _)| b == batch) {
                entry.fp_before.push((batch, self.batches[batch].fingerprint));
            }
            let mut local: Vec<u32> = ring
                .tokens
                .iter()
                .map(|&t| self.locator[t as usize].1)
                .collect();
            local.sort_unstable();
            local.dedup();
            let claim = DiversityRequirement::new(
                ring.claimed_c.max(f64::MIN_POSITIVE),
                ring.claimed_l.max(1),
            );
            let (undo, ring_ops) = Self::apply_ring(&mut self.batches[batch], batch, local, claim);
            ops += ring_ops;
            entry.rings.push(undo);
        }

        // The batch-closure rule of `BatchList::build`: a batch closes when
        // it holds at least λ tokens after a whole block was added.
        if self.batches[open].tokens.len() >= self.lambda {
            self.batches[open].closed = true;
            self.batches[open].version += 1;
            entry.closed = Some(open);
        }

        self.journal.push(entry);
        self.last_height = Some(delta.height);
        self.stats.blocks_applied += 1;
        self.stats.total_ops += ops;
        self.stats.last_block_ops = ops;
        self.stats.max_block_ops = self.stats.max_block_ops.max(ops);
        Ok(())
    }

    /// Apply one in-batch ring to a batch's partition. Returns the undo
    /// record and the extra ops charged (module-token touches).
    fn apply_ring(
        b: &mut BatchState,
        batch: usize,
        local: Vec<u32>,
        claim: DiversityRequirement,
    ) -> (RingUndo, u64) {
        b.version += 1;
        for &t in &local {
            b.fingerprint = mix(b.fingerprint, 2 ^ ((t as u64) << 2));
        }
        b.fingerprint = mix(b.fingerprint, claim.c.to_bits() ^ claim.l as u64);

        if b.broken {
            // No partition exists while broken: every further ring goes
            // through the bounded rebuild (which may heal the batch).
            return Self::rebuild_partition(b, batch, local, claim);
        }

        let mut slots: Vec<u32> = local.iter().map(|&t| b.module_of[t as usize]).collect();
        slots.sort_unstable();
        slots.dedup();

        if slots.len() == 1 && b.modules[slots[0] as usize].tokens != local {
            // Strict subset of one module: a nested ring. The partition is
            // unchanged; the containing module swallows one more ring.
            b.rings.push(local);
            b.claims.push(claim);
            b.modules[slots[0] as usize].v += 1;
            return (
                RingUndo::Nested {
                    batch,
                    slot: slots[0],
                },
                0,
            );
        }

        let mut union: Vec<u32> = slots
            .iter()
            .flat_map(|&s| b.modules[s as usize].tokens.iter().copied())
            .collect();
        union.sort_unstable();
        let ops = union.len() as u64;

        if union == local {
            // The ring is a union of whole modules (the first practical
            // configuration): merge them into one super RS whose defining
            // ring is this one. Subset counts are additive because every
            // contained ring sits wholly inside one merged module.
            let rs = b.rings.len() as u32;
            b.rings.push(local);
            b.claims.push(claim);
            let v = 1 + slots
                .iter()
                .map(|&s| {
                    let m = &mut b.modules[s as usize];
                    m.alive = false;
                    m.v
                })
                .sum::<u32>();
            let slot = b.modules.len() as u32;
            for &t in &union {
                b.module_of[t as usize] = slot;
            }
            b.modules.push(IxModule {
                rs: Some(rs),
                tokens: union,
                v,
                alive: true,
            });
            return (RingUndo::Merged { batch, old: slots }, ops);
        }

        // The ring straddles module boundaries: the incremental invariant
        // (every ring nests in one module) no longer holds.
        Self::rebuild_partition(b, batch, local, claim)
    }

    /// Rebuild one batch's partition by a full in-batch decomposition —
    /// bounded by the batch size, never by chain length. Runs when a ring
    /// straddles module boundaries (non-laminar arrival) or while the
    /// batch is already broken: the decomposition either heals (a later
    /// superset swallowed an earlier overlap) or proves the history
    /// non-laminar, exactly as a snapshot recompute would.
    fn rebuild_partition(
        b: &mut BatchState,
        batch: usize,
        local: Vec<u32>,
        claim: DiversityRequirement,
    ) -> (RingUndo, u64) {
        let ops = local.len() as u64;
        let undo = RingUndo::Rebuilt {
            batch,
            modules: std::mem::take(&mut b.modules),
            module_of: std::mem::take(&mut b.module_of),
            broken: b.broken,
        };
        b.rings.push(local);
        b.claims.push(claim);
        let rebuild_ops = b.tokens.len() as u64;
        let instance = Self::batch_instance(b);
        match ModularInstance::decompose(&instance) {
            Ok(mi) => {
                b.broken = false;
                b.modules = mi
                    .modules()
                    .iter()
                    .map(|m| IxModule {
                        rs: match m.kind {
                            ModuleKind::SuperRs(rs) => Some(rs.0),
                            ModuleKind::FreshToken => None,
                        },
                        tokens: m.tokens.tokens().iter().map(|t| t.0).collect(),
                        v: mi.subset_count(m.id) as u32,
                        alive: true,
                    })
                    .collect();
                b.module_of = (0..b.tokens.len())
                    .map(|t| mi.module_of(TokenId(t as u32)).0 as u32)
                    .collect();
            }
            Err(_) => {
                b.broken = true;
                // No modular view exists while broken, but later minted
                // tokens still append fresh slots and rollback pops them,
                // so keep a structurally consistent all-fresh placeholder
                // partition (never served: snapshots return `None`).
                b.modules = (0..b.tokens.len())
                    .map(|t| IxModule {
                        rs: None,
                        tokens: vec![t as u32],
                        v: 0,
                        alive: true,
                    })
                    .collect();
                b.module_of = (0..b.tokens.len() as u32).collect();
            }
        }
        (undo, ops + rebuild_ops)
    }

    /// Undo the most recently applied block in O(Δ). Returns its height.
    pub fn rollback_block(&mut self) -> Result<u64, IndexError> {
        let entry = self.journal.pop().ok_or(IndexError::NothingToRollBack)?;

        for undo in entry.rings.iter().rev() {
            match undo {
                RingUndo::CrossBatch => self.cross_batch_rings -= 1,
                RingUndo::Nested { batch, slot } => {
                    let b = &mut self.batches[*batch];
                    b.rings.pop();
                    b.claims.pop();
                    b.modules[*slot as usize].v -= 1;
                    b.version += 1;
                }
                RingUndo::Merged { batch, old } => {
                    let b = &mut self.batches[*batch];
                    b.rings.pop();
                    b.claims.pop();
                    // Per-batch operations are strictly LIFO across the
                    // journal, so the merged slot is the trailing one.
                    let merged = b.modules.pop().expect("merged slot present");
                    debug_assert!(merged.alive && merged.rs.is_some());
                    for &s in old {
                        b.modules[s as usize].alive = true;
                        for i in 0..b.modules[s as usize].tokens.len() {
                            let t = b.modules[s as usize].tokens[i];
                            b.module_of[t as usize] = s;
                        }
                    }
                    b.version += 1;
                }
                RingUndo::Rebuilt {
                    batch,
                    modules,
                    module_of,
                    broken,
                } => {
                    let b = &mut self.batches[*batch];
                    b.rings.pop();
                    b.claims.pop();
                    b.modules = modules.clone();
                    b.module_of = module_of.clone();
                    b.broken = *broken;
                    b.version += 1;
                }
            }
        }

        if let Some(batch) = entry.closed {
            self.batches[batch].closed = false;
            self.batches[batch].version += 1;
        }

        for &ht in entry.minted_hts.iter().rev() {
            let (batch, _) = self.locator.pop().expect("minted token in locator");
            let b = &mut self.batches[batch as usize];
            b.tokens.pop();
            let label = b.ht_label.pop().expect("label per token");
            b.histogram[label as usize] -= 1;
            if b.histogram[label as usize] == 0 {
                // Labels are dense first-seen and tokens pop in reverse
                // mint order, so an emptied label is always the newest.
                debug_assert_eq!(label as usize, b.histogram.len() - 1);
                b.histogram.pop();
                b.ht_keys.remove(&ht);
            }
            let slot = b.module_of.pop().expect("module per token");
            let fresh = b.modules.pop().expect("fresh slot present");
            debug_assert_eq!(slot as usize, b.modules.len());
            debug_assert!(fresh.rs.is_none() && fresh.tokens.len() == 1);
            b.version += 1;
        }

        for &(batch, fp) in entry.fp_before.iter() {
            self.batches[batch].fingerprint = fp;
        }
        if entry.opened {
            let b = self.batches.pop().expect("opened batch present");
            debug_assert!(b.tokens.is_empty());
        }
        self.last_height = entry.prev_height;
        self.stats.blocks_rolled_back += 1;
        Ok(entry.height)
    }

    /// Roll back every block above `target` height. Returns how many were
    /// undone. Fails (leaving a consistent, partially rolled-back state at
    /// the failing depth — same contract as a pruned store) when the
    /// journal does not reach down to `target`.
    pub fn rollback_to_height(&mut self, target: u64) -> Result<usize, IndexError> {
        let mut undone = 0;
        while self.last_height.is_some_and(|h| h > target) {
            self.rollback_block()?;
            undone += 1;
        }
        Ok(undone)
    }

    /// Drop journal entries beyond the last `keep` blocks. The index can
    /// then only roll back `keep` deep — align this with the store's
    /// checkpoint interval, which refuses deeper rollbacks anyway, to keep
    /// memory O(batches + keep·Δ) instead of O(chain).
    pub fn prune_journal(&mut self, keep: usize) {
        if self.journal.len() > keep {
            let drop = self.journal.len() - keep;
            self.journal.drain(..drop);
        }
    }

    /// Build the raw per-batch instance exactly as the snapshot pipeline
    /// (dense first-seen HT labels, in-batch rings in commit order).
    fn batch_instance(b: &BatchState) -> Instance {
        let universe = TokenUniverse::new(b.ht_label.iter().map(|&l| HtId(l)).collect());
        let rings = RingIndex::from_rings(
            b.rings
                .iter()
                .map(|r| RingSet::new(r.iter().map(|&t| TokenId(t)))),
        );
        Instance::new(universe, rings, b.claims.clone())
    }

    /// Materialise the maintained partition in `decompose` order: maximal
    /// super RSs by defining-ring id ascending, then fresh tokens by token
    /// id ascending. Returns `None` for a broken (non-laminar) batch.
    fn batch_modular(b: &BatchState, instance: &Instance) -> Option<ModularInstance> {
        if b.broken {
            return None;
        }
        let mut supers: Vec<&IxModule> = Vec::new();
        let mut fresh: Vec<&IxModule> = Vec::new();
        for m in &b.modules {
            if !m.alive {
                continue;
            }
            match m.rs {
                Some(_) => supers.push(m),
                None => fresh.push(m),
            }
        }
        supers.sort_by_key(|m| m.rs);
        fresh.sort_by_key(|m| m.tokens[0]);
        let mut modules = Vec::with_capacity(supers.len() + fresh.len());
        let mut counts = Vec::with_capacity(modules.capacity());
        for m in supers.into_iter().chain(fresh) {
            let id = ModuleId(modules.len());
            counts.push(m.v as usize);
            modules.push(Module {
                id,
                kind: match m.rs {
                    Some(rs) => ModuleKind::SuperRs(dams_diversity::RsId(rs)),
                    None => ModuleKind::FreshToken,
                },
                tokens: RingSet::new(m.tokens.iter().map(|&t| TokenId(t))),
            });
        }
        Some(ModularInstance::from_modules_with_counts(
            instance.universe.clone(),
            modules,
            counts,
        ))
    }

    /// A shared, cached materialisation of one batch. Rebuilt only when
    /// the batch mutated since the cached copy (version check), so
    /// steady-state requests against a quiet batch pay O(1) for the view.
    pub fn snapshot(&self, batch: usize) -> Option<Arc<BatchSnapshot>> {
        let b = self.batches.get(batch)?;
        let mut cache = self.snapshots.lock().expect("snapshot cache poisoned");
        if let Some(snap) = cache.get(&batch) {
            if snap.version == b.version {
                self.snapshot_hits.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::clone(snap));
            }
        }
        self.snapshot_misses.fetch_add(1, Ordering::Relaxed);
        let instance = Self::batch_instance(b);
        let modular = Self::batch_modular(b, &instance);
        let snap = Arc::new(BatchSnapshot {
            batch,
            fingerprint: b.fingerprint,
            version: b.version,
            tokens: b.tokens.clone(),
            instance,
            modular,
        });
        cache.insert(batch, Arc::clone(&snap));
        Some(snap)
    }

    /// Serve one selection request through the degrade ladder against the
    /// maintained per-batch state: O(batch) per request, independent of
    /// chain length. The approximation tiers consume the resident module
    /// partition instead of decomposing; the exact tier sees the identical
    /// per-batch instance the snapshot path would build, so verdicts are
    /// bit-identical (enforced by [`recompute_equivalence`] and the
    /// 64-seed sweeps).
    #[allow(clippy::too_many_arguments)]
    pub fn select(
        &self,
        target: u64,
        policy: SelectionPolicy,
        budget: DegradeBudget,
        ladder: &[Tier],
        metrics: &CoreMetrics,
        exec: &LadderExec<'_>,
    ) -> Result<IndexedSelection, SelectError> {
        let &(batch, local) = self
            .locator
            .get(target as usize)
            .ok_or(SelectError::UnknownToken)?;
        let snap = self
            .snapshot(batch as usize)
            .expect("locator points at a live batch");
        let exec = LadderExec {
            workers: exec.workers,
            cache: exec.cache,
            modular: snap.modular.as_ref(),
        };
        let degraded = select_with_ladder_exec(
            &snap.instance,
            TokenId(local),
            policy,
            budget,
            ladder,
            metrics,
            &exec,
        )?;
        let ring: Vec<u64> = degraded
            .selection
            .ring
            .tokens()
            .iter()
            .map(|t| snap.tokens[t.0 as usize])
            .collect();
        Ok(IndexedSelection {
            batch: batch as usize,
            fingerprint: snap.fingerprint,
            degraded,
            ring,
        })
    }
}

/// The recompute-equivalence oracle: replay `deltas` through an
/// independent snapshot pipeline — batch partition from scratch, per-batch
/// instances from scratch, module partition via
/// [`ModularInstance::decompose`] — and demand the incremental index
/// agrees on every observable: batch boundaries, token lists, HT labels,
/// histograms, ring lists, claims, cross-batch counts, and the ordered
/// module partition with subset counts. Returns a description of the first
/// divergence. O(n²) in history — a test/audit tool, never a serving path.
pub fn recompute_equivalence(
    index: &DiversityIndex,
    deltas: &[BlockDelta],
) -> Result<(), String> {
    // 1. Batch partition from scratch.
    struct RawBatch {
        tokens: Vec<(u64, u64)>,
        closed: bool,
    }
    let lambda = index.lambda();
    let mut raw: Vec<RawBatch> = Vec::new();
    let mut cross = 0u64;
    let mut token_batch: Vec<usize> = Vec::new();
    for delta in deltas {
        if raw.last().is_none_or(|b| b.closed) {
            raw.push(RawBatch {
                tokens: Vec::new(),
                closed: false,
            });
        }
        let open = raw.len() - 1;
        for &(tok, ht) in &delta.minted {
            raw[open].tokens.push((tok, ht));
            token_batch.push(open);
            if tok as usize + 1 != token_batch.len() {
                return Err(format!("oracle: token ids not dense at {tok}"));
            }
        }
        if raw[open].tokens.len() >= lambda {
            raw[open].closed = true;
        }
    }

    if raw.len() != index.batch_count() {
        return Err(format!(
            "batch count: recompute {} vs index {}",
            raw.len(),
            index.batch_count()
        ));
    }

    // 2. Rings in global commit order, assigned to their batch.
    let mut batch_rings: Vec<Vec<(Vec<u64>, f64, usize)>> = (0..raw.len()).map(|_| Vec::new()).collect();
    for delta in deltas {
        for ring in &delta.rings {
            if ring.tokens.is_empty() {
                continue;
            }
            let b0 = token_batch[ring.tokens[0] as usize];
            if ring.tokens.iter().any(|&t| token_batch[t as usize] != b0) {
                cross += 1;
                continue;
            }
            batch_rings[b0].push((ring.tokens.clone(), ring.claimed_c, ring.claimed_l));
        }
    }
    if cross != index.cross_batch_rings() {
        return Err(format!(
            "cross-batch rings: recompute {} vs index {}",
            cross,
            index.cross_batch_rings()
        ));
    }

    // 3. Per batch: rebuild the local view from scratch and compare.
    for (bi, rb) in raw.iter().enumerate() {
        let got_tokens = index.batch_tokens(bi);
        let want_tokens: Vec<u64> = rb.tokens.iter().map(|&(t, _)| t).collect();
        if got_tokens != want_tokens.as_slice() {
            return Err(format!("batch {bi}: token list diverged"));
        }
        if rb.closed != index.batch_closed(bi) {
            return Err(format!("batch {bi}: closed flag diverged"));
        }

        // Dense first-seen HT labels.
        let mut labels: HashMap<u64, u32> = HashMap::new();
        let mut ht_of: Vec<HtId> = Vec::with_capacity(rb.tokens.len());
        for &(_, ht) in &rb.tokens {
            let next = labels.len() as u32;
            let l = *labels.entry(ht).or_insert(next);
            ht_of.push(HtId(l));
        }
        let local_of: HashMap<u64, u32> = want_tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        let rings = RingIndex::from_rings(batch_rings[bi].iter().map(|(toks, _, _)| {
            RingSet::new(toks.iter().map(|t| TokenId(local_of[t])))
        }));
        let claims: Vec<DiversityRequirement> = batch_rings[bi]
            .iter()
            .map(|&(_, c, l)| DiversityRequirement::new(c.max(f64::MIN_POSITIVE), l.max(1)))
            .collect();
        let instance = Instance::new(TokenUniverse::new(ht_of), rings, claims);

        let Some(snap) = index.snapshot(bi) else {
            return Err(format!("batch {bi}: index has no snapshot"));
        };
        if snap.tokens != want_tokens {
            return Err(format!("batch {bi}: snapshot token map diverged"));
        }
        // Instance equality: universe labels, ring lists, claims.
        let su: Vec<u32> = (0..snap.instance.universe.len() as u32)
            .map(|t| snap.instance.universe.ht(TokenId(t)).0)
            .collect();
        let wu: Vec<u32> = (0..instance.universe.len() as u32)
            .map(|t| instance.universe.ht(TokenId(t)).0)
            .collect();
        if su != wu {
            return Err(format!("batch {bi}: HT labelling diverged"));
        }
        let sr: Vec<&RingSet> = snap.instance.rings.iter().map(|(_, r)| r).collect();
        let wr: Vec<&RingSet> = instance.rings.iter().map(|(_, r)| r).collect();
        if sr != wr {
            return Err(format!("batch {bi}: ring lists diverged"));
        }
        if snap.instance.claims != instance.claims {
            return Err(format!("batch {bi}: claims diverged"));
        }

        // Module partition: decompose from scratch, compare *ordered*
        // (order feeds tie-breaking, so bit-identical verdicts need it).
        let decomposed = ModularInstance::decompose(&instance);
        match (&snap.modular, decomposed) {
            (None, Err(_)) => {}
            (Some(_), Err(e)) => {
                return Err(format!(
                    "batch {bi}: index laminar but decompose failed: {e}"
                ))
            }
            (None, Ok(_)) => {
                return Err(format!("batch {bi}: index broken but decompose succeeded"))
            }
            (Some(mi), Ok(full)) => {
                let shape = |m: &ModularInstance| -> Vec<(ModuleKind, Vec<TokenId>, usize)> {
                    m.modules()
                        .iter()
                        .map(|x| (x.kind, x.tokens.tokens().to_vec(), m.subset_count(x.id)))
                        .collect()
                };
                if shape(mi) != shape(&full) {
                    return Err(format!("batch {bi}: module partition diverged"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A small random delta stream: dense tokens over `hts` historical
    /// transactions, with rings over the open batch's unused tokens so the
    /// history stays laminar (matching what verifying miners admit).
    fn random_deltas(seed: u64, blocks: usize, lambda: usize) -> Vec<BlockDelta> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut deltas = Vec::new();
        let mut next = 0u64;
        let mut open: Vec<u64> = Vec::new(); // unused tokens of the open batch
        let mut open_len = 0usize;
        for h in 0..blocks as u64 {
            let mint = rng.gen_range(1..=4usize);
            let mut minted = Vec::new();
            for _ in 0..mint {
                minted.push((next, rng.gen_range(0..6u64)));
                open.push(next);
                next += 1;
            }
            open_len += mint;
            let mut rings = Vec::new();
            if open.len() >= 3 && rng.gen_bool(0.6) {
                let k = rng.gen_range(2..=open.len().min(4));
                let start = rng.gen_range(0..=open.len() - k);
                let tokens: Vec<u64> = open.drain(start..start + k).collect();
                rings.push(DeltaRing {
                    tokens,
                    claimed_c: 1.0,
                    claimed_l: rng.gen_range(1..=2usize),
                });
            }
            deltas.push(BlockDelta {
                height: h,
                minted,
                rings,
            });
            if open_len >= lambda {
                open.clear();
                open_len = 0;
            }
        }
        deltas
    }

    fn apply_all(index: &mut DiversityIndex, deltas: &[BlockDelta]) {
        for d in deltas {
            index.apply_block(d).unwrap();
        }
    }

    #[test]
    fn incremental_state_matches_recompute_across_seeds() {
        for seed in 0..64u64 {
            let lambda = 6 + (seed % 5) as usize;
            let deltas = random_deltas(seed, 40, lambda);
            let mut index = DiversityIndex::new(lambda);
            apply_all(&mut index, &deltas);
            recompute_equivalence(&index, &deltas).unwrap();
        }
    }

    #[test]
    fn rollback_restores_exact_state_across_seeds() {
        for seed in 0..64u64 {
            let lambda = 6;
            let deltas = random_deltas(seed ^ 0x5eed, 30, lambda);
            let split = 18;
            let mut index = DiversityIndex::new(lambda);
            apply_all(&mut index, &deltas[..split]);
            let fps: Vec<u64> = (0..index.batch_count())
                .map(|b| index.batch_fingerprint(b))
                .collect();
            let tokens = index.token_count();
            // Apply the tail, then roll it back.
            apply_all(&mut index, &deltas[split..]);
            index
                .rollback_to_height(deltas[split - 1].height)
                .unwrap();
            assert_eq!(index.token_count(), tokens, "seed {seed}");
            assert_eq!(index.batch_count(), fps.len(), "seed {seed}");
            for (b, fp) in fps.iter().enumerate() {
                assert_eq!(index.batch_fingerprint(b), *fp, "seed {seed} batch {b}");
            }
            recompute_equivalence(&index, &deltas[..split]).unwrap();
            // And the rolled-back chain can grow again identically.
            apply_all(&mut index, &deltas[split..]);
            recompute_equivalence(&index, &deltas).unwrap();
        }
    }

    #[test]
    fn indexed_verdicts_bit_identical_to_snapshot_ladder() {
        let registry = dams_obs::Registry::new();
        let metrics = CoreMetrics::in_registry(&registry);
        for seed in 0..16u64 {
            let lambda = 8;
            let deltas = random_deltas(seed ^ 0xbeef, 50, lambda);
            let mut index = DiversityIndex::new(lambda);
            apply_all(&mut index, &deltas);
            recompute_equivalence(&index, &deltas).unwrap();
            let policy = SelectionPolicy::new(DiversityRequirement::new(1.0, 2));
            let budget = DegradeBudget {
                exact_timeout: None,
                bfs: crate::bfs::BfsBudget {
                    max_candidates: 2_000,
                    ..crate::bfs::BfsBudget::default()
                },
            };
            for target in (0..index.token_count()).step_by(7) {
                let via_index = index.select(
                    target,
                    policy,
                    budget,
                    &Tier::DEFAULT_LADDER,
                    &metrics,
                    &LadderExec::default(),
                );
                // Snapshot path: same batch instance, lazy decompose.
                let batch = index.batch_of(target).unwrap();
                let snap = index.snapshot(batch).unwrap();
                let local = snap.tokens.iter().position(|&t| t == target).unwrap();
                let via_snapshot = select_with_ladder_exec(
                    &snap.instance,
                    TokenId(local as u32),
                    policy,
                    budget,
                    &Tier::DEFAULT_LADDER,
                    &metrics,
                    &LadderExec::default(),
                );
                match (via_index, via_snapshot) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.degraded.selection.ring, b.selection.ring, "seed {seed}");
                        assert_eq!(a.degraded.tier, b.tier, "seed {seed}");
                        assert_eq!(a.degraded.selection.modules, b.selection.modules);
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "seed {seed}"),
                    (a, b) => panic!("verdicts diverged: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn maintenance_cost_does_not_scale_with_chain_length() {
        // Identical per-block shape at 10x the chain length must keep the
        // same max per-block op count: the O(Δ) property.
        let mk = |blocks: usize| {
            let mut index = DiversityIndex::new(8);
            let deltas = random_deltas(7, blocks, 8);
            apply_all(&mut index, &deltas);
            index.stats().max_block_ops
        };
        let short = mk(50);
        let long = mk(500);
        assert!(
            long <= short * 2,
            "per-block ops grew with chain length: {short} -> {long}"
        );
    }

    #[test]
    fn malformed_deltas_rejected_without_mutation() {
        let mut index = DiversityIndex::new(4);
        index
            .apply_block(&BlockDelta {
                height: 0,
                minted: vec![(0, 0), (1, 1)],
                rings: vec![],
            })
            .unwrap();
        let fp = index.batch_fingerprint(0);
        assert_eq!(
            index.apply_block(&BlockDelta {
                height: 5,
                minted: vec![],
                rings: vec![]
            }),
            Err(IndexError::NonSequentialHeight {
                expected: Some(0),
                got: 5
            })
        );
        assert_eq!(
            index.apply_block(&BlockDelta {
                height: 1,
                minted: vec![(7, 0)],
                rings: vec![]
            }),
            Err(IndexError::NonContiguousToken {
                expected: 2,
                got: 7
            })
        );
        assert_eq!(
            index.apply_block(&BlockDelta {
                height: 1,
                minted: vec![],
                rings: vec![DeltaRing {
                    tokens: vec![9],
                    claimed_c: 1.0,
                    claimed_l: 1
                }]
            }),
            Err(IndexError::UnknownRingToken(9))
        );
        assert_eq!(index.batch_fingerprint(0), fp);
        assert_eq!(index.token_count(), 2);
    }

    #[test]
    fn non_laminar_ring_breaks_batch_and_heals_on_superset() {
        let mut index = DiversityIndex::new(100); // one open batch
        let mut deltas = vec![BlockDelta {
            height: 0,
            minted: (0..6).map(|t| (t, t)).collect(),
            rings: vec![DeltaRing {
                tokens: vec![0, 1],
                claimed_c: 1.0,
                claimed_l: 1,
            }],
        }];
        // Overlapping, non-nested ring: the batch breaks...
        deltas.push(BlockDelta {
            height: 1,
            minted: vec![],
            rings: vec![DeltaRing {
                tokens: vec![1, 2],
                claimed_c: 1.0,
                claimed_l: 1,
            }],
        });
        apply_all(&mut index, &deltas);
        assert!(index.snapshot(0).unwrap().modular.is_none());
        recompute_equivalence(&index, &deltas).unwrap();
        // ...and a later superset heals it (decompose succeeds again).
        deltas.push(BlockDelta {
            height: 2,
            minted: vec![],
            rings: vec![DeltaRing {
                tokens: vec![0, 1, 2],
                claimed_c: 1.0,
                claimed_l: 1,
            }],
        });
        index.apply_block(&deltas[2]).unwrap();
        assert!(index.snapshot(0).unwrap().modular.is_some());
        recompute_equivalence(&index, &deltas).unwrap();
        // Rolling the healer back restores the broken state.
        index.rollback_block().unwrap();
        assert!(index.snapshot(0).unwrap().modular.is_none());
        recompute_equivalence(&index, &deltas[..2]).unwrap();
    }

    #[test]
    fn cross_batch_rings_are_tracked_and_excluded() {
        let mut index = DiversityIndex::new(2);
        let deltas = vec![
            BlockDelta {
                height: 0,
                minted: vec![(0, 0), (1, 1)],
                rings: vec![],
            },
            BlockDelta {
                height: 1,
                minted: vec![(2, 2), (3, 3)],
                rings: vec![DeltaRing {
                    tokens: vec![1, 2],
                    claimed_c: 1.0,
                    claimed_l: 1,
                }],
            },
        ];
        apply_all(&mut index, &deltas);
        assert_eq!(index.cross_batch_rings(), 1);
        assert_eq!(index.batch_count(), 2);
        assert!(index.snapshot(0).unwrap().instance.rings.is_empty());
        recompute_equivalence(&index, &deltas).unwrap();
        index.rollback_block().unwrap();
        assert_eq!(index.cross_batch_rings(), 0);
    }

    #[test]
    fn snapshot_cache_hits_on_quiet_batches() {
        let mut index = DiversityIndex::new(4);
        apply_all(&mut index, &random_deltas(3, 20, 4));
        let s = index.snapshot(0).unwrap();
        let again = index.snapshot(0).unwrap();
        assert!(Arc::ptr_eq(&s, &again));
        let stats = index.stats();
        assert!(stats.snapshot_hits >= 1);
        assert!(stats.snapshot_misses >= 1);
    }

    #[test]
    fn pruned_journal_refuses_deep_rollback() {
        let mut index = DiversityIndex::new(4);
        apply_all(&mut index, &random_deltas(9, 20, 4));
        index.prune_journal(3);
        assert_eq!(index.journal_len(), 3);
        assert!(index.rollback_to_height(5).is_err());
    }
}
