//! HT frequency histograms over token sets.
//!
//! The recursive (c, ℓ)-diversity condition is evaluated over the sorted
//! frequency vector `q_1 >= q_2 >= ... >= q_θ` of the historical
//! transactions (HTs) that produced the tokens of a set. This module builds
//! that vector.

use std::collections::HashMap;

use crate::types::{HtId, RingSet, TokenId, TokenUniverse};

/// A sorted (descending) frequency vector of HT occurrence counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtHistogram {
    /// `q[0] = q_1` — the count of the most frequent HT, and so on.
    q: Vec<usize>,
    /// Number of distinct HTs (`θ`).
    theta: usize,
}

impl HtHistogram {
    /// Histogram over an explicit list of HT values.
    pub fn from_hts<I: IntoIterator<Item = HtId>>(hts: I) -> Self {
        let mut counts: HashMap<HtId, usize> = HashMap::new();
        for h in hts {
            *counts.entry(h).or_insert(0) += 1;
        }
        let mut q: Vec<usize> = counts.into_values().collect();
        q.sort_unstable_by(|a, b| b.cmp(a));
        let theta = q.len();
        HtHistogram { q, theta }
    }

    /// Histogram over the tokens of a ring, resolving HTs via the universe.
    pub fn from_ring(ring: &RingSet, universe: &TokenUniverse) -> Self {
        Self::from_hts(ring.tokens().iter().map(|t| universe.ht(*t)))
    }

    /// Histogram over an arbitrary token slice.
    pub fn from_tokens(tokens: &[TokenId], universe: &TokenUniverse) -> Self {
        Self::from_hts(tokens.iter().map(|t| universe.ht(*t)))
    }

    /// `q_1` — count of the most frequent HT (0 for an empty set).
    pub fn q1(&self) -> usize {
        self.q.first().copied().unwrap_or(0)
    }

    /// `q_i` with the paper's 1-based indexing; 0 beyond `θ`.
    pub fn q(&self, i: usize) -> usize {
        debug_assert!(i >= 1, "q is 1-indexed in the paper");
        self.q.get(i - 1).copied().unwrap_or(0)
    }

    /// Number of distinct HTs (`θ`).
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// Total number of tokens counted.
    pub fn total(&self) -> usize {
        self.q.iter().sum()
    }

    /// `q_ℓ + q_{ℓ+1} + ... + q_θ` — the diversity tail sum (0 when ℓ > θ).
    pub fn tail_sum(&self, l: usize) -> usize {
        if l == 0 || l > self.theta {
            return if l == 0 { self.total() } else { 0 };
        }
        self.q[l - 1..].iter().sum()
    }

    /// The sorted frequency vector.
    pub fn frequencies(&self) -> &[usize] {
        &self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ring;

    fn uni() -> TokenUniverse {
        // tokens 0..6 with HTs: h0,h0,h0,h1,h1,h2
        TokenUniverse::new(vec![
            HtId(0),
            HtId(0),
            HtId(0),
            HtId(1),
            HtId(1),
            HtId(2),
        ])
    }

    #[test]
    fn sorted_descending() {
        let h = HtHistogram::from_ring(&ring(&[0, 1, 2, 3, 4, 5]), &uni());
        assert_eq!(h.frequencies(), &[3, 2, 1]);
        assert_eq!(h.theta(), 3);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn q_indexing_is_one_based() {
        let h = HtHistogram::from_ring(&ring(&[0, 1, 3, 5]), &uni());
        assert_eq!(h.q(1), 2);
        assert_eq!(h.q(2), 1);
        assert_eq!(h.q(3), 1);
        assert_eq!(h.q(4), 0);
    }

    #[test]
    fn tail_sum_examples() {
        let h = HtHistogram::from_ring(&ring(&[0, 1, 2, 3, 4, 5]), &uni());
        assert_eq!(h.tail_sum(1), 6);
        assert_eq!(h.tail_sum(2), 3);
        assert_eq!(h.tail_sum(3), 1);
        assert_eq!(h.tail_sum(4), 0);
    }

    #[test]
    fn empty_histogram() {
        let h = HtHistogram::from_ring(&ring(&[]), &uni());
        assert_eq!(h.q1(), 0);
        assert_eq!(h.theta(), 0);
        assert_eq!(h.tail_sum(1), 0);
    }

    #[test]
    fn paper_section_2_5_example() {
        // r3 = {t1, t3, t4}; t1, t3 from h1; t4 from h2 → q = [2, 1].
        let u = TokenUniverse::new(vec![
            HtId(9), // t0 unused filler
            HtId(1), // t1
            HtId(9), // t2 filler
            HtId(1), // t3
            HtId(2), // t4
        ]);
        let h = HtHistogram::from_ring(&ring(&[1, 3, 4]), &u);
        assert_eq!(h.frequencies(), &[2, 1]);
    }
}
