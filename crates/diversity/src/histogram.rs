//! HT frequency histograms over token sets.
//!
//! The recursive (c, ℓ)-diversity condition is evaluated over the sorted
//! frequency vector `q_1 >= q_2 >= ... >= q_θ` of the historical
//! transactions (HTs) that produced the tokens of a set. This module builds
//! that vector.

use std::collections::HashMap;

use crate::recursive::DiversityRequirement;
use crate::types::{HtId, RingSet, TokenId, TokenUniverse};

/// A sorted (descending) frequency vector of HT occurrence counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtHistogram {
    /// `q[0] = q_1` — the count of the most frequent HT, and so on.
    q: Vec<usize>,
    /// Number of distinct HTs (`θ`).
    theta: usize,
}

impl HtHistogram {
    /// Histogram over an explicit list of HT values.
    pub fn from_hts<I: IntoIterator<Item = HtId>>(hts: I) -> Self {
        let mut counts: HashMap<HtId, usize> = HashMap::new();
        for h in hts {
            *counts.entry(h).or_insert(0) += 1;
        }
        let mut q: Vec<usize> = counts.into_values().collect();
        q.sort_unstable_by(|a, b| b.cmp(a));
        let theta = q.len();
        HtHistogram { q, theta }
    }

    /// Histogram over the tokens of a ring, resolving HTs via the universe.
    pub fn from_ring(ring: &RingSet, universe: &TokenUniverse) -> Self {
        Self::from_hts(ring.tokens().iter().map(|t| universe.ht(*t)))
    }

    /// Histogram over an arbitrary token slice.
    pub fn from_tokens(tokens: &[TokenId], universe: &TokenUniverse) -> Self {
        Self::from_hts(tokens.iter().map(|t| universe.ht(*t)))
    }

    /// `q_1` — count of the most frequent HT (0 for an empty set).
    pub fn q1(&self) -> usize {
        self.q.first().copied().unwrap_or(0)
    }

    /// `q_i` with the paper's 1-based indexing; 0 beyond `θ`.
    pub fn q(&self, i: usize) -> usize {
        debug_assert!(i >= 1, "q is 1-indexed in the paper");
        self.q.get(i - 1).copied().unwrap_or(0)
    }

    /// Number of distinct HTs (`θ`).
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// Total number of tokens counted.
    pub fn total(&self) -> usize {
        self.q.iter().sum()
    }

    /// `q_ℓ + q_{ℓ+1} + ... + q_θ` — the diversity tail sum (0 when ℓ > θ).
    pub fn tail_sum(&self, l: usize) -> usize {
        if l == 0 || l > self.theta {
            return if l == 0 { self.total() } else { 0 };
        }
        self.q[l - 1..].iter().sum()
    }

    /// The sorted frequency vector.
    pub fn frequencies(&self) -> &[usize] {
        &self.q
    }
}

/// An HT histogram maintained *incrementally* under single-token insertions
/// and removals.
///
/// [`HtHistogram`] rebuilds a `HashMap` and sorts the frequency vector on
/// every construction — fine for one-off checks, wasteful inside the exact
/// BFS subset enumerator, which visits candidates in lexicographic order and
/// therefore changes the underlying token set by exactly one token per step.
/// `DeltaHistogram` keeps per-HT counts plus a count-of-counts occupancy
/// table, giving O(1) `add`/`remove` and O(q1) `tail_sum`.
///
/// **Invariant** (relied upon by the BFS equivalence tests): for any multiset
/// of HTs, `q1()`, `theta()`, `total()` and `tail_sum(l)` return exactly the
/// values the equivalent [`HtHistogram`] would, so routing both through
/// [`DiversityRequirement::satisfied_by_parts`] yields bit-identical
/// diversity verdicts.
#[derive(Debug, Clone)]
pub struct DeltaHistogram {
    /// `counts[h]` — occurrences of `HtId(h)` in the current multiset.
    counts: Vec<usize>,
    /// `occupancy[c]` — number of distinct HTs occurring exactly `c` times
    /// (index 0 unused).
    occupancy: Vec<usize>,
    /// Largest per-HT count, i.e. `q_1` (0 when empty).
    max_count: usize,
    /// Total tokens counted.
    total: usize,
    /// Number of distinct HTs present (`θ`).
    theta: usize,
}

impl DeltaHistogram {
    /// An empty histogram able to count every HT appearing in `universe`.
    pub fn for_universe(universe: &TokenUniverse) -> Self {
        let max_ht = (0..universe.len())
            .map(|t| universe.ht(TokenId(t as u32)).0 as usize)
            .max()
            .map_or(0, |m| m + 1);
        DeltaHistogram {
            counts: vec![0; max_ht],
            occupancy: vec![0; 2],
            max_count: 0,
            total: 0,
            theta: 0,
        }
    }

    /// Add one occurrence of `h`.
    pub fn add_ht(&mut self, h: HtId) {
        let idx = h.0 as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        let old = self.counts[idx];
        let new = old + 1;
        self.counts[idx] = new;
        if old == 0 {
            self.theta += 1;
        } else {
            self.occupancy[old] -= 1;
        }
        if new >= self.occupancy.len() {
            self.occupancy.resize(new + 1, 0);
        }
        self.occupancy[new] += 1;
        if new > self.max_count {
            self.max_count = new;
        }
        self.total += 1;
    }

    /// Remove one occurrence of `h`. Panics (debug) if `h` is not present.
    pub fn remove_ht(&mut self, h: HtId) {
        let idx = h.0 as usize;
        debug_assert!(
            idx < self.counts.len() && self.counts[idx] > 0,
            "removing HT {h:?} that was never added"
        );
        let old = self.counts[idx];
        let new = old - 1;
        self.counts[idx] = new;
        self.occupancy[old] -= 1;
        if new == 0 {
            self.theta -= 1;
        } else {
            self.occupancy[new] += 1;
        }
        if old == self.max_count && self.occupancy[old] == 0 {
            while self.max_count > 0 && self.occupancy[self.max_count] == 0 {
                self.max_count -= 1;
            }
        }
        self.total -= 1;
    }

    /// Add the HT of `token` (resolved through `universe`).
    pub fn add_token(&mut self, universe: &TokenUniverse, token: TokenId) {
        self.add_ht(universe.ht(token));
    }

    /// Remove the HT of `token`.
    pub fn remove_token(&mut self, universe: &TokenUniverse, token: TokenId) {
        self.remove_ht(universe.ht(token));
    }

    /// `q_1` — count of the most frequent HT (0 for an empty set).
    pub fn q1(&self) -> usize {
        self.max_count
    }

    /// Number of distinct HTs (`θ`).
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// Total number of tokens counted.
    pub fn total(&self) -> usize {
        self.total
    }

    /// `q_ℓ + ... + q_θ`, matching [`HtHistogram::tail_sum`] exactly.
    ///
    /// Computed as `total - (sum of the ℓ-1 largest counts)` by scanning the
    /// occupancy table downward from `q_1`; which HTs are "the largest" is
    /// ambiguous under ties but the *sum* is not, so this agrees with the
    /// sorted-vector formulation for every `l`.
    pub fn tail_sum(&self, l: usize) -> usize {
        if l == 0 {
            return self.total;
        }
        if l > self.theta {
            return 0;
        }
        let mut head = 0usize;
        let mut remaining = l - 1;
        let mut c = self.max_count;
        while remaining > 0 && c > 0 {
            let k = self.occupancy[c].min(remaining);
            head += k * c;
            remaining -= k;
            c -= 1;
        }
        self.total - head
    }

    /// Evaluate a diversity requirement; bit-identical to
    /// `req.satisfied_by(&HtHistogram ...)` over the same multiset.
    pub fn satisfies(&self, req: &DiversityRequirement) -> bool {
        req.satisfied_by_parts(self.q1(), self.tail_sum(req.l))
    }

    /// The slack `δ = q_1 - c * tail`, matching
    /// [`DiversityRequirement::slack`] bit-for-bit.
    pub fn slack(&self, req: &DiversityRequirement) -> f64 {
        req.slack_parts(self.q1(), self.tail_sum(req.l))
    }

    /// Materialize the sorted frequency vector (diagnostics and tests).
    pub fn frequencies_sorted(&self) -> Vec<usize> {
        let mut q: Vec<usize> = self.counts.iter().copied().filter(|&c| c > 0).collect();
        q.sort_unstable_by(|a, b| b.cmp(a));
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ring;

    fn uni() -> TokenUniverse {
        // tokens 0..6 with HTs: h0,h0,h0,h1,h1,h2
        TokenUniverse::new(vec![
            HtId(0),
            HtId(0),
            HtId(0),
            HtId(1),
            HtId(1),
            HtId(2),
        ])
    }

    #[test]
    fn sorted_descending() {
        let h = HtHistogram::from_ring(&ring(&[0, 1, 2, 3, 4, 5]), &uni());
        assert_eq!(h.frequencies(), &[3, 2, 1]);
        assert_eq!(h.theta(), 3);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn q_indexing_is_one_based() {
        let h = HtHistogram::from_ring(&ring(&[0, 1, 3, 5]), &uni());
        assert_eq!(h.q(1), 2);
        assert_eq!(h.q(2), 1);
        assert_eq!(h.q(3), 1);
        assert_eq!(h.q(4), 0);
    }

    #[test]
    fn tail_sum_examples() {
        let h = HtHistogram::from_ring(&ring(&[0, 1, 2, 3, 4, 5]), &uni());
        assert_eq!(h.tail_sum(1), 6);
        assert_eq!(h.tail_sum(2), 3);
        assert_eq!(h.tail_sum(3), 1);
        assert_eq!(h.tail_sum(4), 0);
    }

    #[test]
    fn empty_histogram() {
        let h = HtHistogram::from_ring(&ring(&[]), &uni());
        assert_eq!(h.q1(), 0);
        assert_eq!(h.theta(), 0);
        assert_eq!(h.tail_sum(1), 0);
    }

    /// Tiny xorshift so the randomized agreement test needs no dev-deps.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn delta_histogram_matches_batch_histogram_under_random_edits() {
        use crate::recursive::DiversityRequirement;

        let universe = TokenUniverse::new((0..40).map(|i| HtId(i % 7)).collect());
        let reqs = [
            DiversityRequirement::new(0.5, 1),
            DiversityRequirement::new(1.0, 2),
            DiversityRequirement::new(2.0, 3),
            DiversityRequirement::new(0.3, 8),
        ];
        for seed in 1..=16u64 {
            let mut state = seed;
            let mut delta = DeltaHistogram::for_universe(&universe);
            let mut multiset: Vec<TokenId> = Vec::new();
            for _ in 0..200 {
                let add = multiset.is_empty() || !xorshift(&mut state).is_multiple_of(3);
                if add {
                    let t = TokenId((xorshift(&mut state) % 40) as u32);
                    multiset.push(t);
                    delta.add_token(&universe, t);
                } else {
                    let i = (xorshift(&mut state) as usize) % multiset.len();
                    let t = multiset.swap_remove(i);
                    delta.remove_token(&universe, t);
                }
                let batch = HtHistogram::from_tokens(&multiset, &universe);
                assert_eq!(delta.q1(), batch.q1());
                assert_eq!(delta.theta(), batch.theta());
                assert_eq!(delta.total(), batch.total());
                assert_eq!(delta.frequencies_sorted(), batch.frequencies());
                for l in 0..=batch.theta() + 2 {
                    assert_eq!(delta.tail_sum(l), batch.tail_sum(l), "l={l}");
                }
                for req in &reqs {
                    assert_eq!(delta.satisfies(req), req.satisfied_by(&batch));
                    assert_eq!(delta.slack(req).to_bits(), req.slack(&batch).to_bits());
                }
            }
        }
    }

    #[test]
    fn delta_histogram_empty_after_removals() {
        let universe = TokenUniverse::new(vec![HtId(3), HtId(3), HtId(5)]);
        let mut d = DeltaHistogram::for_universe(&universe);
        for t in [0, 1, 2] {
            d.add_token(&universe, TokenId(t));
        }
        assert_eq!((d.q1(), d.theta(), d.total()), (2, 2, 3));
        for t in [0, 1, 2] {
            d.remove_token(&universe, TokenId(t));
        }
        assert_eq!((d.q1(), d.theta(), d.total()), (0, 0, 0));
        assert_eq!(d.tail_sum(1), 0);
    }

    #[test]
    fn paper_section_2_5_example() {
        // r3 = {t1, t3, t4}; t1, t3 from h1; t4 from h2 → q = [2, 1].
        let u = TokenUniverse::new(vec![
            HtId(9), // t0 unused filler
            HtId(1), // t1
            HtId(9), // t2 filler
            HtId(1), // t3
            HtId(2), // t4
        ]);
        let h = HtHistogram::from_ring(&ring(&[1, 3, 4]), &u);
        assert_eq!(h.frequencies(), &[2, 1]);
    }
}
