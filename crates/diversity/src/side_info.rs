//! The adversary's side information (Definition 3) and its closure.
//!
//! `SI = SI# ∪ SI*`: the directly-known pairs and the pairs inferable from
//! them through chain-reaction analysis. Theorem 6.2 bounds how much side
//! information an adversary needs before a ring's HT is compromised:
//! strictly fewer than `|r| − q_M` known pairs (with `q_M` the count of the
//! ring's most frequent HT) cannot confirm the HT.

use crate::chain_reaction::{analyze, Analysis};
use crate::histogram::HtHistogram;
use crate::related::RingIndex;
use crate::types::{RingSet, TokenRsPair, TokenUniverse};

/// An adversary's side information: the directly revealed pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SideInformation {
    direct: Vec<TokenRsPair>,
}

impl SideInformation {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_pairs<I: IntoIterator<Item = TokenRsPair>>(pairs: I) -> Self {
        SideInformation {
            direct: pairs.into_iter().collect(),
        }
    }

    /// `SI#` — pairs the adversary knows directly (e.g. rings she created).
    pub fn direct(&self) -> &[TokenRsPair] {
        &self.direct
    }

    /// `|SI|` of the direct part (the quantity bounded by Theorem 6.2).
    pub fn cardinality(&self) -> usize {
        self.direct.len()
    }

    pub fn add(&mut self, pair: TokenRsPair) {
        if !self.direct.contains(&pair) {
            self.direct.push(pair);
        }
    }

    /// Compute the closure `SI* = proven \ SI#` via chain-reaction analysis.
    pub fn closure(&self, index: &RingIndex) -> Analysis {
        analyze(index, &self.direct)
    }

    /// The inferred-only pairs (`SI*`).
    pub fn inferred(&self, index: &RingIndex) -> Vec<TokenRsPair> {
        self.closure(index)
            .proven
            .into_iter()
            .filter(|p| !self.direct.contains(p))
            .collect()
    }
}

/// Theorem 6.2's threshold for a ring: an adversary with side information
/// of cardinality `< |r| − q_M` cannot confirm the HT of the consumed token.
pub fn side_info_threshold(ring: &RingSet, universe: &TokenUniverse) -> usize {
    let hist = HtHistogram::from_ring(ring, universe);
    ring.len().saturating_sub(hist.q1())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ring, HtId, RsId, TokenId};

    #[test]
    fn closure_separates_direct_and_inferred() {
        // r0 = {1,2}, r1 = {2,3}; revealing <2, r0> forces r1 → t3.
        let idx = RingIndex::from_rings([ring(&[1, 2]), ring(&[2, 3])]);
        let si = SideInformation::from_pairs([TokenRsPair::new(TokenId(2), RsId(0))]);
        let inferred = si.inferred(&idx);
        assert!(inferred.contains(&TokenRsPair::new(TokenId(3), RsId(1))));
        assert!(!inferred.contains(&TokenRsPair::new(TokenId(2), RsId(0))));
    }

    #[test]
    fn add_deduplicates() {
        let mut si = SideInformation::new();
        let p = TokenRsPair::new(TokenId(1), RsId(0));
        si.add(p);
        si.add(p);
        assert_eq!(si.cardinality(), 1);
    }

    #[test]
    fn threshold_matches_theorem() {
        // ring of 5 tokens, most-frequent HT appears twice → threshold 3.
        let uni = TokenUniverse::new(vec![
            HtId(0),
            HtId(0),
            HtId(1),
            HtId(2),
            HtId(3),
        ]);
        let r = ring(&[0, 1, 2, 3, 4]);
        assert_eq!(side_info_threshold(&r, &uni), 3);
    }

    #[test]
    fn theorem_6_2_bound_holds_empirically() {
        // Build a diverse isolated ring; reveal fewer than |r| - q_M pairs
        // of *other* rings and verify the exact adversary cannot pin the
        // target's HT down to one value.
        use crate::chain_reaction::analyze_exact;
        // target r0 = {1,2,3,4}: HTs h0,h0,h1,h2 → q_M = 2, threshold = 2.
        // Other rings share tokens 3, 4.
        let idx = RingIndex::from_rings([
            ring(&[1, 2, 3, 4]),
            ring(&[3, 5]),
            ring(&[4, 6]),
        ]);
        let uni = TokenUniverse::new(vec![
            HtId(9), // t0 filler
            HtId(0),
            HtId(0),
            HtId(1),
            HtId(2),
            HtId(3),
            HtId(4),
        ]);
        let r0 = idx.ring(RsId(0)).clone();
        assert_eq!(side_info_threshold(&r0, &uni), 2);
        // Reveal 1 pair (< threshold): adversary must not learn r0's HT.
        let a = analyze_exact(&idx, &[TokenRsPair::new(TokenId(3), RsId(1))]);
        let cands = &a.candidates[&RsId(0)];
        let hts: std::collections::BTreeSet<HtId> =
            cands.iter().map(|t| uni.ht(*t)).collect();
        assert!(hts.len() > 1, "HT leaked with sub-threshold side info");
    }
}
