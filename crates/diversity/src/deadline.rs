//! Deadlines that work both on the wall clock and in virtual time.
//!
//! The exact algorithms accept an optional [`Deadline`] that bounds how
//! long they may run. Two currencies are supported:
//!
//! * [`Deadline::At`] — a wall-clock expiry instant. This is what a live
//!   node serving real traffic uses; expiry depends on the host's speed,
//!   so results are *not* reproducible across machines.
//! * [`Deadline::Ticks`] — a budget of abstract **work units** (the caller
//!   defines the unit: BFS candidates examined, world-enumeration steps,
//!   …). Expiry depends only on the work performed, so an entire
//!   overload scenario — which requests degrade, which tier answers,
//!   every metric — replays byte-identically from a seed. This is the
//!   currency the selection service (`dams-svc`) propagates end-to-end:
//!   queue wait is charged in the same ticks, so a request that waited
//!   long arrives at the solver with a small `Ticks` budget and steers
//!   itself down the degradation ladder deterministically.
//!
//! `Deadline::Ticks(0)` is *already elapsed*: every consumer must treat it
//! as expired before performing any work (see
//! [`Deadline::already_elapsed`]).

use std::time::{Duration, Instant};

/// An expiry condition for budgeted work (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deadline {
    /// Expires when the wall clock reaches the instant.
    At(Instant),
    /// Expires once the consumer has charged this many work units.
    Ticks(u64),
}

impl Deadline {
    /// A wall-clock deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Deadline::At(Instant::now() + d)
    }

    /// A virtual deadline of `n` work units.
    pub fn ticks(n: u64) -> Self {
        Deadline::Ticks(n)
    }

    /// Whether the deadline has passed, given `work` units already spent.
    /// (`work` is ignored by wall-clock deadlines.)
    #[inline]
    pub fn expired(&self, work: u64) -> bool {
        match self {
            Deadline::At(t) => Instant::now() >= *t,
            Deadline::Ticks(n) => work >= *n,
        }
    }

    /// Whether no work at all can be afforded: the deadline is expired
    /// before the first unit is charged. Callers use this to skip an
    /// attempt entirely instead of starting a doomed probe.
    #[inline]
    pub fn already_elapsed(&self) -> bool {
        self.expired(0)
    }

    /// Whether this deadline only depends on charged work (so any run is
    /// bit-reproducible regardless of host speed).
    pub fn is_virtual(&self) -> bool {
        matches!(self, Deadline::Ticks(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_expire_on_work_not_time() {
        let d = Deadline::Ticks(3);
        assert!(!d.expired(0));
        assert!(!d.expired(2));
        assert!(d.expired(3));
        assert!(d.expired(u64::MAX));
        assert!(d.is_virtual());
    }

    #[test]
    fn zero_ticks_is_already_elapsed() {
        assert!(Deadline::Ticks(0).already_elapsed());
        assert!(!Deadline::Ticks(1).already_elapsed());
    }

    #[test]
    fn wall_clock_deadlines_expire_by_time() {
        let past = Deadline::At(Instant::now() - Duration::from_millis(1));
        assert!(past.already_elapsed());
        assert!(past.expired(0));
        assert!(!past.is_virtual());
        let future = Deadline::after(Duration::from_secs(3600));
        assert!(!future.already_elapsed());
        // Work units are irrelevant to a wall-clock deadline.
        assert!(!future.expired(u64::MAX));
    }
}
