//! The recursive (c, ℓ)-diversity condition (Definition 4 of the paper,
//! borrowed from Machanavajjhala et al.'s ℓ-diversity principle).
//!
//! A multiset of sensitive values (here: the HTs of a ring's tokens)
//! satisfies recursive (c, ℓ)-diversity when
//!
//! ```text
//! q_1 < c * (q_ℓ + q_{ℓ+1} + ... + q_θ)
//! ```
//!
//! where `q_i` is the count of the i-th most frequent HT and `θ` the number
//! of distinct HTs. The experiments of §7 use fractional `c` (0.2 … 1), so
//! `c` is a float here.

use crate::histogram::HtHistogram;
use crate::types::{RingSet, TokenUniverse};

/// A user's diversity requirement `(c_τ, ℓ_τ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiversityRequirement {
    /// Multiplier `c` (> 0). Larger `c` relaxes the constraint.
    pub c: f64,
    /// Tail index `ℓ` (>= 1). Larger `ℓ` tightens the constraint.
    pub l: usize,
}

impl DiversityRequirement {
    /// Construct, validating the parameter domain.
    ///
    /// Panics on `c <= 0` or `l == 0` — both make the predicate degenerate
    /// and indicate a caller bug rather than a runtime condition.
    pub fn new(c: f64, l: usize) -> Self {
        assert!(c > 0.0, "recursive diversity needs c > 0, got {c}");
        assert!(l >= 1, "recursive diversity needs l >= 1");
        DiversityRequirement { c, l }
    }

    /// The second practical configuration (§6.1, Theorem 6.4): to guarantee
    /// every DTRS of a new RS satisfies `(c, ℓ)`, the RS itself must satisfy
    /// `(c, ℓ+1)`.
    pub fn with_margin(self) -> Self {
        DiversityRequirement {
            c: self.c,
            l: self.l + 1,
        }
    }

    /// Evaluate the condition on a histogram.
    pub fn satisfied_by(&self, hist: &HtHistogram) -> bool {
        self.satisfied_by_parts(hist.q1(), hist.tail_sum(self.l))
    }

    /// Evaluate the condition from its raw ingredients (`q_1` and the
    /// diversity tail sum). This is the single source of truth for the
    /// float comparison: the incremental evaluators
    /// ([`crate::histogram::DeltaHistogram`]) route through it so their
    /// verdicts are bit-identical to the [`HtHistogram`] path.
    #[inline]
    pub fn satisfied_by_parts(&self, q1: usize, tail: usize) -> bool {
        // Strict inequality per the definition. An empty set (q1 = 0) is
        // only satisfied when the tail sum is positive — i.e. never — which
        // matches the intuition that an empty ring carries no anonymity.
        (q1 as f64) < self.c * tail as f64
    }

    /// Evaluate on a ring's token set directly.
    pub fn satisfied_by_ring(&self, ring: &RingSet, universe: &TokenUniverse) -> bool {
        self.satisfied_by(&HtHistogram::from_ring(ring, universe))
    }

    /// The slack `δ = q_1 - c * (q_ℓ + ... + q_θ)` used by the Progressive
    /// algorithm's second phase (negative means satisfied).
    pub fn slack(&self, hist: &HtHistogram) -> f64 {
        self.slack_parts(hist.q1(), hist.tail_sum(self.l))
    }

    /// Slack from raw ingredients; see [`Self::satisfied_by_parts`].
    #[inline]
    pub fn slack_parts(&self, q1: usize, tail: usize) -> f64 {
        q1 as f64 - self.c * tail as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ring, HtId, TokenUniverse};

    fn hist(freqs: &[usize]) -> HtHistogram {
        // Expand a frequency vector into explicit HT values.
        let mut hts = Vec::new();
        for (i, &f) in freqs.iter().enumerate() {
            for _ in 0..f {
                hts.push(HtId(i as u32));
            }
        }
        HtHistogram::from_hts(hts)
    }

    #[test]
    fn paper_section_2_5_first_requirement() {
        // HTs of r3 are {h1, h1, h2}: q = [2, 1].
        // (2, 1)-diversity: q1 < 2 * (q1 + q2) → 2 < 2 * 3 ✓
        let h = hist(&[2, 1]);
        assert!(DiversityRequirement::new(2.0, 1).satisfied_by(&h));
        // DTRS HTs {h1, h1}: q = [2]; (2,1): 2 < 2*2 ✓
        let d = hist(&[2]);
        assert!(DiversityRequirement::new(2.0, 1).satisfied_by(&d));
    }

    #[test]
    fn paper_section_2_5_second_requirement() {
        // (3, 2)-diversity on q = [2, 1]: 2 < 3 * 1 ✓ (first condition holds)
        let h = hist(&[2, 1]);
        assert!(DiversityRequirement::new(3.0, 2).satisfied_by(&h));
        // but DTRS q = [2]: θ = 1 < ℓ = 2 → tail 0 → 2 >= 3*0 ✗
        let d = hist(&[2]);
        assert!(!DiversityRequirement::new(3.0, 2).satisfied_by(&d));
    }

    #[test]
    fn empty_set_never_satisfies() {
        let h = hist(&[]);
        assert!(!DiversityRequirement::new(1.0, 1).satisfied_by(&h));
    }

    #[test]
    fn uniform_distribution_satisfies_when_l_small() {
        // 10 distinct HTs once each: q1 = 1, tail(2) = 9.
        let h = hist(&[1; 10]);
        assert!(DiversityRequirement::new(0.2, 2).satisfied_by(&h)); // 1 < 1.8
        assert!(!DiversityRequirement::new(0.1, 2).satisfied_by(&h)); // 1 >= 0.9
        assert!(!DiversityRequirement::new(0.2, 11).satisfied_by(&h)); // tail 0
    }

    #[test]
    fn strictness_of_inequality() {
        // q = [2, 2]: (1, 2): 2 < 1 * 2 is false (strict).
        let h = hist(&[2, 2]);
        assert!(!DiversityRequirement::new(1.0, 2).satisfied_by(&h));
        // but c slightly larger passes.
        assert!(DiversityRequirement::new(1.01, 2).satisfied_by(&h));
    }

    #[test]
    fn slack_sign_matches_predicate() {
        let req = DiversityRequirement::new(0.6, 3);
        for freqs in [&[4usize, 2, 1][..], &[1, 1, 1, 1], &[5], &[2, 2, 2, 2]] {
            let h = hist(freqs);
            assert_eq!(req.satisfied_by(&h), req.slack(&h) < 0.0, "{freqs:?}");
        }
    }

    #[test]
    fn margin_increments_l() {
        let req = DiversityRequirement::new(0.6, 40);
        let m = req.with_margin();
        assert_eq!(m.l, 41);
        assert_eq!(m.c, 0.6);
    }

    #[test]
    fn ring_level_evaluation() {
        let u = TokenUniverse::new(vec![HtId(0), HtId(0), HtId(1), HtId(2)]);
        let r = ring(&[0, 1, 2, 3]); // HTs: h0,h0,h1,h2 → q=[2,1,1]
        assert!(DiversityRequirement::new(2.0, 2).satisfied_by_ring(&r, &u)); // 2 < 2*2
        assert!(!DiversityRequirement::new(1.0, 2).satisfied_by_ring(&r, &u)); // 2 >= 2
    }

    #[test]
    #[should_panic(expected = "c > 0")]
    fn zero_c_rejected() {
        DiversityRequirement::new(0.0, 1);
    }

    #[test]
    #[should_panic(expected = "l >= 1")]
    fn zero_l_rejected() {
        DiversityRequirement::new(1.0, 0);
    }
}
