//! Exact DTRS (definite token–RS pair set) computation — Definition 2 and
//! Algorithm 3 (`GetDTRSs`) of the paper.
//!
//! A DTRS of a ring `r_k` is a *minimal* set of token–RS pairs which, if
//! revealed to the adversary, pins down the historical transaction of the
//! token consumed in `r_k`. Operationally: conditioning the possible worlds
//! (token–RS combinations) on the pairs leaves only worlds where `r_k`'s
//! consumed token comes from one single HT.
//!
//! The computation enumerates sub-multisets of combinations and is
//! exponential — exactly as the hardness result demands. It is used by the
//! exact BFS algorithm and by tests that validate the polynomial path of
//! Theorem 6.1.

use std::collections::{BTreeSet, HashSet};

use crate::combination::Combination;

use crate::types::{HtId, RsId, TokenRsPair, TokenUniverse};

/// One definite token–RS pair set together with the HT it determines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dtrs {
    /// The revealed pairs (sorted, for canonical comparison).
    pub pairs: Vec<TokenRsPair>,
    /// The HT of `r_k`'s consumed token once the pairs are known.
    pub determined_ht: HtId,
}

impl Dtrs {
    fn new(mut pairs: Vec<TokenRsPair>, determined_ht: HtId) -> Self {
        pairs.sort_unstable();
        Dtrs {
            pairs,
            determined_ht,
        }
    }

    /// The tokens of the pair set (the "token set of a DTRS", Theorem 6.1).
    pub fn tokens(&self) -> Vec<crate::types::TokenId> {
        self.pairs.iter().map(|p| p.token).collect()
    }
}

/// Whether every combination consistent with `pairs` assigns the target ring
/// a token of the same HT; returns that HT if so.
fn determined_ht(
    combos: &[Combination],
    rings: &[RsId],
    target_slot: usize,
    pairs: &BTreeSet<TokenRsPair>,
    universe: &TokenUniverse,
) -> Option<HtId> {
    let mut ht: Option<HtId> = None;
    let mut any = false;
    'combo: for c in combos {
        // Does this combination contain all the revealed pairs? A pair
        // referencing a ring outside the analysis set cannot constrain
        // these combinations and is skipped as noise (the same treatment
        // `analyze` gives invalid pins).
        for p in pairs {
            let Some(slot) = rings.iter().position(|&r| r == p.rs) else {
                continue;
            };
            if c[slot] != p.token {
                continue 'combo;
            }
        }
        any = true;
        let h = universe.ht(c[target_slot]);
        match ht {
            None => ht = Some(h),
            Some(prev) if prev != h => return None,
            _ => {}
        }
    }
    if any {
        ht
    } else {
        None
    }
}

/// Enumerate all DTRSs of `rings[target_slot]` given the full combination
/// list `combos` over `rings` (as produced by
/// [`crate::combination::enumerate_combinations`]).
///
/// Returns the minimal determining pair sets. When the HT is already
/// determined with *no* side information (all combinations agree), the
/// result is a single empty DTRS — the ring has no anonymity at the HT
/// level and any diversity requirement with ℓ ≥ 1 should treat it as failed.
pub fn enumerate_dtrs(
    combos: &[Combination],
    rings: &[RsId],
    target_slot: usize,
    universe: &TokenUniverse,
) -> Vec<Dtrs> {
    assert!(target_slot < rings.len());
    if combos.is_empty() {
        return Vec::new();
    }

    // Size 0: already determined?
    let empty = BTreeSet::new();
    if let Some(ht) = determined_ht(combos, rings, target_slot, &empty, universe) {
        return vec![Dtrs::new(Vec::new(), ht)];
    }

    let n = rings.len();
    let mut found: Vec<Dtrs> = Vec::new();
    let mut found_sets: Vec<BTreeSet<TokenRsPair>> = Vec::new();

    // Candidate pair sets must be simultaneously satisfiable, i.e. subsets
    // of some combination (restricted to non-target slots) — Algorithm 3
    // enumerates them per combination; we dedupe across combinations with a
    // hashed canonical-key set. Sorting each *pool* once makes every emitted
    // subset canonical already, so keys are built sorted and inserted by
    // move — no per-subset sort, no clone.
    let mut seen: HashSet<Vec<TokenRsPair>> = HashSet::new();
    for size in 1..n {
        let mut this_size: Vec<BTreeSet<TokenRsPair>> = Vec::new();
        for c in combos {
            let mut pool: Vec<TokenRsPair> = (0..n)
                .filter(|&i| i != target_slot)
                .map(|i| TokenRsPair::new(c[i], rings[i]))
                .collect();
            pool.sort_unstable();
            // all `size`-subsets of pool (already in canonical order)
            subsets(&pool, size, &mut |subset| {
                if seen.contains(subset) {
                    return;
                }
                let set: BTreeSet<TokenRsPair> = subset.iter().copied().collect();
                seen.insert(subset.to_vec());
                // Minimality: skip supersets of already-found DTRSs.
                if found_sets.iter().any(|f| f.is_subset(&set)) {
                    return;
                }
                this_size.push(set);
            });
        }
        for set in this_size {
            if let Some(ht) = determined_ht(combos, rings, target_slot, &set, universe) {
                found.push(Dtrs::new(set.iter().copied().collect(), ht));
                found_sets.push(set);
            }
        }
    }
    found.sort_by(|a, b| a.pairs.cmp(&b.pairs));
    found
}

/// Visit all `k`-subsets of `pool`.
fn subsets<F: FnMut(&[TokenRsPair])>(pool: &[TokenRsPair], k: usize, f: &mut F) {
    fn rec<F: FnMut(&[TokenRsPair])>(
        pool: &[TokenRsPair],
        k: usize,
        start: usize,
        acc: &mut Vec<TokenRsPair>,
        f: &mut F,
    ) {
        if acc.len() == k {
            f(acc);
            return;
        }
        let need = k - acc.len();
        for i in start..=pool.len().saturating_sub(need) {
            acc.push(pool[i]);
            rec(pool, k, i + 1, acc, f);
            acc.pop();
        }
    }
    if k <= pool.len() {
        rec(pool, k, 0, &mut Vec::with_capacity(k), f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combination::enumerate_combinations;
    use crate::related::RingIndex;
    use crate::types::{ring, TokenId};

    /// Example 2 of the paper: five rings; t5, t6 share HT h1; all other
    /// tokens have distinct HTs.
    fn example2() -> (RingIndex, TokenUniverse) {
        // token ids 1..=6 (0 is unused filler)
        let idx = RingIndex::from_rings([
            ring(&[1, 2, 5]), // r1 = id 0
            ring(&[1, 3]),    // r2 = id 1
            ring(&[1, 3]),    // r3 = id 2
            ring(&[2, 4]),    // r4 = id 3
            ring(&[4, 5, 6]), // r5 = id 4
        ]);
        // HTs: t1..t4 distinct (h2..h5), t5 and t6 both h1.
        let uni = TokenUniverse::new(vec![
            HtId(99), // t0 filler
            HtId(2),
            HtId(3),
            HtId(4),
            HtId(5),
            HtId(1),
            HtId(1),
        ]);
        (idx, uni)
    }

    #[test]
    fn example2_t2_r1_is_dtrs_of_r5() {
        // §2.3: {<t2, r1>} is a DTRS of r5 — it forces r4 to consume t4 and
        // hence r5 to consume t5 or t6, both from h1.
        let (idx, uni) = example2();
        let rings: Vec<RsId> = idx.ids().collect();
        let combos = enumerate_combinations(&idx, &rings);
        let dtrs = enumerate_dtrs(&combos, &rings, 4, &uni);
        let target = Dtrs::new(
            vec![TokenRsPair::new(TokenId(2), RsId(0))],
            HtId(1),
        );
        assert!(
            dtrs.contains(&target),
            "expected {{<t2,r1>}} among {dtrs:?}"
        );
    }

    #[test]
    fn example2_r4_has_three_singleton_dtrs() {
        // §2.4: DTRSs of r4 are {<t4,r5>}, {<t5,r5>}, {<t2,r1>}.
        let (idx, uni) = example2();
        let rings: Vec<RsId> = idx.ids().collect();
        let combos = enumerate_combinations(&idx, &rings);
        let dtrs = enumerate_dtrs(&combos, &rings, 3, &uni);
        let singletons: Vec<&Dtrs> = dtrs.iter().filter(|d| d.pairs.len() == 1).collect();
        let expect = [
            (TokenId(4), RsId(4)),
            (TokenId(5), RsId(4)),
            (TokenId(2), RsId(0)),
        ];
        for (t, r) in expect {
            assert!(
                singletons
                    .iter()
                    .any(|d| d.pairs[0] == TokenRsPair::new(t, r)),
                "missing singleton DTRS <{t:?},{r:?}> in {singletons:?}"
            );
        }
    }

    #[test]
    fn determined_without_side_info_gives_empty_dtrs() {
        // r1 = r2 = {1,2}, target r3 = {2,3}: every world has r3 → t3.
        let idx = RingIndex::from_rings([ring(&[1, 2]), ring(&[1, 2]), ring(&[2, 3])]);
        let uni = TokenUniverse::new(vec![HtId(0), HtId(1), HtId(2), HtId(3)]);
        let rings: Vec<RsId> = idx.ids().collect();
        let combos = enumerate_combinations(&idx, &rings);
        let dtrs = enumerate_dtrs(&combos, &rings, 2, &uni);
        assert_eq!(dtrs.len(), 1);
        assert!(dtrs[0].pairs.is_empty());
        assert_eq!(dtrs[0].determined_ht, HtId(3));
    }

    #[test]
    fn homogeneous_ring_is_determined_by_ht_not_token() {
        // target {1, 2} with both tokens from the same HT: empty DTRS —
        // the homogeneity attack needs no side information at all.
        let idx = RingIndex::from_rings([ring(&[1, 2])]);
        let uni = TokenUniverse::new(vec![HtId(9), HtId(5), HtId(5)]);
        let rings: Vec<RsId> = idx.ids().collect();
        let combos = enumerate_combinations(&idx, &rings);
        let dtrs = enumerate_dtrs(&combos, &rings, 0, &uni);
        assert_eq!(dtrs.len(), 1);
        assert!(dtrs[0].pairs.is_empty());
        assert_eq!(dtrs[0].determined_ht, HtId(5));
    }

    #[test]
    fn minimality_no_dtrs_contains_another() {
        let (idx, uni) = example2();
        let rings: Vec<RsId> = idx.ids().collect();
        let combos = enumerate_combinations(&idx, &rings);
        for slot in 0..rings.len() {
            let dtrs = enumerate_dtrs(&combos, &rings, slot, &uni);
            for a in &dtrs {
                for b in &dtrs {
                    if a != b {
                        let sa: BTreeSet<_> = a.pairs.iter().collect();
                        let sb: BTreeSet<_> = b.pairs.iter().collect();
                        assert!(!sa.is_subset(&sb), "{a:?} ⊆ {b:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn isolated_diverse_ring_has_no_dtrs_from_unrelated_pairs() {
        // Two disjoint rings with diverse HTs: pairs of the other ring never
        // determine the target's HT.
        let idx = RingIndex::from_rings([ring(&[1, 2]), ring(&[3, 4])]);
        let uni = TokenUniverse::new(vec![HtId(9), HtId(0), HtId(1), HtId(2), HtId(3)]);
        let rings: Vec<RsId> = idx.ids().collect();
        let combos = enumerate_combinations(&idx, &rings);
        let dtrs = enumerate_dtrs(&combos, &rings, 0, &uni);
        assert!(dtrs.is_empty(), "got {dtrs:?}");
    }

    #[test]
    fn revealing_other_token_of_target_ring_not_allowed() {
        // Pairs about the *target itself* are excluded from DTRSs (a DTRS
        // reveals other rings' spends, not the target's own spend).
        let (idx, uni) = example2();
        let rings: Vec<RsId> = idx.ids().collect();
        let combos = enumerate_combinations(&idx, &rings);
        for slot in 0..rings.len() {
            for d in enumerate_dtrs(&combos, &rings, slot, &uni) {
                for p in &d.pairs {
                    assert_ne!(p.rs, rings[slot]);
                }
            }
        }
    }
}
