//! # dams-diversity
//!
//! Privacy semantics for the DA-MS reproduction (§§2–4 of the paper):
//!
//! * [`types`] — tokens, historical transactions, rings-as-token-sets;
//! * [`histogram`] / [`recursive`] — the recursive (c, ℓ)-diversity model;
//! * [`related`] — related RS sets (Definition 1);
//! * [`combination`] — token–RS combinations / possible worlds (Definition 6);
//! * [`matching`] — bipartite perfect matchings, the #P-hardness object;
//! * [`dtrs`] — exact DTRS enumeration (Definition 2, Algorithm 3);
//! * [`chain_reaction`] — the adversary engine (fast and exact modes);
//! * [`homogeneity`] — the homogeneity attack;
//! * [`side_info`] — adversary side information and its closure (Def. 3,
//!   Theorem 6.2);
//! * [`neighbor`] — Theorem 4.1 neighbour-set tracking and the η guard;
//! * [`attacks`] — seeded, replayable adversaries (cascade taint,
//!   guess-newest, graph matching) reporting effective anonymity-set size
//!   over full chain traces;
//! * [`obs`] — the `diversity.attack.*` metric handles.

pub mod attacks;
pub mod chain_reaction;
pub mod closeness;
pub mod combination;
pub mod deadline;
pub mod dtrs;
pub mod histogram;
pub mod homogeneity;
pub mod matching;
pub mod metrics;
pub mod neighbor;
pub mod obs;
pub mod recursive;
pub mod related;
pub mod side_info;
pub mod types;

pub use attacks::{
    cascade_taint, graph_matching, guess_newest, run_attack, run_attack_observed, AttackConfig,
    AttackReport, CascadeOutcome, ChainTrace, MatchingOutcome, NewestOutcome, TimelinePoint,
};
pub use chain_reaction::{analyze, analyze_exact, Analysis};
pub use closeness::{emd_over_ids, is_t_close, total_variation};
pub use combination::{
    enumerate_combinations, enumerate_with_limit, enumerate_worlds, Combination, WorldOptions,
    WorldsExpired,
};
pub use deadline::Deadline;
pub use dtrs::{enumerate_dtrs, Dtrs};
pub use histogram::{DeltaHistogram, HtHistogram};
pub use metrics::{batch_anonymity, ring_anonymity, BatchAnonymity, RingAnonymity};
pub use neighbor::{EtaGuard, NeighborTracker};
pub use obs::AttackMetrics;
pub use recursive::DiversityRequirement;
pub use related::RingIndex;
pub use side_info::SideInformation;
pub use types::{ring, HtId, RingSet, RsId, TokenId, TokenRsPair, TokenUniverse};
