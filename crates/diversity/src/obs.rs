//! Observability handles for the attack harness.
//!
//! [`AttackMetrics`] bundles every `diversity.attack.*` metric the replay
//! harness records, following the workspace naming scheme (see `dams-obs`):
//!
//! * `diversity.attack.rings_total` — rings an adversary was run against;
//! * `diversity.attack.deanonymized_total` — rings whose true spend the
//!   adversary identified (certainty or best-guess heuristic);
//! * `diversity.attack.cascade_depth` — taint-cascade depth distribution
//!   (elimination rounds until the last ring collapsed);
//! * `diversity.attack.time_ns` — per-attack wall time (suppressed in
//!   deterministic snapshots like every other `Unit::Nanos` histogram).
//!
//! Entry points default to the process-wide registry
//! ([`AttackMetrics::global`]); tests that assert exact values build a
//! fresh [`Registry`] and use [`AttackMetrics::in_registry`].

use std::sync::OnceLock;

use dams_obs::{Counter, Histogram, Registry, Unit};

/// Handles onto every `diversity.attack.*` metric (see the module docs).
#[derive(Debug, Clone)]
pub struct AttackMetrics {
    /// Rings an adversary was run against.
    pub rings_attacked: Counter,
    /// Rings whose true spend the adversary identified.
    pub rings_deanonymized: Counter,
    /// Taint-cascade depth per attack run (elimination rounds).
    pub cascade_depth: Histogram,
    /// Wall time per attack run (nanoseconds).
    pub attack_time: Histogram,
}

impl AttackMetrics {
    /// Register (or re-acquire) every attack metric in `registry`.
    pub fn in_registry(registry: &Registry) -> Self {
        AttackMetrics {
            rings_attacked: registry.counter("diversity.attack.rings_total"),
            rings_deanonymized: registry.counter("diversity.attack.deanonymized_total"),
            cascade_depth: registry.histogram("diversity.attack.cascade_depth", Unit::Count),
            attack_time: registry.histogram("diversity.attack.time_ns", Unit::Nanos),
        }
    }

    /// The handles bound to the process-wide registry — what the default
    /// entry points record into.
    pub fn global() -> &'static AttackMetrics {
        static GLOBAL: OnceLock<AttackMetrics> = OnceLock::new();
        GLOBAL.get_or_init(|| AttackMetrics::in_registry(dams_obs::global()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_registry_registers_expected_names() {
        let registry = Registry::new();
        let m = AttackMetrics::in_registry(&registry);
        m.rings_attacked.add(4);
        m.rings_deanonymized.inc();
        m.cascade_depth.record(3);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("diversity.attack.rings_total"), Some(4));
        assert_eq!(snap.counter("diversity.attack.deanonymized_total"), Some(1));
    }

    #[test]
    fn reacquiring_shares_the_atomics() {
        let registry = Registry::new();
        let a = AttackMetrics::in_registry(&registry);
        let b = AttackMetrics::in_registry(&registry);
        a.rings_attacked.add(2);
        b.rings_attacked.add(5);
        assert_eq!(
            registry.snapshot().counter("diversity.attack.rings_total"),
            Some(7)
        );
    }
}
