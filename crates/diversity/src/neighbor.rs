//! Incremental neighbour-set tracking and the η feasibility guard (§4,
//! Theorem 4.1 and the surrounding TokenMagic machinery).
//!
//! For every token `t_j` the framework keeps the "neighbour set" `ns_j` —
//! the rings containing `t_j`, in proposal order. When the number of
//! distinct tokens across a neighbour set equals the number of rings in it,
//! Theorem 4.1 proves all those tokens (including `t_j`) are consumed.
//!
//! The guard counts μ_i (tokens provably consumed after `i` rings) and
//! enforces `i − μ_i ≥ η · (|T| − i)` so later users can still form rings
//! that satisfy the non-eliminated constraint.

use std::collections::{BTreeSet, HashMap};

use crate::types::{RingSet, TokenId};

/// Tracks, per token, the rings that contain it, and derives which tokens
/// are provably consumed (Theorem 4.1).
#[derive(Debug, Clone, Default)]
pub struct NeighborTracker {
    /// Per token: indices of rings containing it.
    ns: HashMap<TokenId, Vec<usize>>,
    rings: Vec<RingSet>,
    /// Tokens proven consumed so far.
    consumed: BTreeSet<TokenId>,
}

impl NeighborTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rings appended so far (`i` in the guard inequality).
    pub fn ring_count(&self) -> usize {
        self.rings.len()
    }

    /// Tokens provably consumed (μ_i = `self.consumed_count()`).
    pub fn consumed_count(&self) -> usize {
        self.consumed.len()
    }

    /// Whether a specific token is provably consumed.
    pub fn is_consumed(&self, t: TokenId) -> bool {
        self.consumed.contains(&t)
    }

    /// The provably-consumed set.
    pub fn consumed(&self) -> &BTreeSet<TokenId> {
        &self.consumed
    }

    /// Append a ring and update the consumed-token derivation.
    pub fn push(&mut self, ring: RingSet) {
        let idx = self.rings.len();
        for &t in ring.tokens() {
            self.ns.entry(t).or_default().push(idx);
        }
        self.rings.push(ring);
        self.refresh();
    }

    /// Re-derive the consumed set: for every token's neighbour family,
    /// check the |union| == |family| condition of Theorem 4.1.
    fn refresh(&mut self) {
        for ring_ids in self.ns.values() {
            let union: BTreeSet<TokenId> = ring_ids
                .iter()
                .flat_map(|&i| self.rings[i].tokens().iter().copied())
                .collect();
            if union.len() == ring_ids.len() {
                self.consumed.extend(union);
            }
        }
    }
}

/// The η guard of §4: after `i` rings over a universe of `|T|` tokens with
/// `μ_i` provably-consumed tokens, require `i − μ_i ≥ η · (|T| − i)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtaGuard {
    /// System parameter η ≥ 0. η = 0 disables the guard.
    pub eta: f64,
}

impl EtaGuard {
    pub fn new(eta: f64) -> Self {
        assert!(eta >= 0.0, "η must be non-negative");
        EtaGuard { eta }
    }

    /// Whether the state `(i, μ_i, |T|)` satisfies the guard.
    pub fn admits(&self, rings: usize, consumed_proven: usize, universe_size: usize) -> bool {
        let i = rings as f64;
        let mu = consumed_proven as f64;
        let t = universe_size as f64;
        i - mu >= self.eta * (t - i)
    }

    /// Whether appending `candidate` to `tracker` keeps the guard satisfied
    /// for a universe of `universe_size` tokens.
    pub fn admits_push(
        &self,
        tracker: &NeighborTracker,
        candidate: &RingSet,
        universe_size: usize,
    ) -> bool {
        let mut probe = tracker.clone();
        probe.push(candidate.clone());
        self.admits(probe.ring_count(), probe.consumed_count(), universe_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ring;

    #[test]
    fn theorem_4_1_basic() {
        let mut t = NeighborTracker::new();
        t.push(ring(&[1, 2]));
        assert_eq!(t.consumed_count(), 0);
        t.push(ring(&[1, 2]));
        // union {1,2} over 2 rings → both consumed.
        assert!(t.is_consumed(TokenId(1)));
        assert!(t.is_consumed(TokenId(2)));
    }

    #[test]
    fn three_ring_cascade() {
        // r1={1,2}, r2={2,3}, r3={1,3}: token 2's family = {r1, r2},
        // union {1,2,3} (3 ≠ 2). But all three rings over tokens {1,2,3}:
        // token 1's family {r1,r3} union {1,2,3} — no family is tight until
        // we consider the full set. The per-token rule is conservative: it
        // may miss some cases the exact adversary catches.
        let mut t = NeighborTracker::new();
        t.push(ring(&[1, 2]));
        t.push(ring(&[2, 3]));
        t.push(ring(&[1, 3]));
        // conservative: nothing proven by per-token families
        assert_eq!(t.consumed_count(), 0);
    }

    #[test]
    fn growing_neighbour_set_triggers() {
        let mut t = NeighborTracker::new();
        t.push(ring(&[1, 2]));
        t.push(ring(&[2, 3]));
        t.push(ring(&[1, 2, 3]));
        // token 2's family = all three rings; union {1,2,3} of size 3 → tight.
        assert_eq!(t.consumed_count(), 3);
    }

    #[test]
    fn eta_zero_always_admits() {
        let g = EtaGuard::new(0.0);
        assert!(g.admits(0, 0, 100));
        assert!(g.admits(5, 5, 100));
    }

    #[test]
    fn eta_guard_blocks_exhaustion() {
        // Example 1 scenario from §4: T = {t1..t4}; after 3 rings all of
        // t1, t2, t3 provably consumed → i − μ = 0; with η = 0.5 and
        // |T| − i = 1, guard needs 0 ≥ 0.5 → reject.
        let g = EtaGuard::new(0.5);
        assert!(!g.admits(3, 3, 4));
        // With only 1 provably consumed: 2 ≥ 0.5 → fine.
        assert!(g.admits(3, 1, 4));
    }

    #[test]
    fn admits_push_probes_without_mutating() {
        let g = EtaGuard::new(1.0);
        let mut t = NeighborTracker::new();
        t.push(ring(&[1, 2]));
        let before = t.ring_count();
        let _ = g.admits_push(&t, &ring(&[1, 2]), 4);
        assert_eq!(t.ring_count(), before, "probe must not mutate");
    }

    #[test]
    fn duplicate_token_families_accumulate() {
        let mut t = NeighborTracker::new();
        t.push(ring(&[5]));
        assert!(t.is_consumed(TokenId(5)), "singleton ring proves its token");
    }
}
