//! The homogeneity attack (§1, §2.4; t-closeness literature).
//!
//! If all candidate consumed tokens of a ring come from the same historical
//! transaction, the adversary learns the HT of the consumed token without
//! resolving the token itself — "the source of the consumed token can still
//! be inferred as h_i".

use std::collections::BTreeMap;

use crate::chain_reaction::Analysis;
use crate::types::{HtId, RingSet, RsId, TokenUniverse};

/// Outcome of a homogeneity probe on one ring.
#[derive(Debug, Clone, PartialEq)]
pub struct HomogeneityReport {
    /// The HT revealed, if the candidates are homogeneous.
    pub revealed_ht: Option<HtId>,
    /// Candidate-HT frequency map (for entropy-style inspection).
    pub ht_counts: BTreeMap<HtId, usize>,
}

impl HomogeneityReport {
    /// Whether the attack succeeded.
    pub fn attack_succeeds(&self) -> bool {
        self.revealed_ht.is_some()
    }

    /// The number of distinct HTs among the remaining candidates.
    pub fn distinct_hts(&self) -> usize {
        self.ht_counts.len()
    }
}

/// Probe a raw ring (no chain-reaction pre-processing): homogeneous iff all
/// its tokens share one HT.
pub fn probe_ring(ring: &RingSet, universe: &TokenUniverse) -> HomogeneityReport {
    let mut counts: BTreeMap<HtId, usize> = BTreeMap::new();
    for &t in ring.tokens() {
        *counts.entry(universe.ht(t)).or_insert(0) += 1;
    }
    HomogeneityReport {
        revealed_ht: single_key(&counts),
        ht_counts: counts,
    }
}

/// Probe a ring *after* chain-reaction analysis: homogeneity over the
/// surviving candidates only — the combined attack of §2.4 ("use side
/// information to eliminate tokens ... and infer possible token-RS pairs by
/// the frequency of HTs of remaining tokens").
pub fn probe_analyzed(
    analysis: &Analysis,
    rs: RsId,
    universe: &TokenUniverse,
) -> HomogeneityReport {
    let mut counts: BTreeMap<HtId, usize> = BTreeMap::new();
    if let Some(cands) = analysis.candidates.get(&rs) {
        for &t in cands {
            *counts.entry(universe.ht(t)).or_insert(0) += 1;
        }
    }
    HomogeneityReport {
        revealed_ht: single_key(&counts),
        ht_counts: counts,
    }
}

fn single_key(counts: &BTreeMap<HtId, usize>) -> Option<HtId> {
    if counts.len() == 1 {
        counts.keys().next().copied()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain_reaction::analyze;
    use crate::related::RingIndex;
    use crate::types::{ring, TokenId, TokenRsPair};

    #[test]
    fn example1_first_solution_is_homogeneous() {
        // r3 = {t1, t3}, both from h1 → attack succeeds.
        let uni = TokenUniverse::new(vec![HtId(9), HtId(1), HtId(2), HtId(1), HtId(3)]);
        let rep = probe_ring(&ring(&[1, 3]), &uni);
        assert_eq!(rep.revealed_ht, Some(HtId(1)));
        assert!(rep.attack_succeeds());
    }

    #[test]
    fn diverse_ring_resists() {
        let uni = TokenUniverse::new(vec![HtId(9), HtId(1), HtId(2), HtId(1), HtId(3)]);
        let rep = probe_ring(&ring(&[1, 2, 4]), &uni);
        assert_eq!(rep.revealed_ht, None);
        assert_eq!(rep.distinct_hts(), 3);
    }

    #[test]
    fn elimination_then_homogeneity() {
        // §2.4's first method: r3 = {t1, t2, t3, t4}; adversary knows t2, t4
        // are spent elsewhere; leftovers t1, t3 share h1 → revealed.
        let uni = TokenUniverse::new(vec![HtId(9), HtId(1), HtId(2), HtId(1), HtId(3)]);
        let idx = RingIndex::from_rings([
            ring(&[1, 2, 3, 4]), // r3 (target, id 0)
            ring(&[2, 5]),       // id 1
            ring(&[4, 6]),       // id 2
        ]);
        let a = analyze(
            &idx,
            &[
                TokenRsPair::new(TokenId(2), RsId(1)),
                TokenRsPair::new(TokenId(4), RsId(2)),
            ],
        );
        let rep = probe_analyzed(&a, RsId(0), &uni);
        assert_eq!(rep.revealed_ht, Some(HtId(1)), "{a:?}");
    }

    #[test]
    fn unknown_ring_id_yields_empty_report() {
        let uni = TokenUniverse::new(vec![HtId(0)]);
        let a = Analysis::default();
        let rep = probe_analyzed(&a, RsId(7), &uni);
        assert!(!rep.attack_succeeds());
        assert_eq!(rep.distinct_hts(), 0);
    }
}
