//! Bipartite perfect-matching enumeration — the combinatorial object of the
//! paper's hardness proof (Theorem 3.1 reduces counting perfect matchings,
//! Valiant's #P-complete EPMBG problem, to deciding DA-MS).
//!
//! Provided both as a standalone graph algorithm (used by tests to validate
//! the reduction: combinations of a ring set == perfect matchings of the
//! ring/token incidence graph) and as a permanent computation for counting.

use crate::related::RingIndex;
use crate::types::{RsId, TokenId};

/// A bipartite graph with `left` row vertices and `right` column vertices;
/// `adj[i]` lists the right-vertices adjacent to left-vertex `i`.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    right: usize,
    adj: Vec<Vec<usize>>,
}

impl BipartiteGraph {
    /// Build from adjacency lists; `right` is the number of right vertices.
    ///
    /// Panics when an edge references a right vertex out of range.
    pub fn new(right: usize, adj: Vec<Vec<usize>>) -> Self {
        for (i, row) in adj.iter().enumerate() {
            for &j in row {
                assert!(j < right, "edge ({i},{j}) exceeds right size {right}");
            }
        }
        BipartiteGraph { right, adj }
    }

    pub fn left_len(&self) -> usize {
        self.adj.len()
    }

    pub fn right_len(&self) -> usize {
        self.right
    }

    /// Enumerate all perfect matchings (every *left* vertex matched to a
    /// distinct right vertex; for square graphs this is the classic perfect
    /// matching). Each matching maps left index → right index.
    pub fn enumerate_matchings(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut assignment = vec![usize::MAX; self.adj.len()];
        let mut used = vec![false; self.right];
        self.recurse(0, &mut assignment, &mut used, &mut out);
        out
    }

    fn recurse(
        &self,
        i: usize,
        assignment: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if i == self.adj.len() {
            out.push(assignment.clone());
            return;
        }
        for &j in &self.adj[i] {
            if !used[j] {
                used[j] = true;
                assignment[i] = j;
                self.recurse(i + 1, assignment, used, out);
                assignment[i] = usize::MAX;
                used[j] = false;
            }
        }
    }

    /// Count perfect matchings of a square bipartite graph via the Ryser
    /// permanent formula, O(2^n · n) — much faster than enumeration for
    /// counting-only callers.
    ///
    /// Panics when the graph is not square or has more than 63 vertices per
    /// side (the subset mask is a `u64`).
    pub fn count_matchings_permanent(&self) -> u64 {
        let n = self.adj.len();
        assert_eq!(n, self.right, "permanent needs a square graph");
        assert!(n <= 63, "permanent limited to 63x63");
        if n == 0 {
            return 1;
        }
        // Row bitmasks.
        let rows: Vec<u64> = self
            .adj
            .iter()
            .map(|r| r.iter().fold(0u64, |m, &j| m | (1 << j)))
            .collect();
        // Ryser: perm = (-1)^n * sum_{S ⊆ cols} (-1)^{|S|} prod_i |row_i ∩ S|
        let mut total: i128 = 0;
        for s in 0u64..(1u64 << n) {
            let mut prod: i128 = 1;
            for &row in &rows {
                prod *= (row & s).count_ones() as i128;
                if prod == 0 {
                    break;
                }
            }
            let sign = if (n as u32 - s.count_ones()).is_multiple_of(2) {
                1
            } else {
                -1
            };
            total += sign * prod;
        }
        // The permanent of a 0/1 matrix is non-negative; saturate on the
        // (unreachable for n <= 63) overflow instead of panicking.
        u64::try_from(total.max(0)).unwrap_or(u64::MAX)
    }
}

/// Build the reduction graph of Theorem 3.1: left vertices are the rings,
/// right vertices the distinct tokens they mention. Returns the graph and
/// the right-index → token mapping.
pub fn reduction_graph(index: &RingIndex, rings: &[RsId]) -> (BipartiteGraph, Vec<TokenId>) {
    let mut tokens: Vec<TokenId> = Vec::new();
    let mut pos: std::collections::HashMap<TokenId, usize> = std::collections::HashMap::new();
    for &r in rings {
        for &t in index.ring(r).tokens() {
            pos.entry(t).or_insert_with(|| {
                tokens.push(t);
                tokens.len() - 1
            });
        }
    }
    let adj: Vec<Vec<usize>> = rings
        .iter()
        .map(|&r| index.ring(r).tokens().iter().map(|t| pos[t]).collect())
        .collect();
    (BipartiteGraph::new(tokens.len(), adj), tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combination::enumerate_combinations;
    use crate::types::ring;

    #[test]
    fn complete_k3_has_six_matchings() {
        let g = BipartiteGraph::new(3, vec![vec![0, 1, 2]; 3]);
        assert_eq!(g.enumerate_matchings().len(), 6);
        assert_eq!(g.count_matchings_permanent(), 6);
    }

    #[test]
    fn path_graph_has_one_matching() {
        // left0-{0}, left1-{0,1}: forced matching (0→0, 1→1).
        let g = BipartiteGraph::new(2, vec![vec![0], vec![0, 1]]);
        let ms = g.enumerate_matchings();
        assert_eq!(ms, vec![vec![0, 1]]);
        assert_eq!(g.count_matchings_permanent(), 1);
    }

    #[test]
    fn no_matching_when_pigeonholed() {
        let g = BipartiteGraph::new(2, vec![vec![0], vec![0], vec![0, 1]]);
        assert!(g.enumerate_matchings().is_empty());
    }

    #[test]
    fn empty_graph_has_one_trivial_matching() {
        let g = BipartiteGraph::new(0, vec![]);
        assert_eq!(g.enumerate_matchings().len(), 1);
        assert_eq!(g.count_matchings_permanent(), 1);
    }

    #[test]
    fn permanent_matches_enumeration_random() {
        // deterministic pseudo-random 5x5 graphs
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..20 {
            let mut adj = vec![Vec::new(); 5];
            for (i, row) in adj.iter_mut().enumerate() {
                for j in 0..5 {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if seed >> 62 != 0 {
                        row.push(j);
                    }
                }
                if row.is_empty() {
                    row.push(i); // keep a chance of matchings
                }
            }
            let g = BipartiteGraph::new(5, adj);
            assert_eq!(
                g.count_matchings_permanent(),
                g.enumerate_matchings().len() as u64
            );
        }
    }

    #[test]
    fn reduction_equates_combinations_and_matchings() {
        // The heart of Theorem 3.1: token-RS combinations of a ring set are
        // exactly the left-perfect matchings of the incidence graph.
        let idx = RingIndex::from_rings([
            ring(&[1, 2]),
            ring(&[1, 2]),
            ring(&[2, 3, 4]),
            ring(&[3, 5]),
        ]);
        let rs: Vec<RsId> = idx.ids().collect();
        let combos = enumerate_combinations(&idx, &rs);
        let (g, _tokens) = reduction_graph(&idx, &rs);
        assert_eq!(combos.len(), g.enumerate_matchings().len());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn permanent_rejects_non_square() {
        BipartiteGraph::new(3, vec![vec![0], vec![1]]).count_matchings_permanent();
    }

    #[test]
    #[should_panic(expected = "exceeds right size")]
    fn constructor_validates_edges() {
        BipartiteGraph::new(1, vec![vec![1]]);
    }
}
