//! Related RS sets (Definition 1 of the paper).
//!
//! For a ring `r_k` at timestamp `π`, the related set `R_π^{r_k}` is the
//! transitive closure of "shares a token with" over the rings proposed
//! before `π`: layer 0 holds every ring intersecting `r_k`, layer `i` every
//! ring intersecting something in layer `i-1`.

use std::collections::HashMap;

use crate::types::{RingSet, RsId, TokenId};

/// An indexed collection of existing ring signatures.
///
/// Rings are identified by dense `RsId`s in insertion (timestamp) order; a
/// token→rings inverted index accelerates closure computation.
#[derive(Debug, Clone, Default)]
pub struct RingIndex {
    rings: Vec<RingSet>,
    by_token: HashMap<TokenId, Vec<RsId>>,
}

impl RingIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an ordered list of rings (earlier = older).
    pub fn from_rings<I: IntoIterator<Item = RingSet>>(rings: I) -> Self {
        let mut idx = Self::new();
        for r in rings {
            idx.push(r);
        }
        idx
    }

    /// Append a ring (it receives the next `RsId`). Returns its id.
    pub fn push(&mut self, ring: RingSet) -> RsId {
        let id = RsId(self.rings.len() as u32);
        for &t in ring.tokens() {
            self.by_token.entry(t).or_default().push(id);
        }
        self.rings.push(ring);
        id
    }

    /// Number of rings.
    pub fn len(&self) -> usize {
        self.rings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rings.is_empty()
    }

    /// Look up a ring by id. Panics on out-of-range ids (ids are only minted
    /// by this index).
    pub fn ring(&self, id: RsId) -> &RingSet {
        &self.rings[id.0 as usize]
    }

    /// All ring ids in timestamp order.
    pub fn ids(&self) -> impl Iterator<Item = RsId> + '_ {
        (0..self.rings.len() as u32).map(RsId)
    }

    /// Iterate `(id, ring)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RsId, &RingSet)> + '_ {
        self.rings
            .iter()
            .enumerate()
            .map(|(i, r)| (RsId(i as u32), r))
    }

    /// Rings containing a given token.
    pub fn rings_with_token(&self, t: TokenId) -> &[RsId] {
        self.by_token.get(&t).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The related RS set `R_π^{r}` of a (possibly not yet committed) ring
    /// `r`: BFS over the share-a-token adjacency. The result is sorted by id
    /// and excludes `exclude` (pass the ring's own id when it is already in
    /// the index, or `None` for a candidate ring).
    pub fn related_set(&self, r: &RingSet, exclude: Option<RsId>) -> Vec<RsId> {
        let mut visited = vec![false; self.rings.len()];
        if let Some(RsId(i)) = exclude {
            visited[i as usize] = true;
        }
        let mut frontier: Vec<RsId> = Vec::new();
        for &t in r.tokens() {
            for &id in self.rings_with_token(t) {
                if !visited[id.0 as usize] {
                    visited[id.0 as usize] = true;
                    frontier.push(id);
                }
            }
        }
        let mut out: Vec<RsId> = Vec::new();
        while let Some(id) = frontier.pop() {
            out.push(id);
            for &t in self.ring(id).tokens() {
                for &next in self.rings_with_token(t) {
                    if !visited[next.0 as usize] {
                        visited[next.0 as usize] = true;
                        frontier.push(next);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ring;

    #[test]
    fn paper_example_2_related_set() {
        // r1={t1,t2,t5}, r2={t1,t3}, r3={t1,t3}, r4={t2,t4}, r5={t4,t5,t6}
        let idx = RingIndex::from_rings([
            ring(&[1, 2, 5]),
            ring(&[1, 3]),
            ring(&[1, 3]),
            ring(&[2, 4]),
            ring(&[4, 5, 6]),
        ]);
        // R^{r4} = {r1, r2, r3, r5} (ids 0,1,2,4), excluding r4 itself (id 3).
        let rel = idx.related_set(idx.ring(RsId(3)), Some(RsId(3)));
        assert_eq!(rel, vec![RsId(0), RsId(1), RsId(2), RsId(4)]);
    }

    #[test]
    fn disjoint_rings_have_empty_related_set() {
        let idx = RingIndex::from_rings([ring(&[1, 2]), ring(&[3, 4])]);
        let rel = idx.related_set(&ring(&[5, 6]), None);
        assert!(rel.is_empty());
    }

    #[test]
    fn candidate_ring_pulls_in_transitive_layers() {
        // chain: candidate {1} — r0 {1,2} — r1 {2,3} — r2 {3,4}; r3 {9} isolated
        let idx = RingIndex::from_rings([
            ring(&[1, 2]),
            ring(&[2, 3]),
            ring(&[3, 4]),
            ring(&[9]),
        ]);
        let rel = idx.related_set(&ring(&[1]), None);
        assert_eq!(rel, vec![RsId(0), RsId(1), RsId(2)]);
    }

    #[test]
    fn inverted_index_is_consistent() {
        let mut idx = RingIndex::new();
        let a = idx.push(ring(&[1, 2]));
        let b = idx.push(ring(&[2, 3]));
        assert_eq!(idx.rings_with_token(TokenId(2)), &[a, b]);
        assert_eq!(idx.rings_with_token(TokenId(1)), &[a]);
        assert!(idx.rings_with_token(TokenId(99)).is_empty());
    }

    #[test]
    fn exclude_self_when_committed() {
        let idx = RingIndex::from_rings([ring(&[1, 2]), ring(&[2, 3])]);
        let rel = idx.related_set(idx.ring(RsId(0)), Some(RsId(0)));
        assert_eq!(rel, vec![RsId(1)]);
    }
}
